//! Remote session demo: the interactive slider drag from
//! `interactive_session.rs`, but over TCP — a [`NetServer`] front door
//! on one side, a [`NetClient`] speaking the length-prefixed line-JSON
//! wire protocol on the other.
//!
//! The drag pipelines queries without waiting for answers, so the
//! server supersedes each stale query remotely (newest-interaction-wins
//! works across the wire): the client reads back a stream of
//! `cancelled` frames and exactly one `result` — the final slider
//! position's answer, bit-for-bit what an in-process execution returns.
//!
//! Run with: `cargo run --release --example remote_session`

use std::sync::Arc;
use std::time::Instant;
use zenvisage::zql::ZqlEngine;
use zenvisage::zv_datagen::{sales, SalesConfig};
use zenvisage::zv_server::{NetClient, NetServer, NetServerConfig, Response, SubmitOptions};
use zenvisage::zv_storage::BitmapDb;

/// One slider position → one textual ZQL query (what a remote front-end
/// would actually send): total sales per year above the threshold.
fn slider_zql(threshold: f64) -> String {
    format!("name | x | y | constraints\n*f1 | 'year' | 'sales' | sales > {threshold}")
}

fn main() {
    let table = sales::generate(&SalesConfig {
        rows: 500_000,
        products: 200,
        ..Default::default()
    });
    let engine = Arc::new(ZqlEngine::new(Arc::new(BitmapDb::new(table))));

    // The front door: an ephemeral port on localhost, default limits.
    let server = NetServer::start(engine, "127.0.0.1:0", NetServerConfig::default())
        .expect("bind ephemeral port");
    println!("zv-server listening on {}\n", server.local_addr());

    let mut client = NetClient::connect(server.local_addr(), "").expect("connect + handshake");
    println!("connected as session {}", client.session());

    // The drag: 20 slider positions pipelined back-to-back. Every send
    // supersedes the previous in-flight query server-side; the network
    // round-trip is *not* on the keystroke path.
    const KEYSTROKES: usize = 20;
    let start = Instant::now();
    let mut last_id = 0;
    for step in 0..KEYSTROKES {
        let threshold = step as f64 * 2.5;
        last_id = client
            .send_query(&slider_zql(threshold), SubmitOptions::default())
            .expect("send");
    }
    println!(
        "sent {KEYSTROKES} keystrokes in {:.2} ms; reading responses…\n",
        start.elapsed().as_secs_f64() * 1e3
    );

    // Exactly one frame per query, in submission order: the stale ones
    // come back `cancelled`, the final one carries the table.
    let (mut cancelled, mut results) = (0u32, 0u32);
    for _ in 0..KEYSTROKES {
        match client.recv().expect("response frame") {
            Response::Cancelled { reason, .. } => {
                cancelled += 1;
                let _ = reason; // CancelReason::Superseded for all of them
            }
            Response::Result { id, tables, report } => {
                results += 1;
                assert_eq!(id, last_id, "only the newest query produces a result");
                let t = &tables[0];
                println!(
                    "result for query {id} ({} x={} y={}): {} points, \
                     {} rows scanned in {:.2} ms",
                    t.component,
                    t.x,
                    t.y,
                    t.table.groups[0].xs.len(),
                    report.rows_scanned,
                    report.total_time.as_secs_f64() * 1e3,
                );
            }
            other => panic!("unexpected frame {other:?}"),
        }
    }
    println!("\n{cancelled} superseded keystrokes cancelled remotely, {results} result");

    let stats = server.session_stats();
    println!(
        "server ledger: {} submitted, {} superseded, {} completed (breaker {:?})",
        stats.submitted, stats.superseded, stats.completed, stats.breaker,
    );

    client.bye().expect("clean close");
    server.shutdown();
    println!("drained and shut down cleanly");
}
