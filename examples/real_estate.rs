//! The thesis's §6.1 real-estate scenarios on the (synthetic) Zillow-style
//! housing data: a real-estate agent explores price patterns across
//! counties and cities — the workload behind the Chapter 8 user study.
//!
//! Run with: `cargo run --release --example real_estate`

use std::sync::Arc;
use zenvisage::zql::{recommend, render, similarity_search, TaskSpec, ZqlEngine};
use zenvisage::zv_analytics::Series;
use zenvisage::zv_datagen::{housing, HousingConfig};
use zenvisage::zv_storage::{Agg, BitmapDb};

fn main() {
    let table = housing::generate(&HousingConfig::default());
    let engine = ZqlEngine::new(Arc::new(BitmapDb::new(table)));

    // Scenario (i), Figure 6.2: "A real estate agent notices an
    // interesting peak between 2008 and 2012 in the county of Jessamine,
    // and now wants to discover other counties with a similar pattern."
    println!("— Scenario (i): counties with a Jessamine-like 2008–2012 peak —\n");
    let jessamine = engine
        .execute_text(
            "name | x | y | z | viz\n\
             *f1 | 'year' | 'sold_price' | 'county'.'Jessamine' | bar.(y=agg('avg'))",
        )
        .unwrap()
        .visualizations
        .remove(0);
    println!(
        "{}",
        render::ascii_chart(&jessamine.series, "Jessamine avg sold price", 48, 8)
    );

    let spec = TaskSpec::new("year", "sold_price", "county").with_agg(Agg::Avg);
    let similar = similarity_search(&engine, &spec, &jessamine.series, 6).unwrap();
    println!("most similar counties (the first is Jessamine itself):");
    for viz in &similar.visualizations {
        println!("  {}", render::describe(viz));
    }

    // Scenario (ii), Figure 6.3: NY cities where prices rose 2004→2015
    // but foreclosures moved the opposite way. Pure ZQL: filter by trend
    // on one measure, then compare against the other.
    println!("\n— Scenario (ii): NY cities where price ↑ but foreclosures ↓ —\n");
    let out = engine
        .execute_text(
            "name | x | y | z | constraints | viz | process\n\
             f1 | 'year' | 'sold_price' | v1 <- 'city'.* | state='NY' | bar.(y=agg('avg')) | v2 <- argany(v1)[t > 0] T(f1)\n\
             f2 | 'year' | 'foreclosure_rate' | v2 | state='NY' | bar.(y=agg('avg')) | v3 <- argany(v2)[t < 0] T(f2)\n\
             *f3 | 'year' | 'foreclosure_rate' | v3 | state='NY' | bar.(y=agg('avg')) |",
        )
        .unwrap();
    println!(
        "{} qualifying cities; first three:",
        out.visualizations.len()
    );
    for viz in out.visualizations.iter().take(3) {
        println!("  {}", render::describe(viz));
    }

    // Scenario (iv), Figure 6.5: states where turnover rate opposes the
    // price trend.
    println!("\n— Scenario (iv): states where turnover opposes price —\n");
    let out = engine
        .execute_text(
            "name | x | y | z | viz | process\n\
             f1 | 'year' | 'sold_price' | v1 <- 'state'.* | bar.(y=agg('avg')) | v2 <- argany(v1)[t > 0] T(f1)\n\
             f2 | 'year' | 'turnover_rate' | v2 | bar.(y=agg('avg')) | v3 <- argany(v2)[t < 0] T(f2)\n\
             *f3 | 'year' | 'turnover_rate' | v3 | bar.(y=agg('avg')) |",
        )
        .unwrap();
    for viz in &out.visualizations {
        println!("  {}", render::describe(viz));
    }

    // And the recommendation panel (§6.2): five diverse price trends for
    // the axes the agent is viewing.
    println!("\n— Recommendation panel: diverse county price trends —\n");
    for viz in recommend(&engine, &spec).unwrap() {
        println!("  {}", render::describe(&viz));
    }

    // Sanity: the drawing box. Sketch the peak by hand and search.
    let sketch = Series::new(
        (2004..=2015)
            .map(|y| {
                let d = (y - 2010) as f64;
                (y as f64, 1.0 + 2.0 * (-d * d / 4.0).exp())
            })
            .collect(),
    );
    let drawn = similarity_search(&engine, &spec, &sketch, 3).unwrap();
    println!("\ncounties matching a hand-drawn 2008–2012 bump:");
    for viz in &drawn.visualizations {
        println!("  {}", render::describe(viz));
    }
}
