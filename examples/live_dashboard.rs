//! Live dashboard: a ticking data feed appends rows while the same
//! group-by is re-issued every tick — and stays warm.
//!
//! Run with: `cargo run --release --example live_dashboard`
//!
//! Every `append_rows` bumps the table version, so a plain cache would
//! miss on every tick and recompute over the full table. Instead the
//! cache delta-merges: it finds the result it already has at the
//! pre-append version, scans *only* the appended rows, folds them in
//! group-wise (SUM/COUNT/MIN/MAX fold directly; AVG rides on
//! SUM+COUNT), and mints the merged table under the new version. The
//! first refresh below is a cold 1M-row scan; the other 19 are
//! incremental-view-maintenance hits that scan exactly the 1,000 rows
//! each tick appended.

use zenvisage::zv_datagen::{sales, SalesConfig};
use zenvisage::zv_storage::{
    Agg, CacheConfig, Database, ScanDb, ScanDbConfig, SelectQuery, Value, XSpec, YSpec,
};

const TICKS: usize = 20;
const TICK_ROWS: usize = 1_000;

fn main() {
    // 1M rows of product sales — big enough that a per-tick full scan
    // would blow any interactivity budget.
    let table = sales::generate(&SalesConfig {
        rows: 1_000_000,
        products: 50,
        ..Default::default()
    });
    let db = ScanDb::with_config(
        table.clone(),
        ScanDbConfig {
            cache: CacheConfig::admit_all(),
            ..Default::default()
        },
    );

    // The dashboard's one panel: sales per year, split by product.
    let query = SelectQuery::new(
        XSpec::raw("year"),
        vec![
            YSpec::sum("sales"),
            YSpec::avg("sales"),
            YSpec::new("*", Agg::Count),
        ],
    )
    .with_z("product");

    println!("refresh  latency      answered by                    rows scanned");
    for tick in 0..TICKS {
        // Ticks after the first append a 1k-row batch (recycled rows —
        // a stand-in for whatever the feed delivers).
        if tick > 0 {
            let batch: Vec<Vec<Value>> = (0..TICK_ROWS)
                .map(|r| table.row((tick * 7919 + r * 13) % table.num_rows()))
                .collect();
            db.append_rows(&batch).expect("append tick");
        }

        let before = db.stats().snapshot();
        let start = std::time::Instant::now();
        let result = db
            .run_request(std::slice::from_ref(&query))
            .expect("dashboard refresh");
        let latency = start.elapsed();
        let delta = db.stats().snapshot().since(&before);

        let (how, scanned) = if delta.ivm_hits > 0 {
            ("IVM delta merge", delta.ivm_rows_scanned)
        } else if delta.queries > 0 {
            ("full scan (seeds the cache)", delta.rows_scanned)
        } else {
            ("pure cache hit", 0)
        };
        println!(
            "  #{tick:<4}  {latency:>9.2?}   {how:<28}  {scanned:>10}   ({} groups)",
            result[0].groups.len()
        );
    }

    let totals = db.stats().snapshot();
    println!(
        "\n{} refreshes: {} cold scan, {} IVM hits — {} rows delta-scanned in \
         total, vs ~{}M rows had every tick recomputed from scratch",
        TICKS,
        totals.queries,
        totals.ivm_hits,
        totals.ivm_rows_scanned,
        (TICKS - 1) * table.num_rows() / 1_000_000,
    );
    assert_eq!(
        totals.ivm_hits as usize,
        TICKS - 1,
        "19 of 20 refreshes warm"
    );
}
