//! Case Study 1 + 5 from the thesis introduction: finding *anomalous*
//! series among thousands of candidates — "keywords that are behaving
//! unusually with respect to other keywords" (Turn) and "other attributes
//! that have a similar behavior with per-query response time" (Facebook
//! server monitoring).
//!
//! We model both on the airline dataset: airports whose delay profile is
//! anomalous, and airports matching a reference airport's behaviour.
//!
//! Run with: `cargo run --release --example ad_analytics`

use std::sync::Arc;
use zenvisage::zql::{outlier_search, render, OptLevel, TaskSpec, ZqlEngine};
use zenvisage::zv_datagen::{airline, AirlineConfig};
use zenvisage::zv_storage::{Agg, BitmapDb};

fn main() {
    let table = airline::generate(&AirlineConfig {
        rows: 400_000,
        airports: 60,
        ..Default::default()
    });
    let engine = ZqlEngine::with_opt_level(Arc::new(BitmapDb::new(table)), OptLevel::InterTask);
    let spec = TaskSpec::new("year", "dep_delay", "origin").with_agg(Agg::Avg);

    // "Which airports behave unusually?" — the outlier task (Table 3.20):
    // find 8 representative delay profiles, then the airports farthest
    // from all of them.
    println!("— anomalous departure-delay profiles —\n");
    let outliers = outlier_search(&engine, &spec, 8, 3).unwrap();
    for viz in &outliers.visualizations {
        println!(
            "{}",
            render::ascii_chart(&viz.series, &render::describe(viz), 44, 6)
        );
    }

    // "What moves like JFK?" — the comparative search of Case Study 5,
    // written directly in ZQL: compare every airport's arrival-delay
    // series against JFK's and take the closest matches.
    println!("— airports whose arrival delays track JFK —\n");
    let out = engine
        .execute_text(
            "name | x | y | z | viz | process\n\
             f1 | 'year' | 'arr_delay' | 'origin'.'JFK' | bar.(y=agg('avg')) |\n\
             f2 | 'year' | 'arr_delay' | v1 <- 'origin'.(* \\ {'JFK'}) | bar.(y=agg('avg')) | v2 <- argmin(v1)[k=5] D(f1, f2)\n\
             *f3 | 'year' | 'arr_delay' | v2 | bar.(y=agg('avg')) |",
        )
        .unwrap();
    for viz in &out.visualizations {
        println!("  {}", render::describe(viz));
    }
    println!(
        "\n(executed {} SQL queries in {} round trips, {:?})",
        out.report.sql_queries, out.report.requests, out.report.total_time
    );

    // A two-axis hunt (Table 3.19's shape): which (x, y) pair separates
    // JFK from SFO the most?
    println!("\n— axes that differentiate JFK from SFO the most —\n");
    let mut engine = engine;
    engine
        .registry_mut()
        .register_attr_set("C", vec!["year".into(), "month".into(), "day".into()]);
    engine.registry_mut().register_attr_set(
        "M",
        vec![
            "dep_delay".into(),
            "arr_delay".into(),
            "weather_delay".into(),
        ],
    );
    let out = engine
        .execute_text(
            "name | x | y | z | viz | process\n\
             f1 | x1 <- C | y1 <- M | 'origin'.'JFK' | bar.(y=agg('avg')) |\n\
             f2 | x1 | y1 | 'origin'.'SFO' | bar.(y=agg('avg')) | x2, y2 <- argmax(x1, y1)[k=1] D(f1, f2)\n\
             *f3 | x2 | y2 | 'origin'.'JFK' | bar.(y=agg('avg')) |\n\
             *f4 | x2 | y2 | 'origin'.'SFO' | bar.(y=agg('avg')) |",
        )
        .unwrap();
    for viz in &out.visualizations {
        println!(
            "{}",
            render::ascii_chart(&viz.series, &render::describe(viz), 44, 6)
        );
    }
}
