//! Case Study 2 from the thesis introduction, and §3.9 Query 4: hunting
//! for the *pair of attributes* whose relationship is most unusual —
//! "finding pairs of genes that visually explain the differences in
//! clinical trial outcomes", generalized as Table 3.25's scatterplot
//! query over an attribute set M.
//!
//! We run it on the census twin: which (x, y) attribute pair's pattern is
//! most different from every other pair's?
//!
//! Run with: `cargo run --release --example genomics_scatter`

use std::sync::Arc;
use zenvisage::zql::{render, ZqlEngine};
use zenvisage::zv_datagen::{census, CensusConfig};
use zenvisage::zv_storage::BitmapDb;

fn main() {
    let table = census::generate(&CensusConfig {
        rows: 30_000,
        ..Default::default()
    });
    let mut engine = ZqlEngine::new(Arc::new(BitmapDb::new(table)));

    // M: the numeric attributes we're willing to plot against each other.
    engine
        .registry_mut()
        .register_attr_set("MX", vec!["age".into(), "hours_per_week".into()]);
    engine
        .registry_mut()
        .register_attr_set("MY", vec!["wage_per_hour".into(), "capital_gains".into()]);

    // Table 3.25: f1/f2 both iterate over all (x, y) pairs; the process
    // picks the pair maximizing the *sum* of distances to every other
    // pair — "a pair of dimensions whose correlation pattern is the most
    // unusual".
    let out = engine
        .execute_text(
            "name | x | y | viz | process\n\
             f1 | x1 <- MX | y1 <- MY | bar.(x=bin(5), y=agg('avg')) |\n\
             f2 | x2 <- MX | y2 <- MY | bar.(x=bin(5), y=agg('avg')) | x3, y3 <- argmax(x1, y1)[k=1] sum(x2, y2) D(f1, f2)\n\
             *f3 | x3 | y3 | bar.(x=bin(5), y=agg('avg')) |",
        )
        .unwrap();

    let winner = &out.visualizations[0];
    println!(
        "most unusual attribute pairing: {} vs {}\n",
        winner.y, winner.x
    );
    println!(
        "{}",
        render::ascii_chart(
            &winner.series,
            &format!("{} by {}", winner.y, winner.x),
            52,
            10
        )
    );

    // For context, show the full grid of candidate pairings.
    println!("all candidate pairings:");
    let grid = engine
        .execute_text(
            "name | x | y | viz\n\
             *f1 | x1 <- MX | y1 <- MY | bar.(x=bin(5), y=agg('avg'))",
        )
        .unwrap();
    for viz in &grid.visualizations {
        println!("  {}", render::describe(viz));
    }
    println!(
        "\n(the winning pair is the one whose shape diverges most from the rest — \
         {} SQL queries, {:?})",
        out.report.sql_queries, out.report.total_time
    );
}
