//! Durable restart: checkpoint a table to disk, append through the
//! WAL, "crash", and recover to the exact pre-crash version.
//!
//! Run with: `cargo run --release --example durable_restart`
//!
//! The on-disk layout (see `zv_storage::persist` for the format
//! reference) is one snapshot file per checkpoint plus an append-only
//! `wal.log`; recovery is newest valid snapshot + WAL replay, and a
//! torn WAL tail is truncated, never served.

use std::sync::Arc;

use zenvisage::zv_datagen::{sales, SalesConfig};
use zenvisage::zv_storage::{Database, ScanDb, ScanDbConfig, SelectQuery, Table, XSpec, YSpec};

fn total_sales(db: &ScanDb) -> String {
    let q = SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")]);
    let result = db.run_request(&[q]).expect("group-by runs");
    format!("{:?}", result[0].groups)
}

fn main() {
    let dir = std::env::temp_dir().join(format!("zv-durable-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // ── Process 1: first boot seeds the directory ──────────────────
    // `open_durable` on an empty dir calls the init closure and
    // checkpoints the result, so the data is durable before the engine
    // serves a single query.
    let db = ScanDb::open_durable(&dir, ScanDbConfig::default(), || {
        sales::generate(&SalesConfig {
            rows: 100_000,
            products: 20,
            ..Default::default()
        })
    })
    .expect("seed the durable dir");
    let seeded = Database::table(&db);
    println!(
        "boot 1: seeded {} rows at version {}",
        seeded.num_rows(),
        seeded.version()
    );

    // Committed appends go through the WAL (framed, CRC'd, fsynced per
    // batch) *before* they become visible in memory.
    for batch in 0..3 {
        let rows: Vec<_> = (0..4).map(|r| seeded.row(batch * 4 + r)).collect();
        db.append_rows(&rows).expect("durable append");
    }
    let pre_crash = Database::table(&db);
    let answer_before = total_sales(&db);
    println!(
        "boot 1: appended 3 batches, now {} rows at version {}",
        pre_crash.num_rows(),
        pre_crash.version()
    );

    // ── Crash ──────────────────────────────────────────────────────
    // Dropping the engine without a drain checkpoint models a crash:
    // the snapshot on disk is stale, the WAL holds the appends.
    drop(db);

    // ── Process 2: recovery ────────────────────────────────────────
    // The init closure must not run — the dir is populated, so recovery
    // rebuilds the table from snapshot + WAL replay instead.
    let db = ScanDb::open_durable(&dir, ScanDbConfig::default(), || {
        unreachable!("recovery must not re-seed")
    })
    .expect("recover");
    let recovered: Arc<Table> = Database::table(&db);
    let report = db.persistence().expect("durable engine").recovery_report();
    println!(
        "boot 2: recovered {} rows at version {} (snapshot + {} WAL frames, {} rows replayed)",
        recovered.num_rows(),
        recovered.version(),
        report.frames_replayed,
        report.rows_replayed,
    );

    // Crash-exact: same rows, same version — cache keys minted against
    // this version stay meaningful across the restart.
    assert_eq!(recovered.num_rows(), pre_crash.num_rows());
    assert_eq!(recovered.version(), pre_crash.version());
    assert_eq!(total_sales(&db), answer_before, "answers survive restarts");
    println!("boot 2: version and group-by answer match the pre-crash state exactly");

    // A checkpoint folds the WAL into a fresh snapshot and truncates it
    // (this is what `zv-serve --data-dir` does on graceful drain).
    db.checkpoint().expect("checkpoint");
    let wal_len = std::fs::metadata(db.persistence().unwrap().wal_path())
        .map(|m| m.len())
        .unwrap_or(0);
    println!("boot 2: checkpointed — WAL truncated to {wal_len} bytes");

    let _ = std::fs::remove_dir_all(&dir);
}
