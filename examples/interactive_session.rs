//! Interactive session demo: a simulated slider drag where every
//! "keystroke" re-issues the query with a new threshold, superseding the
//! previous in-flight query (newest-interaction-wins).
//!
//! This is the workload the query-lifecycle subsystem exists for: the
//! user produces queries faster than a full scan completes, so almost
//! every scan is stale before it finishes. The SessionManager cancels
//! each superseded query's `QueryCtx`; the morsel claim loop observes
//! the flag between claims and abandons the remaining work.
//!
//! Run with: `cargo run --release --example interactive_session`

use std::sync::Arc;
use std::time::Instant;
use zenvisage::zql::{QueryBuilder, ZqlEngine, ZqlQuery};
use zenvisage::zv_datagen::{sales, SalesConfig};
use zenvisage::zv_server::{SessionConfig, SessionManager};
use zenvisage::zv_storage::{Atom, BitmapDb, CmpOp, Database, Predicate};

/// One slider position → one ZQL query: total sales per year, counting
/// only transactions above the slider's threshold.
fn slider_query(threshold: f64) -> ZqlQuery {
    QueryBuilder::new()
        .output_row("f1", |r| {
            r.x("year")
                .y("sales")
                .constraint(Predicate::atom(Atom::NumCmp {
                    col: "sales".into(),
                    op: CmpOp::Gt,
                    value: threshold,
                }))
        })
        .build()
}

fn main() {
    let table = sales::generate(&SalesConfig {
        rows: 1_000_000,
        products: 500,
        ..Default::default()
    });
    println!(
        "loaded {} rows; a cold scan of this table takes a few ms —\n\
         far longer than the ~microseconds between slider keystrokes\n",
        table.num_rows()
    );

    let db = Arc::new(BitmapDb::new(table));
    let engine = Arc::new(ZqlEngine::new(db.clone()));
    let mgr = SessionManager::new(engine, SessionConfig::default());

    // The drag: 40 slider positions, issued back to back on session 1.
    // Each submission supersedes (cancels) the previous one; only the
    // final position's result is ever needed.
    const KEYSTROKES: usize = 40;
    let start = Instant::now();
    let handles: Vec<_> = (0..KEYSTROKES)
        .map(|step| {
            let threshold = step as f64 * 2.5;
            mgr.submit(1, slider_query(threshold)).expect("admitted")
        })
        .collect();
    // Wait for *every* keystroke's outcome (not just the last): the
    // bookkeeping printed below must not race still-draining workers.
    let mut outcomes: Vec<_> = handles.into_iter().map(|h| h.wait()).collect();
    let elapsed = start.elapsed();
    let final_result = outcomes
        .pop()
        .unwrap()
        .expect("the newest interaction wins");

    let g = &final_result.visualizations[0];
    println!(
        "final slider position answered in {:.1} ms total for the whole drag",
        elapsed.as_secs_f64() * 1e3
    );
    println!(
        "  -> '{}' over {} x-values (x={}, y={})\n",
        g.component,
        g.series.len(),
        g.x,
        g.y
    );

    let s = mgr.stats();
    println!("session-manager bookkeeping:");
    println!("  submitted   {:>6}", s.submitted);
    println!(
        "  superseded  {:>6}  (older keystrokes displaced)",
        s.superseded
    );
    println!(
        "  cancelled   {:>6}  (stopped queued or mid-scan)",
        s.cancelled
    );
    println!("  completed   {:>6}", s.completed);

    let db_stats = db.stats().snapshot();
    println!("\nengine telemetry:");
    println!("  queries_cancelled {:>6}", db_stats.queries_cancelled);
    println!(
        "  morsels_cancelled {:>6}  (claims the cancels saved)",
        db_stats.morsels_cancelled
    );
    println!(
        "  rows_scanned      {:>6}  (completed scans only)",
        db_stats.rows_scanned
    );
    println!(
        "\nwithout supersession this drag would have scanned ~{}M rows;\n\
         with it, stale keystrokes stop at the next morsel claim.",
        KEYSTROKES
    );
}
