//! Quickstart: load data, ask zenvisage a question in ZQL, read the
//! answer.
//!
//! Run with: `cargo run --release --example quickstart`

use std::sync::Arc;
use zenvisage::zql::{render, ZqlEngine};
use zenvisage::zv_datagen::{sales, SalesConfig};
use zenvisage::zv_storage::BitmapDb;

fn main() {
    // 1. A dataset: the thesis's fictitious GlobalMart product sales.
    let table = sales::generate(&SalesConfig {
        rows: 200_000,
        products: 50,
        ..Default::default()
    });
    println!(
        "loaded {} rows × {} attributes of product sales\n",
        table.num_rows(),
        table.schema().len()
    );

    // 2. An engine: the roaring-bitmap database + ZQL executor.
    let engine = ZqlEngine::new(Arc::new(BitmapDb::new(table)));

    // 3. A ZQL query (thesis Table 2.1): every product's total-sales-over-
    //    years bar chart, for products sold in the US.
    let output = engine
        .execute_text(
            "name | x      | y       | z                 | constraints   | viz\n\
             *f1  | 'year' | 'sales' | v1 <- 'product'.* | location='US' | bar.(y=agg('sum'))",
        )
        .expect("valid ZQL");

    println!(
        "ZQL returned {} visualizations via {} SQL queries in {} request(s), {:?} total\n",
        output.visualizations.len(),
        output.report.sql_queries,
        output.report.requests,
        output.report.total_time,
    );

    // 4. Look at a couple of them.
    for viz in output.visualizations.iter().take(3) {
        println!("{}", render::describe(viz));
        println!("{}", render::ascii_chart(&viz.series, &viz.label, 48, 8));
    }

    // 5. The same power, programmatically: "which product's sales trend
    //    looks most like this sketch?" (thesis Table 2.2)
    let sketch = zenvisage::zv_analytics::Series::from_ys(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    let spec = zenvisage::zql::TaskSpec::new("year", "sales", "product");
    let similar = zenvisage::zql::similarity_search(&engine, &spec, &sketch, 3).unwrap();
    println!("products whose sales trend best matches a rising sketch:");
    for viz in &similar.visualizations {
        println!("  {}", render::describe(viz));
    }

    // 6. Everything above is memory-only and forgets on exit. To keep a
    //    table across restarts, open the engine durably — snapshots +
    //    an append WAL recover the exact pre-crash state (see
    //    `examples/durable_restart.rs`, or run the server with
    //    `zv-serve --data-dir PATH`).

    // 7. Live data? Appends don't orphan the result cache: cached
    //    group-bys are delta-merged forward, scanning only the new rows
    //    (see `examples/live_dashboard.rs` — 20 dashboard refreshes on
    //    1M rows, 19 answered incrementally).

    // 8. Columns compress themselves: every 4096-row chunk seals as
    //    bit-packed or run-length encoded when that is smaller, and the
    //    scan kernels read the packed words in place — same answers,
    //    ~4x less memory on low-cardinality data. `ZV_ENCODING=off`
    //    disables it, `ZV_ENCODING=force` makes every sealed chunk
    //    encoded (the CI chaos legs use this); unset picks per chunk.
}
