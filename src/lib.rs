//! # zenvisage
//!
//! A from-scratch Rust implementation of **zenvisage** — "an expressive
//! and interactive visual analytics system" (Siddiqui et al., VLDB 2016 /
//! UIUC MS thesis 2016) — including the **ZQL** visual query language,
//! its four-level batching optimizer, the visual exploration algebra, a
//! roaring-bitmap in-memory database built from scratch, and the full
//! evaluation harness that regenerates every figure of the paper.
//!
//! This crate is a facade: it re-exports the workspace's crates so
//! downstream users need a single dependency.
//!
//! ```
//! use std::sync::Arc;
//! use zenvisage::zql::ZqlEngine;
//! use zenvisage::zv_datagen::{sales, SalesConfig};
//! use zenvisage::zv_storage::BitmapDb;
//!
//! let table = sales::generate(&SalesConfig { rows: 10_000, ..Default::default() });
//! let engine = ZqlEngine::new(Arc::new(BitmapDb::new(table)));
//! let out = engine
//!     .execute_text(
//!         "name | x      | y       | z                 | constraints\n\
//!          *f1  | 'year' | 'sales' | v1 <- 'product'.* | location='US'",
//!     )
//!     .unwrap();
//! assert!(!out.visualizations.is_empty());
//! ```
//!
//! ## Crate map
//!
//! | re-export | contents |
//! |---|---|
//! | [`zql`] | the ZQL language: parser, executor, optimizer, tasks |
//! | [`zv_storage`] | columnar tables, roaring bitmaps, the two engines |
//! | [`zv_analytics`] | distances, trends, k-means, ANOVA/Tukey |
//! | [`zv_vea`] | the visual exploration algebra (thesis Ch. 4) |
//! | [`zv_datagen`] | deterministic synthetic datasets |
//! | [`zv_study`] | the simulated Chapter 8 user study |
//! | [`zv_server`] | multi-session front-end: supersession + admission control |
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for
//! paper-vs-measured results on every table and figure.

pub use zql;
pub use zv_analytics;
pub use zv_datagen;
pub use zv_server;
pub use zv_storage;
pub use zv_study;
pub use zv_vea;
