//! # The networked front door
//!
//! [`NetServer`] puts a TCP listener in front of a [`SessionManager`]:
//! blocking I/O on scoped threads (no async runtime — the workload is
//! a bounded number of interactive connections, each cheap to give a
//! thread), speaking the [length-prefixed line-JSON
//! protocol](crate::proto).
//!
//! ## Thread & ownership model
//!
//! One driver thread runs the accept loop inside a `std::thread::scope`
//! and spawns a **reader** per connection in that scope (the scope
//! guarantees every connection thread is joined before the listener
//! drops). Each reader spawns and joins one **responder** thread, the
//! sole writer of that socket after the handshake:
//!
//! * the reader parses frames, submits queries to the shared
//!   [`SessionManager`], and forwards `(id, QueryHandle)` pairs — plus
//!   immediate `busy`/`error` frames — over an in-process channel;
//! * the responder consumes that channel FIFO, blocks on each handle,
//!   serializes the outcome, and writes it. FIFO is safe under
//!   supersession: an old query is cancelled the moment a newer one is
//!   submitted, so waiting on it cannot stall the newer one's response.
//!
//! ## Connection-aware admission
//!
//! `max_connections` is enforced at accept: an over-limit socket gets a
//! typed `busy` frame and an immediate close — a full front door is an
//! explicit signal, never a silent hang. Queue-full rejections from the
//! session layer surface the same way, per-query.
//!
//! ## Fault injection
//!
//! The server owns its **own** [`FaultSpec`] (separate from the
//! engine's scan-level spec): [`FaultPoint::ConnDrop`] is consulted
//! with the connection's response sequence number as the index and the
//! session id as the epoch — each connection gets an independent,
//! deterministic decision stream. A hit makes the responder write a
//! truncated frame, sever the socket, and attribute the session's
//! in-flight work to [`CancelReason::ConnectionLost`] — the chaos
//! suite's handle on "the client vanished mid-response".
//!
//! ## Slow-read defense
//!
//! Every reader socket carries a `read_deadline` (SO_RCVTIMEO). After
//! the handshake, the deadline distinguishes two kinds of quiet peer
//! via [`FrameRead`]: an **idle** client (deadline
//! expired with zero bytes of the next frame consumed) is healthy and
//! keeps its connection indefinitely, while a **stalled** client
//! (deadline expired mid-frame — it trickled half a length prefix or
//! body and went silent, the classic slowloris shape) is counted in
//! `read_stalls`, its in-flight work cancelled as a lost connection,
//! and its slot freed. The stream position is unrecoverable after a
//! mid-frame timeout, which is exactly why stalled connections are
//! dropped rather than retried. **Before** the handshake there is no
//! idle grace at all: a client that connects and sends nothing for one
//! whole deadline window is reaped (`handshake_timeouts`) — it has not
//! authenticated, so it does not get to pin one of `max_connections`
//! slots by staying silent.
//!
//! ## Graceful drain
//!
//! [`NetServer::shutdown`] stops accepting, waits (bounded by
//! `drain_timeout`) for queued responses to flush, then cancels
//! remaining sessions and severs the sockets. Readers blocked on idle
//! clients unblock via the socket shutdown — idle timeouts merely
//! re-arm the read, they never tear a connection down.

use std::io::{self, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use zql::{ZqlEngine, ZqlError, ZqlOutput};
use zv_storage::fault::lock_recover;
use zv_storage::{
    CancelReason, FaultPoint, FaultSpec, GroupSeries, ResultTable, StorageError, Value,
};

use crate::proto::{ErrorCode, Request, Response, VizTable, PROTO_VERSION};
use crate::wire::{read_frame, read_frame_deadline, write_frame, FrameRead};
use crate::{QueryHandle, SessionConfig, SessionManager, SessionStats, SubmitError};

/// Tuning for a [`NetServer`].
#[derive(Clone, Debug)]
pub struct NetServerConfig {
    /// Connections served at once; the next one gets a `busy` frame.
    pub max_connections: usize,
    /// Session-layer admission config (worker pool, queue bound,
    /// breaker).
    pub session: SessionConfig,
    /// Accepted auth tokens. Empty = any token authenticates (open
    /// server, the test/bench default).
    pub auth_tokens: Vec<String>,
    /// How long [`NetServer::shutdown`] waits for queued responses to
    /// flush before severing connections.
    pub drain_timeout: Duration,
    /// The server's own fault spec ([`FaultPoint::ConnDrop`]) —
    /// independent of the engine's scan-level injection.
    pub fault: FaultSpec,
    /// Per-read deadline on client sockets. A client that stalls
    /// *mid-frame* for this long is dropped and its connection slot
    /// freed, and a client that lets this long pass *before completing
    /// its hello* is reaped unauthenticated (see the module docs on
    /// slow-read defense); established clients idle *between* frames
    /// are never reaped. `None` disables the defense (readers block
    /// until EOF/shutdown).
    pub read_deadline: Option<Duration>,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        NetServerConfig {
            max_connections: 64,
            session: SessionConfig::default(),
            auth_tokens: Vec::new(),
            drain_timeout: Duration::from_secs(5),
            fault: FaultSpec::disabled(),
            read_deadline: Some(Duration::from_secs(30)),
        }
    }
}

/// Wire-layer counters (monotone, exact — the net-smoke CI leg asserts
/// bookkeeping against them).
#[derive(Default)]
pub struct NetStats {
    pub accepted: AtomicU64,
    /// Connections refused at the limit (got a `busy` frame).
    pub rejected: AtomicU64,
    pub auth_failures: AtomicU64,
    pub queries_received: AtomicU64,
    pub results_sent: AtomicU64,
    pub cancelled_sent: AtomicU64,
    pub busy_sent: AtomicU64,
    pub errors_sent: AtomicU64,
    /// Responses severed by an injected [`FaultPoint::ConnDrop`].
    pub conn_drops_injected: AtomicU64,
    /// Sessions whose in-flight query was cancelled with
    /// [`CancelReason::ConnectionLost`] (client vanished or ConnDrop).
    pub sessions_lost: AtomicU64,
    /// Connections dropped because the client stalled mid-frame past
    /// the read deadline (slow-read defense).
    pub read_stalls: AtomicU64,
    /// Connections reaped because the client sat out a whole read
    /// deadline without completing its hello — pre-auth sockets get no
    /// idle grace, so silent connects can't pin connection slots.
    pub handshake_timeouts: AtomicU64,
    pub active_connections: AtomicUsize,
}

/// Point-in-time copy of [`NetStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStatsSnapshot {
    pub accepted: u64,
    pub rejected: u64,
    pub auth_failures: u64,
    pub queries_received: u64,
    pub results_sent: u64,
    pub cancelled_sent: u64,
    pub busy_sent: u64,
    pub errors_sent: u64,
    pub conn_drops_injected: u64,
    pub sessions_lost: u64,
    pub read_stalls: u64,
    pub handshake_timeouts: u64,
    pub active_connections: usize,
}

impl NetStats {
    fn snapshot(&self) -> NetStatsSnapshot {
        NetStatsSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            auth_failures: self.auth_failures.load(Ordering::Relaxed),
            queries_received: self.queries_received.load(Ordering::Relaxed),
            results_sent: self.results_sent.load(Ordering::Relaxed),
            cancelled_sent: self.cancelled_sent.load(Ordering::Relaxed),
            busy_sent: self.busy_sent.load(Ordering::Relaxed),
            errors_sent: self.errors_sent.load(Ordering::Relaxed),
            conn_drops_injected: self.conn_drops_injected.load(Ordering::Relaxed),
            sessions_lost: self.sessions_lost.load(Ordering::Relaxed),
            read_stalls: self.read_stalls.load(Ordering::Relaxed),
            handshake_timeouts: self.handshake_timeouts.load(Ordering::Relaxed),
            active_connections: self.active_connections.load(Ordering::Relaxed),
        }
    }
}

struct Shared {
    manager: SessionManager,
    max_connections: usize,
    auth_tokens: Vec<String>,
    fault: FaultSpec,
    read_deadline: Option<Duration>,
    stats: NetStats,
    draining: AtomicBool,
    /// Pending query responses not yet written (drain waits on this).
    unflushed: AtomicUsize,
    next_session: AtomicU64,
    /// `try_clone`s of live sockets, for severing on drain. Keyed by
    /// session id.
    conns: Mutex<Vec<(u64, TcpStream)>>,
}

impl Shared {
    /// Attribute a vanished connection: cancel the session's in-flight
    /// query as [`CancelReason::ConnectionLost`]. `lost_once` dedupes
    /// the counter — the reader (EOF) and the responder (write failure
    /// or injected drop) can both observe the same death.
    fn lost_session(&self, session: u64, lost_once: &AtomicBool) {
        let cancelled = self
            .manager
            .cancel_session_with(session, CancelReason::ConnectionLost);
        if cancelled && !lost_once.swap(true, Ordering::SeqCst) {
            self.stats.sessions_lost.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn unregister(&self, session: u64) {
        lock_recover(&self.conns).retain(|(s, _)| *s != session);
    }
}

/// A running server. Dropping it (or calling [`NetServer::shutdown`])
/// drains gracefully.
pub struct NetServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    drain_timeout: Duration,
    driver: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// start serving `engine` under `config`.
    pub fn start(
        engine: Arc<ZqlEngine>,
        addr: &str,
        config: NetServerConfig,
    ) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            manager: SessionManager::new(engine, config.session),
            max_connections: config.max_connections.max(1),
            auth_tokens: config.auth_tokens,
            fault: config.fault,
            read_deadline: config.read_deadline,
            stats: NetStats::default(),
            draining: AtomicBool::new(false),
            unflushed: AtomicUsize::new(0),
            next_session: AtomicU64::new(1),
            conns: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let driver = std::thread::Builder::new()
            .name("zv-net-accept".to_string())
            .spawn(move || accept_loop(listener, accept_shared))?;
        Ok(NetServer {
            addr,
            shared,
            drain_timeout: config.drain_timeout,
            driver: Some(driver),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn stats(&self) -> NetStatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// The session layer's counters (shared with in-process callers).
    pub fn session_stats(&self) -> SessionStats {
        self.shared.manager.stats()
    }

    /// Graceful drain: stop accepting, flush queued responses (bounded
    /// by `drain_timeout`), cancel what remains, sever the sockets,
    /// join every connection thread.
    pub fn shutdown(mut self) {
        self.drain();
    }

    fn drain(&mut self) {
        let Some(driver) = self.driver.take() else {
            return;
        };
        self.shared.draining.store(true, Ordering::SeqCst);
        let deadline = Instant::now() + self.drain_timeout;
        while self.shared.unflushed.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        // Wake the accept loop (it checks `draining` per accept).
        let _ = TcpStream::connect(self.addr);
        // Sever every remaining connection; blocked readers unblock
        // with EOF, responders flush-fail silently and exit.
        let severed: Vec<(u64, TcpStream)> = std::mem::take(&mut *lock_recover(&self.shared.conns));
        for (session, stream) in severed {
            self.shared
                .manager
                .cancel_session_with(session, CancelReason::Explicit);
            let _ = stream.shutdown(Shutdown::Both);
        }
        let _ = driver.join();
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.drain();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let shared = &shared;
    std::thread::scope(|scope| {
        for stream in listener.incoming() {
            if shared.draining.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let active = shared.stats.active_connections.load(Ordering::SeqCst);
            if active >= shared.max_connections {
                // Typed refusal, never a hang: the client's handshake
                // read gets a busy frame instead of silence.
                shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
                shared.stats.busy_sent.fetch_add(1, Ordering::Relaxed);
                let refuse_shared = Arc::clone(shared);
                scope.spawn(move || refuse_conn(stream, &refuse_shared));
                continue;
            }
            shared
                .stats
                .active_connections
                .fetch_add(1, Ordering::SeqCst);
            shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
            let conn_shared = Arc::clone(shared);
            scope.spawn(move || {
                handle_conn(stream, &conn_shared);
                conn_shared
                    .stats
                    .active_connections
                    .fetch_sub(1, Ordering::SeqCst);
            });
        }
    });
}

/// Refuse one over-limit connection with a typed `busy` frame. The
/// client's hello is consumed first — closing with unread bytes in the
/// receive buffer makes TCP send an RST that can destroy the busy
/// frame before the client reads it. The read is bounded (the socket
/// is closed regardless), so a silent client can't pin this thread.
fn refuse_conn(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    if let Ok(clone) = stream.try_clone() {
        let mut reader = BufReader::new(clone);
        let _ = read_frame(&mut reader);
    }
    let _ = write_frame(
        &mut stream,
        &Response::Busy {
            id: None,
            queued: shared.max_connections as u64,
            msg: "connection limit reached".to_string(),
        }
        .to_json(),
    );
    let _ = stream.shutdown(Shutdown::Write);
}

/// What the reader forwards to the responder. One channel per
/// connection keeps a single writer per socket — immediate frames and
/// query responses interleave in arrival order.
enum Outgoing {
    Immediate(Response),
    Pending { id: u64, handle: QueryHandle },
}

fn handle_conn(stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let Ok(reader_stream) = stream.try_clone() else {
        return;
    };
    // Arm the slow-read defense before the handshake; the handshake
    // read below treats any timeout — trickled hello or dead silence —
    // as grounds to reap the unauthenticated connection.
    let _ = reader_stream.set_read_timeout(shared.read_deadline);
    let mut reader = BufReader::new(reader_stream);
    let mut writer = stream;

    // ---- Handshake (this thread is the only writer until it ends).
    // No idle grace before authentication: a client that connects and
    // lets a whole deadline window pass without completing its hello is
    // reaped — otherwise N silent sockets exhaust `max_connections`
    // without ever authenticating. (Established sessions may idle
    // between frames indefinitely; see `reader_loop`.)
    let hello = match read_frame_deadline(&mut reader) {
        Ok(FrameRead::Frame(frame)) => Request::from_json(&frame),
        Ok(FrameRead::Idle | FrameRead::Stalled) => {
            shared
                .stats
                .handshake_timeouts
                .fetch_add(1, Ordering::Relaxed);
            return;
        }
        Ok(FrameRead::Eof) | Err(_) => return,
    };
    let token = match hello {
        Some(Request::Hello { version, token }) if version == PROTO_VERSION => token,
        Some(Request::Hello { version, .. }) => {
            shared.stats.errors_sent.fetch_add(1, Ordering::Relaxed);
            let _ = write_frame(
                &mut writer,
                &Response::Error {
                    id: None,
                    code: ErrorCode::Proto,
                    msg: format!("protocol version {version} unsupported (want {PROTO_VERSION})"),
                }
                .to_json(),
            );
            return;
        }
        _ => {
            shared.stats.errors_sent.fetch_add(1, Ordering::Relaxed);
            let _ = write_frame(
                &mut writer,
                &Response::Error {
                    id: None,
                    code: ErrorCode::Proto,
                    msg: "expected hello frame".to_string(),
                }
                .to_json(),
            );
            return;
        }
    };
    if !shared.auth_tokens.is_empty() && !shared.auth_tokens.contains(&token) {
        shared.stats.auth_failures.fetch_add(1, Ordering::Relaxed);
        shared.stats.errors_sent.fetch_add(1, Ordering::Relaxed);
        let _ = write_frame(
            &mut writer,
            &Response::Error {
                id: None,
                code: ErrorCode::Auth,
                msg: "auth token rejected".to_string(),
            }
            .to_json(),
        );
        return;
    }
    let session = shared.next_session.fetch_add(1, Ordering::Relaxed);
    if let Ok(clone) = writer.try_clone() {
        lock_recover(&shared.conns).push((session, clone));
    }
    if write_frame(
        &mut writer,
        &Response::Welcome {
            version: PROTO_VERSION,
            session,
        }
        .to_json(),
    )
    .is_err()
    {
        shared.unregister(session);
        return;
    }

    // ---- Serve: reader (this thread) + one responder (sole writer).
    let (tx, rx) = channel::<Outgoing>();
    let lost_once = Arc::new(AtomicBool::new(false));
    let responder = std::thread::Builder::new()
        .name(format!("zv-net-responder-{session}"))
        .spawn({
            let shared = Arc::clone(shared);
            let lost_once = Arc::clone(&lost_once);
            move || responder_loop(writer, rx, session, &shared, &lost_once)
        });
    let responder = match responder {
        Ok(h) => h,
        Err(_) => {
            shared.unregister(session);
            return;
        }
    };

    let clean_bye = reader_loop(&mut reader, session, shared, &tx);
    drop(tx);
    if clean_bye {
        // Any in-flight query dies with the connection, attributed
        // explicitly (the client asked to close).
        shared
            .manager
            .cancel_session_with(session, CancelReason::Explicit);
    } else {
        shared.lost_session(session, &lost_once);
    }
    let _ = responder.join();
    shared.unregister(session);
}

/// Returns `true` on a clean `bye`, `false` when the client vanished.
fn reader_loop(
    reader: &mut BufReader<TcpStream>,
    session: u64,
    shared: &Shared,
    tx: &Sender<Outgoing>,
) -> bool {
    loop {
        let frame = match read_frame_deadline(reader) {
            Ok(FrameRead::Frame(frame)) => frame,
            // Idle between frames: healthy — re-arm the read. (Drain
            // unblocks idle readers by severing the socket, which
            // surfaces as EOF, not a timeout.)
            Ok(FrameRead::Idle) => continue,
            // Stalled mid-frame: the slow-read defense. The stream
            // position is unrecoverable; count it and drop the client,
            // freeing its connection slot.
            Ok(FrameRead::Stalled) => {
                shared.stats.read_stalls.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            Ok(FrameRead::Eof) | Err(_) => return false,
        };
        match Request::from_json(&frame) {
            Some(Request::Query { id, zql, opts }) => {
                shared
                    .stats
                    .queries_received
                    .fetch_add(1, Ordering::Relaxed);
                // Count the response as unflushed *before* submitting:
                // once the submit is visible in SessionStats, drain is
                // guaranteed to wait for its response.
                shared.unflushed.fetch_add(1, Ordering::SeqCst);
                let out = match shared.manager.submit_text(session, &zql, opts) {
                    Ok(handle) => Outgoing::Pending { id, handle },
                    Err(e) => {
                        shared.unflushed.fetch_sub(1, Ordering::SeqCst);
                        Outgoing::Immediate(match e {
                            SubmitError::QueueFull { capacity } => Response::Busy {
                                id: Some(id),
                                queued: capacity as u64,
                                msg: "session queue full".to_string(),
                            },
                            SubmitError::ShuttingDown => Response::Busy {
                                id: Some(id),
                                queued: 0,
                                msg: "server draining".to_string(),
                            },
                            SubmitError::Parse(e) => Response::Error {
                                id: Some(id),
                                code: ErrorCode::Parse,
                                msg: e.to_string(),
                            },
                        })
                    }
                };
                if let Err(unsent) = tx.send(out) {
                    // Responder died (ConnDrop): the socket is gone.
                    // The response will never be written — don't let
                    // drain wait for it.
                    if matches!(unsent.0, Outgoing::Pending { .. }) {
                        shared.unflushed.fetch_sub(1, Ordering::SeqCst);
                    }
                    return false;
                }
            }
            Some(Request::Cancel) => {
                shared.manager.cancel_session(session);
            }
            Some(Request::Bye) => return true,
            Some(Request::Hello { .. }) | None => {
                let _ = tx.send(Outgoing::Immediate(Response::Error {
                    id: None,
                    code: ErrorCode::Proto,
                    msg: "unintelligible frame".to_string(),
                }));
                return false;
            }
        }
    }
}

fn responder_loop(
    mut writer: TcpStream,
    rx: Receiver<Outgoing>,
    session: u64,
    shared: &Shared,
    lost_once: &AtomicBool,
) {
    // Once the socket is severed (injected drop or write failure) keep
    // draining the channel so every pending handle is still waited —
    // outcome bookkeeping stays exact even when nobody hears it.
    let mut dead = false;
    // `response_seq` (this connection's response sequence number) is
    // the ConnDrop fault index.
    for (response_seq, out) in (0_u64..).zip(rx) {
        let (resp, was_pending) = match out {
            Outgoing::Immediate(resp) => (resp, false),
            Outgoing::Pending { id, handle } => {
                let ctx = handle.ctx().clone();
                let resp = match handle.wait() {
                    Ok(output) => response_for_output(id, output),
                    Err(ZqlError::Storage(StorageError::Cancelled)) => Response::Cancelled {
                        id,
                        reason: ctx.cancel_reason(),
                    },
                    Err(ZqlError::Parse(e)) => Response::Error {
                        id: Some(id),
                        code: ErrorCode::Parse,
                        msg: e.to_string(),
                    },
                    Err(ZqlError::Semantic(m)) => Response::Error {
                        id: Some(id),
                        code: ErrorCode::Semantic,
                        msg: m,
                    },
                    Err(ZqlError::Storage(e)) => Response::Error {
                        id: Some(id),
                        code: ErrorCode::Storage,
                        msg: e.to_string(),
                    },
                };
                (resp, true)
            }
        };
        if !dead {
            if shared
                .fault
                .fires(FaultPoint::ConnDrop, response_seq, session)
            {
                // Simulate the network dying mid-response: half a frame,
                // then a severed socket. The session's in-flight work is
                // attributed to the lost connection.
                shared
                    .stats
                    .conn_drops_injected
                    .fetch_add(1, Ordering::Relaxed);
                let body = resp.to_json().to_string();
                // Half the frame, sliced in bytes (a char boundary is
                // exactly what a real network drop doesn't respect).
                let _ = writer.write_all(body.len().to_string().as_bytes());
                let _ = writer.write_all(b"\n");
                let _ = writer.write_all(&body.as_bytes()[..body.len() / 2]);
                let _ = writer.flush();
                let _ = writer.shutdown(Shutdown::Both);
                shared.lost_session(session, lost_once);
                dead = true;
            } else {
                let counter = match &resp {
                    Response::Result { .. } => &shared.stats.results_sent,
                    Response::Cancelled { .. } => &shared.stats.cancelled_sent,
                    Response::Busy { .. } => &shared.stats.busy_sent,
                    _ => &shared.stats.errors_sent,
                };
                if write_frame(&mut writer, &resp.to_json()).is_ok() {
                    counter.fetch_add(1, Ordering::Relaxed);
                } else {
                    shared.lost_session(session, lost_once);
                    dead = true;
                }
            }
        }
        if was_pending {
            shared.unflushed.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

fn response_for_output(id: u64, output: ZqlOutput) -> Response {
    let tables = output
        .visualizations
        .into_iter()
        .map(|viz| {
            let (xs, ys): (Vec<Value>, Vec<f64>) = viz
                .series
                .points()
                .iter()
                .map(|&(x, y)| (Value::Float(x), y))
                .unzip();
            VizTable {
                component: viz.component,
                x: viz.x,
                y: viz.y,
                label: viz.label,
                table: ResultTable {
                    z_cols: vec![],
                    groups: vec![GroupSeries {
                        key: vec![],
                        xs,
                        ys: vec![ys],
                    }],
                },
            }
        })
        .collect();
    Response::Result {
        id,
        tables,
        report: output.report,
    }
}
