//! Frame I/O for the [protocol](crate::proto) plus [`NetClient`], the
//! blocking client used by tests, the load generator, and
//! `examples/remote_session.rs`.
//!
//! Framing is `<len>\n<json>\n` (see the [`proto`](crate::proto)
//! module docs for the full layout). Reads and writes are plain
//! blocking I/O — the protocol needs no async runtime: each side has
//! at most one reader and one writer per connection, and unblocking on
//! shutdown is done by shutting the socket down, not by polling.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};

use zv_storage::Json;

use crate::proto::{Request, Response, PROTO_VERSION};
use crate::SubmitOptions;

/// Upper bound on one frame's JSON body. A full-table result at the
/// scales this repo benches is a few MB; 64 MB rejects a corrupt or
/// hostile length prefix before allocating.
pub const MAX_FRAME: usize = 64 << 20;

fn invalid(msg: &'static str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Write one frame: decimal length, newline, single-line JSON, newline.
pub fn write_frame(w: &mut impl Write, j: &Json) -> io::Result<()> {
    let body = j.to_string();
    debug_assert!(!body.contains('\n'), "the JSON writer emits one line");
    w.write_all(body.len().to_string().as_bytes())?;
    w.write_all(b"\n")?;
    w.write_all(body.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

/// One [`read_frame_deadline`] outcome. The two timeout variants are
/// the load-bearing distinction for the server's slow-read defense: an
/// *idle* peer (no frame in flight) is healthy and may keep its
/// connection as long as it likes, while a *stalled* peer (deadline
/// expired with a frame half-delivered) is either broken or trickling
/// on purpose and must not pin a connection slot.
#[derive(Debug)]
pub enum FrameRead {
    /// A complete, parsed frame.
    Frame(Json),
    /// Clean EOF between frames.
    Eof,
    /// The read timeout expired with **zero** bytes of the next frame
    /// consumed — the peer is merely quiet. Only possible when the
    /// stream has a read timeout set.
    Idle,
    /// The read timeout expired **mid-frame**: the peer sent part of a
    /// length prefix or body and then went silent. The stream position
    /// is now unusable (partial bytes were consumed), so the caller
    /// must drop the connection.
    Stalled,
}

fn is_timeout(e: &io::Error) -> bool {
    // Unix reports an expired SO_RCVTIMEO as WouldBlock, Windows as
    // TimedOut.
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Read one frame, classifying read-timeout expiry as [`FrameRead::Idle`]
/// (nothing consumed — safe to retry) or [`FrameRead::Stalled`]
/// (mid-frame — the connection is beyond saving). EOF or damage inside
/// a frame is an error, exactly as in [`read_frame`].
pub fn read_frame_deadline(r: &mut impl BufRead) -> io::Result<FrameRead> {
    // Length line. `read_until` appends whatever it consumed before an
    // error, so on timeout the buffer tells idle (empty — no byte of
    // this frame was ever consumed) apart from stalled (partial line).
    let mut line = Vec::new();
    match r.read_until(b'\n', &mut line) {
        Ok(0) => return Ok(FrameRead::Eof),
        Ok(_) if line.last() != Some(&b'\n') => {
            return Err(invalid("connection dropped mid-frame"));
        }
        Ok(_) => {}
        Err(e) if is_timeout(&e) => {
            return Ok(if line.is_empty() {
                FrameRead::Idle
            } else {
                FrameRead::Stalled
            });
        }
        Err(e) => return Err(e),
    }
    line.pop();
    let len: usize = std::str::from_utf8(&line)
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| invalid("frame length prefix is not a decimal number"))?;
    if len > MAX_FRAME {
        return Err(invalid("frame exceeds MAX_FRAME"));
    }
    // Body + trailing newline, hand-looped: `read_exact` leaves the
    // buffer contents unspecified on error, which would conflate a
    // timeout with corruption.
    let mut body = vec![0u8; len + 1];
    let mut filled = 0;
    while filled < body.len() {
        match r.read(&mut body[filled..]) {
            Ok(0) => return Err(invalid("connection dropped mid-frame")),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) => return Ok(FrameRead::Stalled),
            Err(e) => return Err(e),
        }
    }
    if body[len] != b'\n' {
        return Err(invalid("frame body is not newline-terminated"));
    }
    let text = std::str::from_utf8(&body[..len]).map_err(|_| invalid("frame is not UTF-8"))?;
    Json::parse(text)
        .map(FrameRead::Frame)
        .map_err(|_| invalid("frame is not valid JSON"))
}

/// Read one frame. `Ok(None)` is a clean EOF *between* frames; EOF or
/// damage inside a frame is an error (the peer vanished mid-message —
/// exactly what [`FaultPoint::ConnDrop`](zv_storage::FaultPoint)
/// simulates). On a stream with a read timeout, idle waits are
/// retried transparently and a mid-frame stall surfaces as
/// `TimedOut` — callers that need to treat the two differently use
/// [`read_frame_deadline`] directly.
pub fn read_frame(r: &mut impl BufRead) -> io::Result<Option<Json>> {
    loop {
        match read_frame_deadline(r)? {
            FrameRead::Frame(j) => return Ok(Some(j)),
            FrameRead::Eof => return Ok(None),
            FrameRead::Idle => continue,
            FrameRead::Stalled => {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "peer stalled mid-frame",
                ))
            }
        }
    }
}

/// Client connection errors surfaced with a precise cause.
fn refused(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::ConnectionRefused, msg)
}

/// Blocking client for one zv-server connection: performs the auth
/// handshake on [`NetClient::connect`], then sends [`Request`]s and
/// receives [`Response`]s. Supports pipelining — send several queries
/// before reading; responses come back in submission order, with
/// superseded queries answered by `cancelled` frames.
#[derive(Debug)]
pub struct NetClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    session: u64,
    next_id: u64,
}

impl NetClient {
    /// Connect and authenticate. Fails with `ConnectionRefused` when
    /// the server is at its connection limit (typed `busy` frame) and
    /// `PermissionDenied` when the token is rejected.
    pub fn connect(addr: impl ToSocketAddrs, token: &str) -> io::Result<NetClient> {
        let mut writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true)?;
        let mut reader = BufReader::new(writer.try_clone()?);
        write_frame(
            &mut writer,
            &Request::Hello {
                version: PROTO_VERSION,
                token: token.to_string(),
            }
            .to_json(),
        )?;
        let frame = read_frame(&mut reader)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed during handshake",
            )
        })?;
        match Response::from_json(&frame) {
            Some(Response::Welcome { session, .. }) => Ok(NetClient {
                reader,
                writer,
                session,
                next_id: 1,
            }),
            Some(Response::Busy { msg, .. }) => Err(refused(format!("server busy: {msg}"))),
            Some(Response::Error { code, msg, .. }) => Err(io::Error::new(
                io::ErrorKind::PermissionDenied,
                format!("handshake rejected ({}): {msg}", code.as_str()),
            )),
            _ => Err(invalid("unexpected handshake frame")),
        }
    }

    /// The session id the server bound this connection to.
    pub fn session(&self) -> u64 {
        self.session
    }

    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.writer.local_addr()
    }

    /// Send one query without waiting; returns its correlation id.
    /// Sending a second query before the first answers supersedes it
    /// server-side (newest-interaction-wins).
    pub fn send_query(&mut self, zql: &str, opts: SubmitOptions) -> io::Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        write_frame(
            &mut self.writer,
            &Request::Query {
                id,
                zql: zql.to_string(),
                opts,
            }
            .to_json(),
        )?;
        Ok(id)
    }

    /// Cancel the session's live query (fire-and-forget).
    pub fn cancel(&mut self) -> io::Result<()> {
        write_frame(&mut self.writer, &Request::Cancel.to_json())
    }

    /// Read the next server frame.
    pub fn recv(&mut self) -> io::Result<Response> {
        let frame = read_frame(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })?;
        Response::from_json(&frame).ok_or_else(|| invalid("unintelligible server frame"))
    }

    /// Convenience: send one query and block for *its* response,
    /// discarding responses to earlier (pipelined, now superseded)
    /// queries.
    pub fn query(&mut self, zql: &str, opts: SubmitOptions) -> io::Result<Response> {
        let id = self.send_query(zql, opts)?;
        loop {
            let resp = self.recv()?;
            let matches = match &resp {
                Response::Result { id: got, .. } | Response::Cancelled { id: got, .. } => {
                    *got == id
                }
                Response::Busy { id: got, .. } | Response::Error { id: got, .. } => {
                    *got == Some(id)
                }
                Response::Welcome { .. } => false,
            };
            if matches {
                return Ok(resp);
            }
        }
    }

    /// Graceful close: sends `bye` and shuts the socket down.
    pub fn bye(mut self) -> io::Result<()> {
        write_frame(&mut self.writer, &Request::Bye.to_json())?;
        let _ = self.writer.shutdown(std::net::Shutdown::Write);
        // Drain until the server closes so its responder never sees a
        // reset while flushing.
        let mut sink = Vec::new();
        let _ = self.reader.read_to_end(&mut sink);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip_over_a_buffer() {
        let j = Json::parse(r#"{"t":"query","id":1,"zql":"NAME=f1 X='x' Y='y'"}"#).unwrap();
        let mut buf = Vec::new();
        write_frame(&mut buf, &j).unwrap();
        write_frame(&mut buf, &Json::Null).unwrap();
        let mut r = io::Cursor::new(buf);
        assert_eq!(
            read_frame(&mut r).unwrap().unwrap().to_string(),
            j.to_string()
        );
        assert!(read_frame(&mut r).unwrap().unwrap().is_null());
        assert!(
            read_frame(&mut r).unwrap().is_none(),
            "clean EOF between frames"
        );
    }

    /// Yields its bytes, then fails like an expired `SO_RCVTIMEO`.
    struct Trickle(io::Cursor<Vec<u8>>);

    impl Read for Trickle {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match self.0.read(buf) {
                Ok(0) => Err(io::Error::new(io::ErrorKind::WouldBlock, "timeout")),
                other => other,
            }
        }
    }

    fn trickle(bytes: &[u8]) -> BufReader<Trickle> {
        BufReader::new(Trickle(io::Cursor::new(bytes.to_vec())))
    }

    #[test]
    fn deadline_expiry_is_idle_between_frames_and_stalled_inside_them() {
        // Nothing consumed: the peer is merely quiet.
        assert!(matches!(
            read_frame_deadline(&mut trickle(b"")).unwrap(),
            FrameRead::Idle
        ));
        // Partial length prefix: mid-frame, the stream is unusable.
        assert!(matches!(
            read_frame_deadline(&mut trickle(b"12")).unwrap(),
            FrameRead::Stalled
        ));
        // Complete prefix, half a body: also stalled.
        assert!(matches!(
            read_frame_deadline(&mut trickle(b"2\n{")).unwrap(),
            FrameRead::Stalled
        ));
        // A whole frame followed by silence still parses first.
        let mut r = trickle(b"2\n{}\n");
        assert!(matches!(
            read_frame_deadline(&mut r).unwrap(),
            FrameRead::Frame(_)
        ));
        assert!(matches!(
            read_frame_deadline(&mut r).unwrap(),
            FrameRead::Idle
        ));
        // The retrying wrapper turns a mid-frame stall into TimedOut.
        let err = read_frame(&mut trickle(b"12")).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
    }

    #[test]
    fn truncated_and_damaged_frames_error() {
        // Truncated mid-body: the ConnDrop shape.
        let mut buf = Vec::new();
        write_frame(&mut buf, &Json::str("hello")).unwrap();
        buf.truncate(buf.len() - 4);
        let mut r = io::Cursor::new(buf);
        assert!(
            read_frame(&mut r).is_err(),
            "mid-frame EOF must error, not Ok(None)"
        );
        // Garbage length prefix.
        let mut r = io::Cursor::new(b"xyz\n{}\n".to_vec());
        assert!(read_frame(&mut r).is_err());
        // Length prefix larger than MAX_FRAME must not allocate/hang.
        let mut r = io::Cursor::new(format!("{}\n", usize::MAX).into_bytes());
        assert!(read_frame(&mut r).is_err());
        // Body shorter than advertised.
        let mut r = io::Cursor::new(b"10\n{}\n".to_vec());
        assert!(read_frame(&mut r).is_err());
    }
}
