//! Frame I/O for the [protocol](crate::proto) plus [`NetClient`], the
//! blocking client used by tests, the load generator, and
//! `examples/remote_session.rs`.
//!
//! Framing is `<len>\n<json>\n` (see the [`proto`](crate::proto)
//! module docs for the full layout). Reads and writes are plain
//! blocking I/O — the protocol needs no async runtime: each side has
//! at most one reader and one writer per connection, and unblocking on
//! shutdown is done by shutting the socket down, not by polling.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};

use zv_storage::Json;

use crate::proto::{Request, Response, PROTO_VERSION};
use crate::SubmitOptions;

/// Upper bound on one frame's JSON body. A full-table result at the
/// scales this repo benches is a few MB; 64 MB rejects a corrupt or
/// hostile length prefix before allocating.
pub const MAX_FRAME: usize = 64 << 20;

fn invalid(msg: &'static str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Write one frame: decimal length, newline, single-line JSON, newline.
pub fn write_frame(w: &mut impl Write, j: &Json) -> io::Result<()> {
    let body = j.to_string();
    debug_assert!(!body.contains('\n'), "the JSON writer emits one line");
    w.write_all(body.len().to_string().as_bytes())?;
    w.write_all(b"\n")?;
    w.write_all(body.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

/// Read one frame. `Ok(None)` is a clean EOF *between* frames; EOF or
/// damage inside a frame is an error (the peer vanished mid-message —
/// exactly what [`FaultPoint::ConnDrop`](zv_storage::FaultPoint)
/// simulates).
pub fn read_frame(r: &mut impl BufRead) -> io::Result<Option<Json>> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let len: usize = line
        .trim_end_matches('\n')
        .parse()
        .map_err(|_| invalid("frame length prefix is not a decimal number"))?;
    if len > MAX_FRAME {
        return Err(invalid("frame exceeds MAX_FRAME"));
    }
    let mut body = vec![0u8; len + 1];
    r.read_exact(&mut body)
        .map_err(|_| invalid("connection dropped mid-frame"))?;
    if body[len] != b'\n' {
        return Err(invalid("frame body is not newline-terminated"));
    }
    let text = std::str::from_utf8(&body[..len]).map_err(|_| invalid("frame is not UTF-8"))?;
    Json::parse(text)
        .map(Some)
        .map_err(|_| invalid("frame is not valid JSON"))
}

/// Client connection errors surfaced with a precise cause.
fn refused(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::ConnectionRefused, msg)
}

/// Blocking client for one zv-server connection: performs the auth
/// handshake on [`NetClient::connect`], then sends [`Request`]s and
/// receives [`Response`]s. Supports pipelining — send several queries
/// before reading; responses come back in submission order, with
/// superseded queries answered by `cancelled` frames.
#[derive(Debug)]
pub struct NetClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    session: u64,
    next_id: u64,
}

impl NetClient {
    /// Connect and authenticate. Fails with `ConnectionRefused` when
    /// the server is at its connection limit (typed `busy` frame) and
    /// `PermissionDenied` when the token is rejected.
    pub fn connect(addr: impl ToSocketAddrs, token: &str) -> io::Result<NetClient> {
        let mut writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true)?;
        let mut reader = BufReader::new(writer.try_clone()?);
        write_frame(
            &mut writer,
            &Request::Hello {
                version: PROTO_VERSION,
                token: token.to_string(),
            }
            .to_json(),
        )?;
        let frame = read_frame(&mut reader)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed during handshake",
            )
        })?;
        match Response::from_json(&frame) {
            Some(Response::Welcome { session, .. }) => Ok(NetClient {
                reader,
                writer,
                session,
                next_id: 1,
            }),
            Some(Response::Busy { msg, .. }) => Err(refused(format!("server busy: {msg}"))),
            Some(Response::Error { code, msg, .. }) => Err(io::Error::new(
                io::ErrorKind::PermissionDenied,
                format!("handshake rejected ({}): {msg}", code.as_str()),
            )),
            _ => Err(invalid("unexpected handshake frame")),
        }
    }

    /// The session id the server bound this connection to.
    pub fn session(&self) -> u64 {
        self.session
    }

    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.writer.local_addr()
    }

    /// Send one query without waiting; returns its correlation id.
    /// Sending a second query before the first answers supersedes it
    /// server-side (newest-interaction-wins).
    pub fn send_query(&mut self, zql: &str, opts: SubmitOptions) -> io::Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        write_frame(
            &mut self.writer,
            &Request::Query {
                id,
                zql: zql.to_string(),
                opts,
            }
            .to_json(),
        )?;
        Ok(id)
    }

    /// Cancel the session's live query (fire-and-forget).
    pub fn cancel(&mut self) -> io::Result<()> {
        write_frame(&mut self.writer, &Request::Cancel.to_json())
    }

    /// Read the next server frame.
    pub fn recv(&mut self) -> io::Result<Response> {
        let frame = read_frame(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })?;
        Response::from_json(&frame).ok_or_else(|| invalid("unintelligible server frame"))
    }

    /// Convenience: send one query and block for *its* response,
    /// discarding responses to earlier (pipelined, now superseded)
    /// queries.
    pub fn query(&mut self, zql: &str, opts: SubmitOptions) -> io::Result<Response> {
        let id = self.send_query(zql, opts)?;
        loop {
            let resp = self.recv()?;
            let matches = match &resp {
                Response::Result { id: got, .. } | Response::Cancelled { id: got, .. } => {
                    *got == id
                }
                Response::Busy { id: got, .. } | Response::Error { id: got, .. } => {
                    *got == Some(id)
                }
                Response::Welcome { .. } => false,
            };
            if matches {
                return Ok(resp);
            }
        }
    }

    /// Graceful close: sends `bye` and shuts the socket down.
    pub fn bye(mut self) -> io::Result<()> {
        write_frame(&mut self.writer, &Request::Bye.to_json())?;
        let _ = self.writer.shutdown(std::net::Shutdown::Write);
        // Drain until the server closes so its responder never sees a
        // reset while flushing.
        let mut sink = Vec::new();
        let _ = self.reader.read_to_end(&mut sink);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip_over_a_buffer() {
        let j = Json::parse(r#"{"t":"query","id":1,"zql":"NAME=f1 X='x' Y='y'"}"#).unwrap();
        let mut buf = Vec::new();
        write_frame(&mut buf, &j).unwrap();
        write_frame(&mut buf, &Json::Null).unwrap();
        let mut r = io::Cursor::new(buf);
        assert_eq!(
            read_frame(&mut r).unwrap().unwrap().to_string(),
            j.to_string()
        );
        assert!(read_frame(&mut r).unwrap().unwrap().is_null());
        assert!(
            read_frame(&mut r).unwrap().is_none(),
            "clean EOF between frames"
        );
    }

    #[test]
    fn truncated_and_damaged_frames_error() {
        // Truncated mid-body: the ConnDrop shape.
        let mut buf = Vec::new();
        write_frame(&mut buf, &Json::str("hello")).unwrap();
        buf.truncate(buf.len() - 4);
        let mut r = io::Cursor::new(buf);
        assert!(
            read_frame(&mut r).is_err(),
            "mid-frame EOF must error, not Ok(None)"
        );
        // Garbage length prefix.
        let mut r = io::Cursor::new(b"xyz\n{}\n".to_vec());
        assert!(read_frame(&mut r).is_err());
        // Length prefix larger than MAX_FRAME must not allocate/hang.
        let mut r = io::Cursor::new(format!("{}\n", usize::MAX).into_bytes());
        assert!(read_frame(&mut r).is_err());
        // Body shorter than advertised.
        let mut r = io::Cursor::new(b"10\n{}\n".to_vec());
        assert!(read_frame(&mut r).is_err());
    }
}
