//! # zv-server
//!
//! The multi-session front-end of the zenvisage reproduction: a
//! [`SessionManager`] that accepts ZQL queries from many concurrent
//! user sessions and runs them on a shared [`ZqlEngine`] under the
//! query-lifecycle subsystem (`zv_storage::lifecycle`).
//!
//! Interactive exploration produces a very particular workload: a user
//! dragging a slider or refining a sketch re-issues queries faster than
//! a bulk scan completes, so most in-flight work is *stale* the moment
//! it starts. The manager encodes the two policies that make this cheap:
//!
//! * **Newest-interaction-wins supersession.** Each session has at most
//!   one live query. Submitting a new query on a session cancels the
//!   previous one's [`QueryCtx`] with
//!   [`CancelReason::Superseded`]; the running scan observes the flag
//!   at its next cancellation point (between morsel claims / chunks),
//!   abandons its remaining work, and returns
//!   `StorageError::Cancelled` — its partial result never touches the
//!   result cache.
//! * **Admission control.** At most `max_concurrent` queries execute at
//!   once (a fixed worker pool); overflow is queued in a priority
//!   queue (higher [`QueryCtx::priority`] first, FIFO within a
//!   priority) bounded by `max_queued` — beyond that, submissions are
//!   rejected outright ([`SubmitError::QueueFull`]) rather than
//!   building unbounded backlog.
//!
//! Every submission is accounted for exactly once in
//! [`SessionStats`]: an admitted query ends `completed`, `cancelled`,
//! or `failed`; a rejected one counts `rejected` and is never admitted.
//! `superseded` counts displacement events (a superseded query usually
//! — but not necessarily, if it wins the race — ends `cancelled`).
//!
//! ## Fault handling
//!
//! The manager is also the retry/degrade layer above the engine's
//! panic containment (`zv_storage::exec` module docs, *The failure &
//! recovery pipeline*):
//!
//! * **Retries.** A [`RetryPolicy`] on [`SubmitOptions`] re-runs
//!   *transient* failures ([`StorageError::is_transient`]: a contained
//!   worker panic or resource exhaustion) up to `max_retries` times,
//!   with exponential backoff and deterministic jitter. Each attempt
//!   advances the ctx's fault epoch so deterministic fault injection
//!   re-rolls its decisions.
//! * **Degradation.** When parallel retries are exhausted, the query is
//!   re-run once on the serial path (`QueryCtx::force_serial`) — no
//!   fan-out, no injection points — before the error surfaces.
//! * **Breaker.** `breaker_threshold` consecutive retry-exhausted
//!   queries open a breaker that routes the next `breaker_window`
//!   queries serial from the start, so a persistently faulty parallel
//!   path stops burning retry budgets.
//!
//! All three are observable: `expired` / `retried` / `degraded` in
//! [`SessionStats`], mirrored onto the engine's `ExecStats`.

use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::{BinaryHeap, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use zql::{ZqlEngine, ZqlError, ZqlOutput, ZqlQuery};
use zv_storage::fault::{lock_recover, panic_payload_string};
use zv_storage::{CancelReason, QueryCtx, StorageError};

/// Identifies one user session (browser tab, notebook cell, API key…).
pub type SessionId = u64;

/// Tuning for a [`SessionManager`].
#[derive(Clone, Copy, Debug)]
pub struct SessionConfig {
    /// Queries executing at once — the worker-pool size (min 1).
    pub max_concurrent: usize,
    /// Bound on the overflow queue; submissions beyond it are rejected.
    pub max_queued: usize,
    /// Consecutive retry-exhausted queries before the breaker opens and
    /// routes subsequent queries serial. `0` disables the breaker.
    pub breaker_threshold: u32,
    /// How many queries run serial once the breaker opens; afterwards
    /// the parallel path gets another chance.
    pub breaker_window: u32,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            max_concurrent: 4,
            max_queued: 256,
            breaker_threshold: 3,
            breaker_window: 16,
        }
    }
}

/// How the manager reacts to *transient* failures
/// ([`StorageError::is_transient`]) of one query. The default retries
/// nothing but still degrades to a serial re-run — the cheapest "keep
/// serving" policy.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Re-run a transient failure up to this many times (same mode).
    pub max_retries: u32,
    /// Backoff before retry `k` is `backoff_base * 2^k` plus jitter.
    /// `Duration::ZERO` retries immediately (what tests want).
    pub backoff_base: Duration,
    /// Seed for deterministic backoff jitter; `0` means no jitter.
    /// Jitter is uniform in `[0, backoff_base * 2^k)`, derived from
    /// `seed ^ k` — reproducible, no wall-clock entropy.
    pub jitter_seed: u64,
    /// After parallel retries are exhausted, re-run once on the serial
    /// path (no fan-out, no injection points) before failing.
    pub serial_fallback: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 0,
            backoff_base: Duration::ZERO,
            jitter_seed: 0,
            serial_fallback: true,
        }
    }
}

/// Per-submission options.
#[derive(Clone, Copy, Debug, Default)]
pub struct SubmitOptions {
    /// Scheduling priority: higher pops first from the overflow queue.
    pub priority: i32,
    /// Cancel automatically once this much wall-clock has elapsed.
    pub deadline: Option<Duration>,
    /// Cancel automatically once the scan has visited this many rows.
    pub row_budget: Option<u64>,
    /// Retry/degrade policy for transient failures.
    pub retry: RetryPolicy,
}

/// Why a submission was not admitted.
#[derive(Debug)]
pub enum SubmitError {
    /// The overflow queue is at `max_queued`.
    QueueFull { capacity: usize },
    /// The manager is shutting down.
    ShuttingDown,
    /// `submit_text` could not parse the query.
    Parse(zql::ParseError),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "admission queue full ({capacity} queued)")
            }
            SubmitError::ShuttingDown => write!(f, "session manager is shutting down"),
            SubmitError::Parse(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Point-in-time counters ([`SessionManager::stats`]). Every *admitted*
/// submission ends in exactly one of `completed` / `cancelled` /
/// `failed`; `rejected` submissions were never admitted; `superseded`
/// counts newest-interaction-wins displacements.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Submissions admitted (queued or started).
    pub submitted: u64,
    /// Older same-session queries displaced by a newer submission.
    pub superseded: u64,
    /// Admitted queries that finished with a result.
    pub completed: u64,
    /// Admitted queries that ended `StorageError::Cancelled` (superseded,
    /// explicit cancel, deadline, or row budget) — whether they were
    /// still queued or already mid-scan.
    pub cancelled: u64,
    /// Admitted queries that failed with a non-cancellation error.
    pub failed: u64,
    /// Submissions refused by admission control.
    pub rejected: u64,
    /// Queries whose deadline had already expired when a worker popped
    /// them — skipped without waking the engine. A subset of
    /// `cancelled` (they still end `cancelled`), not a new outcome.
    pub expired: u64,
    /// Queries that were re-attempted at least once after a transient
    /// failure (counted once per query, however many attempts).
    pub retried: u64,
    /// Queries degraded to the serial path — by serial fallback after
    /// exhausted retries, or routed serial by an open breaker.
    pub degraded: u64,
    /// Queries currently waiting in the overflow queue.
    pub queued: usize,
    /// Sessions with a live (queued or running) query.
    pub active_sessions: usize,
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    superseded: AtomicU64,
    completed: AtomicU64,
    cancelled: AtomicU64,
    failed: AtomicU64,
    rejected: AtomicU64,
    expired: AtomicU64,
    retried: AtomicU64,
    degraded: AtomicU64,
}

/// Degradation breaker: `consecutive` counts back-to-back queries whose
/// parallel attempts were all exhausted; reaching the threshold arms
/// `serial_left`, and each arriving query decrements it (running
/// serial) until the window closes.
#[derive(Default)]
struct Breaker {
    consecutive: AtomicU32,
    serial_left: AtomicU32,
}

impl Breaker {
    /// Claim one serial slot if the breaker is open.
    fn take_serial_slot(&self) -> bool {
        let mut left = self.serial_left.load(Ordering::Relaxed);
        while left > 0 {
            match self.serial_left.compare_exchange_weak(
                left,
                left - 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(cur) => left = cur,
            }
        }
        false
    }

    /// A query exhausted its parallel retries.
    fn record_trip(&self, threshold: u32, window: u32) {
        if threshold == 0 {
            return;
        }
        if self.consecutive.fetch_add(1, Ordering::Relaxed) + 1 >= threshold {
            self.consecutive.store(0, Ordering::Relaxed);
            self.serial_left.store(window, Ordering::Relaxed);
        }
    }

    /// A query succeeded on the parallel path.
    fn record_parallel_success(&self) {
        self.consecutive.store(0, Ordering::Relaxed);
    }
}

/// Result slot a worker fills and a [`QueryHandle`] waits on.
struct JobShared {
    done: Mutex<Option<(Result<ZqlOutput, ZqlError>, Instant)>>,
    cv: Condvar,
}

impl JobShared {
    fn new() -> JobShared {
        JobShared {
            done: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn complete(&self, result: Result<ZqlOutput, ZqlError>) {
        let mut done = lock_recover(&self.done);
        debug_assert!(done.is_none(), "a job completes exactly once");
        *done = Some((result, Instant::now()));
        self.cv.notify_all();
    }
}

/// Handle to one submitted query: its lifecycle ctx plus the result
/// slot. Dropping the handle does not cancel the query.
pub struct QueryHandle {
    session: SessionId,
    seq: u64,
    ctx: QueryCtx,
    shared: Arc<JobShared>,
}

impl QueryHandle {
    pub fn session(&self) -> SessionId {
        self.session
    }

    /// Monotone submission ticket (older = smaller).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The query's lifecycle ctx (cancel it, read progress counters).
    pub fn ctx(&self) -> &QueryCtx {
        &self.ctx
    }

    /// Explicitly cancel this query.
    pub fn cancel(&self) {
        self.ctx.cancel();
    }

    pub fn is_finished(&self) -> bool {
        lock_recover(&self.shared.done).is_some()
    }

    /// Block until the query finishes; returns its result (a cancelled
    /// query yields `ZqlError::Storage(StorageError::Cancelled)`) and
    /// the instant it completed.
    pub fn wait_timed(self) -> (Result<ZqlOutput, ZqlError>, Instant) {
        let mut done = lock_recover(&self.shared.done);
        loop {
            match done.take() {
                Some(out) => return out,
                None => {
                    done = self
                        .shared
                        .cv
                        .wait(done)
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                }
            }
        }
    }

    /// Block until the query finishes; returns its result.
    pub fn wait(self) -> Result<ZqlOutput, ZqlError> {
        self.wait_timed().0
    }
}

/// One queued unit of work. Heap order: priority desc, then seq asc
/// (FIFO within a priority band).
struct PendingJob {
    session: SessionId,
    seq: u64,
    priority: i32,
    query: ZqlQuery,
    ctx: QueryCtx,
    retry: RetryPolicy,
    shared: Arc<JobShared>,
}

impl PartialEq for PendingJob {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for PendingJob {}
impl PartialOrd for PendingJob {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingJob {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.priority
            .cmp(&other.priority)
            .then(other.seq.cmp(&self.seq))
    }
}

struct Queue {
    heap: BinaryHeap<PendingJob>,
    shutdown: bool,
}

/// The newest query of one session (the only one not yet superseded).
struct InFlight {
    seq: u64,
    ctx: QueryCtx,
}

struct Inner {
    engine: Arc<ZqlEngine>,
    queue: Mutex<Queue>,
    cv: Condvar,
    sessions: Mutex<HashMap<SessionId, InFlight>>,
    counters: Counters,
    max_queued: usize,
    breaker: Breaker,
    breaker_threshold: u32,
    breaker_window: u32,
}

impl Inner {
    fn run_job(&self, job: PendingJob) {
        // A job superseded (or cancelled) while still queued is skipped
        // without touching the engine — the cheapest cancel of all. A
        // deadline that expired while the job sat in the queue is the
        // same skip, tracked separately (`expired`).
        let result = if job.ctx.is_cancelled() {
            if job.ctx.cancel_reason() == Some(CancelReason::Deadline) {
                self.counters.expired.fetch_add(1, Ordering::Relaxed);
            }
            Err(ZqlError::Storage(StorageError::Cancelled))
        } else {
            self.execute_with_policy(&job)
        };
        match &result {
            Ok(_) => self.counters.completed.fetch_add(1, Ordering::Relaxed),
            Err(ZqlError::Storage(StorageError::Cancelled)) => {
                self.counters.cancelled.fetch_add(1, Ordering::Relaxed)
            }
            Err(_) => self.counters.failed.fetch_add(1, Ordering::Relaxed),
        };
        self.release_session(&job);
        job.shared.complete(result);
    }

    /// One engine attempt with panic containment: a panic that somehow
    /// escapes the engine's own worker containment must not kill this
    /// pool worker (the manager would deadlock), so it converts to the
    /// same transient `WorkerPanicked` error.
    fn attempt(&self, job: &PendingJob) -> Result<ZqlOutput, ZqlError> {
        catch_unwind(AssertUnwindSafe(|| {
            self.engine.execute_ctx(&job.query, &job.ctx)
        }))
        .unwrap_or_else(|payload| {
            self.engine.database().stats().record_worker_panic();
            Err(ZqlError::Storage(StorageError::WorkerPanicked {
                payload: panic_payload_string(payload.as_ref()),
                morsel: 0,
            }))
        })
    }

    /// Run one admitted job under its [`RetryPolicy`]: bounded
    /// same-mode retries for transient failures, then one serial
    /// fallback, feeding the breaker throughout. Terminates because the
    /// serial fallback fires at most once (`serial_only` latches) and
    /// retries are bounded by `max_retries`.
    fn execute_with_policy(&self, job: &PendingJob) -> Result<ZqlOutput, ZqlError> {
        let policy = job.retry;
        let db_stats = self.engine.database().stats();
        // An open breaker routes this query serial from the start.
        if self.breaker.take_serial_slot() && !job.ctx.serial_only() {
            job.ctx.force_serial();
            self.counters.degraded.fetch_add(1, Ordering::Relaxed);
            db_stats.record_query_degraded();
        }
        let mut retried = false;
        let mut attempt: u32 = 0;
        loop {
            let result = self.attempt(job);
            let transient = matches!(&result, Err(ZqlError::Storage(e)) if e.is_transient());
            if !transient || job.ctx.is_cancelled() {
                if result.is_ok() && !job.ctx.serial_only() {
                    self.breaker.record_parallel_success();
                }
                return result;
            }
            // Transient failure: same-mode retries first…
            if attempt < policy.max_retries {
                if !retried {
                    retried = true;
                    self.counters.retried.fetch_add(1, Ordering::Relaxed);
                    db_stats.record_query_retried();
                }
                self.backoff(&policy, attempt);
                attempt += 1;
                // Re-roll injected-fault decisions for the next attempt.
                job.ctx.advance_fault_epoch();
                continue;
            }
            // …then degrade: one serial re-run before surfacing.
            if !job.ctx.serial_only() {
                self.breaker
                    .record_trip(self.breaker_threshold, self.breaker_window);
                if policy.serial_fallback {
                    job.ctx.force_serial();
                    job.ctx.advance_fault_epoch();
                    self.counters.degraded.fetch_add(1, Ordering::Relaxed);
                    db_stats.record_query_degraded();
                    continue;
                }
            }
            return result;
        }
    }

    /// Sleep `backoff_base * 2^attempt` plus deterministic jitter.
    fn backoff(&self, policy: &RetryPolicy, attempt: u32) {
        if policy.backoff_base.is_zero() {
            return;
        }
        let base = policy.backoff_base.saturating_mul(1 << attempt.min(16));
        let jitter = if policy.jitter_seed != 0 {
            let mut rng = StdRng::seed_from_u64(policy.jitter_seed ^ u64::from(attempt));
            let span = (base.as_micros() as u64).max(1);
            Duration::from_micros(rng.gen_range(0..span))
        } else {
            Duration::ZERO
        };
        std::thread::sleep(base + jitter);
    }

    /// Drop the session registration if this job is still its newest.
    fn release_session(&self, job: &PendingJob) {
        let mut sessions = lock_recover(&self.sessions);
        if sessions.get(&job.session).is_some_and(|a| a.seq == job.seq) {
            sessions.remove(&job.session);
        }
    }
}

/// Multi-session front-end over one [`ZqlEngine`]; see the
/// [module docs](self) for the supersession and admission policies.
pub struct SessionManager {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
    next_seq: AtomicU64,
}

impl SessionManager {
    pub fn new(engine: Arc<ZqlEngine>, config: SessionConfig) -> SessionManager {
        let inner = Arc::new(Inner {
            engine,
            queue: Mutex::new(Queue {
                heap: BinaryHeap::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
            sessions: Mutex::new(HashMap::new()),
            counters: Counters::default(),
            max_queued: config.max_queued,
            breaker: Breaker::default(),
            breaker_threshold: config.breaker_threshold,
            breaker_window: config.breaker_window,
        });
        let workers = (0..config.max_concurrent.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("zv-session-worker-{i}"))
                    .spawn(move || worker_loop(inner))
                    .expect("spawn session worker")
            })
            .collect();
        SessionManager {
            inner,
            workers,
            next_seq: AtomicU64::new(1),
        }
    }

    pub fn engine(&self) -> &Arc<ZqlEngine> {
        &self.inner.engine
    }

    /// Submit with default options (priority 0, no deadline).
    pub fn submit(&self, session: SessionId, query: ZqlQuery) -> Result<QueryHandle, SubmitError> {
        self.submit_with(session, query, SubmitOptions::default())
    }

    /// Parse the textual ZQL table format and submit it.
    pub fn submit_text(
        &self,
        session: SessionId,
        text: &str,
        opts: SubmitOptions,
    ) -> Result<QueryHandle, SubmitError> {
        let query = zql::parse_query(text).map_err(SubmitError::Parse)?;
        self.submit_with(session, query, opts)
    }

    /// Submit one query on `session`. Admission first (a full queue
    /// rejects without touching the session), then
    /// newest-interaction-wins: any older live query of the session is
    /// cancelled with [`CancelReason::Superseded`].
    pub fn submit_with(
        &self,
        session: SessionId,
        query: ZqlQuery,
        opts: SubmitOptions,
    ) -> Result<QueryHandle, SubmitError> {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let mut ctx = QueryCtx::new().with_priority(opts.priority);
        if let Some(d) = opts.deadline {
            ctx = ctx.with_deadline(d);
        }
        if let Some(b) = opts.row_budget {
            ctx = ctx.with_row_budget(b);
        }
        let shared = Arc::new(JobShared::new());
        let job = PendingJob {
            session,
            seq,
            priority: opts.priority,
            query,
            ctx: ctx.clone(),
            retry: opts.retry,
            shared: Arc::clone(&shared),
        };
        {
            let mut q = lock_recover(&self.inner.queue);
            if q.shutdown {
                return Err(SubmitError::ShuttingDown);
            }
            if q.heap.len() >= self.inner.max_queued {
                self.inner.counters.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::QueueFull {
                    capacity: self.inner.max_queued,
                });
            }
            self.inner
                .counters
                .submitted
                .fetch_add(1, Ordering::Relaxed);
            {
                let mut sessions = lock_recover(&self.inner.sessions);
                if let Some(prev) = sessions.insert(
                    session,
                    InFlight {
                        seq,
                        ctx: ctx.clone(),
                    },
                ) {
                    prev.ctx.cancel_with(CancelReason::Superseded);
                    self.inner
                        .counters
                        .superseded
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
            q.heap.push(job);
        }
        self.inner.cv.notify_one();
        Ok(QueryHandle {
            session,
            seq,
            ctx,
            shared,
        })
    }

    /// Cancel `session`'s live query, if any. Returns whether one was
    /// cancelled.
    pub fn cancel_session(&self, session: SessionId) -> bool {
        let sessions = lock_recover(&self.inner.sessions);
        match sessions.get(&session) {
            Some(active) => {
                active.ctx.cancel();
                true
            }
            None => false,
        }
    }

    pub fn stats(&self) -> SessionStats {
        let queued = lock_recover(&self.inner.queue).heap.len();
        let active_sessions = lock_recover(&self.inner.sessions).len();
        let c = &self.inner.counters;
        SessionStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            superseded: c.superseded.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            cancelled: c.cancelled.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            expired: c.expired.load(Ordering::Relaxed),
            retried: c.retried.load(Ordering::Relaxed),
            degraded: c.degraded.load(Ordering::Relaxed),
            queued,
            active_sessions,
        }
    }
}

impl Drop for SessionManager {
    fn drop(&mut self) {
        // Cancel whatever is still running so workers wind down at their
        // next cancellation point instead of finishing doomed scans.
        {
            let sessions = lock_recover(&self.inner.sessions);
            for active in sessions.values() {
                active.ctx.cancel();
            }
        }
        let drained: Vec<PendingJob> = {
            let mut q = lock_recover(&self.inner.queue);
            q.shutdown = true;
            std::mem::take(&mut q.heap).into_vec()
        };
        self.inner.cv.notify_all();
        for job in drained {
            job.ctx.cancel();
            self.inner
                .counters
                .cancelled
                .fetch_add(1, Ordering::Relaxed);
            self.inner.release_session(&job);
            job.shared
                .complete(Err(ZqlError::Storage(StorageError::Cancelled)));
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(inner: Arc<Inner>) {
    loop {
        let job = {
            let mut q = lock_recover(&inner.queue);
            loop {
                if let Some(job) = q.heap.pop() {
                    break job;
                }
                if q.shutdown {
                    return;
                }
                q = inner
                    .cv
                    .wait(q)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        inner.run_job(job);
    }
}

// The manager is shared across request-handling threads.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SessionManager>();
};
