//! # zv-server
//!
//! The multi-session front-end of the zenvisage reproduction: a
//! [`SessionManager`] that accepts ZQL queries from many concurrent
//! user sessions and runs them on a shared [`ZqlEngine`] under the
//! query-lifecycle subsystem (`zv_storage::lifecycle`), plus the
//! network layer ([`net`], [`proto`], [`wire`]) that exposes it over
//! TCP to remote clients.
//!
//! Interactive exploration produces a very particular workload: a user
//! dragging a slider or refining a sketch re-issues queries faster than
//! a bulk scan completes, so most in-flight work is *stale* the moment
//! it starts. The manager encodes the two policies that make this cheap:
//!
//! * **Newest-interaction-wins supersession.** Each session has at most
//!   one live query. Submitting a new query on a session cancels the
//!   previous one's [`QueryCtx`] with
//!   [`CancelReason::Superseded`]; the running scan observes the flag
//!   at its next cancellation point (between morsel claims / chunks),
//!   abandons its remaining work, and returns
//!   `StorageError::Cancelled` — its partial result never touches the
//!   result cache.
//! * **Admission control.** At most `max_concurrent` queries execute at
//!   once (a fixed worker pool); overflow is queued in a priority
//!   queue (higher [`QueryCtx::priority`] first, FIFO within a
//!   priority) bounded by `max_queued` — beyond that, submissions are
//!   rejected outright ([`SubmitError::QueueFull`]) rather than
//!   building unbounded backlog.
//!
//! Every submission is accounted for exactly once in
//! [`SessionStats`]: an admitted query ends `completed`, `cancelled`,
//! or `failed`; a rejected one counts `rejected` and is never admitted.
//! `superseded` counts displacement events (a superseded query usually
//! — but not necessarily, if it wins the race — ends `cancelled`).
//!
//! ## Fault handling
//!
//! The manager is also the retry/degrade layer above the engine's
//! panic containment (`zv_storage::exec` module docs, *The failure &
//! recovery pipeline*):
//!
//! * **Retries.** A [`RetryPolicy`] on [`SubmitOptions`] re-runs
//!   *transient* failures ([`StorageError::is_transient`]: a contained
//!   worker panic or resource exhaustion) up to `max_retries` times,
//!   with exponential backoff and deterministic per-job jitter. A
//!   backoff never sleeps on a pool worker: the job is **requeued with
//!   a not-before timestamp** and its slot immediately serves other
//!   sessions; a worker picks the job back up once the backoff elapses.
//!   Each attempt advances the ctx's fault epoch so deterministic fault
//!   injection re-rolls its decisions.
//! * **Degradation.** When parallel retries are exhausted, the query is
//!   re-run once on the serial path (`QueryCtx::force_serial`) — no
//!   fan-out, no injection points — before the error surfaces.
//! * **Breaker.** `breaker_threshold` consecutive retry-exhausted
//!   queries open a breaker that routes subsequent queries serial.
//!   Once at least half of `breaker_window` serial queries have been
//!   routed, the breaker **half-opens**: one trial query runs parallel
//!   as a probe — success closes the breaker early (the pool healed),
//!   failure re-arms a full serial window. The breaker never silently
//!   re-closes without probe evidence; its live state is surfaced as
//!   [`SessionStats::breaker`].
//!
//! All of it is observable: `expired` / `retried` / `degraded` /
//! `breaker` in [`SessionStats`], mirrored onto the engine's
//! `ExecStats`.

pub mod net;
pub mod proto;
pub mod wire;

use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::{BinaryHeap, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use zql::{ZqlEngine, ZqlError, ZqlOutput, ZqlQuery};
use zv_storage::fault::{lock_recover, panic_payload_string};
use zv_storage::{CancelReason, QueryCtx, StorageError};

pub use net::{NetServer, NetServerConfig, NetStats, NetStatsSnapshot};
pub use proto::{Request, Response, RetryWire, PROTO_VERSION};
pub use wire::NetClient;

/// Identifies one user session (browser tab, notebook cell, API key…).
pub type SessionId = u64;

/// Tuning for a [`SessionManager`].
#[derive(Clone, Copy, Debug)]
pub struct SessionConfig {
    /// Queries executing at once — the worker-pool size (min 1).
    pub max_concurrent: usize,
    /// Bound on the overflow queue; submissions beyond it are rejected.
    pub max_queued: usize,
    /// Consecutive retry-exhausted queries before the breaker opens and
    /// routes subsequent queries serial. `0` disables the breaker.
    pub breaker_threshold: u32,
    /// Size of the serial window an open breaker serves. Once half of
    /// it has been routed serial, one trial query probes the parallel
    /// path (half-open): success closes the breaker, failure re-arms a
    /// full window.
    pub breaker_window: u32,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            max_concurrent: 4,
            max_queued: 256,
            breaker_threshold: 3,
            breaker_window: 16,
        }
    }
}

/// How the manager reacts to *transient* failures
/// ([`StorageError::is_transient`]) of one query. The default retries
/// nothing but still degrades to a serial re-run — the cheapest "keep
/// serving" policy.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Re-run a transient failure up to this many times (same mode).
    pub max_retries: u32,
    /// Backoff before retry `k` is `backoff_base * 2^k` plus jitter.
    /// `Duration::ZERO` retries immediately (what tests want). A
    /// non-zero backoff requeues the job with a not-before timestamp —
    /// the pool slot serves other sessions while the backoff elapses.
    pub backoff_base: Duration,
    /// Seed for deterministic backoff jitter; `0` means no jitter.
    /// Jitter is uniform in `[0, backoff_base * 2^k)`, derived from
    /// `(seed, job seq, k)` — concurrently-retrying queries get
    /// *decorrelated* delays (no synchronized retry herd), while any
    /// single job's schedule replays exactly.
    pub jitter_seed: u64,
    /// After parallel retries are exhausted, re-run once on the serial
    /// path (no fan-out, no injection points) before failing.
    pub serial_fallback: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 0,
            backoff_base: Duration::ZERO,
            jitter_seed: 0,
            serial_fallback: true,
        }
    }
}

/// Per-submission options.
#[derive(Clone, Copy, Debug, Default)]
pub struct SubmitOptions {
    /// Scheduling priority: higher pops first from the overflow queue.
    pub priority: i32,
    /// Cancel automatically once this much wall-clock has elapsed.
    pub deadline: Option<Duration>,
    /// Cancel automatically once the scan has visited this many rows.
    pub row_budget: Option<u64>,
    /// Retry/degrade policy for transient failures.
    pub retry: RetryPolicy,
}

/// Why a submission was not admitted.
#[derive(Debug)]
pub enum SubmitError {
    /// The overflow queue is at `max_queued`.
    QueueFull { capacity: usize },
    /// The manager is shutting down.
    ShuttingDown,
    /// `submit_text` could not parse the query.
    Parse(zql::ParseError),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "admission queue full ({capacity} queued)")
            }
            SubmitError::ShuttingDown => write!(f, "session manager is shutting down"),
            SubmitError::Parse(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Live state of the degradation breaker ([`SessionStats::breaker`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerView {
    /// Parallel execution; `consecutive` counts back-to-back
    /// retry-exhausted queries toward the threshold.
    Closed { consecutive: u32 },
    /// Serial routing. `serial_left` is the remaining window;
    /// `probing` marks a half-open trial query currently running in
    /// parallel (its success closes the breaker, its failure re-arms a
    /// full window — the breaker never re-closes without a probe).
    Open { serial_left: u32, probing: bool },
}

impl Default for BreakerView {
    fn default() -> Self {
        BreakerView::Closed { consecutive: 0 }
    }
}

impl BreakerView {
    /// True when queries are being routed serial.
    pub fn is_open(&self) -> bool {
        matches!(self, BreakerView::Open { .. })
    }
}

/// Point-in-time counters ([`SessionManager::stats`]). Every *admitted*
/// submission ends in exactly one of `completed` / `cancelled` /
/// `failed`; `rejected` submissions were never admitted; `superseded`
/// counts newest-interaction-wins displacements.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Submissions admitted (queued or started).
    pub submitted: u64,
    /// Older same-session queries displaced by a newer submission.
    pub superseded: u64,
    /// Admitted queries that finished with a result.
    pub completed: u64,
    /// Admitted queries that ended `StorageError::Cancelled` (superseded,
    /// explicit cancel, deadline, row budget, or a lost connection) —
    /// whether they were still queued or already mid-scan.
    pub cancelled: u64,
    /// Admitted queries that failed with a non-cancellation error.
    pub failed: u64,
    /// Submissions refused by admission control.
    pub rejected: u64,
    /// Queries whose deadline had already expired when a worker popped
    /// them — skipped without waking the engine. A subset of
    /// `cancelled` (they still end `cancelled`), not a new outcome.
    pub expired: u64,
    /// Queries that were re-attempted at least once after a transient
    /// failure (counted once per query, however many attempts).
    pub retried: u64,
    /// Queries degraded to the serial path — by serial fallback after
    /// exhausted retries, or routed serial by an open breaker.
    pub degraded: u64,
    /// Queries currently waiting in the overflow queue (including
    /// requeued retries waiting out a backoff).
    pub queued: usize,
    /// Sessions with a live (queued or running) query.
    pub active_sessions: usize,
    /// Live breaker state (closed / open / half-open probing).
    pub breaker: BreakerView,
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    superseded: AtomicU64,
    completed: AtomicU64,
    cancelled: AtomicU64,
    failed: AtomicU64,
    rejected: AtomicU64,
    expired: AtomicU64,
    retried: AtomicU64,
    degraded: AtomicU64,
}

/// How the breaker routes one arriving query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Route {
    /// Breaker closed (or disabled): normal parallel execution.
    Parallel,
    /// Breaker open: run serial from the start (no parallel attempt).
    Serial,
    /// Half-open trial: run parallel; the outcome decides the breaker.
    Probe,
}

/// Degradation breaker (see [`BreakerView`] for the observable states).
/// One low-contention mutex: route/trip decisions happen once per
/// query, not per morsel.
#[derive(Default)]
struct Breaker {
    state: Mutex<BreakerView>,
}

impl Breaker {
    /// Route one arriving query. `threshold == 0` disables the breaker.
    fn route(&self, threshold: u32, window: u32) -> Route {
        if threshold == 0 {
            return Route::Parallel;
        }
        let mut s = lock_recover(&self.state);
        match *s {
            BreakerView::Closed { .. } => Route::Parallel,
            BreakerView::Open {
                serial_left,
                probing,
            } => {
                if !probing && serial_left * 2 <= window {
                    // Half of the window served serial: half-open — send
                    // one trial query down the parallel path.
                    *s = BreakerView::Open {
                        serial_left,
                        probing: true,
                    };
                    Route::Probe
                } else {
                    *s = BreakerView::Open {
                        serial_left: serial_left.saturating_sub(1),
                        probing,
                    };
                    Route::Serial
                }
            }
        }
    }

    /// A (non-probe) query exhausted its parallel retries.
    fn record_trip(&self, threshold: u32, window: u32) {
        if threshold == 0 {
            return;
        }
        let mut s = lock_recover(&self.state);
        *s = match *s {
            BreakerView::Closed { consecutive } if consecutive + 1 >= threshold => {
                BreakerView::Open {
                    serial_left: window,
                    probing: false,
                }
            }
            BreakerView::Closed { consecutive } => BreakerView::Closed {
                consecutive: consecutive + 1,
            },
            // A parallel query admitted before the breaker opened can
            // trip while it is already open: re-arm the full window.
            BreakerView::Open { probing, .. } => BreakerView::Open {
                serial_left: window,
                probing,
            },
        };
    }

    /// A non-probe query succeeded on the parallel path.
    fn record_parallel_success(&self) {
        let mut s = lock_recover(&self.state);
        if let BreakerView::Closed { .. } = *s {
            *s = BreakerView::Closed { consecutive: 0 };
        }
        // While open, only the designated probe may close the breaker —
        // a straggler admitted pre-open proves nothing about the pool.
    }

    /// The half-open probe resolved. `Some(true)`: the parallel path
    /// served — close the breaker (early, discarding any remaining
    /// serial window). `Some(false)`: still broken — re-arm a full
    /// window. `None` (probe cancelled / inconclusive): free the probe
    /// slot so a later query can try.
    fn probe_result(&self, healthy: Option<bool>, window: u32) {
        let mut s = lock_recover(&self.state);
        if let BreakerView::Open { serial_left, .. } = *s {
            *s = match healthy {
                Some(true) => BreakerView::Closed { consecutive: 0 },
                Some(false) => BreakerView::Open {
                    serial_left: window,
                    probing: false,
                },
                None => BreakerView::Open {
                    serial_left,
                    probing: false,
                },
            };
        }
    }

    fn view(&self) -> BreakerView {
        *lock_recover(&self.state)
    }
}

/// Deterministic backoff before retry `attempt` of job `seq`:
/// `backoff_base * 2^attempt` plus jitter uniform in `[0, that)`.
/// Jitter is seeded from `(jitter_seed, seq, attempt)`: two jobs
/// retrying concurrently sleep *different* durations (mixing only
/// `(seed, attempt)` would synchronize the whole retry herd onto one
/// schedule — the opposite of jitter's purpose), while one job's
/// schedule is a pure function of its seq and replays exactly.
fn backoff_duration(policy: &RetryPolicy, seq: u64, attempt: u32) -> Duration {
    if policy.backoff_base.is_zero() {
        return Duration::ZERO;
    }
    let base = policy.backoff_base.saturating_mul(1 << attempt.min(16));
    let jitter = if policy.jitter_seed != 0 {
        let mixed = policy.jitter_seed
            ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ u64::from(attempt).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
        let mut rng = StdRng::seed_from_u64(mixed);
        let span = (base.as_micros() as u64).max(1);
        Duration::from_micros(rng.gen_range(0..span))
    } else {
        Duration::ZERO
    };
    base + jitter
}

/// Result slot a worker fills and a [`QueryHandle`] waits on.
struct JobShared {
    done: Mutex<Option<(Result<ZqlOutput, ZqlError>, Instant)>>,
    cv: Condvar,
}

impl JobShared {
    fn new() -> JobShared {
        JobShared {
            done: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn complete(&self, result: Result<ZqlOutput, ZqlError>) {
        let mut done = lock_recover(&self.done);
        debug_assert!(done.is_none(), "a job completes exactly once");
        *done = Some((result, Instant::now()));
        self.cv.notify_all();
    }
}

/// Handle to one submitted query: its lifecycle ctx plus the result
/// slot. Dropping the handle does not cancel the query.
pub struct QueryHandle {
    session: SessionId,
    seq: u64,
    ctx: QueryCtx,
    shared: Arc<JobShared>,
}

impl QueryHandle {
    pub fn session(&self) -> SessionId {
        self.session
    }

    /// Monotone submission ticket (older = smaller).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The query's lifecycle ctx (cancel it, read progress counters).
    pub fn ctx(&self) -> &QueryCtx {
        &self.ctx
    }

    /// Explicitly cancel this query.
    pub fn cancel(&self) {
        self.ctx.cancel();
    }

    pub fn is_finished(&self) -> bool {
        lock_recover(&self.shared.done).is_some()
    }

    /// Block until the query finishes; returns its result (a cancelled
    /// query yields `ZqlError::Storage(StorageError::Cancelled)`) and
    /// the instant it completed.
    pub fn wait_timed(self) -> (Result<ZqlOutput, ZqlError>, Instant) {
        let mut done = lock_recover(&self.shared.done);
        loop {
            match done.take() {
                Some(out) => return out,
                None => {
                    done = self
                        .shared
                        .cv
                        .wait(done)
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                }
            }
        }
    }

    /// Block until the query finishes; returns its result.
    pub fn wait(self) -> Result<ZqlOutput, ZqlError> {
        self.wait_timed().0
    }
}

/// One queued unit of work. Heap order: priority desc, then seq asc
/// (FIFO within a priority band). Retry state rides along so a
/// requeued backoff resumes exactly where the last attempt stopped.
struct PendingJob {
    session: SessionId,
    seq: u64,
    priority: i32,
    query: ZqlQuery,
    ctx: QueryCtx,
    retry: RetryPolicy,
    shared: Arc<JobShared>,
    /// Parallel attempts already burned (0 on a fresh submission).
    attempt: u32,
    /// Whether the `retried` counters were already bumped for this job.
    retried: bool,
    /// Breaker routing happened (first attempt only).
    routed: bool,
    /// This job holds the breaker's half-open probe slot (unresolved).
    probe: bool,
    /// Earliest instant a worker may pick this job up (requeued
    /// backoff); `None` = immediately.
    not_before: Option<Instant>,
}

impl PartialEq for PendingJob {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for PendingJob {}
impl PartialOrd for PendingJob {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingJob {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.priority
            .cmp(&other.priority)
            .then(other.seq.cmp(&self.seq))
    }
}

struct Queue {
    /// Jobs ready to run now.
    heap: BinaryHeap<PendingJob>,
    /// Requeued retries waiting out a backoff (`not_before` in the
    /// future). Workers promote due entries into the heap; a handful of
    /// entries at most, so a Vec scan beats a second ordered structure.
    delayed: Vec<PendingJob>,
    shutdown: bool,
}

/// The newest query of one session (the only one not yet superseded).
struct InFlight {
    seq: u64,
    ctx: QueryCtx,
}

/// One attempt-cycle outcome: the job finished, or it must go back to
/// the queue and wait out `Duration` (freeing this worker's slot).
enum Step {
    Done(Result<ZqlOutput, ZqlError>),
    Requeue(Duration),
}

struct Inner {
    engine: Arc<ZqlEngine>,
    queue: Mutex<Queue>,
    cv: Condvar,
    sessions: Mutex<HashMap<SessionId, InFlight>>,
    counters: Counters,
    max_queued: usize,
    breaker: Breaker,
    breaker_threshold: u32,
    breaker_window: u32,
}

impl Inner {
    fn run_job(&self, mut job: PendingJob) {
        // A job superseded (or cancelled) while still queued is skipped
        // without touching the engine — the cheapest cancel of all. A
        // deadline that expired while the job sat in the queue is the
        // same skip, tracked separately (`expired`).
        if job.ctx.is_cancelled() {
            if job.ctx.cancel_reason() == Some(CancelReason::Deadline) {
                self.counters.expired.fetch_add(1, Ordering::Relaxed);
            }
            self.finish(job, Err(ZqlError::Storage(StorageError::Cancelled)));
            return;
        }
        match self.execute_with_policy(&mut job) {
            Step::Done(result) => self.finish(job, result),
            Step::Requeue(delay) => self.requeue(job, delay),
        }
    }

    /// Final bookkeeping: resolve an outstanding probe, count the
    /// outcome, release the session slot, wake the waiter.
    fn finish(&self, job: PendingJob, result: Result<ZqlOutput, ZqlError>) {
        if job.probe {
            // Probe failures resolve inside the retry loop (they re-arm
            // the window); reaching here unresolved means success (the
            // parallel path served) or an inconclusive end (cancelled,
            // non-transient error) that just frees the probe slot.
            let healthy = match &result {
                Ok(_) if !job.ctx.serial_only() => Some(true),
                _ => None,
            };
            self.breaker.probe_result(healthy, self.breaker_window);
        } else if result.is_ok() && !job.ctx.serial_only() {
            self.breaker.record_parallel_success();
        }
        match &result {
            Ok(_) => self.counters.completed.fetch_add(1, Ordering::Relaxed),
            Err(ZqlError::Storage(StorageError::Cancelled)) => {
                self.counters.cancelled.fetch_add(1, Ordering::Relaxed)
            }
            Err(_) => self.counters.failed.fetch_add(1, Ordering::Relaxed),
        };
        self.release_session(&job);
        job.shared.complete(result);
    }

    /// Put a retrying job back on the queue with a not-before stamp.
    /// The calling worker's slot is free the moment this returns — a
    /// backoff never pins a slot (`std::thread::sleep` here used to
    /// starve the pool under a few flapping queries).
    fn requeue(&self, mut job: PendingJob, delay: Duration) {
        job.not_before = Some(Instant::now() + delay);
        {
            let mut q = lock_recover(&self.queue);
            if !q.shutdown {
                q.delayed.push(job);
                drop(q);
                // A worker stuck in an untimed wait must re-arm with a
                // timeout for the new earliest due instant.
                self.cv.notify_one();
                return;
            }
        }
        // Shutdown raced the requeue: finish the job the way the drain
        // path finishes still-queued jobs.
        job.ctx.cancel();
        self.finish(job, Err(ZqlError::Storage(StorageError::Cancelled)));
    }

    /// One engine attempt with panic containment: a panic that somehow
    /// escapes the engine's own worker containment must not kill this
    /// pool worker (the manager would deadlock), so it converts to the
    /// same transient `WorkerPanicked` error.
    fn attempt(&self, job: &PendingJob) -> Result<ZqlOutput, ZqlError> {
        catch_unwind(AssertUnwindSafe(|| {
            self.engine.execute_ctx(&job.query, &job.ctx)
        }))
        .unwrap_or_else(|payload| {
            self.engine.database().stats().record_worker_panic();
            Err(ZqlError::Storage(StorageError::WorkerPanicked {
                payload: panic_payload_string(payload.as_ref()),
                morsel: 0,
            }))
        })
    }

    /// Run one attempt-cycle of an admitted job under its
    /// [`RetryPolicy`]: breaker routing on the first attempt, bounded
    /// same-mode retries for transient failures (zero backoff loops in
    /// place; a real backoff returns [`Step::Requeue`] so the slot is
    /// freed), then one serial fallback. Terminates because the serial
    /// fallback fires at most once (`serial_only` latches) and retries
    /// are bounded by `max_retries`.
    fn execute_with_policy(&self, job: &mut PendingJob) -> Step {
        let policy = job.retry;
        let db_stats = self.engine.database().stats();
        if !job.routed {
            job.routed = true;
            if !job.ctx.serial_only() {
                match self
                    .breaker
                    .route(self.breaker_threshold, self.breaker_window)
                {
                    Route::Parallel => {}
                    Route::Probe => job.probe = true,
                    Route::Serial => {
                        job.ctx.force_serial();
                        self.counters.degraded.fetch_add(1, Ordering::Relaxed);
                        db_stats.record_query_degraded();
                    }
                }
            }
        }
        loop {
            let result = self.attempt(job);
            let transient = matches!(&result, Err(ZqlError::Storage(e)) if e.is_transient());
            if !transient || job.ctx.is_cancelled() {
                return Step::Done(result);
            }
            // Transient failure: same-mode retries first…
            if job.attempt < policy.max_retries {
                if !job.retried {
                    job.retried = true;
                    self.counters.retried.fetch_add(1, Ordering::Relaxed);
                    db_stats.record_query_retried();
                }
                let delay = backoff_duration(&policy, job.seq, job.attempt);
                job.attempt += 1;
                // Re-roll injected-fault decisions for the next attempt.
                job.ctx.advance_fault_epoch();
                if delay.is_zero() {
                    continue;
                }
                return Step::Requeue(delay);
            }
            // …then degrade: one serial re-run before surfacing.
            if !job.ctx.serial_only() {
                if job.probe {
                    // The half-open probe failed: re-arm a full window.
                    job.probe = false;
                    self.breaker.probe_result(Some(false), self.breaker_window);
                } else {
                    self.breaker
                        .record_trip(self.breaker_threshold, self.breaker_window);
                }
                if policy.serial_fallback {
                    job.ctx.force_serial();
                    job.ctx.advance_fault_epoch();
                    self.counters.degraded.fetch_add(1, Ordering::Relaxed);
                    db_stats.record_query_degraded();
                    continue;
                }
            }
            return Step::Done(result);
        }
    }

    /// Drop the session registration if this job is still its newest.
    fn release_session(&self, job: &PendingJob) {
        let mut sessions = lock_recover(&self.sessions);
        if sessions.get(&job.session).is_some_and(|a| a.seq == job.seq) {
            sessions.remove(&job.session);
        }
    }
}

/// Multi-session front-end over one [`ZqlEngine`]; see the
/// [module docs](self) for the supersession and admission policies.
pub struct SessionManager {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
    next_seq: AtomicU64,
}

impl SessionManager {
    pub fn new(engine: Arc<ZqlEngine>, config: SessionConfig) -> SessionManager {
        let inner = Arc::new(Inner {
            engine,
            queue: Mutex::new(Queue {
                heap: BinaryHeap::new(),
                delayed: Vec::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
            sessions: Mutex::new(HashMap::new()),
            counters: Counters::default(),
            max_queued: config.max_queued,
            breaker: Breaker::default(),
            breaker_threshold: config.breaker_threshold,
            breaker_window: config.breaker_window,
        });
        let workers = (0..config.max_concurrent.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("zv-session-worker-{i}"))
                    .spawn(move || worker_loop(inner))
                    .expect("spawn session worker")
            })
            .collect();
        SessionManager {
            inner,
            workers,
            next_seq: AtomicU64::new(1),
        }
    }

    pub fn engine(&self) -> &Arc<ZqlEngine> {
        &self.inner.engine
    }

    /// Submit with default options (priority 0, no deadline).
    pub fn submit(&self, session: SessionId, query: ZqlQuery) -> Result<QueryHandle, SubmitError> {
        self.submit_with(session, query, SubmitOptions::default())
    }

    /// Parse the textual ZQL table format and submit it.
    pub fn submit_text(
        &self,
        session: SessionId,
        text: &str,
        opts: SubmitOptions,
    ) -> Result<QueryHandle, SubmitError> {
        let query = zql::parse_query(text).map_err(SubmitError::Parse)?;
        self.submit_with(session, query, opts)
    }

    /// Submit one query on `session`. Admission first (a full queue
    /// rejects without touching the session), then
    /// newest-interaction-wins: any older live query of the session is
    /// cancelled with [`CancelReason::Superseded`].
    pub fn submit_with(
        &self,
        session: SessionId,
        query: ZqlQuery,
        opts: SubmitOptions,
    ) -> Result<QueryHandle, SubmitError> {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let mut ctx = QueryCtx::new().with_priority(opts.priority);
        if let Some(d) = opts.deadline {
            ctx = ctx.with_deadline(d);
        }
        if let Some(b) = opts.row_budget {
            ctx = ctx.with_row_budget(b);
        }
        let shared = Arc::new(JobShared::new());
        let job = PendingJob {
            session,
            seq,
            priority: opts.priority,
            query,
            ctx: ctx.clone(),
            retry: opts.retry,
            shared: Arc::clone(&shared),
            attempt: 0,
            retried: false,
            routed: false,
            probe: false,
            not_before: None,
        };
        {
            let mut q = lock_recover(&self.inner.queue);
            if q.shutdown {
                return Err(SubmitError::ShuttingDown);
            }
            if q.heap.len() + q.delayed.len() >= self.inner.max_queued {
                self.inner.counters.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::QueueFull {
                    capacity: self.inner.max_queued,
                });
            }
            self.inner
                .counters
                .submitted
                .fetch_add(1, Ordering::Relaxed);
            {
                let mut sessions = lock_recover(&self.inner.sessions);
                if let Some(prev) = sessions.insert(
                    session,
                    InFlight {
                        seq,
                        ctx: ctx.clone(),
                    },
                ) {
                    prev.ctx.cancel_with(CancelReason::Superseded);
                    self.inner
                        .counters
                        .superseded
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
            q.heap.push(job);
        }
        self.inner.cv.notify_one();
        Ok(QueryHandle {
            session,
            seq,
            ctx,
            shared,
        })
    }

    /// Cancel `session`'s live query, if any. Returns whether one was
    /// cancelled.
    pub fn cancel_session(&self, session: SessionId) -> bool {
        self.cancel_session_with(session, CancelReason::Explicit)
    }

    /// [`SessionManager::cancel_session`] with an explicit
    /// [`CancelReason`] — the network layer attributes
    /// [`CancelReason::ConnectionLost`] when a client socket dies.
    pub fn cancel_session_with(&self, session: SessionId, reason: CancelReason) -> bool {
        let sessions = lock_recover(&self.inner.sessions);
        match sessions.get(&session) {
            Some(active) => {
                active.ctx.cancel_with(reason);
                true
            }
            None => false,
        }
    }

    pub fn stats(&self) -> SessionStats {
        let queued = {
            let q = lock_recover(&self.inner.queue);
            q.heap.len() + q.delayed.len()
        };
        let active_sessions = lock_recover(&self.inner.sessions).len();
        let c = &self.inner.counters;
        SessionStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            superseded: c.superseded.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            cancelled: c.cancelled.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            expired: c.expired.load(Ordering::Relaxed),
            retried: c.retried.load(Ordering::Relaxed),
            degraded: c.degraded.load(Ordering::Relaxed),
            queued,
            active_sessions,
            breaker: self.inner.breaker.view(),
        }
    }
}

impl Drop for SessionManager {
    fn drop(&mut self) {
        // Cancel whatever is still running so workers wind down at their
        // next cancellation point instead of finishing doomed scans.
        {
            let sessions = lock_recover(&self.inner.sessions);
            for active in sessions.values() {
                active.ctx.cancel();
            }
        }
        let drained: Vec<PendingJob> = {
            let mut q = lock_recover(&self.inner.queue);
            q.shutdown = true;
            let mut jobs: Vec<PendingJob> = std::mem::take(&mut q.heap).into_vec();
            jobs.append(&mut q.delayed);
            jobs
        };
        self.inner.cv.notify_all();
        for job in drained {
            job.ctx.cancel();
            self.inner
                .counters
                .cancelled
                .fetch_add(1, Ordering::Relaxed);
            self.inner.release_session(&job);
            job.shared
                .complete(Err(ZqlError::Storage(StorageError::Cancelled)));
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(inner: Arc<Inner>) {
    loop {
        let job = {
            let mut q = lock_recover(&inner.queue);
            loop {
                // Promote requeued retries whose backoff has elapsed.
                let now = Instant::now();
                let mut i = 0;
                while i < q.delayed.len() {
                    if q.delayed[i].not_before.is_none_or(|t| t <= now) {
                        let due = q.delayed.swap_remove(i);
                        q.heap.push(due);
                    } else {
                        i += 1;
                    }
                }
                if let Some(job) = q.heap.pop() {
                    break job;
                }
                if q.shutdown {
                    return;
                }
                let next_due = q.delayed.iter().filter_map(|j| j.not_before).min();
                q = match next_due {
                    // A backoff is pending: sleep at most until it is
                    // due (on this worker's *idle* time — busy workers
                    // never wait here).
                    Some(due) => {
                        inner
                            .cv
                            .wait_timeout(q, due.saturating_duration_since(now))
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .0
                    }
                    None => inner
                        .cv
                        .wait(q)
                        .unwrap_or_else(std::sync::PoisonError::into_inner),
                };
            }
        };
        inner.run_job(job);
    }
}

// The manager is shared across request-handling threads.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SessionManager>();
};

#[cfg(test)]
mod tests {
    use super::*;

    const MS: Duration = Duration::from_millis(1);

    fn policy(seed: u64) -> RetryPolicy {
        RetryPolicy {
            max_retries: 3,
            backoff_base: MS,
            jitter_seed: seed,
            serial_fallback: true,
        }
    }

    #[test]
    fn backoff_grows_exponentially_and_replays_per_job() {
        let p = policy(42);
        let d0 = backoff_duration(&p, 7, 0);
        let d1 = backoff_duration(&p, 7, 1);
        let d2 = backoff_duration(&p, 7, 2);
        assert!(d0 >= MS && d0 < 2 * MS, "base + jitter < base: {d0:?}");
        assert!(d1 >= 2 * MS && d1 < 4 * MS);
        assert!(d2 >= 4 * MS && d2 < 8 * MS);
        // Same (seed, seq, attempt) → same duration, exactly.
        assert_eq!(d0, backoff_duration(&p, 7, 0));
        assert_eq!(d1, backoff_duration(&p, 7, 1));
    }

    #[test]
    fn concurrent_jobs_get_decorrelated_jitter() {
        // The PR-6 defect: jitter seeded from (seed, attempt) only made
        // every concurrently-retrying job sleep the *identical*
        // duration — a synchronized herd. Mixing the job seq in must
        // spread them: across many seqs at the same attempt, the
        // durations cannot all collapse onto one value.
        let p = policy(42);
        let durations: Vec<Duration> = (0..64).map(|seq| backoff_duration(&p, seq, 0)).collect();
        let distinct = {
            let mut d = durations.clone();
            d.sort();
            d.dedup();
            d.len()
        };
        assert!(
            distinct > 32,
            "64 concurrent jobs share only {distinct} distinct backoffs — herd is back"
        );
        // No jitter seed: pure exponential base, identical by design.
        let bare = RetryPolicy {
            jitter_seed: 0,
            ..p
        };
        assert!((0..8).all(|seq| backoff_duration(&bare, seq, 0) == MS));
    }

    #[test]
    fn breaker_opens_after_threshold_and_probes_half_open() {
        let b = Breaker::default();
        let (t, w) = (2, 4);
        assert_eq!(b.route(t, w), Route::Parallel);
        b.record_trip(t, w);
        assert_eq!(b.view(), BreakerView::Closed { consecutive: 1 });
        assert_eq!(b.route(t, w), Route::Parallel, "one trip: still closed");
        b.record_trip(t, w);
        assert!(b.view().is_open(), "threshold trips open the breaker");
        // First half of the window routes serial…
        assert_eq!(b.route(t, w), Route::Serial);
        assert_eq!(b.route(t, w), Route::Serial);
        // …then one trial query probes the parallel path.
        assert_eq!(b.route(t, w), Route::Probe);
        assert_eq!(
            b.view(),
            BreakerView::Open {
                serial_left: 2,
                probing: true
            }
        );
        // While the probe is out, everything else stays serial — even
        // past the window (never silently re-close).
        for _ in 0..10 {
            assert_eq!(b.route(t, w), Route::Serial);
        }
        assert_eq!(
            b.view(),
            BreakerView::Open {
                serial_left: 0,
                probing: true
            }
        );
        // Probe succeeds: breaker closes early, parallel resumes.
        b.probe_result(Some(true), w);
        assert_eq!(b.view(), BreakerView::Closed { consecutive: 0 });
        assert_eq!(b.route(t, w), Route::Parallel);
    }

    #[test]
    fn failed_probe_rearms_a_full_window() {
        let b = Breaker::default();
        let (t, w) = (1, 2);
        b.record_trip(t, w);
        assert_eq!(b.route(t, w), Route::Serial); // 2 → 1
        assert_eq!(b.route(t, w), Route::Probe); // 1*2 <= 2
        b.probe_result(Some(false), w);
        assert_eq!(
            b.view(),
            BreakerView::Open {
                serial_left: 2,
                probing: false
            },
            "a failing probe re-arms the full serial window"
        );
        // Inconclusive probe (cancelled): slot freed, window unchanged.
        assert_eq!(b.route(t, w), Route::Serial); // 2 → 1
        assert_eq!(b.route(t, w), Route::Probe);
        b.probe_result(None, w);
        assert_eq!(
            b.view(),
            BreakerView::Open {
                serial_left: 1,
                probing: false
            }
        );
        // The freed slot lets the next query probe again.
        assert_eq!(b.route(t, w), Route::Probe);
    }

    #[test]
    fn disabled_breaker_never_opens() {
        let b = Breaker::default();
        for _ in 0..10 {
            b.record_trip(0, 0);
            assert_eq!(b.route(0, 0), Route::Parallel);
        }
        assert_eq!(b.view(), BreakerView::Closed { consecutive: 0 });
    }
}
