//! # zv-server
//!
//! The multi-session front-end of the zenvisage reproduction: a
//! [`SessionManager`] that accepts ZQL queries from many concurrent
//! user sessions and runs them on a shared [`ZqlEngine`] under the
//! query-lifecycle subsystem (`zv_storage::lifecycle`).
//!
//! Interactive exploration produces a very particular workload: a user
//! dragging a slider or refining a sketch re-issues queries faster than
//! a bulk scan completes, so most in-flight work is *stale* the moment
//! it starts. The manager encodes the two policies that make this cheap:
//!
//! * **Newest-interaction-wins supersession.** Each session has at most
//!   one live query. Submitting a new query on a session cancels the
//!   previous one's [`QueryCtx`] with
//!   [`CancelReason::Superseded`]; the running scan observes the flag
//!   at its next cancellation point (between morsel claims / chunks),
//!   abandons its remaining work, and returns
//!   `StorageError::Cancelled` — its partial result never touches the
//!   result cache.
//! * **Admission control.** At most `max_concurrent` queries execute at
//!   once (a fixed worker pool); overflow is queued in a priority
//!   queue (higher [`QueryCtx::priority`] first, FIFO within a
//!   priority) bounded by `max_queued` — beyond that, submissions are
//!   rejected outright ([`SubmitError::QueueFull`]) rather than
//!   building unbounded backlog.
//!
//! Every submission is accounted for exactly once in
//! [`SessionStats`]: an admitted query ends `completed`, `cancelled`,
//! or `failed`; a rejected one counts `rejected` and is never admitted.
//! `superseded` counts displacement events (a superseded query usually
//! — but not necessarily, if it wins the race — ends `cancelled`).

use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use zql::{ZqlEngine, ZqlError, ZqlOutput, ZqlQuery};
use zv_storage::{CancelReason, QueryCtx, StorageError};

/// Identifies one user session (browser tab, notebook cell, API key…).
pub type SessionId = u64;

/// Tuning for a [`SessionManager`].
#[derive(Clone, Copy, Debug)]
pub struct SessionConfig {
    /// Queries executing at once — the worker-pool size (min 1).
    pub max_concurrent: usize,
    /// Bound on the overflow queue; submissions beyond it are rejected.
    pub max_queued: usize,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            max_concurrent: 4,
            max_queued: 256,
        }
    }
}

/// Per-submission options.
#[derive(Clone, Copy, Debug, Default)]
pub struct SubmitOptions {
    /// Scheduling priority: higher pops first from the overflow queue.
    pub priority: i32,
    /// Cancel automatically once this much wall-clock has elapsed.
    pub deadline: Option<Duration>,
    /// Cancel automatically once the scan has visited this many rows.
    pub row_budget: Option<u64>,
}

/// Why a submission was not admitted.
#[derive(Debug)]
pub enum SubmitError {
    /// The overflow queue is at `max_queued`.
    QueueFull { capacity: usize },
    /// The manager is shutting down.
    ShuttingDown,
    /// `submit_text` could not parse the query.
    Parse(zql::ParseError),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "admission queue full ({capacity} queued)")
            }
            SubmitError::ShuttingDown => write!(f, "session manager is shutting down"),
            SubmitError::Parse(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Point-in-time counters ([`SessionManager::stats`]). Every *admitted*
/// submission ends in exactly one of `completed` / `cancelled` /
/// `failed`; `rejected` submissions were never admitted; `superseded`
/// counts newest-interaction-wins displacements.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Submissions admitted (queued or started).
    pub submitted: u64,
    /// Older same-session queries displaced by a newer submission.
    pub superseded: u64,
    /// Admitted queries that finished with a result.
    pub completed: u64,
    /// Admitted queries that ended `StorageError::Cancelled` (superseded,
    /// explicit cancel, deadline, or row budget) — whether they were
    /// still queued or already mid-scan.
    pub cancelled: u64,
    /// Admitted queries that failed with a non-cancellation error.
    pub failed: u64,
    /// Submissions refused by admission control.
    pub rejected: u64,
    /// Queries currently waiting in the overflow queue.
    pub queued: usize,
    /// Sessions with a live (queued or running) query.
    pub active_sessions: usize,
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    superseded: AtomicU64,
    completed: AtomicU64,
    cancelled: AtomicU64,
    failed: AtomicU64,
    rejected: AtomicU64,
}

/// Result slot a worker fills and a [`QueryHandle`] waits on.
struct JobShared {
    done: Mutex<Option<(Result<ZqlOutput, ZqlError>, Instant)>>,
    cv: Condvar,
}

impl JobShared {
    fn new() -> JobShared {
        JobShared {
            done: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn complete(&self, result: Result<ZqlOutput, ZqlError>) {
        let mut done = self.done.lock().expect("job slot poisoned");
        debug_assert!(done.is_none(), "a job completes exactly once");
        *done = Some((result, Instant::now()));
        self.cv.notify_all();
    }
}

/// Handle to one submitted query: its lifecycle ctx plus the result
/// slot. Dropping the handle does not cancel the query.
pub struct QueryHandle {
    session: SessionId,
    seq: u64,
    ctx: QueryCtx,
    shared: Arc<JobShared>,
}

impl QueryHandle {
    pub fn session(&self) -> SessionId {
        self.session
    }

    /// Monotone submission ticket (older = smaller).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The query's lifecycle ctx (cancel it, read progress counters).
    pub fn ctx(&self) -> &QueryCtx {
        &self.ctx
    }

    /// Explicitly cancel this query.
    pub fn cancel(&self) {
        self.ctx.cancel();
    }

    pub fn is_finished(&self) -> bool {
        self.shared
            .done
            .lock()
            .expect("job slot poisoned")
            .is_some()
    }

    /// Block until the query finishes; returns its result (a cancelled
    /// query yields `ZqlError::Storage(StorageError::Cancelled)`) and
    /// the instant it completed.
    pub fn wait_timed(self) -> (Result<ZqlOutput, ZqlError>, Instant) {
        let mut done = self.shared.done.lock().expect("job slot poisoned");
        loop {
            match done.take() {
                Some(out) => return out,
                None => done = self.shared.cv.wait(done).expect("job slot poisoned"),
            }
        }
    }

    /// Block until the query finishes; returns its result.
    pub fn wait(self) -> Result<ZqlOutput, ZqlError> {
        self.wait_timed().0
    }
}

/// One queued unit of work. Heap order: priority desc, then seq asc
/// (FIFO within a priority band).
struct PendingJob {
    session: SessionId,
    seq: u64,
    priority: i32,
    query: ZqlQuery,
    ctx: QueryCtx,
    shared: Arc<JobShared>,
}

impl PartialEq for PendingJob {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for PendingJob {}
impl PartialOrd for PendingJob {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingJob {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.priority
            .cmp(&other.priority)
            .then(other.seq.cmp(&self.seq))
    }
}

struct Queue {
    heap: BinaryHeap<PendingJob>,
    shutdown: bool,
}

/// The newest query of one session (the only one not yet superseded).
struct InFlight {
    seq: u64,
    ctx: QueryCtx,
}

struct Inner {
    engine: Arc<ZqlEngine>,
    queue: Mutex<Queue>,
    cv: Condvar,
    sessions: Mutex<HashMap<SessionId, InFlight>>,
    counters: Counters,
    max_queued: usize,
}

impl Inner {
    fn run_job(&self, job: PendingJob) {
        // A job superseded (or cancelled) while still queued is skipped
        // without touching the engine — the cheapest cancel of all.
        let result = if job.ctx.is_cancelled() {
            Err(ZqlError::Storage(StorageError::Cancelled))
        } else {
            self.engine.execute_ctx(&job.query, &job.ctx)
        };
        match &result {
            Ok(_) => self.counters.completed.fetch_add(1, Ordering::Relaxed),
            Err(ZqlError::Storage(StorageError::Cancelled)) => {
                self.counters.cancelled.fetch_add(1, Ordering::Relaxed)
            }
            Err(_) => self.counters.failed.fetch_add(1, Ordering::Relaxed),
        };
        self.release_session(&job);
        job.shared.complete(result);
    }

    /// Drop the session registration if this job is still its newest.
    fn release_session(&self, job: &PendingJob) {
        let mut sessions = self.sessions.lock().expect("sessions lock poisoned");
        if sessions.get(&job.session).is_some_and(|a| a.seq == job.seq) {
            sessions.remove(&job.session);
        }
    }
}

/// Multi-session front-end over one [`ZqlEngine`]; see the
/// [module docs](self) for the supersession and admission policies.
pub struct SessionManager {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
    next_seq: AtomicU64,
}

impl SessionManager {
    pub fn new(engine: Arc<ZqlEngine>, config: SessionConfig) -> SessionManager {
        let inner = Arc::new(Inner {
            engine,
            queue: Mutex::new(Queue {
                heap: BinaryHeap::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
            sessions: Mutex::new(HashMap::new()),
            counters: Counters::default(),
            max_queued: config.max_queued,
        });
        let workers = (0..config.max_concurrent.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("zv-session-worker-{i}"))
                    .spawn(move || worker_loop(inner))
                    .expect("spawn session worker")
            })
            .collect();
        SessionManager {
            inner,
            workers,
            next_seq: AtomicU64::new(1),
        }
    }

    pub fn engine(&self) -> &Arc<ZqlEngine> {
        &self.inner.engine
    }

    /// Submit with default options (priority 0, no deadline).
    pub fn submit(&self, session: SessionId, query: ZqlQuery) -> Result<QueryHandle, SubmitError> {
        self.submit_with(session, query, SubmitOptions::default())
    }

    /// Parse the textual ZQL table format and submit it.
    pub fn submit_text(
        &self,
        session: SessionId,
        text: &str,
        opts: SubmitOptions,
    ) -> Result<QueryHandle, SubmitError> {
        let query = zql::parse_query(text).map_err(SubmitError::Parse)?;
        self.submit_with(session, query, opts)
    }

    /// Submit one query on `session`. Admission first (a full queue
    /// rejects without touching the session), then
    /// newest-interaction-wins: any older live query of the session is
    /// cancelled with [`CancelReason::Superseded`].
    pub fn submit_with(
        &self,
        session: SessionId,
        query: ZqlQuery,
        opts: SubmitOptions,
    ) -> Result<QueryHandle, SubmitError> {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let mut ctx = QueryCtx::new().with_priority(opts.priority);
        if let Some(d) = opts.deadline {
            ctx = ctx.with_deadline(d);
        }
        if let Some(b) = opts.row_budget {
            ctx = ctx.with_row_budget(b);
        }
        let shared = Arc::new(JobShared::new());
        let job = PendingJob {
            session,
            seq,
            priority: opts.priority,
            query,
            ctx: ctx.clone(),
            shared: Arc::clone(&shared),
        };
        {
            let mut q = self.inner.queue.lock().expect("queue lock poisoned");
            if q.shutdown {
                return Err(SubmitError::ShuttingDown);
            }
            if q.heap.len() >= self.inner.max_queued {
                self.inner.counters.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::QueueFull {
                    capacity: self.inner.max_queued,
                });
            }
            self.inner
                .counters
                .submitted
                .fetch_add(1, Ordering::Relaxed);
            {
                let mut sessions = self.inner.sessions.lock().expect("sessions lock poisoned");
                if let Some(prev) = sessions.insert(
                    session,
                    InFlight {
                        seq,
                        ctx: ctx.clone(),
                    },
                ) {
                    prev.ctx.cancel_with(CancelReason::Superseded);
                    self.inner
                        .counters
                        .superseded
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
            q.heap.push(job);
        }
        self.inner.cv.notify_one();
        Ok(QueryHandle {
            session,
            seq,
            ctx,
            shared,
        })
    }

    /// Cancel `session`'s live query, if any. Returns whether one was
    /// cancelled.
    pub fn cancel_session(&self, session: SessionId) -> bool {
        let sessions = self.inner.sessions.lock().expect("sessions lock poisoned");
        match sessions.get(&session) {
            Some(active) => {
                active.ctx.cancel();
                true
            }
            None => false,
        }
    }

    pub fn stats(&self) -> SessionStats {
        let queued = self
            .inner
            .queue
            .lock()
            .expect("queue lock poisoned")
            .heap
            .len();
        let active_sessions = self
            .inner
            .sessions
            .lock()
            .expect("sessions lock poisoned")
            .len();
        let c = &self.inner.counters;
        SessionStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            superseded: c.superseded.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            cancelled: c.cancelled.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            queued,
            active_sessions,
        }
    }
}

impl Drop for SessionManager {
    fn drop(&mut self) {
        // Cancel whatever is still running so workers wind down at their
        // next cancellation point instead of finishing doomed scans.
        {
            let sessions = self.inner.sessions.lock().expect("sessions lock poisoned");
            for active in sessions.values() {
                active.ctx.cancel();
            }
        }
        let drained: Vec<PendingJob> = {
            let mut q = self.inner.queue.lock().expect("queue lock poisoned");
            q.shutdown = true;
            std::mem::take(&mut q.heap).into_vec()
        };
        self.inner.cv.notify_all();
        for job in drained {
            job.ctx.cancel();
            self.inner
                .counters
                .cancelled
                .fetch_add(1, Ordering::Relaxed);
            self.inner.release_session(&job);
            job.shared
                .complete(Err(ZqlError::Storage(StorageError::Cancelled)));
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(inner: Arc<Inner>) {
    loop {
        let job = {
            let mut q = inner.queue.lock().expect("queue lock poisoned");
            loop {
                if let Some(job) = q.heap.pop() {
                    break job;
                }
                if q.shutdown {
                    return;
                }
                q = inner.cv.wait(q).expect("queue lock poisoned");
            }
        };
        inner.run_job(job);
    }
}

// The manager is shared across request-handling threads.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SessionManager>();
};
