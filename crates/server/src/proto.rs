//! # Wire protocol reference (version 1)
//!
//! The zv-server network protocol is **length-prefixed line-JSON** over
//! a plain TCP stream — human-debuggable with `nc`, no external codec,
//! and unambiguous framing even when a payload embeds newlines (it
//! never does: the JSON writer emits a single line, but the length
//! prefix means a reader never has to trust that).
//!
//! ## Frame layout
//!
//! ```text
//! <len>\n<json>\n
//! ```
//!
//! `len` is the byte length of `<json>` in ASCII decimal (no sign, no
//! padding), followed by one `\n`, then exactly `len` bytes of
//! single-line UTF-8 JSON, then one terminating `\n`. A frame whose
//! body is not `len` bytes, not valid JSON, or not newline-terminated
//! is a protocol error; the peer may close the connection. Frames
//! larger than [`wire::MAX_FRAME`](crate::wire::MAX_FRAME) are
//! rejected without allocation.
//!
//! Every message is a JSON object with a `"t"` tag naming its type.
//! Unknown fields are ignored (forward compatibility); unknown tags
//! are a protocol error.
//!
//! ## Auth handshake
//!
//! The first client frame MUST be `hello`:
//!
//! ```text
//! {"t":"hello","v":1,"token":"<auth token>"}
//! ```
//!
//! The server checks the protocol version and the token against its
//! configured token set (an empty set accepts any token) and replies
//! either `welcome` — which binds the connection to a fresh session id
//! — or a terminal `error` with code `"auth"` (bad token) or `"proto"`
//! (version mismatch), then closes. No other frame is accepted before
//! a successful handshake.
//!
//! ```text
//! {"t":"welcome","v":1,"session":<id>}
//! ```
//!
//! ## Message types after the handshake
//!
//! Client → server:
//!
//! | tag      | fields                            | meaning |
//! |----------|-----------------------------------|---------|
//! | `query`  | `id`, `zql`, `opts`               | submit ZQL text under [`SubmitOptions`] |
//! | `cancel` | —                                 | cancel the session's live query |
//! | `bye`    | —                                 | graceful close (cancels any live query) |
//!
//! `id` is a client-chosen correlation number echoed on the matching
//! response. `opts` carries `priority`, `deadline_ms`, `row_budget`
//! and a `retry` object (`max_retries`, `backoff_us`, `jitter_seed`,
//! `serial_fallback`); 64-bit values that may exceed 2^53
//! (`jitter_seed`, `row_budget`) travel as decimal strings.
//!
//! Server → client (exactly one response per `query`, in submission
//! order — the per-connection responder is FIFO):
//!
//! | tag         | fields                       | meaning |
//! |-------------|------------------------------|---------|
//! | `result`    | `id`, `tables`, `report`     | serialized result tables + execution metrics |
//! | `cancelled` | `id`, `reason`               | the query was cancelled; `reason` attributes why |
//! | `busy`      | `id?`, `queued`, `msg`       | admission refused — see *Busy semantics* |
//! | `error`     | `id?`, `code`, `msg`         | `code` ∈ `auth`, `proto`, `parse`, `semantic`, `storage` |
//!
//! `cancelled.reason` is one of `"explicit"`, `"deadline"`,
//! `"superseded"`, `"row_budget"`, `"connection_lost"` (or `null` when
//! unattributed). Because a session runs **newest-interaction-wins**,
//! pipelining a second `query` on the same connection supersedes the
//! first: the client then receives `cancelled {reason:"superseded"}`
//! for the old id followed by `result` for the new one.
//!
//! Each entry of `result.tables` is one visualization:
//! `{"component","x","y","label","table":<ResultTable JSON>}` where the
//! table uses [`ResultTable::to_json`]'s bit-exact encoding (floats as
//! shortest-round-trip strings, so `NaN`/`±inf`/`-0.0` survive).
//!
//! ## Busy / error semantics
//!
//! Admission pressure always produces a **typed frame, never a hang**:
//!
//! * Connection limit reached → the server accepts the socket just
//!   long enough to write `busy` (no `id`, `queued` = configured
//!   connection cap) and closes. No handshake happens.
//! * Session queue full → `busy` with the rejected query's `id` and
//!   `queued` = queue capacity; the connection stays usable.
//! * Server draining → `busy` with the query's `id`; the connection
//!   will close once in-flight responses flush.
//!
//! `error` frames with code `auth`/`proto` are terminal (the server
//! closes); `parse`/`semantic`/`storage` are per-query and leave the
//! connection usable.

use std::time::Duration;
use zql::ExecReport;
use zv_storage::{CancelReason, Json, ResultTable};

use crate::{RetryPolicy, SubmitOptions};

/// Protocol version spoken by this build (`hello.v` / `welcome.v`).
pub const PROTO_VERSION: u64 = 1;

/// Error classes carried by `error` frames.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// Handshake token rejected (terminal).
    Auth,
    /// Malformed frame / unknown tag / version mismatch (terminal).
    Proto,
    /// The ZQL text did not parse (per-query).
    Parse,
    /// The query parsed but is semantically invalid (per-query).
    Semantic,
    /// The engine failed executing the query (per-query).
    Storage,
}

impl ErrorCode {
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Auth => "auth",
            ErrorCode::Proto => "proto",
            ErrorCode::Parse => "parse",
            ErrorCode::Semantic => "semantic",
            ErrorCode::Storage => "storage",
        }
    }

    pub fn from_tag(s: &str) -> Option<ErrorCode> {
        Some(match s {
            "auth" => ErrorCode::Auth,
            "proto" => ErrorCode::Proto,
            "parse" => ErrorCode::Parse,
            "semantic" => ErrorCode::Semantic,
            "storage" => ErrorCode::Storage,
            _ => return None,
        })
    }
}

/// `cancelled.reason` names (stable wire strings).
pub fn cancel_reason_str(r: CancelReason) -> &'static str {
    match r {
        CancelReason::Explicit => "explicit",
        CancelReason::Deadline => "deadline",
        CancelReason::Superseded => "superseded",
        CancelReason::RowBudget => "row_budget",
        CancelReason::ConnectionLost => "connection_lost",
    }
}

pub fn cancel_reason_from_str(s: &str) -> Option<CancelReason> {
    Some(match s {
        "explicit" => CancelReason::Explicit,
        "deadline" => CancelReason::Deadline,
        "superseded" => CancelReason::Superseded,
        "row_budget" => CancelReason::RowBudget,
        "connection_lost" => CancelReason::ConnectionLost,
        _ => return None,
    })
}

/// The wire form of a [`RetryPolicy`] (alias kept for doc clarity: the
/// in-memory policy and its wire encoding are field-for-field the
/// same struct).
pub type RetryWire = RetryPolicy;

/// One client → server message.
#[derive(Clone, Debug)]
pub enum Request {
    /// Auth handshake; must be the first frame.
    Hello { version: u64, token: String },
    /// Submit ZQL text; `id` correlates the eventual response.
    Query {
        id: u64,
        zql: String,
        opts: SubmitOptions,
    },
    /// Cancel the session's live query (fire-and-forget: the response
    /// arrives as the query's `cancelled` frame).
    Cancel,
    /// Graceful close.
    Bye,
}

/// One visualization of a `result` frame: the component metadata plus
/// its series re-encoded as a [`ResultTable`] (one group, X from the
/// series' x coordinates, one measure column).
#[derive(Clone, Debug, PartialEq)]
pub struct VizTable {
    pub component: String,
    pub x: String,
    pub y: String,
    pub label: String,
    pub table: ResultTable,
}

/// One server → client message.
#[derive(Clone, Debug)]
pub enum Response {
    /// Successful handshake; the connection is bound to `session`.
    Welcome { version: u64, session: u64 },
    /// Query `id` completed.
    Result {
        id: u64,
        tables: Vec<VizTable>,
        report: ExecReport,
    },
    /// Query `id` was cancelled (`reason` attributes why, when known).
    Cancelled {
        id: u64,
        reason: Option<CancelReason>,
    },
    /// Admission refused (`id` absent when the *connection* itself was
    /// refused at the limit, before any query existed).
    Busy {
        id: Option<u64>,
        queued: u64,
        msg: String,
    },
    /// Handshake or query failure.
    Error {
        id: Option<u64>,
        code: ErrorCode,
        msg: String,
    },
}

fn obj_u64(j: &Json, key: &str) -> Option<u64> {
    j.get(key).and_then(Json::as_u64)
}

fn obj_str<'a>(j: &'a Json, key: &str) -> Option<&'a str> {
    j.get(key).and_then(Json::as_str)
}

/// u64 that may exceed 2^53: encoded as a decimal string.
fn u64_str(v: u64) -> Json {
    Json::str(v.to_string())
}

fn parse_u64_str(j: &Json, key: &str) -> Option<u64> {
    obj_str(j, key)?.parse().ok()
}

fn opts_to_json(o: &SubmitOptions) -> Json {
    let mut fields = vec![("priority".to_string(), Json::Num(f64::from(o.priority)))];
    if let Some(d) = o.deadline {
        fields.push(("deadline_ms".to_string(), Json::u64(d.as_millis() as u64)));
    }
    if let Some(b) = o.row_budget {
        fields.push(("row_budget".to_string(), u64_str(b)));
    }
    let r = &o.retry;
    fields.push((
        "retry".to_string(),
        Json::Obj(vec![
            (
                "max_retries".to_string(),
                Json::u64(u64::from(r.max_retries)),
            ),
            (
                "backoff_us".to_string(),
                Json::u64(r.backoff_base.as_micros() as u64),
            ),
            ("jitter_seed".to_string(), u64_str(r.jitter_seed)),
            ("serial_fallback".to_string(), Json::Bool(r.serial_fallback)),
        ]),
    ));
    Json::Obj(fields)
}

fn opts_from_json(j: &Json) -> Option<SubmitOptions> {
    let mut o = SubmitOptions {
        priority: obj_u64(j, "priority")
            .map(|v| v as i32)
            .or_else(|| j.get("priority").and_then(Json::as_i64).map(|v| v as i32))
            .unwrap_or(0),
        ..SubmitOptions::default()
    };
    if let Some(ms) = obj_u64(j, "deadline_ms") {
        o.deadline = Some(Duration::from_millis(ms));
    }
    if let Some(b) = parse_u64_str(j, "row_budget") {
        o.row_budget = Some(b);
    }
    if let Some(r) = j.get("retry") {
        o.retry = RetryPolicy {
            max_retries: obj_u64(r, "max_retries")? as u32,
            backoff_base: Duration::from_micros(obj_u64(r, "backoff_us")?),
            jitter_seed: parse_u64_str(r, "jitter_seed")?,
            serial_fallback: r.get("serial_fallback").and_then(Json::as_bool)?,
        };
    }
    Some(o)
}

impl Request {
    pub fn to_json(&self) -> Json {
        match self {
            Request::Hello { version, token } => Json::Obj(vec![
                ("t".to_string(), Json::str("hello")),
                ("v".to_string(), Json::u64(*version)),
                ("token".to_string(), Json::str(token.clone())),
            ]),
            Request::Query { id, zql, opts } => Json::Obj(vec![
                ("t".to_string(), Json::str("query")),
                ("id".to_string(), Json::u64(*id)),
                ("zql".to_string(), Json::str(zql.clone())),
                ("opts".to_string(), opts_to_json(opts)),
            ]),
            Request::Cancel => Json::Obj(vec![("t".to_string(), Json::str("cancel"))]),
            Request::Bye => Json::Obj(vec![("t".to_string(), Json::str("bye"))]),
        }
    }

    pub fn from_json(j: &Json) -> Option<Request> {
        Some(match obj_str(j, "t")? {
            "hello" => Request::Hello {
                version: obj_u64(j, "v")?,
                token: obj_str(j, "token").unwrap_or("").to_string(),
            },
            "query" => Request::Query {
                id: obj_u64(j, "id")?,
                zql: obj_str(j, "zql")?.to_string(),
                opts: j
                    .get("opts")
                    .map_or_else(|| Some(SubmitOptions::default()), opts_from_json)?,
            },
            "cancel" => Request::Cancel,
            "bye" => Request::Bye,
            _ => return None,
        })
    }
}

fn report_to_json(r: &ExecReport) -> Json {
    Json::Obj(vec![
        ("sql_queries".to_string(), Json::u64(r.sql_queries)),
        ("requests".to_string(), Json::u64(r.requests)),
        ("rows_scanned".to_string(), Json::u64(r.rows_scanned)),
        ("cache_hits".to_string(), Json::u64(r.cache_hits)),
        (
            "cache_derived_hits".to_string(),
            Json::u64(r.cache_derived_hits),
        ),
        ("cache_misses".to_string(), Json::u64(r.cache_misses)),
        ("ivm_hits".to_string(), Json::u64(r.ivm_hits)),
        (
            "ivm_rows_scanned".to_string(),
            Json::u64(r.ivm_rows_scanned),
        ),
        (
            "queries_cancelled".to_string(),
            Json::u64(r.queries_cancelled),
        ),
        (
            "morsels_cancelled".to_string(),
            Json::u64(r.morsels_cancelled),
        ),
        ("worker_panics".to_string(), Json::u64(r.worker_panics)),
        ("queries_retried".to_string(), Json::u64(r.queries_retried)),
        (
            "queries_degraded".to_string(),
            Json::u64(r.queries_degraded),
        ),
        ("db_us".to_string(), Json::u64(r.db_time.as_micros() as u64)),
        (
            "compute_us".to_string(),
            Json::u64(r.compute_time.as_micros() as u64),
        ),
        (
            "total_us".to_string(),
            Json::u64(r.total_time.as_micros() as u64),
        ),
    ])
}

fn report_from_json(j: &Json) -> Option<ExecReport> {
    Some(ExecReport {
        sql_queries: obj_u64(j, "sql_queries")?,
        requests: obj_u64(j, "requests")?,
        rows_scanned: obj_u64(j, "rows_scanned")?,
        cache_hits: obj_u64(j, "cache_hits")?,
        cache_derived_hits: obj_u64(j, "cache_derived_hits")?,
        cache_misses: obj_u64(j, "cache_misses")?,
        ivm_hits: obj_u64(j, "ivm_hits")?,
        ivm_rows_scanned: obj_u64(j, "ivm_rows_scanned")?,
        queries_cancelled: obj_u64(j, "queries_cancelled")?,
        morsels_cancelled: obj_u64(j, "morsels_cancelled")?,
        worker_panics: obj_u64(j, "worker_panics")?,
        queries_retried: obj_u64(j, "queries_retried")?,
        queries_degraded: obj_u64(j, "queries_degraded")?,
        db_time: Duration::from_micros(obj_u64(j, "db_us")?),
        compute_time: Duration::from_micros(obj_u64(j, "compute_us")?),
        total_time: Duration::from_micros(obj_u64(j, "total_us")?),
    })
}

fn viz_to_json(v: &VizTable) -> Json {
    Json::Obj(vec![
        ("component".to_string(), Json::str(v.component.clone())),
        ("x".to_string(), Json::str(v.x.clone())),
        ("y".to_string(), Json::str(v.y.clone())),
        ("label".to_string(), Json::str(v.label.clone())),
        ("table".to_string(), v.table.to_json()),
    ])
}

fn viz_from_json(j: &Json) -> Option<VizTable> {
    Some(VizTable {
        component: obj_str(j, "component")?.to_string(),
        x: obj_str(j, "x")?.to_string(),
        y: obj_str(j, "y")?.to_string(),
        label: obj_str(j, "label")?.to_string(),
        table: ResultTable::from_json(j.get("table")?).ok()?,
    })
}

impl Response {
    pub fn to_json(&self) -> Json {
        match self {
            Response::Welcome { version, session } => Json::Obj(vec![
                ("t".to_string(), Json::str("welcome")),
                ("v".to_string(), Json::u64(*version)),
                ("session".to_string(), u64_str(*session)),
            ]),
            Response::Result { id, tables, report } => Json::Obj(vec![
                ("t".to_string(), Json::str("result")),
                ("id".to_string(), Json::u64(*id)),
                (
                    "tables".to_string(),
                    Json::Arr(tables.iter().map(viz_to_json).collect()),
                ),
                ("report".to_string(), report_to_json(report)),
            ]),
            Response::Cancelled { id, reason } => Json::Obj(vec![
                ("t".to_string(), Json::str("cancelled")),
                ("id".to_string(), Json::u64(*id)),
                (
                    "reason".to_string(),
                    match reason {
                        Some(r) => Json::str(cancel_reason_str(*r)),
                        None => Json::Null,
                    },
                ),
            ]),
            Response::Busy { id, queued, msg } => Json::Obj(vec![
                ("t".to_string(), Json::str("busy")),
                ("id".to_string(), id.map_or(Json::Null, Json::u64)),
                ("queued".to_string(), Json::u64(*queued)),
                ("msg".to_string(), Json::str(msg.clone())),
            ]),
            Response::Error { id, code, msg } => Json::Obj(vec![
                ("t".to_string(), Json::str("error")),
                ("id".to_string(), id.map_or(Json::Null, Json::u64)),
                ("code".to_string(), Json::str(code.as_str())),
                ("msg".to_string(), Json::str(msg.clone())),
            ]),
        }
    }

    pub fn from_json(j: &Json) -> Option<Response> {
        Some(match obj_str(j, "t")? {
            "welcome" => Response::Welcome {
                version: obj_u64(j, "v")?,
                session: parse_u64_str(j, "session")?,
            },
            "result" => Response::Result {
                id: obj_u64(j, "id")?,
                tables: j
                    .get("tables")?
                    .as_arr()?
                    .iter()
                    .map(viz_from_json)
                    .collect::<Option<Vec<_>>>()?,
                report: report_from_json(j.get("report")?)?,
            },
            "cancelled" => Response::Cancelled {
                id: obj_u64(j, "id")?,
                reason: match j.get("reason") {
                    None | Some(Json::Null) => None,
                    Some(r) => Some(cancel_reason_from_str(r.as_str()?)?),
                },
            },
            "busy" => Response::Busy {
                id: obj_u64(j, "id"),
                queued: obj_u64(j, "queued")?,
                msg: obj_str(j, "msg").unwrap_or("").to_string(),
            },
            "error" => Response::Error {
                id: obj_u64(j, "id"),
                code: ErrorCode::from_tag(obj_str(j, "code")?)?,
                msg: obj_str(j, "msg").unwrap_or("").to_string(),
            },
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zv_storage::{GroupSeries, Value};

    fn roundtrip_req(r: &Request) -> Request {
        let j = Json::parse(&r.to_json().to_string()).expect("valid json");
        Request::from_json(&j).expect("valid request")
    }

    fn roundtrip_resp(r: &Response) -> Response {
        let j = Json::parse(&r.to_json().to_string()).expect("valid json");
        Response::from_json(&j).expect("valid response")
    }

    #[test]
    fn query_request_roundtrips_options_exactly() {
        let r = Request::Query {
            id: 7,
            zql: "NAME=f1 X='year' Y='sales'\n".to_string(),
            opts: SubmitOptions {
                priority: -3,
                deadline: Some(Duration::from_millis(1500)),
                row_budget: Some(u64::MAX - 1),
                retry: RetryPolicy {
                    max_retries: 2,
                    backoff_base: Duration::from_micros(750),
                    jitter_seed: u64::MAX,
                    serial_fallback: false,
                },
            },
        };
        match roundtrip_req(&r) {
            Request::Query { id, zql, opts } => {
                assert_eq!(id, 7);
                assert_eq!(zql, "NAME=f1 X='year' Y='sales'\n");
                assert_eq!(opts.priority, -3);
                assert_eq!(opts.deadline, Some(Duration::from_millis(1500)));
                assert_eq!(opts.row_budget, Some(u64::MAX - 1));
                assert_eq!(opts.retry.max_retries, 2);
                assert_eq!(opts.retry.backoff_base, Duration::from_micros(750));
                assert_eq!(opts.retry.jitter_seed, u64::MAX);
                assert!(!opts.retry.serial_fallback);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn result_response_roundtrips_tables_bit_for_bit() {
        let table = ResultTable {
            z_cols: vec![],
            groups: vec![GroupSeries {
                key: vec![],
                xs: vec![Value::Float(2015.0), Value::Float(2016.0)],
                ys: vec![vec![f64::NAN, -0.0]],
            }],
        };
        let r = Response::Result {
            id: 3,
            tables: vec![VizTable {
                component: "f1".to_string(),
                x: "year".to_string(),
                y: "sales".to_string(),
                label: "product=chair".to_string(),
                table,
            }],
            report: ExecReport {
                sql_queries: 1,
                rows_scanned: 60_000,
                total_time: Duration::from_micros(1234),
                ..ExecReport::default()
            },
        };
        match roundtrip_resp(&r) {
            Response::Result { id, tables, report } => {
                assert_eq!(id, 3);
                assert_eq!(tables.len(), 1);
                assert_eq!(tables[0].label, "product=chair");
                let ys = &tables[0].table.groups[0].ys[0];
                assert!(ys[0].is_nan());
                assert_eq!(ys[1].to_bits(), (-0.0f64).to_bits(), "-0.0 sign survives");
                assert_eq!(report.rows_scanned, 60_000);
                assert_eq!(report.total_time, Duration::from_micros(1234));
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn cancelled_and_busy_and_error_roundtrip() {
        for reason in [
            None,
            Some(CancelReason::Superseded),
            Some(CancelReason::ConnectionLost),
        ] {
            match roundtrip_resp(&Response::Cancelled { id: 9, reason }) {
                Response::Cancelled { id, reason: got } => {
                    assert_eq!((id, got), (9, reason));
                }
                other => panic!("wrong variant: {other:?}"),
            }
        }
        match roundtrip_resp(&Response::Busy {
            id: None,
            queued: 64,
            msg: "connection limit".to_string(),
        }) {
            Response::Busy { id, queued, msg } => {
                assert_eq!((id, queued), (None, 64));
                assert_eq!(msg, "connection limit");
            }
            other => panic!("wrong variant: {other:?}"),
        }
        match roundtrip_resp(&Response::Error {
            id: Some(4),
            code: ErrorCode::Parse,
            msg: "ZQL: expected X=".to_string(),
        }) {
            Response::Error { id, code, .. } => {
                assert_eq!((id, code), (Some(4), ErrorCode::Parse));
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn unknown_tags_and_damaged_frames_are_rejected() {
        for bad in [
            r#"{"t":"warez"}"#,
            r#"{"id":1}"#,
            r#"{"t":"query","zql":"X"}"#,
            r#"{"t":"error","code":"nonsense","msg":""}"#,
        ] {
            let j = Json::parse(bad).expect("syntactically valid");
            assert!(Request::from_json(&j).is_none(), "accepted {bad}");
            assert!(Response::from_json(&j).is_none(), "accepted {bad}");
        }
    }
}
