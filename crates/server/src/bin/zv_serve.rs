//! `zv-serve` — stand-alone zenvisage query server.
//!
//! Binds a TCP listener, loads the deterministic synthetic sales
//! dataset, and serves the [wire protocol](zv_server::proto) until
//! stdin reaches EOF (the supervisor closes the pipe), then drains
//! gracefully. Designed for the CI net-smoke leg and manual poking:
//!
//! ```text
//! zv-serve --addr 127.0.0.1:0 --rows 60000 --max-conns 64 &
//! ```
//!
//! Prints exactly one `listening on <addr>` line to stdout once ready
//! — a spawner parses that for the ephemeral port.
//!
//! Flags (all optional):
//!
//! * `--addr HOST:PORT` — bind address (default `127.0.0.1:0`)
//! * `--rows N` — synthetic dataset size (default 60000)
//! * `--threads N` — scan worker threads (default 2)
//! * `--max-conns N` — connection limit (default 64)
//! * `--workers N` — session worker pool (default 4)
//! * `--token T` — require this auth token (repeatable; default open)
//! * `--drop-seed S --drop-rate R` — arm ConnDrop injection
//! * `--data-dir PATH` — durable storage: recover the table from PATH
//!   on boot (or seed it with the synthetic dataset on first run), WAL
//!   every append, checkpoint on drain

use std::io::Read;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use zql::ZqlEngine;
use zv_datagen::sales::{self, SalesConfig};
use zv_server::{NetServer, NetServerConfig, SessionConfig};
use zv_storage::exec::ParallelConfig;
use zv_storage::{BitmapDb, BitmapDbConfig, Database, FaultSpec, SchedulingMode};

struct Args {
    addr: String,
    rows: usize,
    threads: usize,
    max_conns: usize,
    workers: usize,
    tokens: Vec<String>,
    drop_seed: u64,
    drop_rate: f64,
    data_dir: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:0".to_string(),
        rows: 60_000,
        threads: 2,
        max_conns: 64,
        workers: 4,
        tokens: Vec::new(),
        drop_seed: 0,
        drop_rate: 0.0,
        data_dir: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--rows" => {
                args.rows = value("--rows")?
                    .parse()
                    .map_err(|e| format!("--rows: {e}"))?
            }
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--max-conns" => {
                args.max_conns = value("--max-conns")?
                    .parse()
                    .map_err(|e| format!("--max-conns: {e}"))?
            }
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--token" => args.tokens.push(value("--token")?),
            "--drop-seed" => {
                args.drop_seed = value("--drop-seed")?
                    .parse()
                    .map_err(|e| format!("--drop-seed: {e}"))?
            }
            "--drop-rate" => {
                args.drop_rate = value("--drop-rate")?
                    .parse()
                    .map_err(|e| format!("--drop-rate: {e}"))?
            }
            "--data-dir" => args.data_dir = Some(value("--data-dir")?),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("zv-serve: {msg}");
            return ExitCode::from(2);
        }
    };
    let db_config = BitmapDbConfig {
        parallel: ParallelConfig {
            threads: args.threads,
            sched: SchedulingMode::Morsel,
            ..Default::default()
        },
        ..Default::default()
    };
    let gen_table = || {
        sales::generate(&SalesConfig {
            rows: args.rows,
            products: 50,
            ..Default::default()
        })
    };
    // Keep a concrete handle for the checkpoint on drain; the engine
    // only exposes the erased `DynDatabase`.
    let db: Arc<BitmapDb> = match &args.data_dir {
        Some(dir) => match BitmapDb::open_durable(dir, db_config, gen_table) {
            Ok(db) => {
                let report = db
                    .persistence()
                    .expect("open_durable always attaches persistence")
                    .recovery_report();
                match report.recovered_version {
                    Some(v) => eprintln!(
                        "zv-serve: recovered {} rows at version {v} from {dir} ({} WAL frames replayed, {} torn bytes truncated)",
                        db.table().num_rows(),
                        report.frames_replayed,
                        report.torn_bytes_truncated,
                    ),
                    None => eprintln!(
                        "zv-serve: initialized {dir} with {} synthetic rows",
                        db.table().num_rows()
                    ),
                }
                Arc::new(db)
            }
            Err(e) => {
                eprintln!("zv-serve: open {dir} failed: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => Arc::new(BitmapDb::with_config(gen_table(), db_config)),
    };
    let engine = Arc::new(ZqlEngine::new(db.clone()));
    let config = NetServerConfig {
        max_connections: args.max_conns,
        session: SessionConfig {
            max_concurrent: args.workers,
            ..Default::default()
        },
        auth_tokens: args.tokens,
        drain_timeout: Duration::from_secs(5),
        fault: if args.drop_seed != 0 {
            FaultSpec::with_rate(args.drop_seed, args.drop_rate)
        } else {
            FaultSpec::disabled()
        },
        ..Default::default()
    };
    let server = match NetServer::start(engine, &args.addr, config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("zv-serve: bind {} failed: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    println!("listening on {}", server.local_addr());
    // println! to a pipe is line-buffered at best; the spawner needs
    // this line *now*.
    use std::io::Write;
    let _ = std::io::stdout().flush();

    // Serve until the supervisor closes stdin, then drain gracefully.
    let mut sink = [0u8; 256];
    let mut stdin = std::io::stdin();
    while matches!(stdin.read(&mut sink), Ok(n) if n > 0) {}

    let net = server.stats();
    let sess = server.session_stats();
    server.shutdown();
    if args.data_dir.is_some() {
        match db.checkpoint() {
            Ok(path) => eprintln!(
                "zv-serve: checkpointed version {} to {}",
                db.table().version(),
                path.display()
            ),
            Err(e) => eprintln!("zv-serve: checkpoint on drain failed: {e}"),
        }
    }
    eprintln!(
        "zv-serve: drained. accepted={} rejected={} queries={} results={} cancelled={} busy={} errors={} drops={} | submitted={} completed={} cancelled={} failed={} rejected={}",
        net.accepted,
        net.rejected,
        net.queries_received,
        net.results_sent,
        net.cancelled_sent,
        net.busy_sent,
        net.errors_sent,
        net.conn_drops_injected,
        sess.submitted,
        sess.completed,
        sess.cancelled,
        sess.failed,
        sess.rejected,
    );
    ExitCode::SUCCESS
}
