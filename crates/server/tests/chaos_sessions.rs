//! Chaos suite for the session layer: retry, degradation, and breaker
//! policies under deterministic fault injection.
//!
//! Engine-level containment is proven in `zv-storage`'s chaos suite;
//! here the subject is the policy ladder above it — a transient failure
//! is retried on a re-rolled fault epoch, exhausted retries degrade to
//! the injection-free serial path, repeat offenders open a breaker that
//! routes queries serial pre-emptively, and every admitted query still
//! ends in exactly one outcome with exact `SessionStats` bookkeeping.
//!
//! Determinism comes from the same replay trick as the storage suite:
//! [`FaultSpec::fires`] is pure, so tests *search* for a seed with the
//! failure shape they need (fails at epoch 0, clean at epoch 1, …) and
//! then assert exact attempt counts via the engine's cache-miss counter
//! (every real attempt probes the cache exactly once before scanning).

use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;
use zql::{QueryBuilder, ZqlEngine, ZqlError, ZqlQuery};
use zv_datagen::sales::{self, SalesConfig};
use zv_server::{RetryPolicy, SessionConfig, SessionManager, SubmitOptions};
use zv_storage::exec::ParallelConfig;
use zv_storage::fault::{self, FaultPoint, FaultSpec};
use zv_storage::{
    BitmapDb, BitmapDbConfig, CacheConfig, CancelReason, SchedulingMode, StorageError,
};

const ROWS: usize = 30_000;
const MORSEL_ROWS: usize = 4096;

fn dataset() -> Arc<zv_storage::Table> {
    static TABLE: std::sync::OnceLock<Arc<zv_storage::Table>> = std::sync::OnceLock::new();
    TABLE
        .get_or_init(|| {
            sales::generate(&SalesConfig {
                rows: ROWS,
                products: 20,
                ..Default::default()
            })
        })
        .clone()
}

/// Morsels a full-table scan splits into under [`MORSEL_ROWS`].
fn n_morsels() -> usize {
    ROWS.div_ceil(MORSEL_ROWS)
}

fn chaos_engine(spec: FaultSpec, threads: usize) -> Arc<ZqlEngine> {
    Arc::new(ZqlEngine::new(Arc::new(BitmapDb::with_config(
        dataset(),
        BitmapDbConfig {
            parallel: ParallelConfig {
                threads,
                min_parallel_rows: 0,
                sched: SchedulingMode::Morsel,
                morsel_rows: MORSEL_ROWS,
                fault: spec,
                ..Default::default()
            },
            cache: CacheConfig::admit_all(),
            ..Default::default()
        },
    ))))
}

/// One unconstrained full-table visualization: its storage query scans
/// all [`ROWS`] units, so the morsel count — and with it every fault
/// decision — is known exactly.
fn full_scan_query() -> ZqlQuery {
    QueryBuilder::new()
        .output_row("f1", |r| r.x("year").y("sales"))
        .build()
}

fn lowest_firing(spec: &FaultSpec, n_morsels: usize, epoch: u64) -> Option<u64> {
    (0..n_morsels as u64).find(|&m| spec.fires(FaultPoint::ChunkScanPanic, m, epoch))
}

fn spawn_fires(spec: &FaultSpec, n_morsels: usize, epoch: u64) -> bool {
    spec.fires(FaultPoint::WorkerSpawn, n_morsels as u64, epoch)
}

fn attempt_fails(spec: &FaultSpec, n_morsels: usize, epoch: u64) -> bool {
    spawn_fires(spec, n_morsels, epoch) || lowest_firing(spec, n_morsels, epoch).is_some()
}

/// A query whose first attempt is killed by an injected worker panic
/// retries on an advanced fault epoch and succeeds — returning
/// bit-for-bit what a fault-free engine returns, with exact retry
/// bookkeeping on both the session and engine stats.
#[test]
fn transient_failure_retries_to_exact_result() {
    fault::silence_injected_panics();
    let nm = n_morsels();
    // Deterministic search: a seed whose epoch 0 panics (not a spawn
    // failure) and whose epoch 1 is clean — one retry lands it.
    let seed = (1u64..)
        .find(|&sd| {
            let s = FaultSpec::with_rate(sd, 0.15);
            !spawn_fires(&s, nm, 0)
                && lowest_firing(&s, nm, 0).is_some()
                && !attempt_fails(&s, nm, 1)
        })
        .unwrap();
    let spec = FaultSpec::with_rate(seed, 0.15);
    let engine = chaos_engine(spec, 2);
    let db_before = engine.database().stats().snapshot();
    let mgr = SessionManager::new(
        Arc::clone(&engine),
        SessionConfig {
            max_concurrent: 1,
            max_queued: 16,
            breaker_threshold: 0,
            breaker_window: 0,
        },
    );
    let h = mgr
        .submit_with(
            1,
            full_scan_query(),
            SubmitOptions {
                retry: RetryPolicy {
                    max_retries: 1,
                    backoff_base: Duration::from_millis(1),
                    jitter_seed: 42,
                    serial_fallback: false,
                },
                ..Default::default()
            },
        )
        .expect("admitted");
    let out = h.wait().expect("the retry lands on the clean epoch");

    let reference = chaos_engine(FaultSpec::disabled(), 2)
        .execute(&full_scan_query())
        .expect("fault-free reference");
    assert_eq!(
        out.visualizations[0].series, reference.visualizations[0].series,
        "a retried query returns bit-for-bit the fault-free result"
    );

    let stats = mgr.stats();
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.retried, 1, "counted once however many attempts");
    assert_eq!(stats.degraded, 0, "the retry succeeded in parallel mode");
    let delta = engine.database().stats().snapshot().since(&db_before);
    assert_eq!(delta.worker_panics, 1, "exactly the epoch-0 panic");
    assert_eq!(delta.queries_retried, 1);
    assert_eq!(delta.queries_degraded, 0);
}

/// With injection at rate 1.0 every parallel fan-out fails, so every
/// query must degrade to serial — and after `breaker_threshold`
/// consecutive trips the breaker routes the next `breaker_window`
/// queries serial *without* burning a parallel attempt. Attempt counts
/// are asserted exactly through the cache-miss counter (one probe per
/// real attempt; rate-1.0 cache faults drop every insert, so no attempt
/// is ever served from cache).
#[test]
fn breaker_routes_repeat_offenders_serial() {
    fault::silence_injected_panics();
    let spec = FaultSpec::with_rate(0xB0B, 1.0);
    let engine = chaos_engine(spec, 2);
    let db_before = engine.database().stats().snapshot();
    let mgr = SessionManager::new(
        Arc::clone(&engine),
        SessionConfig {
            max_concurrent: 1,
            max_queued: 16,
            breaker_threshold: 2,
            breaker_window: 3,
        },
    );
    let policy = RetryPolicy {
        max_retries: 0,
        serial_fallback: true,
        ..Default::default()
    };
    for session in 0..7u64 {
        let h = mgr
            .submit_with(
                session,
                full_scan_query(),
                SubmitOptions {
                    retry: policy,
                    ..Default::default()
                },
            )
            .expect("admitted");
        h.wait().expect("serial always serves");
    }
    let stats = mgr.stats();
    assert_eq!(stats.completed, 7, "the engine never stopped serving");
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.retried, 0, "max_retries 0: degrade, don't retry");
    assert_eq!(
        stats.degraded, 7,
        "every query ran serial — by fallback or by open breaker"
    );
    let delta = engine.database().stats().snapshot().since(&db_before);
    // Queries 1–2 each burn a parallel attempt, trip the breaker
    // (threshold 2), then succeed serially. Queries 3–4 are routed
    // serial by the open breaker (window 3 → 2 → 1). Query 5 finds
    // half the window served and becomes the half-open probe: its
    // parallel attempt fails (the fault rate is still 1.0), re-arming
    // a full window before its serial fallback. Queries 6–7 are routed
    // serial again. 3×2 + 4×1 = 10 attempts.
    assert_eq!(
        delta.cache_misses, 10,
        "the breaker saved exactly 4 parallel attempts"
    );
    assert_eq!(
        stats.breaker,
        zv_server::BreakerView::Open {
            serial_left: 1,
            probing: false
        },
        "the failed probe re-armed a full window (3), spent by Q6–Q7"
    );
    assert_eq!(
        delta.worker_panics, 0,
        "rate-1.0 parallel failures are spawn failures, not panics"
    );
    assert_eq!(delta.queries_degraded, 7);
}

/// Satellite: a deadline that expires while the query sits in the
/// overflow queue is finished at pop time — counted `expired` (a
/// subset of `cancelled`) and the engine is never woken for it.
#[test]
fn expired_deadline_is_skipped_at_pop() {
    let engine = chaos_engine(FaultSpec::disabled(), 2);
    let mgr = SessionManager::new(
        Arc::clone(&engine),
        SessionConfig {
            max_concurrent: 1,
            max_queued: 16,
            ..Default::default()
        },
    );
    // Occupy the single worker so the doomed query has to queue.
    let blocker = mgr.submit(1, full_scan_query()).expect("admitted");
    let doomed = mgr
        .submit_with(
            2,
            full_scan_query(),
            SubmitOptions {
                deadline: Some(Duration::ZERO),
                ..Default::default()
            },
        )
        .expect("admitted");
    let ctx = doomed.ctx().clone();
    blocker.wait().expect("blocker completes");
    let err = doomed.wait().expect_err("expired deadline cancels");
    assert!(matches!(err, ZqlError::Storage(StorageError::Cancelled)));
    assert_eq!(ctx.cancel_reason(), Some(CancelReason::Deadline));
    assert_eq!(ctx.stats().rows_scanned, 0, "the engine was never woken");
    let stats = mgr.stats();
    assert_eq!(stats.expired, 1);
    assert_eq!(stats.cancelled, 1, "expired is a subset of cancelled");
    assert_eq!(stats.completed, 1);
    assert_eq!(
        stats.completed + stats.cancelled + stats.failed,
        stats.submitted,
        "exactly-once accounting holds"
    );
}

/// A query that exhausts retries with serial fallback disabled fails —
/// and leaves the result cache bit-for-bit untouched.
#[test]
fn exhausted_retries_fail_without_touching_the_cache() {
    fault::silence_injected_panics();
    let spec = FaultSpec::with_rate(0xFA11, 1.0);
    let engine = chaos_engine(spec, 2);
    let mgr = SessionManager::new(
        Arc::clone(&engine),
        SessionConfig {
            max_concurrent: 1,
            max_queued: 16,
            breaker_threshold: 0,
            breaker_window: 0,
        },
    );
    let h = mgr
        .submit_with(
            1,
            full_scan_query(),
            SubmitOptions {
                retry: RetryPolicy {
                    max_retries: 1,
                    serial_fallback: false,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .expect("admitted");
    let err = h
        .wait()
        .expect_err("no serial fallback: the failure surfaces");
    match err {
        ZqlError::Storage(e) => assert!(e.is_transient(), "got {e:?}"),
        other => panic!("expected a storage error, got {other}"),
    }
    let stats = mgr.stats();
    assert_eq!(stats.failed, 1);
    assert_eq!(stats.retried, 1);
    assert_eq!(stats.degraded, 0);
    let cache = engine.database().cache_stats().expect("engine has a cache");
    assert_eq!(cache.entries, 0, "nothing cached by failed attempts");
    assert_eq!(cache.insertions, 0);
}

/// The PR-7 slot-pinning fix: a retry backoff must never sleep on a
/// pool worker. With ONE worker and a retrying query in a multi-second
/// backoff, a different session's query must be served *during* the
/// backoff — the retrying job is visible in `retried` and sits in the
/// queue (`queued`) rather than occupying the slot.
#[test]
fn backoff_requeues_instead_of_pinning_the_slot() {
    fault::silence_injected_panics();
    let nm = n_morsels();
    // Same seed shape as the retry test: epoch 0 panics, epoch 1 clean.
    let seed = (1u64..)
        .find(|&sd| {
            let s = FaultSpec::with_rate(sd, 0.15);
            !spawn_fires(&s, nm, 0)
                && lowest_firing(&s, nm, 0).is_some()
                && !attempt_fails(&s, nm, 1)
        })
        .unwrap();
    let engine = chaos_engine(FaultSpec::with_rate(seed, 0.15), 2);
    let mgr = SessionManager::new(
        Arc::clone(&engine),
        SessionConfig {
            max_concurrent: 1,
            max_queued: 16,
            breaker_threshold: 0,
            breaker_window: 0,
        },
    );
    let t0 = std::time::Instant::now();
    let retrying = mgr
        .submit_with(
            1,
            full_scan_query(),
            SubmitOptions {
                retry: RetryPolicy {
                    max_retries: 1,
                    // Generous: the other session's scan fits inside it.
                    backoff_base: Duration::from_secs(2),
                    jitter_seed: 7,
                    serial_fallback: false,
                },
                ..Default::default()
            },
        )
        .expect("admitted");
    // Wait until the first attempt failed and the job went back to the
    // queue with its not-before stamp.
    loop {
        let s = mgr.stats();
        if s.retried == 1 && s.queued == 1 {
            break;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "first attempt never failed/requeued: {s:?}"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    // The single worker slot must now be free: another session's query
    // completes while the retrying job waits out its backoff. (Its
    // own epoch-0 attempt fails identically — fault decisions are pure
    // — and the default policy degrades it to a serial success.)
    let other = mgr.submit(2, full_scan_query()).expect("admitted");
    other.wait().expect("the freed slot serves other sessions");
    assert!(
        !retrying.is_finished(),
        "the other query finished during the backoff, not after it"
    );
    retrying.wait().expect("the retry lands on the clean epoch");
    assert!(
        t0.elapsed() >= Duration::from_secs(2),
        "the retry waited out its backoff"
    );
    let stats = mgr.stats();
    assert_eq!(stats.completed, 2, "both sessions served by one slot");
    assert_eq!(stats.retried, 1);
    assert_eq!(stats.failed, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// A burst of queries under arbitrary fault seeds and mixed
    /// policies: whatever fails, retries, or degrades, every admitted
    /// query ends in exactly one outcome, the counters match the
    /// observed results exactly, and the manager keeps serving.
    #[test]
    fn burst_under_faults_accounts_every_query_exactly_once(
        seed in 1u64..u64::MAX,
        rate in 0.05f64..0.4,
    ) {
        fault::silence_injected_panics();
        let spec = FaultSpec::with_rate(seed, rate);
        let engine = chaos_engine(spec, 2);
        let mgr = SessionManager::new(
            Arc::clone(&engine),
            SessionConfig {
                max_concurrent: 2,
                max_queued: 32,
                breaker_threshold: 2,
                breaker_window: 4,
            },
        );
        const BURST: usize = 6;
        let handles: Vec<_> = (0..BURST)
            .map(|i| {
                mgr.submit_with(
                    i as u64, // distinct sessions: no supersession noise
                    full_scan_query(),
                    SubmitOptions {
                        retry: RetryPolicy {
                            max_retries: (i % 3) as u32,
                            serial_fallback: i % 2 == 0,
                            ..Default::default()
                        },
                        ..Default::default()
                    },
                )
                .expect("admitted")
            })
            .collect();
        let mut completed = 0u64;
        let mut failed = 0u64;
        for h in handles {
            match h.wait() {
                Ok(_) => completed += 1,
                Err(ZqlError::Storage(e)) => {
                    prop_assert!(e.is_transient(), "only injected failures: {:?}", e);
                    failed += 1;
                }
                Err(other) => prop_assert!(false, "unexpected: {}", other),
            }
        }
        let stats = mgr.stats();
        prop_assert_eq!(stats.submitted, BURST as u64);
        prop_assert_eq!(stats.completed, completed);
        prop_assert_eq!(stats.failed, failed);
        prop_assert_eq!(stats.cancelled, 0);
        prop_assert_eq!(
            stats.completed + stats.cancelled + stats.failed,
            stats.submitted,
            "exactly-once accounting"
        );
        // Queries with serial fallback can never fail on injected faults.
        prop_assert!(completed >= (BURST as u64).div_ceil(2));
        // And the manager still serves a fresh query afterwards.
        let h = mgr
            .submit_with(
                99,
                full_scan_query(),
                SubmitOptions {
                    retry: RetryPolicy { serial_fallback: true, ..Default::default() },
                    ..Default::default()
                },
            )
            .expect("still admitting");
        prop_assert!(h.wait().is_ok(), "still serving");
    }
}
