//! SessionManager behaviour under concurrency: newest-interaction-wins
//! supersession, exact outcome bookkeeping, priority-ordered overflow,
//! admission rejection, and deadline/explicit cancellation — all on a
//! real engine (the scans these tests cancel are real scans, scheduled
//! under whatever `ZV_SCHED_*` configuration CI's matrix forces).

use std::collections::HashMap;
use std::sync::Arc;
use zql::{QueryBuilder, ZqlEngine, ZqlError, ZqlQuery};
use zv_datagen::sales::{self, SalesConfig};
use zv_server::{SessionConfig, SessionManager, SubmitError, SubmitOptions};
use zv_storage::{Atom, BitmapDb, CancelReason, CmpOp, Predicate, StorageError, Value};

/// One shared dataset (debug-mode generation and scans are the
/// dominant test cost; every test builds its own engine over the shared
/// table so stats and caches stay isolated). 60k rows keeps a debug
/// scan orders of magnitude slower than a submit call — the only timing
/// property the supersession tests rely on.
fn dataset() -> Arc<zv_storage::Table> {
    static TABLE: std::sync::OnceLock<Arc<zv_storage::Table>> = std::sync::OnceLock::new();
    TABLE
        .get_or_init(|| {
            sales::generate(&SalesConfig {
                rows: 60_000,
                products: 50,
                ..Default::default()
            })
        })
        .clone()
}

fn engine(_rows: usize) -> Arc<ZqlEngine> {
    Arc::new(ZqlEngine::new(Arc::new(BitmapDb::new(dataset()))))
}

/// A slider-step query: total sales per year for sales above `threshold`
/// — each step a *different* predicate, so every step is a fresh scan
/// (no warm cache hits hiding the work).
fn slider_query(threshold: f64) -> ZqlQuery {
    QueryBuilder::new()
        .output_row("f1", |r| {
            r.x("year")
                .y("sales")
                .constraint(Predicate::atom(Atom::NumCmp {
                    col: "sales".into(),
                    op: CmpOp::Gt,
                    value: threshold,
                }))
        })
        .build()
}

fn is_cancelled(err: &ZqlError) -> bool {
    matches!(err, ZqlError::Storage(StorageError::Cancelled))
}

/// The acceptance scenario: a burst of queries on ONE session under ≥4
/// worker threads. Every submission must end in exactly one outcome,
/// the counters must match the observed outcomes exactly, and the final
/// (newest) query must complete.
#[test]
fn slider_burst_supersedes_older_queries() {
    let mgr = SessionManager::new(
        engine(200_000),
        SessionConfig {
            max_concurrent: 4,
            max_queued: 64,
            ..Default::default()
        },
    );
    const BURST: usize = 12;
    let mut handles = Vec::with_capacity(BURST);
    for step in 0..BURST {
        let q = slider_query(step as f64 * 3.0);
        handles.push(mgr.submit(7, q).expect("admitted"));
    }
    let last_seq = handles.last().unwrap().seq();

    let mut completed = 0u64;
    let mut cancelled = 0u64;
    let mut last_result_ok = false;
    for h in handles {
        let seq = h.seq();
        let ctx = h.ctx().clone();
        match h.wait() {
            Ok(out) => {
                completed += 1;
                assert!(
                    !out.visualizations.is_empty(),
                    "a completed slider query yields its visualization"
                );
                if seq == last_seq {
                    last_result_ok = true;
                }
            }
            Err(e) => {
                assert!(is_cancelled(&e), "only cancellations expected: {e}");
                cancelled += 1;
                assert_eq!(
                    ctx.cancel_reason(),
                    Some(CancelReason::Superseded),
                    "every cancel in this burst comes from supersession"
                );
            }
        }
    }
    assert!(last_result_ok, "the newest interaction must win");
    assert!(completed >= 1);
    assert_eq!(completed + cancelled, BURST as u64);

    let stats = mgr.stats();
    assert_eq!(stats.submitted, BURST as u64);
    assert_eq!(stats.completed, completed, "exact completion bookkeeping");
    assert_eq!(stats.cancelled, cancelled, "exact cancel bookkeeping");
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.rejected, 0);
    assert_eq!(stats.queued, 0, "burst fully drained");
    assert_eq!(stats.active_sessions, 0);
    assert!(
        stats.superseded >= stats.cancelled,
        "every cancellation here was caused by a supersession \
         (a superseded query may still win the race and complete)"
    );
}

/// Different sessions never supersede each other.
#[test]
fn sessions_are_isolated() {
    let mgr = SessionManager::new(
        engine(50_000),
        SessionConfig {
            max_concurrent: 4,
            max_queued: 64,
            ..Default::default()
        },
    );
    let handles: Vec<_> = (0..8)
        .map(|s| mgr.submit(s, slider_query(s as f64)).expect("admitted"))
        .collect();
    for h in handles {
        h.wait().expect("distinct sessions all complete");
    }
    let stats = mgr.stats();
    assert_eq!(stats.completed, 8);
    assert_eq!(stats.superseded, 0);
    assert_eq!(stats.cancelled, 0);
}

/// With one worker busy, the overflow queue must pop by priority
/// (higher first), FIFO within a band.
#[test]
fn overflow_queue_pops_by_priority() {
    let mgr = SessionManager::new(
        engine(200_000),
        SessionConfig {
            max_concurrent: 1,
            max_queued: 64,
            ..Default::default()
        },
    );
    // Occupy the only worker…
    let blocker = mgr.submit(1, slider_query(0.0)).expect("admitted");
    // …then queue a low- and a high-priority query on other sessions.
    let low = mgr
        .submit_with(
            2,
            slider_query(1.0),
            SubmitOptions {
                priority: 0,
                ..Default::default()
            },
        )
        .expect("admitted");
    let high = mgr
        .submit_with(
            3,
            slider_query(2.0),
            SubmitOptions {
                priority: 5,
                ..Default::default()
            },
        )
        .expect("admitted");
    let (_b, _) = blocker.wait_timed();
    let (hr, high_done) = high.wait_timed();
    let (lr, low_done) = low.wait_timed();
    hr.expect("high-priority completes");
    lr.expect("low-priority completes");
    assert!(
        high_done <= low_done,
        "the high-priority query must be scheduled before the low-priority one"
    );
}

/// Admission control: a full overflow queue rejects new work without
/// disturbing the session's live query.
#[test]
fn full_queue_rejects_submissions() {
    let mgr = SessionManager::new(
        engine(200_000),
        SessionConfig {
            max_concurrent: 1,
            max_queued: 1,
            ..Default::default()
        },
    );
    let blocker = mgr.submit(1, slider_query(0.0)).expect("admitted");
    // Wait until the worker has *popped* the blocker (it occupies the
    // worker, not the queue) so the next submission deterministically
    // lands in the queue.
    while mgr.stats().queued > 0 && !blocker.is_finished() {
        std::thread::yield_now();
    }
    let queued = mgr.submit(2, slider_query(1.0)).expect("fits the queue");
    // The queue is now full (the blocker occupies the worker, not the
    // queue): the next submission must bounce.
    let rejected = mgr.submit(3, slider_query(2.0));
    assert!(
        matches!(rejected, Err(SubmitError::QueueFull { capacity: 1 })),
        "expected QueueFull"
    );
    let stats = mgr.stats();
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.submitted, 2, "rejected submissions are not admitted");
    blocker.wait().expect("blocker unaffected");
    queued.wait().expect("queued query unaffected");
}

/// Deadlines and explicit cancels surface as `StorageError::Cancelled`
/// with the right reason.
#[test]
fn deadline_and_explicit_cancel() {
    let mgr = SessionManager::new(engine(50_000), SessionConfig::default());
    // Pre-expired deadline: cancelled before (or while) scanning.
    let doomed = mgr
        .submit_with(
            1,
            slider_query(0.0),
            SubmitOptions {
                deadline: Some(std::time::Duration::ZERO),
                ..Default::default()
            },
        )
        .expect("admitted");
    let ctx = doomed.ctx().clone();
    let err = doomed.wait().expect_err("deadline must cancel");
    assert!(is_cancelled(&err));
    assert_eq!(ctx.cancel_reason(), Some(CancelReason::Deadline));

    // cancel_session cancels the live query of that session only.
    let h = mgr.submit(2, slider_query(1.0)).expect("admitted");
    let cancelled_any = mgr.cancel_session(2);
    let r = h.wait();
    if cancelled_any {
        if let Err(e) = &r {
            assert!(is_cancelled(e));
        }
        // (If the query finished before the cancel landed, Ok is fine.)
    } else {
        r.expect("already finished before cancel_session looked");
    }
}

/// The engine stays fully usable for plain (ctx-less) execution while a
/// manager is running — and a user-input query round-trips.
#[test]
fn manager_shares_engine_with_direct_callers() {
    let eng = engine(50_000);
    let mgr = SessionManager::new(Arc::clone(&eng), SessionConfig::default());
    let h = mgr.submit(1, slider_query(5.0)).expect("admitted");
    let direct = eng
        .execute_with_inputs(&slider_query(5.0), &HashMap::new())
        .expect("direct execution");
    let via_mgr = h.wait().expect("managed execution");
    assert_eq!(
        direct.visualizations.len(),
        via_mgr.visualizations.len(),
        "same query, same shape, whichever door it came through"
    );
    // Sanity: the dataset really has a year axis to group on.
    assert!(direct.visualizations[0]
        .series
        .points()
        .iter()
        .all(|p| Value::Float(p.1).as_f64().is_some()));
}
