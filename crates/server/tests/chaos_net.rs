//! Chaos suite for the wire: deterministic [`FaultPoint::ConnDrop`]
//! injection severs a connection mid-response and the whole stack must
//! account for it exactly — the in-flight query is cancelled with
//! [`CancelReason::ConnectionLost`] attribution, the worker slot is
//! reclaimed for other connections, and the result cache is bit-for-bit
//! untouched by the severed session's cancelled work.
//!
//! Replay-exact style: the scenario is a pure function of its seeds, so
//! it is run twice and every counter delta must match.

use std::sync::Arc;
use std::time::{Duration, Instant};

use zql::ZqlEngine;
use zv_datagen::sales::{self, SalesConfig};
use zv_server::{NetClient, NetServer, NetServerConfig, Response, SessionConfig, SubmitOptions};
use zv_storage::exec::ParallelConfig;
use zv_storage::{
    BitmapDb, BitmapDbConfig, CacheConfig, FaultPoint, FaultSpec, SchedulingMode, Value,
};

const ROWS: usize = 30_000;

/// ConnDrop decisions mix in the session id (the `epoch` argument), so
/// a seed can sever one connection and spare another. Seed-search for
/// the scenario's shape: the victim (session 1) loses its very first
/// response, the survivor (session 2) keeps its only one. Pure
/// function of the seed — identical on every run.
fn drop_seed() -> u64 {
    (0xD20B..)
        .find(|&s| {
            let spec = FaultSpec::with_rate(s, 0.5);
            spec.fires(FaultPoint::ConnDrop, 0, 1) && !spec.fires(FaultPoint::ConnDrop, 0, 2)
        })
        .expect("a severing seed exists")
}

fn dataset() -> Arc<zv_storage::Table> {
    static TABLE: std::sync::OnceLock<Arc<zv_storage::Table>> = std::sync::OnceLock::new();
    TABLE
        .get_or_init(|| {
            sales::generate(&SalesConfig {
                rows: ROWS,
                products: 20,
                ..Default::default()
            })
        })
        .clone()
}

/// Engine with a fault-free scan path — the only injection in this
/// suite is the *server's* ConnDrop spec, proving the two specs are
/// independent.
fn clean_engine() -> Arc<ZqlEngine> {
    Arc::new(ZqlEngine::new(Arc::new(BitmapDb::with_config(
        dataset(),
        BitmapDbConfig {
            parallel: ParallelConfig {
                threads: 2,
                min_parallel_rows: 0,
                sched: SchedulingMode::Morsel,
                morsel_rows: 4096,
                ..Default::default()
            },
            cache: CacheConfig::admit_all(),
            ..Default::default()
        },
    ))))
}

fn slider_text(threshold: f64) -> String {
    format!("name | x | y | constraints\n*f1 | 'year' | 'sales' | sales > {threshold}")
}

/// Outcome ledger of one scenario run (everything that must replay
/// exactly).
#[derive(Debug, PartialEq, Eq)]
struct Ledger {
    conn_drops: u64,
    sessions_lost: u64,
    completed: u64,
    cancelled: u64,
    failed: u64,
    cache_entries: u64,
    cache_insertions: u64,
    survivor_bits: Vec<(u64, Vec<u64>)>,
}

/// The scenario: one client pipelines two queries; the responder's
/// first write (the old query's superseded-cancellation) fires ConnDrop
/// at response index 0 — a truncated frame and a severed socket while
/// the *new* query is still in flight. A second client then proves the
/// pool and cache survived.
fn run_scenario() -> Ledger {
    let engine = clean_engine();
    let srv = NetServer::start(
        Arc::clone(&engine),
        "127.0.0.1:0",
        NetServerConfig {
            session: SessionConfig {
                max_concurrent: 1,
                ..SessionConfig::default()
            },
            fault: FaultSpec::with_rate(drop_seed(), 0.5),
            ..NetServerConfig::default()
        },
    )
    .expect("bind");

    let mut victim = NetClient::connect(srv.local_addr(), "").expect("connect");
    let _old = victim
        .send_query(&slider_text(2.0), SubmitOptions::default())
        .expect("send");
    let _new = victim
        .send_query(&slider_text(3.0), SubmitOptions::default())
        .expect("send");
    // The old query's cancelled-superseded frame is response 0 → the
    // connection dies mid-frame under the client.
    let err = victim
        .recv()
        .expect_err("the connection was severed mid-response");
    assert!(
        matches!(
            err.kind(),
            std::io::ErrorKind::InvalidData | std::io::ErrorKind::UnexpectedEof
        ),
        "got {err:?}"
    );

    // Server-side: the in-flight query must settle as cancelled with
    // ConnectionLost attribution (`sessions_lost`), never failed.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let s = srv.session_stats();
        if s.completed + s.cancelled + s.failed == 2 && srv.stats().sessions_lost >= 1 {
            break;
        }
        assert!(Instant::now() < deadline, "outcomes never settled: {s:?}");
        std::thread::sleep(Duration::from_millis(1));
    }

    // Slot reclaimed: a fresh connection's query completes on the same
    // single-worker pool, and its result is the fault-free answer —
    // the severed session's cancelled scan never polluted the cache.
    let mut survivor = NetClient::connect(srv.local_addr(), "").expect("reconnect");
    let resp = survivor
        .query(&slider_text(3.0), SubmitOptions::default())
        .expect("the pool survived the drop");
    let Response::Result { tables, .. } = resp else {
        panic!("expected a result, got {resp:?}");
    };
    let reference = clean_engine()
        .execute_text(&slider_text(3.0))
        .expect("reference");
    let ref_points = reference.visualizations[0].series.points();
    let wire = &tables[0].table.groups[0];
    assert_eq!(wire.xs.len(), ref_points.len());
    let survivor_bits: Vec<(u64, Vec<u64>)> = wire
        .xs
        .iter()
        .zip(&wire.ys[0])
        .map(|(x, y)| {
            let xf = match x {
                Value::Float(f) => *f,
                other => panic!("non-float x: {other:?}"),
            };
            (xf.to_bits(), vec![y.to_bits()])
        })
        .collect();
    for (i, &(x, y)) in ref_points.iter().enumerate() {
        assert_eq!(wire.xs[i], Value::Float(x));
        assert_eq!(
            wire.ys[0][i].to_bits(),
            y.to_bits(),
            "survivor result is bit-for-bit the fault-free answer"
        );
    }
    survivor.bye().expect("clean close");

    let cache = engine.database().cache_stats().expect("engine has a cache");
    let net = srv.stats();
    let sess = srv.session_stats();
    srv.shutdown();
    Ledger {
        conn_drops: net.conn_drops_injected,
        sessions_lost: net.sessions_lost,
        completed: sess.completed,
        cancelled: sess.cancelled,
        failed: sess.failed,
        cache_entries: cache.entries as u64,
        cache_insertions: cache.insertions,
        survivor_bits,
    }
}

#[test]
fn conn_drop_severs_cleanly_and_replays_exactly() {
    let first = run_scenario();
    // Exactly one injected drop; the in-flight query was attributed to
    // the lost connection; both of the victim's queries cancelled
    // (superseded + connection-lost), the survivor's completed.
    assert_eq!(first.conn_drops, 1);
    assert_eq!(first.sessions_lost, 1);
    assert_eq!(first.completed, 1, "only the survivor's query completed");
    assert_eq!(first.cancelled, 2);
    assert_eq!(first.failed, 0);
    // Cache bit-for-bit untouched by the severed session: the only
    // insertion is the survivor's completed scan.
    assert_eq!(first.cache_entries, 1);
    assert_eq!(first.cache_insertions, 1);

    // Replay-exact: the scenario is a pure function of its seeds.
    let second = run_scenario();
    assert_eq!(
        first, second,
        "counter ledger and result bits replay exactly"
    );
}

// ---------------------------------------------------------------------
// Slow-read defense (satellite): a client that trickles half a frame
// and stalls must hit the read deadline and free its connection slot.
// ---------------------------------------------------------------------

/// Which of the chaos driver's connections trickle-and-stall. The
/// server never consults [`FaultPoint::ReadStall`] — the *load driver*
/// does, FaultPoint-style, so the stall pattern is a deterministic pure
/// function of the seed (replayed by the assertions below).
fn stall_spec() -> FaultSpec {
    // Seed-search for a mixed population: some stallers, some healthy.
    (0x51A1..)
        .map(|s| FaultSpec::with_rate(s, 0.5))
        .find(|spec| {
            let fires: Vec<bool> = (0..6)
                .map(|i| spec.fires(FaultPoint::ReadStall, i, 0))
                .collect();
            fires.iter().filter(|&&f| f).count() >= 2 && fires.iter().filter(|&&f| !f).count() >= 2
        })
        .expect("a mixed stall seed exists")
}

/// Complete the handshake by hand on a raw socket, then trickle half a
/// query frame and go silent. Returns the stream with the server now
/// owing us a read-deadline reaping.
fn handshake_then_stall(addr: std::net::SocketAddr) -> std::net::TcpStream {
    use std::io::{BufReader, Write};
    use zv_server::wire::{read_frame, write_frame};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    write_frame(
        &mut stream,
        &zv_server::Request::Hello {
            version: zv_server::PROTO_VERSION,
            token: String::new(),
        }
        .to_json(),
    )
    .expect("hello");
    let welcome = read_frame(&mut reader).expect("welcome").expect("frame");
    assert!(
        matches!(
            zv_server::Response::from_json(&welcome),
            Some(zv_server::Response::Welcome { .. })
        ),
        "staller authenticated before stalling"
    );
    // Trickle: a valid length prefix and *half* the body, then silence.
    // The reader is now mid-frame — the idle defense must not apply.
    let body = br#"{"t":"query","id":1,"zql":"x"}"#;
    stream
        .write_all(format!("{}\n", body.len()).as_bytes())
        .expect("len prefix");
    stream
        .write_all(&body[..body.len() / 2])
        .expect("half body");
    stream.flush().expect("flush");
    stream
}

/// Deterministic slow-read chaos: the seeded stall pattern drives raw
/// clients; every staller is reaped within the deadline (counted in
/// `read_stalls`, slot freed), every healthy client completes, and the
/// ledger replays exactly across two runs of the same seed.
#[test]
fn stalled_readers_hit_the_deadline_and_free_their_slots() {
    const DEADLINE: Duration = Duration::from_millis(150);
    const CONNS: u64 = 6;
    let spec = stall_spec();

    let run = || {
        let srv = NetServer::start(
            clean_engine(),
            "127.0.0.1:0",
            NetServerConfig {
                read_deadline: Some(DEADLINE),
                ..NetServerConfig::default()
            },
        )
        .expect("bind");
        let mut stallers = Vec::new();
        let mut healthy_results = Vec::new();
        for i in 0..CONNS {
            if spec.fires(FaultPoint::ReadStall, i, 0) {
                stallers.push(handshake_then_stall(srv.local_addr()));
            } else {
                let mut client = NetClient::connect(srv.local_addr(), "").expect("connect");
                let resp = client
                    .query(&slider_text(3.0), SubmitOptions::default())
                    .expect("healthy query");
                // Ledger the answer payload only — ExecReport carries
                // wall-clock timings that legitimately vary run to run.
                let Response::Result { id, tables, .. } = &resp else {
                    panic!("healthy query must answer with a result, got {resp:?}");
                };
                healthy_results.push(format!("id={id} tables={tables:?}"));
                client.bye().expect("bye");
            }
        }
        let n_stalled = stallers.len() as u64;

        // Every staller must observe the server dropping it: EOF on its
        // socket, bounded by the deadline plus a generous CI margin.
        let reap_started = Instant::now();
        for stream in &stallers {
            use std::io::Read;
            stream
                .set_read_timeout(Some(DEADLINE * 40))
                .expect("client timeout");
            let mut sink = [0u8; 64];
            let mut conn = stream.try_clone().expect("clone");
            loop {
                match conn.read(&mut sink) {
                    Ok(0) => break, // the reaping we were owed
                    Ok(_) => continue,
                    Err(e) => panic!("expected EOF from reaped connection, got {e}"),
                }
            }
        }
        let reap_elapsed = reap_started.elapsed();
        assert!(
            reap_elapsed < DEADLINE * 40,
            "reaping took {reap_elapsed:?} — the deadline never fired"
        );

        // Exact bookkeeping: one read_stall per staller, no slot leaked.
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let stats = srv.stats();
            if stats.active_connections == 0 && stats.read_stalls == n_stalled {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "slots never freed / stalls miscounted: {stats:?}"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        let stats = srv.stats();
        assert_eq!(stats.accepted, CONNS);
        assert_eq!(stats.rejected, 0, "stallers must not block admission");
        srv.shutdown();
        (n_stalled, stats.read_stalls, healthy_results)
    };

    let first = run();
    assert!(first.0 >= 2, "seed search guaranteed ≥2 stallers");
    let second = run();
    assert_eq!(first, second, "stall ledger replays exactly");
}

/// The freed slot is genuinely reusable: with `max_connections: 1`, a
/// staller pins the only slot until the deadline reaps it, after which
/// a fresh client connects and completes.
#[test]
fn reaped_stall_slot_admits_the_next_client() {
    const DEADLINE: Duration = Duration::from_millis(150);
    let srv = NetServer::start(
        clean_engine(),
        "127.0.0.1:0",
        NetServerConfig {
            max_connections: 1,
            read_deadline: Some(DEADLINE),
            ..NetServerConfig::default()
        },
    )
    .expect("bind");
    let staller = handshake_then_stall(srv.local_addr());

    // While the staller holds the only slot, the front door is full.
    let refused = NetClient::connect(srv.local_addr(), "").expect_err("refused while stalled");
    assert_eq!(refused.kind(), std::io::ErrorKind::ConnectionRefused);

    // After the deadline reaps the staller, the slot admits a fresh
    // client that runs a real query end to end.
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut client = loop {
        match NetClient::connect(srv.local_addr(), "") {
            Ok(c) => break c,
            Err(_) => {
                assert!(Instant::now() < deadline, "slot never freed");
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    };
    let resp = client
        .query(&slider_text(3.0), SubmitOptions::default())
        .expect("query on reclaimed slot");
    assert!(matches!(resp, Response::Result { .. }));
    client.bye().expect("bye");
    drop(staller);
    let stats = srv.stats();
    assert_eq!(stats.read_stalls, 1);
    // The retry loop above polls while the staller pins the slot, so
    // each poll is one refusal — at least the first probe was refused.
    assert!(stats.rejected >= 1, "the pinned slot never refused anyone");
    srv.shutdown();
}

/// Pre-handshake sockets get no idle grace: a client that connects and
/// never sends a byte must be reaped after one deadline window
/// (`handshake_timeouts`) and give its slot back — otherwise N silent
/// connects exhaust `max_connections` without ever authenticating.
/// Established sessions keep unlimited between-frame idling (the
/// healthy client below outlives several deadline windows).
#[test]
fn silent_pre_handshake_connection_is_reaped_and_frees_its_slot() {
    const DEADLINE: Duration = Duration::from_millis(150);
    let srv = NetServer::start(
        clean_engine(),
        "127.0.0.1:0",
        NetServerConfig {
            max_connections: 1,
            read_deadline: Some(DEADLINE),
            ..NetServerConfig::default()
        },
    )
    .expect("bind");

    // Connect, send nothing. The only slot is now pinned by an
    // unauthenticated socket.
    let silent = std::net::TcpStream::connect(srv.local_addr()).expect("connect");

    // The server must hang up on it within the deadline (plus CI
    // margin): EOF on our side, not silence.
    {
        use std::io::Read;
        silent
            .set_read_timeout(Some(DEADLINE * 40))
            .expect("client timeout");
        let mut conn = silent.try_clone().expect("clone");
        let mut sink = [0u8; 64];
        loop {
            match conn.read(&mut sink) {
                Ok(0) => break, // reaped
                Ok(_) => continue,
                Err(e) => panic!("expected EOF from reaped silent connection, got {e}"),
            }
        }
    }

    // The freed slot admits a real client end to end, and an
    // authenticated session idling across several deadline windows is
    // NOT reaped — only the pre-handshake phase lost its grace.
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut client = loop {
        match NetClient::connect(srv.local_addr(), "") {
            Ok(c) => break c,
            Err(_) => {
                assert!(Instant::now() < deadline, "slot never freed");
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    };
    std::thread::sleep(DEADLINE * 3);
    let resp = client
        .query(&slider_text(3.0), SubmitOptions::default())
        .expect("query after idling past the deadline");
    assert!(matches!(resp, Response::Result { .. }));
    client.bye().expect("bye");
    drop(silent);

    let stats = srv.stats();
    assert_eq!(stats.handshake_timeouts, 1);
    assert_eq!(stats.read_stalls, 0, "no frame was ever in flight");
    assert_eq!(
        stats.auth_failures, 0,
        "the silent socket never reached auth"
    );
    srv.shutdown();
}
