//! Chaos suite for the wire: deterministic [`FaultPoint::ConnDrop`]
//! injection severs a connection mid-response and the whole stack must
//! account for it exactly — the in-flight query is cancelled with
//! [`CancelReason::ConnectionLost`] attribution, the worker slot is
//! reclaimed for other connections, and the result cache is bit-for-bit
//! untouched by the severed session's cancelled work.
//!
//! Replay-exact style: the scenario is a pure function of its seeds, so
//! it is run twice and every counter delta must match.

use std::sync::Arc;
use std::time::{Duration, Instant};

use zql::ZqlEngine;
use zv_datagen::sales::{self, SalesConfig};
use zv_server::{NetClient, NetServer, NetServerConfig, Response, SessionConfig, SubmitOptions};
use zv_storage::exec::ParallelConfig;
use zv_storage::{
    BitmapDb, BitmapDbConfig, CacheConfig, FaultPoint, FaultSpec, SchedulingMode, Value,
};

const ROWS: usize = 30_000;

/// ConnDrop decisions mix in the session id (the `epoch` argument), so
/// a seed can sever one connection and spare another. Seed-search for
/// the scenario's shape: the victim (session 1) loses its very first
/// response, the survivor (session 2) keeps its only one. Pure
/// function of the seed — identical on every run.
fn drop_seed() -> u64 {
    (0xD20B..)
        .find(|&s| {
            let spec = FaultSpec::with_rate(s, 0.5);
            spec.fires(FaultPoint::ConnDrop, 0, 1) && !spec.fires(FaultPoint::ConnDrop, 0, 2)
        })
        .expect("a severing seed exists")
}

fn dataset() -> Arc<zv_storage::Table> {
    static TABLE: std::sync::OnceLock<Arc<zv_storage::Table>> = std::sync::OnceLock::new();
    TABLE
        .get_or_init(|| {
            sales::generate(&SalesConfig {
                rows: ROWS,
                products: 20,
                ..Default::default()
            })
        })
        .clone()
}

/// Engine with a fault-free scan path — the only injection in this
/// suite is the *server's* ConnDrop spec, proving the two specs are
/// independent.
fn clean_engine() -> Arc<ZqlEngine> {
    Arc::new(ZqlEngine::new(Arc::new(BitmapDb::with_config(
        dataset(),
        BitmapDbConfig {
            parallel: ParallelConfig {
                threads: 2,
                min_parallel_rows: 0,
                sched: SchedulingMode::Morsel,
                morsel_rows: 4096,
                ..Default::default()
            },
            cache: CacheConfig::admit_all(),
            ..Default::default()
        },
    ))))
}

fn slider_text(threshold: f64) -> String {
    format!("name | x | y | constraints\n*f1 | 'year' | 'sales' | sales > {threshold}")
}

/// Outcome ledger of one scenario run (everything that must replay
/// exactly).
#[derive(Debug, PartialEq, Eq)]
struct Ledger {
    conn_drops: u64,
    sessions_lost: u64,
    completed: u64,
    cancelled: u64,
    failed: u64,
    cache_entries: u64,
    cache_insertions: u64,
    survivor_bits: Vec<(u64, Vec<u64>)>,
}

/// The scenario: one client pipelines two queries; the responder's
/// first write (the old query's superseded-cancellation) fires ConnDrop
/// at response index 0 — a truncated frame and a severed socket while
/// the *new* query is still in flight. A second client then proves the
/// pool and cache survived.
fn run_scenario() -> Ledger {
    let engine = clean_engine();
    let srv = NetServer::start(
        Arc::clone(&engine),
        "127.0.0.1:0",
        NetServerConfig {
            session: SessionConfig {
                max_concurrent: 1,
                ..SessionConfig::default()
            },
            fault: FaultSpec::with_rate(drop_seed(), 0.5),
            ..NetServerConfig::default()
        },
    )
    .expect("bind");

    let mut victim = NetClient::connect(srv.local_addr(), "").expect("connect");
    let _old = victim
        .send_query(&slider_text(2.0), SubmitOptions::default())
        .expect("send");
    let _new = victim
        .send_query(&slider_text(3.0), SubmitOptions::default())
        .expect("send");
    // The old query's cancelled-superseded frame is response 0 → the
    // connection dies mid-frame under the client.
    let err = victim
        .recv()
        .expect_err("the connection was severed mid-response");
    assert!(
        matches!(
            err.kind(),
            std::io::ErrorKind::InvalidData | std::io::ErrorKind::UnexpectedEof
        ),
        "got {err:?}"
    );

    // Server-side: the in-flight query must settle as cancelled with
    // ConnectionLost attribution (`sessions_lost`), never failed.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let s = srv.session_stats();
        if s.completed + s.cancelled + s.failed == 2 && srv.stats().sessions_lost >= 1 {
            break;
        }
        assert!(Instant::now() < deadline, "outcomes never settled: {s:?}");
        std::thread::sleep(Duration::from_millis(1));
    }

    // Slot reclaimed: a fresh connection's query completes on the same
    // single-worker pool, and its result is the fault-free answer —
    // the severed session's cancelled scan never polluted the cache.
    let mut survivor = NetClient::connect(srv.local_addr(), "").expect("reconnect");
    let resp = survivor
        .query(&slider_text(3.0), SubmitOptions::default())
        .expect("the pool survived the drop");
    let Response::Result { tables, .. } = resp else {
        panic!("expected a result, got {resp:?}");
    };
    let reference = clean_engine()
        .execute_text(&slider_text(3.0))
        .expect("reference");
    let ref_points = reference.visualizations[0].series.points();
    let wire = &tables[0].table.groups[0];
    assert_eq!(wire.xs.len(), ref_points.len());
    let survivor_bits: Vec<(u64, Vec<u64>)> = wire
        .xs
        .iter()
        .zip(&wire.ys[0])
        .map(|(x, y)| {
            let xf = match x {
                Value::Float(f) => *f,
                other => panic!("non-float x: {other:?}"),
            };
            (xf.to_bits(), vec![y.to_bits()])
        })
        .collect();
    for (i, &(x, y)) in ref_points.iter().enumerate() {
        assert_eq!(wire.xs[i], Value::Float(x));
        assert_eq!(
            wire.ys[0][i].to_bits(),
            y.to_bits(),
            "survivor result is bit-for-bit the fault-free answer"
        );
    }
    survivor.bye().expect("clean close");

    let cache = engine.database().cache_stats().expect("engine has a cache");
    let net = srv.stats();
    let sess = srv.session_stats();
    srv.shutdown();
    Ledger {
        conn_drops: net.conn_drops_injected,
        sessions_lost: net.sessions_lost,
        completed: sess.completed,
        cancelled: sess.cancelled,
        failed: sess.failed,
        cache_entries: cache.entries as u64,
        cache_insertions: cache.insertions,
        survivor_bits,
    }
}

#[test]
fn conn_drop_severs_cleanly_and_replays_exactly() {
    let first = run_scenario();
    // Exactly one injected drop; the in-flight query was attributed to
    // the lost connection; both of the victim's queries cancelled
    // (superseded + connection-lost), the survivor's completed.
    assert_eq!(first.conn_drops, 1);
    assert_eq!(first.sessions_lost, 1);
    assert_eq!(first.completed, 1, "only the survivor's query completed");
    assert_eq!(first.cancelled, 2);
    assert_eq!(first.failed, 0);
    // Cache bit-for-bit untouched by the severed session: the only
    // insertion is the survivor's completed scan.
    assert_eq!(first.cache_entries, 1);
    assert_eq!(first.cache_insertions, 1);

    // Replay-exact: the scenario is a pure function of its seeds.
    let second = run_scenario();
    assert_eq!(
        first, second,
        "counter ledger and result bits replay exactly"
    );
}
