//! Integration suite for the networked front door: handshake and auth,
//! query round-trips (bit-for-bit against in-process execution),
//! supersession over the wire, typed busy frames for both admission
//! layers, explicit cancel, and graceful drain.

use std::sync::Arc;
use std::time::{Duration, Instant};

use zql::ZqlEngine;
use zv_datagen::sales::{self, SalesConfig};
use zv_server::{NetClient, NetServer, NetServerConfig, Response, SessionConfig, SubmitOptions};
use zv_storage::exec::ParallelConfig;
use zv_storage::{
    BitmapDb, BitmapDbConfig, CacheConfig, CancelReason, ScanDb, ScanDbConfig, SchedulingMode,
    Value,
};

const ROWS: usize = 30_000;

fn dataset() -> Arc<zv_storage::Table> {
    static TABLE: std::sync::OnceLock<Arc<zv_storage::Table>> = std::sync::OnceLock::new();
    TABLE
        .get_or_init(|| {
            sales::generate(&SalesConfig {
                rows: ROWS,
                products: 20,
                ..Default::default()
            })
        })
        .clone()
}

fn engine() -> Arc<ZqlEngine> {
    Arc::new(ZqlEngine::new(Arc::new(BitmapDb::with_config(
        dataset(),
        BitmapDbConfig {
            parallel: ParallelConfig {
                threads: 2,
                min_parallel_rows: 0,
                sched: SchedulingMode::Morsel,
                morsel_rows: 4096,
                ..Default::default()
            },
            cache: CacheConfig::admit_all(),
            ..Default::default()
        },
    ))))
}

fn server(config: NetServerConfig) -> NetServer {
    NetServer::start(engine(), "127.0.0.1:0", config).expect("bind ephemeral port")
}

/// A server whose queries reliably outlive a localhost TCP round trip:
/// the admission-pressure test needs query `a` to still be occupying
/// the worker while `b` and `c` arrive over the wire, and a 30k-row
/// scan can finish before a freshly written frame is even read. The
/// engine's simulated per-request latency pins every execution to a
/// floor that dwarfs sub-millisecond loopback delivery, independent of
/// build profile or machine speed.
fn slow_server(config: NetServerConfig) -> NetServer {
    let engine = Arc::new(ZqlEngine::new(Arc::new(ScanDb::with_config(
        dataset(),
        ScanDbConfig {
            request_overhead: Duration::from_millis(150),
            cache: CacheConfig::admit_all(),
            ..ScanDbConfig::default()
        },
    ))));
    NetServer::start(engine, "127.0.0.1:0", config).expect("bind ephemeral port")
}

/// A full-scan "slider step": distinct thresholds make distinct
/// predicates, so no query is answered from a warm cache.
fn slider_text(threshold: f64) -> String {
    format!("name | x | y | constraints\n*f1 | 'year' | 'sales' | sales > {threshold}")
}

fn connect(server: &NetServer) -> NetClient {
    NetClient::connect(server.local_addr(), "").expect("connect")
}

#[test]
fn query_roundtrips_bit_for_bit_with_local_execution() {
    let srv = server(NetServerConfig::default());
    let mut client = connect(&srv);
    let resp = client
        .query(&slider_text(5.0), SubmitOptions::default())
        .expect("response");
    let Response::Result { tables, report, .. } = resp else {
        panic!("expected a result, got {resp:?}");
    };
    assert_eq!(tables.len(), 1);
    assert_eq!(tables[0].component, "f1");
    assert_eq!(tables[0].x, "year");
    assert_eq!(report.sql_queries, 1);
    assert!(report.rows_scanned > 0);

    // The same engine config executed in-process must agree exactly.
    let local = engine()
        .execute_text(&slider_text(5.0))
        .expect("local execution");
    let series = local.visualizations[0].series.points();
    let wire = &tables[0].table.groups[0];
    assert_eq!(wire.xs.len(), series.len());
    for (i, &(x, y)) in series.iter().enumerate() {
        assert_eq!(wire.xs[i], Value::Float(x));
        assert_eq!(
            wire.ys[0][i].to_bits(),
            y.to_bits(),
            "measure {i} survives the wire bit-for-bit"
        );
    }
    client.bye().expect("clean close");
}

#[test]
fn auth_tokens_are_enforced_per_session() {
    let srv = server(NetServerConfig {
        auth_tokens: vec!["s3cret".to_string(), "other".to_string()],
        ..NetServerConfig::default()
    });
    let err = NetClient::connect(srv.local_addr(), "wrong").expect_err("rejected");
    assert_eq!(err.kind(), std::io::ErrorKind::PermissionDenied);

    let mut ok = NetClient::connect(srv.local_addr(), "s3cret").expect("accepted");
    assert!(ok.session() > 0);
    let resp = ok
        .query(&slider_text(1.0), SubmitOptions::default())
        .expect("authed session serves queries");
    assert!(matches!(resp, Response::Result { .. }));
    let stats = srv.stats();
    assert_eq!(stats.auth_failures, 1);
    assert_eq!(stats.accepted, 2, "both sockets were accepted");
}

#[test]
fn pipelined_queries_supersede_over_the_wire() {
    let srv = server(NetServerConfig::default());
    let mut client = connect(&srv);
    // Two queries back-to-back without reading: the second supersedes
    // the first (newest-interaction-wins runs remotely too).
    let old_id = client
        .send_query(&slider_text(2.0), SubmitOptions::default())
        .expect("send");
    let new_id = client
        .send_query(&slider_text(3.0), SubmitOptions::default())
        .expect("send");
    match client.recv().expect("old query's frame") {
        Response::Cancelled { id, reason } => {
            assert_eq!(id, old_id);
            assert_eq!(reason, Some(CancelReason::Superseded));
        }
        other => panic!("expected cancelled-superseded, got {other:?}"),
    }
    match client.recv().expect("new query's frame") {
        Response::Result { id, .. } => assert_eq!(id, new_id),
        other => panic!("expected the newest query's result, got {other:?}"),
    }
    let sess = srv.session_stats();
    assert_eq!(sess.superseded, 1);
    assert_eq!(sess.completed, 1);
    assert_eq!(sess.cancelled, 1);
}

#[test]
fn full_queue_and_full_server_send_typed_busy_frames() {
    // Session-layer pressure: one worker, queue of one.
    let srv = slow_server(NetServerConfig {
        session: SessionConfig {
            max_concurrent: 1,
            max_queued: 1,
            ..SessionConfig::default()
        },
        ..NetServerConfig::default()
    });
    let mut a = connect(&srv);
    let mut b = connect(&srv);
    let mut c = connect(&srv);
    // a's query occupies the worker; b's fills the queue; c's must be
    // rejected with a typed frame, not a hang.
    let _ = a
        .send_query(&slider_text(4.0), SubmitOptions::default())
        .unwrap();
    // Wait for the worker to pop a's query so b's lands in the queue.
    // (Single-core CI runs the whole suite concurrently — deadlines
    // are generous and per-step.)
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let s = srv.session_stats();
        if s.submitted == 1 && s.queued == 0 && s.completed == 0 {
            break;
        }
        assert!(Instant::now() < deadline, "a's query never started: {s:?}");
        std::thread::sleep(Duration::from_millis(1));
    }
    let _ = b
        .send_query(&slider_text(5.5), SubmitOptions::default())
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(60);
    while srv.session_stats().queued < 1 {
        assert!(
            srv.session_stats().completed == 0,
            "a's scan outran b's submission — the queue was never full"
        );
        assert!(Instant::now() < deadline, "b's query never queued");
        std::thread::sleep(Duration::from_millis(1));
    }
    let rejected_id = c
        .send_query(&slider_text(6.5), SubmitOptions::default())
        .unwrap();
    match c.recv().expect("typed busy frame") {
        Response::Busy { id, queued, .. } => {
            assert_eq!(id, Some(rejected_id));
            assert_eq!(queued, 1, "reports the queue capacity");
        }
        other => panic!("expected busy, got {other:?}"),
    }
    assert!(matches!(a.recv().unwrap(), Response::Result { .. }));
    assert!(matches!(b.recv().unwrap(), Response::Result { .. }));
    assert_eq!(srv.session_stats().rejected, 1);

    // Connection-layer pressure: a server full of connections refuses
    // the next socket with busy at the front door.
    let tiny = server(NetServerConfig {
        max_connections: 1,
        ..NetServerConfig::default()
    });
    let _held = connect(&tiny);
    let err = NetClient::connect(tiny.local_addr(), "").expect_err("refused");
    assert_eq!(err.kind(), std::io::ErrorKind::ConnectionRefused);
    let stats = tiny.stats();
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.busy_sent, 1);
}

#[test]
fn cancel_frame_cancels_the_live_query() {
    let srv = server(NetServerConfig::default());
    let mut client = connect(&srv);
    let id = client
        .send_query(&slider_text(7.0), SubmitOptions::default())
        .expect("send");
    client.cancel().expect("cancel frame");
    match client.recv().expect("response") {
        Response::Cancelled { id: got, reason } => {
            assert_eq!(got, id);
            assert_eq!(reason, Some(CancelReason::Explicit));
        }
        // The query can win the race and finish before the cancel
        // frame is processed — that's a legal outcome, not a flake.
        Response::Result { id: got, .. } => assert_eq!(got, id),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn parse_errors_are_per_query_and_leave_the_connection_usable() {
    let srv = server(NetServerConfig::default());
    let mut client = connect(&srv);
    let resp = client
        .query("this is not zql", SubmitOptions::default())
        .expect("error frame");
    assert!(
        matches!(
            &resp,
            Response::Error {
                code: zv_server::proto::ErrorCode::Parse,
                ..
            }
        ),
        "got {resp:?}"
    );
    let resp = client
        .query(&slider_text(8.0), SubmitOptions::default())
        .expect("connection still serves");
    assert!(matches!(resp, Response::Result { .. }));
}

#[test]
fn graceful_drain_flushes_in_flight_responses_then_closes() {
    let srv = server(NetServerConfig {
        drain_timeout: Duration::from_secs(30),
        ..NetServerConfig::default()
    });
    let mut client = connect(&srv);
    let id = client
        .send_query(&slider_text(9.0), SubmitOptions::default())
        .expect("send");
    // Make sure the server admitted the query before draining.
    let deadline = Instant::now() + Duration::from_secs(20);
    while srv.session_stats().submitted < 1 {
        assert!(Instant::now() < deadline, "query never admitted");
        std::thread::sleep(Duration::from_millis(1));
    }
    srv.shutdown();
    // The in-flight response was flushed before the socket closed…
    match client.recv().expect("drain flushed the response") {
        Response::Result { id: got, .. } => assert_eq!(got, id),
        other => panic!("expected the in-flight result, got {other:?}"),
    }
    // …and the connection is now closed.
    let err = client.recv().expect_err("server is gone");
    assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
}
