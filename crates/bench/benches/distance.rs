//! Ablation: the distance metric behind `D` (DESIGN.md §5). The ℓ2
//! default is orders faster than DTW at equal usefulness for aligned
//! series — the reason it's the prototype default (§7.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use zv_analytics::{series_distance, DistanceKind, Normalize, Series};

fn wave(n: usize, phase: f64) -> Series {
    Series::from_ys(
        &(0..n)
            .map(|i| ((i as f64 / 5.0) + phase).sin() * 10.0 + i as f64 * 0.1)
            .collect::<Vec<_>>(),
    )
}

fn bench_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("series_distance");
    group.sample_size(30);
    for &n in &[32usize, 256] {
        let a = wave(n, 0.0);
        let b = wave(n, 0.7);
        for (name, kind) in [
            ("euclidean", DistanceKind::Euclidean),
            ("dtw", DistanceKind::Dtw { window: None }),
            ("dtw_banded", DistanceKind::Dtw { window: Some(8) }),
            ("kl", DistanceKind::KlDivergence),
            ("emd", DistanceKind::EarthMovers),
        ] {
            group.bench_with_input(BenchmarkId::new(name, n), &n, |bencher, _| {
                bencher
                    .iter(|| black_box(series_distance(kind, Normalize::ZScore, black_box(&a), &b)))
            });
        }
    }
    group.finish();
}

fn bench_alignment(c: &mut Criterion) {
    // The alignment + interpolation overhead when x grids disagree.
    let mut group = c.benchmark_group("alignment");
    group.sample_size(30);
    let a = Series::new((0..200).map(|i| (i as f64, (i as f64).sin())).collect());
    let b = Series::new(
        (0..200)
            .map(|i| (i as f64 + 0.5, (i as f64).cos()))
            .collect(),
    );
    group.bench_function("misaligned_grids", |bencher| {
        bencher.iter(|| {
            black_box(series_distance(
                DistanceKind::Euclidean,
                Normalize::ZScore,
                &a,
                &b,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_metrics, bench_alignment);
criterion_main!(benches);
