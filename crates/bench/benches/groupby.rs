//! Ablation: dense-array vs hash-map group lookup (DESIGN.md §5) — the
//! mechanism behind the Figure 7.5 crossover at 100% selectivity — plus
//! the serial-vs-sharded comparison and thread-scaling sweep for the
//! parallel aggregation engine at 1M rows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::cell::Cell;
use std::hint::black_box;
use std::sync::Arc;
use zv_datagen::sales::{self, product_name, SalesConfig};
use zv_datagen::skew;
use zv_storage::exec::{
    aggregate, aggregate_morsel, aggregate_parallel, compile_pred, GroupStrategy, RowSource,
};
use zv_storage::{BitmapDb, BitmapDbConfig, Database, Predicate, SelectQuery, XSpec, YSpec};

fn bench_group_strategies(c: &mut Criterion) {
    let table = sales::generate(&SalesConfig {
        rows: 200_000,
        products: 2_000,
        ..Default::default()
    });
    // Same engine, forced into each strategy.
    let dense = BitmapDb::with_config(
        table.clone(),
        BitmapDbConfig {
            dense_group_limit: u128::MAX,
            ..Default::default()
        },
    );
    let hash = BitmapDb::with_config(
        Arc::clone(&table),
        BitmapDbConfig {
            dense_group_limit: 0,
            ..Default::default()
        },
    );
    let q = SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")]).with_z("product");
    let groups = 2_000 * 7;

    let mut group = c.benchmark_group("group_lookup");
    group.sample_size(20);
    group.bench_with_input(
        BenchmarkId::new("dense_array", groups),
        &groups,
        |bencher, _| bencher.iter(|| black_box(dense.execute(&q).unwrap()).groups.len()),
    );
    group.bench_with_input(
        BenchmarkId::new("hash_map", groups),
        &groups,
        |bencher, _| bencher.iter(|| black_box(hash.execute(&q).unwrap()).groups.len()),
    );
    group.finish();
}

fn bench_selection_paths(c: &mut Criterion) {
    // Bitmap-index selection vs compiled-predicate scan on the same data.
    let table = sales::generate(&SalesConfig {
        rows: 200_000,
        products: 100,
        ..Default::default()
    });
    let bitmap = BitmapDb::new(table.clone());
    let scan = zv_storage::ScanDb::new(table);
    let q = SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")])
        .with_predicate(zv_storage::Predicate::cat_eq("product", "stapler"));

    let mut group = c.benchmark_group("selection_1pct");
    group.sample_size(20);
    group.bench_function("bitmap_index", |bencher| {
        bencher.iter(|| black_box(bitmap.execute(&q).unwrap()))
    });
    group.bench_function("predicate_scan", |bencher| {
        bencher.iter(|| black_box(scan.execute(&q).unwrap()))
    });
    group.finish();
}

/// Serial vs sharded aggregation on a 1M-row sales table, both group
/// strategies. Thread count 0 = all hardware threads; on a single-core
/// host the two bars should be within noise of each other (the sharded
/// path degrades to the serial scan).
fn bench_serial_vs_parallel(c: &mut Criterion) {
    let table = sales::generate(&SalesConfig {
        rows: 1_000_000,
        products: 500,
        ..Default::default()
    });
    let q = SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")]).with_z("product");

    let mut group = c.benchmark_group("groupby_1m");
    group.sample_size(10);
    for (name, strategy) in [
        ("dense", GroupStrategy::Dense),
        ("hash", GroupStrategy::Hash),
    ] {
        group.bench_function(format!("serial_{name}"), |bencher| {
            bencher.iter(|| {
                let src = RowSource::All(table.num_rows());
                black_box(aggregate(&table, &q, &src, strategy).unwrap())
                    .0
                    .groups
                    .len()
            })
        });
        group.bench_function(format!("parallel_{name}"), |bencher| {
            bencher.iter(|| {
                let src = RowSource::All(table.num_rows());
                black_box(aggregate_parallel(&table, &q, &src, strategy, 0).unwrap())
                    .0
                    .groups
                    .len()
            })
        });
    }
    group.finish();
}

/// Thread-scaling sweep for the sharded scan at 1M rows.
fn bench_thread_scaling(c: &mut Criterion) {
    let table = sales::generate(&SalesConfig {
        rows: 1_000_000,
        products: 500,
        ..Default::default()
    });
    let q = SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")]).with_z("product");

    let mut group = c.benchmark_group("thread_scaling_1m");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |bencher, &t| {
                bencher.iter(|| {
                    let src = RowSource::All(table.num_rows());
                    black_box(
                        aggregate_parallel(&table, &q, &src, GroupStrategy::Dense, t).unwrap(),
                    )
                    .0
                    .groups
                    .len()
                })
            },
        );
    }
    group.finish();
}

/// Static vs morsel scheduling under a skewed selective predicate at 1M
/// rows: every matching row sits in the first eighth of the table, so a
/// static split strands the accumulation work on one worker while morsel
/// claiming spreads it. On a single-core host the two collapse to the
/// same serial scan; the gap appears with real hardware threads.
fn bench_skewed_scheduling(c: &mut Criterion) {
    let table = skew::generate(1_000_000);
    let q = SelectQuery::new(XSpec::raw("key"), vec![YSpec::sum("val")]);
    let pred = skew::hot_predicate();
    let make_src = || RowSource::Filtered {
        n_rows: table.num_rows(),
        pred: compile_pred(&table, &pred).unwrap(),
    };

    let mut group = c.benchmark_group("skewed_scheduling_1m");
    group.sample_size(10);
    for threads in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("static", threads),
            &threads,
            |bencher, &t| {
                bencher.iter(|| {
                    black_box(
                        aggregate_parallel(&table, &q, &make_src(), GroupStrategy::Dense, t)
                            .unwrap(),
                    )
                    .0
                    .groups
                    .len()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("morsel", threads),
            &threads,
            |bencher, &t| {
                bencher.iter(|| {
                    black_box(
                        aggregate_morsel(&table, &q, &make_src(), GroupStrategy::Dense, t).unwrap(),
                    )
                    .0
                    .groups
                    .len()
                })
            },
        );
    }
    group.finish();
}

/// Engine-level result cache at 1M rows: a cold request (cache disabled,
/// full scan every time) vs a warm request (identical query answered from
/// the LRU without touching the table). The gap is the round-trip cost an
/// interactive session saves on every replayed slice.
fn bench_cache_cold_vs_warm(c: &mut Criterion) {
    let table = sales::generate(&SalesConfig {
        rows: 1_000_000,
        products: 500,
        ..Default::default()
    });
    let queries =
        [SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")]).with_z("product")];
    let cold_db = BitmapDb::with_config(table.clone(), BitmapDbConfig::uncached());
    let warm_db = BitmapDb::new(Arc::clone(&table));
    warm_db.run_request(&queries).unwrap(); // prime the cache

    let mut group = c.benchmark_group("cache_1m");
    group.sample_size(10);
    group.bench_function("cold_request", |bencher| {
        bencher.iter(|| black_box(cold_db.run_request(&queries).unwrap()).len())
    });
    group.bench_function("warm_request", |bencher| {
        bencher.iter(|| black_box(warm_db.run_request(&queries).unwrap()).len())
    });
    // An interactive per-product slice sweep against the cached full
    // group-by: answered by subsumption (first visit of a product) or
    // exactly (revisits) — either way zero base rows are scanned.
    let next = Cell::new(0usize);
    group.bench_function("derived_slice_sweep", |bencher| {
        bencher.iter(|| {
            let i = next.get();
            next.set((i + 1) % 500);
            let q = [
                SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")])
                    .with_predicate(Predicate::cat_eq("product", product_name(i))),
            ];
            black_box(warm_db.run_request(&q).unwrap()).len()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_group_strategies,
    bench_selection_paths,
    bench_serial_vs_parallel,
    bench_thread_scaling,
    bench_skewed_scheduling,
    bench_cache_cold_vs_warm
);
criterion_main!(benches);
