//! Ablation: dense-array vs hash-map group lookup (DESIGN.md §5) — the
//! mechanism behind the Figure 7.5 crossover at 100% selectivity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use zv_datagen::{sales, SalesConfig};
use zv_storage::{
    BitmapDb, BitmapDbConfig, Database, SelectQuery, XSpec, YSpec,
};

fn bench_group_strategies(c: &mut Criterion) {
    let table = sales::generate(&SalesConfig {
        rows: 200_000,
        products: 2_000,
        ..Default::default()
    });
    // Same engine, forced into each strategy.
    let dense = BitmapDb::with_config(
        table.clone(),
        BitmapDbConfig { dense_group_limit: u128::MAX, ..Default::default() },
    );
    let hash = BitmapDb::with_config(
        Arc::clone(&table),
        BitmapDbConfig { dense_group_limit: 0, ..Default::default() },
    );
    let q = SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")]).with_z("product");
    let groups = 2_000 * 7;

    let mut group = c.benchmark_group("group_lookup");
    group.sample_size(20);
    group.bench_with_input(BenchmarkId::new("dense_array", groups), &groups, |bencher, _| {
        bencher.iter(|| black_box(dense.execute(&q).unwrap()).groups.len())
    });
    group.bench_with_input(BenchmarkId::new("hash_map", groups), &groups, |bencher, _| {
        bencher.iter(|| black_box(hash.execute(&q).unwrap()).groups.len())
    });
    group.finish();
}

fn bench_selection_paths(c: &mut Criterion) {
    // Bitmap-index selection vs compiled-predicate scan on the same data.
    let table = sales::generate(&SalesConfig {
        rows: 200_000,
        products: 100,
        ..Default::default()
    });
    let bitmap = BitmapDb::new(table.clone());
    let scan = zv_storage::ScanDb::new(table);
    let q = SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")])
        .with_predicate(zv_storage::Predicate::cat_eq("product", "stapler"));

    let mut group = c.benchmark_group("selection_1pct");
    group.sample_size(20);
    group.bench_function("bitmap_index", |bencher| {
        bencher.iter(|| black_box(bitmap.execute(&q).unwrap()))
    });
    group.bench_function("predicate_scan", |bencher| {
        bencher.iter(|| black_box(scan.execute(&q).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_group_strategies, bench_selection_paths);
criterion_main!(benches);
