//! End-to-end ZQL execution at each of the four §5.2 optimization levels
//! (the criterion companion to the fig7_1 harness).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use zql::{OptLevel, ZqlEngine};
use zv_datagen::{sales, SalesConfig};
use zv_storage::{BitmapDb, BitmapDbConfig, DynDatabase, Value};

// Criterion re-runs each engine many times over, so the engine-level
// result cache is disabled here (`BitmapDbConfig::uncached`): these
// benches measure the §5.2 batching ladder and the task processors, not
// warm cache hits (the cache has its own group in `benches/groupby.rs`).

const QUERY: &str = "name | x | y | z | constraints | viz | process\n\
    f1 | 'year' | 'sales' | v1 <- 'product'.P | location='US' | bar.(y=agg('sum')) | v2 <- argany(v1)[t > 0] T(f1)\n\
    f2 | 'year' | 'sales' | v1 | location='UK' | bar.(y=agg('sum')) | v3 <- argany(v1)[t < 0] T(f2)\n\
    *f3 | 'year' | 'profit' | v4 <- (v2.range | v3.range) | | bar.(y=agg('sum')) |";

fn bench_opt_levels(c: &mut Criterion) {
    let db: DynDatabase = Arc::new(BitmapDb::with_config(
        sales::generate(&SalesConfig {
            rows: 200_000,
            products: 100,
            ..Default::default()
        }),
        BitmapDbConfig::uncached(),
    ));
    let products: Vec<Value> = (0..20)
        .map(|p| Value::str(sales::product_name(p)))
        .collect();

    let mut group = c.benchmark_group("table_5_1_query");
    group.sample_size(10);
    for opt in [
        OptLevel::NoOpt,
        OptLevel::IntraLine,
        OptLevel::IntraTask,
        OptLevel::InterTask,
    ] {
        let mut engine = ZqlEngine::with_opt_level(db.clone(), opt);
        engine
            .registry_mut()
            .register_value_set("P", products.clone());
        group.bench_with_input(
            BenchmarkId::new("opt", format!("{opt:?}")),
            &opt,
            |bencher, _| {
                bencher.iter(|| {
                    black_box(engine.execute_text(QUERY).unwrap())
                        .visualizations
                        .len()
                })
            },
        );
    }
    group.finish();
}

fn bench_tasks(c: &mut Criterion) {
    use zql::{representative_search, similarity_search, TaskSpec};
    use zv_analytics::Series;
    let db: DynDatabase = Arc::new(BitmapDb::with_config(
        sales::generate(&SalesConfig {
            rows: 200_000,
            products: 200,
            ..Default::default()
        }),
        BitmapDbConfig::uncached(),
    ));
    let engine = ZqlEngine::new(db);
    let spec = TaskSpec::new("year", "sales", "product");
    let sketch = Series::from_ys(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);

    let mut group = c.benchmark_group("task_processors");
    group.sample_size(10);
    group.bench_function("similarity_200", |bencher| {
        bencher.iter(|| {
            similarity_search(&engine, &spec, &sketch, 5)
                .unwrap()
                .visualizations
        })
    });
    group.bench_function("representative_200", |bencher| {
        bencher.iter(|| {
            representative_search(&engine, &spec, 10)
                .unwrap()
                .visualizations
        })
    });
    group.finish();
}

/// End-to-end ZQL with the storage pool disabled vs enabled: the same
/// Table 5.1 query and similarity task, routed serially vs sharded
/// (1M-row sales table, InterTask batching in both cases).
fn bench_parallel_routing(c: &mut Criterion) {
    use zql::{similarity_search, TaskSpec};
    use zv_analytics::Series;
    use zv_storage::ParallelConfig;

    let table = sales::generate(&SalesConfig {
        rows: 1_000_000,
        products: 100,
        ..Default::default()
    });
    let serial: DynDatabase = Arc::new(BitmapDb::with_config(
        table.clone(),
        BitmapDbConfig {
            parallel: ParallelConfig {
                threads: 1,
                min_parallel_rows: usize::MAX,
                ..Default::default()
            },
            ..BitmapDbConfig::uncached()
        },
    ));
    let sharded: DynDatabase = Arc::new(BitmapDb::with_config(
        table,
        BitmapDbConfig {
            parallel: ParallelConfig {
                threads: 0,
                min_parallel_rows: 1 << 16,
                ..Default::default()
            },
            ..BitmapDbConfig::uncached()
        },
    ));
    let products: Vec<Value> = (0..20)
        .map(|p| Value::str(sales::product_name(p)))
        .collect();
    let spec = TaskSpec::new("year", "sales", "product");
    let sketch = Series::from_ys(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);

    let mut group = c.benchmark_group("zql_parallel_1m");
    group.sample_size(10);
    for (name, db) in [("serial", &serial), ("sharded", &sharded)] {
        let mut engine = ZqlEngine::new(db.clone());
        engine
            .registry_mut()
            .register_value_set("P", products.clone());
        group.bench_function(format!("table_5_1_{name}"), |bencher| {
            bencher.iter(|| {
                black_box(engine.execute_text(QUERY).unwrap())
                    .visualizations
                    .len()
            })
        });
        group.bench_function(format!("similarity_{name}"), |bencher| {
            bencher.iter(|| {
                similarity_search(&engine, &spec, &sketch, 5)
                    .unwrap()
                    .visualizations
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_opt_levels,
    bench_tasks,
    bench_parallel_routing
);
criterion_main!(benches);
