//! Ablation: the roaring-bitmap storage model (DESIGN.md §5).
//!
//! Compares roaring AND/OR/membership against a sorted-`Vec<u32>`
//! baseline — the justification for using compressed bitmaps as the
//! index representation — and measures the array↔bitmap container
//! transition.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use zv_storage::RoaringBitmap;

fn sparse(n: u32, step: u32, offset: u32) -> Vec<u32> {
    (0..n).map(|i| i * step + offset).collect()
}

fn bench_set_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("set_intersection");
    group.sample_size(20);
    for &(n, step) in &[(10_000u32, 7u32), (100_000, 11)] {
        let a_vals = sparse(n, step, 0);
        let b_vals = sparse(n, step, step / 2);
        let a: RoaringBitmap = a_vals.iter().copied().collect();
        let b: RoaringBitmap = b_vals.iter().copied().collect();
        group.bench_with_input(BenchmarkId::new("roaring_and", n), &n, |bencher, _| {
            bencher.iter(|| black_box(a.and(&b)).len())
        });
        group.bench_with_input(BenchmarkId::new("sorted_vec_and", n), &n, |bencher, _| {
            bencher.iter(|| {
                // merge-intersection baseline
                let (mut i, mut j, mut count) = (0usize, 0usize, 0u64);
                while i < a_vals.len() && j < b_vals.len() {
                    match a_vals[i].cmp(&b_vals[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            count += 1;
                            i += 1;
                            j += 1;
                        }
                    }
                }
                black_box(count)
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("union_dense");
    group.sample_size(20);
    let a: RoaringBitmap = (0..500_000u32).collect();
    let b: RoaringBitmap = (250_000..750_000u32).collect();
    group.bench_function("roaring_or", |bencher| {
        bencher.iter(|| black_box(a.or(&b)).len())
    });
    group.finish();
}

fn bench_container_transitions(c: &mut Criterion) {
    let mut group = c.benchmark_group("container_build");
    group.sample_size(20);
    // Below the 4096 threshold: stays an array container.
    group.bench_function("array_container_4k", |bencher| {
        bencher.iter(|| {
            let mut bm = RoaringBitmap::new();
            for v in 0..4_000u32 {
                bm.insert(black_box(v * 3));
            }
            bm.len()
        })
    });
    // Above it: upgrades to a bitmap container mid-build.
    group.bench_function("bitmap_container_40k", |bencher| {
        bencher.iter(|| {
            let mut bm = RoaringBitmap::new();
            for v in 0..40_000u32 {
                bm.insert(black_box(v));
            }
            bm.len()
        })
    });
    // The ascending fast path used by the index builder.
    group.bench_function("push_ascending_40k", |bencher| {
        bencher.iter(|| {
            let mut bm = RoaringBitmap::new();
            for v in 0..40_000u32 {
                bm.push_ascending(v);
            }
            bm.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_set_ops, bench_container_transitions);
criterion_main!(benches);
