//! # zv-bench
//!
//! Experiment harnesses that regenerate **every result-bearing table and
//! figure** of the thesis's evaluation (Ch. 7–8). Each `figures::fig*`
//! function returns the report text its binary writes to
//! `bench_results/`; the `all_experiments` binary runs the lot.
//!
//! Scaled-down datasets are the default so the suite finishes in minutes;
//! pass `--full-scale` to any binary for the paper's row counts
//! (10M sales / 15M airline / 300K census / 245K housing).

use std::time::{Duration, Instant};

pub mod figures;

/// Dataset scale selection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Scale {
    pub full: bool,
}

impl Scale {
    pub fn from_args() -> Scale {
        Scale {
            full: std::env::args().any(|a| a == "--full-scale"),
        }
    }

    pub fn pick(&self, scaled: usize, full: usize) -> usize {
        if self.full {
            full
        } else {
            scaled
        }
    }
}

/// Simulated client↔server round-trip per request (DESIGN.md
/// substitution 2). Override with `ZV_REQUEST_OVERHEAD_MS`.
pub fn request_overhead() -> Duration {
    let ms = std::env::var("ZV_REQUEST_OVERHEAD_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(20);
    Duration::from_millis(ms)
}

/// Wall-clock a closure.
pub fn time_it<T>(mut f: impl FnMut() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Write a report to `bench_results/<name>.txt`.
pub fn write_result(name: &str, content: &str) -> std::io::Result<()> {
    std::fs::create_dir_all("bench_results")?;
    std::fs::write(format!("bench_results/{name}.txt"), content)
}

/// Format a duration the way the paper's plots label it.
pub fn fmt_dur(d: Duration) -> String {
    let ms = d.as_secs_f64() * 1000.0;
    if ms >= 1000.0 {
        format!("{:.2}s", ms / 1000.0)
    } else {
        format!("{ms:.1}ms")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_pick() {
        assert_eq!(Scale { full: false }.pick(10, 100), 10);
        assert_eq!(Scale { full: true }.pick(10, 100), 100);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_dur(Duration::from_millis(12)), "12.0ms");
        assert_eq!(fmt_dur(Duration::from_millis(2500)), "2.50s");
    }
}
