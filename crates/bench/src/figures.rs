//! One function per evaluation figure/table. See DESIGN.md §5 for the
//! experiment index and EXPERIMENTS.md for paper-vs-measured results.

use crate::{fmt_dur, request_overhead, Scale};
use std::fmt::Write as _;
use std::sync::Arc;
use zql::{
    outlier_search, representative_search, similarity_search, OptLevel, TaskSpec, ZqlEngine,
};
use zv_analytics::Series;
use zv_datagen::{airline, census, sales, AirlineConfig, CensusConfig, SalesConfig};
use zv_storage::{
    Agg, BitmapDb, BitmapDbConfig, CatColumn, Column, DataType, Database, DynDatabase, Field,
    Predicate, ScanDb, Schema, SelectQuery, Table, Value, XSpec, YSpec,
};

// The figures reproduce the paper's request/runtime trajectories, so the
// engine-level result cache is disabled throughout
// (`BitmapDbConfig::uncached`): repeated runs of one engine must measure
// the raw §5.2 ladder, not warm cache hits (the cache has its own bench
// group in `benches/groupby.rs`).

const OPT_LEVELS: [OptLevel; 4] = [
    OptLevel::NoOpt,
    OptLevel::IntraLine,
    OptLevel::IntraTask,
    OptLevel::InterTask,
];

fn sales_db(scale: &Scale) -> DynDatabase {
    let cfg = SalesConfig {
        rows: scale.pick(1_000_000, 10_000_000),
        products: scale.pick(200, 1000),
        ..Default::default()
    };
    Arc::new(BitmapDb::with_config(
        sales::generate(&cfg),
        BitmapDbConfig {
            request_overhead: request_overhead(),
            ..BitmapDbConfig::uncached()
        },
    ))
}

fn airline_db(scale: &Scale) -> DynDatabase {
    let cfg = AirlineConfig {
        rows: scale.pick(1_000_000, 15_000_000),
        airports: scale.pick(60, 300),
        ..Default::default()
    };
    Arc::new(BitmapDb::with_config(
        airline::generate(&cfg),
        BitmapDbConfig {
            request_overhead: request_overhead(),
            ..BitmapDbConfig::uncached()
        },
    ))
}

fn census_db(scale: &Scale) -> DynDatabase {
    let cfg = CensusConfig {
        rows: scale.pick(50_000, 300_000),
        ..Default::default()
    };
    Arc::new(BitmapDb::with_config(
        census::generate(&cfg),
        BitmapDbConfig::uncached(),
    ))
}

fn run_at_levels(
    db: &DynDatabase,
    label: &str,
    text: &str,
    setup: impl Fn(&mut ZqlEngine),
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{label}");
    let _ = writeln!(
        out,
        "  {:<12} {:>10} {:>14} {:>14}",
        "level", "runtime", "sql queries", "sql requests"
    );
    for opt in OPT_LEVELS {
        let mut engine = ZqlEngine::with_opt_level(db.clone(), opt);
        setup(&mut engine);
        let result = engine.execute_text(text).expect("query runs");
        let _ = writeln!(
            out,
            "  {:<12} {:>10} {:>14} {:>14}",
            format!("{opt:?}"),
            fmt_dur(result.report.total_time),
            result.report.sql_queries,
            result.report.requests
        );
    }
    out
}

/// Figure 7.1: runtimes and SQL-request counts for the Table 5.1 (top)
/// and Table 5.2 (bottom) queries on the synthetic sales dataset, at each
/// optimization level.
pub fn fig7_1(scale: &Scale) -> String {
    let db = sales_db(scale);
    let products: Vec<Value> = (0..20)
        .map(|p| Value::str(sales::product_name(p)))
        .collect();
    let register = move |e: &mut ZqlEngine| {
        e.registry_mut().register_value_set("P", products.clone());
    };

    let table_5_1 = "name | x | y | z | constraints | viz | process\n\
        f1 | 'year' | 'sales' | v1 <- 'product'.P | location='US' | bar.(y=agg('sum')) | v2 <- argany(v1)[t > 0] T(f1)\n\
        f2 | 'year' | 'sales' | v1 | location='UK' | bar.(y=agg('sum')) | v3 <- argany(v1)[t < 0] T(f2)\n\
        *f3 | 'year' | 'profit' | v4 <- (v2.range | v3.range) | | bar.(y=agg('sum')) |";
    let table_5_2 = "name | x | y | z | constraints | viz | process\n\
        f1 | 'city' | 'sales' | v1 <- 'product'.P | year=2010 | bar.(y=agg('sum')) |\n\
        f2 | 'city' | 'sales' | v1 | year=2015 | bar.(y=agg('sum')) | v2 <- argmax(v1)[k=10] D(f1, f2)\n\
        *f3 | 'city' | 'profit' | v2 | year=2010 | bar.(y=agg('sum')) |\n\
        *f4 | 'city' | 'profit' | v2 | year=2015 | bar.(y=agg('sum')) |";

    let mut out = String::from("Figure 7.1 — query-optimization effect (synthetic sales)\n");
    let _ = writeln!(
        out,
        "rows={}, |P|=20, request overhead={:?}\n",
        db.table().num_rows(),
        request_overhead()
    );
    out += &run_at_levels(
        &db,
        "(top) Table 5.1 — +US/-UK trend filter:",
        table_5_1,
        &register,
    );
    out.push('\n');
    out += &run_at_levels(
        &db,
        "(bottom) Table 5.2 — 2010 vs 2015 discrepancy:",
        table_5_2,
        &register,
    );
    out
}

/// Figure 7.2: the Table 7.1 (left) and Table 7.2 (right) queries on the
/// airline dataset.
pub fn fig7_2(scale: &Scale) -> String {
    let db = airline_db(scale);
    let airports: Vec<Value> = (0..10)
        .map(|a| Value::str(airline::airport_name(a)))
        .collect();
    let register = move |e: &mut ZqlEngine| {
        e.registry_mut().register_value_set("OA", airports.clone());
        e.registry_mut().register_value_set("DA", airports.clone());
    };

    // Table 7.1: airports where avg departure OR weather delay increases.
    let table_7_1 = "name | x | y | z | viz | process\n\
        f1 | 'year' | 'dep_delay' | v1 <- 'origin'.OA | bar.(y=agg('avg')) | v2 <- argany(v1)[t > 0] T(f1)\n\
        f2 | 'year' | 'weather_delay' | v1 | bar.(y=agg('avg')) | v3 <- argany(v1)[t > 0] T(f2)\n\
        *f3 | 'year' | y3 <- {'dep_delay', 'weather_delay'} | v4 <- (v2.range | v3.range) | bar.(y=agg('avg')) |";
    // Table 7.2: airports whose June vs December arrival delays differ most.
    let table_7_2 = "name | x | y | z | constraints | viz | process\n\
        f1 | 'day' | 'arr_delay' | v1 <- 'origin'.DA | month=6 | bar.(y=agg('avg')) |\n\
        f2 | 'day' | 'arr_delay' | v1 | month=12 | bar.(y=agg('avg')) | v2 <- argmax(v1)[k=10] D(f1, f2)\n\
        *f3 | 'month' | y1 <- {'arr_delay', 'weather_delay'} | v2 | | bar.(y=agg('avg')) |";

    let mut out = String::from("Figure 7.2 — query-optimization effect (airline)\n");
    let _ = writeln!(
        out,
        "rows={}, |OA|=|DA|=10, request overhead={:?}\n",
        db.table().num_rows(),
        request_overhead()
    );
    out += &run_at_levels(
        &db,
        "(left) Table 7.1 — increasing delays:",
        table_7_1,
        &register,
    );
    out.push('\n');
    out += &run_at_levels(
        &db,
        "(right) Table 7.2 — June vs December:",
        table_7_2,
        &register,
    );
    out
}

fn run_tasks(engine: &ZqlEngine, spec: &TaskSpec, sketch: &Series) -> [zql::ExecReport; 3] {
    let sim = similarity_search(engine, spec, sketch, 1)
        .expect("similarity")
        .report;
    let rep = representative_search(engine, spec, 10)
        .expect("representative")
        .report;
    let out = outlier_search(engine, spec, 10, 10)
        .expect("outlier")
        .report;
    [sim, rep, out]
}

fn task_table(reports: &[zql::ExecReport; 3]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "  {:<16} {:>12} {:>14} {:>14}",
        "task", "total", "computation", "query exec"
    );
    for (name, r) in ["similarity", "representative", "outlier"]
        .iter()
        .zip(reports)
    {
        let _ = writeln!(
            out,
            "  {:<16} {:>12} {:>14} {:>14}",
            name,
            fmt_dur(r.total_time),
            fmt_dur(r.compute_time),
            fmt_dur(r.db_time)
        );
    }
    out
}

/// Figure 7.3: task-processor performance on the two "real-world"
/// datasets (census and airline synthetic twins).
pub fn fig7_3(scale: &Scale) -> String {
    let mut out = String::from("Figure 7.3 — task processors on real-world data\n\n");
    let sketch = Series::from_ys(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);

    let census = census_db(scale);
    let engine = ZqlEngine::new(census.clone());
    let spec = TaskSpec::new("age", "wage_per_hour", "occupation").with_agg(Agg::Avg);
    let _ = writeln!(out, "census-data (rows={}):", census.table().num_rows());
    out += &task_table(&run_tasks(&engine, &spec, &sketch));

    // No simulated round-trip here: this experiment measures the task
    // processors themselves.
    let airline: DynDatabase = Arc::new(BitmapDb::with_config(
        airline::generate(&AirlineConfig {
            rows: scale.pick(1_000_000, 15_000_000),
            airports: scale.pick(60, 300),
            ..Default::default()
        }),
        BitmapDbConfig::uncached(),
    ));
    let engine = ZqlEngine::new(airline.clone());
    let spec = TaskSpec::new("year", "dep_delay", "origin").with_agg(Agg::Avg);
    let _ = writeln!(out, "\nairline (rows={}):", airline.table().num_rows());
    out += &task_table(&run_tasks(&engine, &spec, &sketch));
    out
}

/// Figure 7.4: task performance as the number of groups (x-distinct ×
/// z-distinct) grows, on the synthetic sales dataset.
pub fn fig7_4(scale: &Scale) -> String {
    let mut out = String::from(
        "Figure 7.4 — task processors vs number of groups (synthetic sales)\n\
         groups = |years| × |products| (7 × products)\n\n",
    );
    let rows = scale.pick(1_000_000, 10_000_000);
    let sketch = Series::from_ys(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
    for groups in [1_000usize, 10_000, 50_000, 100_000] {
        let products = (groups / 7).max(1);
        let table = sales::generate(&SalesConfig {
            rows,
            products,
            cities: 10,
            locations: 4,
            ..Default::default()
        });
        let engine = ZqlEngine::new(Arc::new(BitmapDb::with_config(
            table,
            BitmapDbConfig::uncached(),
        )));
        let spec = TaskSpec::new("year", "sales", "product");
        let reports = run_tasks(&engine, &spec, &sketch);
        let _ = writeln!(out, "groups={groups} (products={products}, rows={rows}):");
        out += &task_table(&reports);
        out.push('\n');
    }
    out
}

/// The Figure 7.5 microbenchmark table: columns g20..g100k (the GROUP BY
/// targets), p1/p2 (predicates, 10% selectivity each value), measure m.
fn fig7_5_table(rows: usize, seed: u64) -> Arc<Table> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let group_cards = [10usize, 50, 5_000, 25_000, 50_000];
    let mut cats: Vec<CatColumn> = group_cards
        .iter()
        .map(|&card| {
            let mut c = CatColumn::new();
            for v in 0..card {
                c.intern(&format!("v{v}"));
            }
            c
        })
        .collect();
    let mut x2 = CatColumn::new();
    x2.intern("a");
    x2.intern("b");
    let mut p1 = CatColumn::new();
    let mut p2 = CatColumn::new();
    for v in 0..10 {
        p1.intern(&format!("p{v}"));
        p2.intern(&format!("q{v}"));
    }
    let mut m: Vec<f64> = Vec::with_capacity(rows);
    for _ in 0..rows {
        for (c, &card) in cats.iter_mut().zip(&group_cards) {
            c.push_code(rng.gen_range(0..card) as u32);
        }
        x2.push_code(rng.gen_range(0..2u32));
        p1.push_code(rng.gen_range(0..10u32));
        p2.push_code(rng.gen_range(0..10u32));
        m.push(rng.gen_range(0.0..100.0));
    }
    let mut fields: Vec<Field> = group_cards
        .iter()
        .map(|&card| Field::new(format!("g{}", card * 2), DataType::Cat))
        .collect();
    fields.push(Field::new("x2", DataType::Cat));
    fields.push(Field::new("p1", DataType::Cat));
    fields.push(Field::new("p2", DataType::Cat));
    fields.push(Field::new("m", DataType::Float));
    let mut columns: Vec<Column> = cats.into_iter().map(Column::Cat).collect();
    columns.push(Column::Cat(x2));
    columns.push(Column::Cat(p1));
    columns.push(Column::Cat(p2));
    columns.push(Column::Float(m));
    Arc::new(Table::from_columns(Schema::new(fields), columns).unwrap())
}

fn bench_query(db: &dyn Database, q: &SelectQuery, reps: usize) -> std::time::Duration {
    // warm-up + best-of-n (the paper reports per-query execution time)
    let _ = db.execute(q).unwrap();
    let mut best = std::time::Duration::MAX;
    for _ in 0..reps {
        let start = std::time::Instant::now();
        let _ = db.execute(q).unwrap();
        best = best.min(start.elapsed());
    }
    best
}

/// Figure 7.5: the Roaring-bitmap engine vs the scan engine under 100%
/// and 10% selectivity, across group counts, plus the census dataset.
pub fn fig7_5(scale: &Scale) -> String {
    let rows = scale.pick(1_000_000, 10_000_000);
    let table = fig7_5_table(rows, 0xF75);
    let bitmap = BitmapDb::new(table.clone());
    let scan = ScanDb::new(table.clone());
    let reps = if scale.full { 2 } else { 3 };

    let mut out = String::from("Figure 7.5 — RoaringDB vs ScanDB (canonical grouped query)\n");
    let _ = writeln!(
        out,
        "rows={rows}; query: SELECT x2, SUM(m), Z GROUP BY Z, x2\n"
    );
    for selectivity in ["100%", "10%"] {
        let _ = writeln!(out, "selectivity {selectivity}:");
        let _ = writeln!(
            out,
            "  {:<10} {:>12} {:>12} {:>9}",
            "groups", "roaring", "scandb", "ratio"
        );
        for &z in &["g20", "g100", "g10000", "g50000", "g100000"] {
            let mut q =
                SelectQuery::new(XSpec::raw("x2"), vec![YSpec::sum("m")]).with_z(z.to_string());
            if selectivity == "10%" {
                q = q.with_predicate(Predicate::cat_eq("p1", "p3"));
            }
            let tb = bench_query(&bitmap, &q, reps);
            let ts = bench_query(&scan, &q, reps);
            let groups: usize = z[1..].parse::<usize>().unwrap() * 2;
            let _ = writeln!(
                out,
                "  {:<10} {:>12} {:>12} {:>8.2}x",
                groups,
                fmt_dur(tb),
                fmt_dur(ts),
                ts.as_secs_f64() / tb.as_secs_f64()
            );
        }
        out.push('\n');
    }

    // (c) census data at both selectivities.
    let census = census::generate(&CensusConfig {
        rows: scale.pick(50_000, 300_000),
        ..Default::default()
    });
    let bitmap = BitmapDb::new(census.clone());
    let scan = ScanDb::new(census.clone());
    let _ = writeln!(out, "census data (rows={}):", census.num_rows());
    let _ = writeln!(
        out,
        "  {:<12} {:>12} {:>12} {:>9}",
        "selectivity", "roaring", "scandb", "ratio"
    );
    for (label, pred) in [
        ("100%", Predicate::True),
        // education_1 covers roughly 10% under the skewed distribution
        ("~10%", Predicate::cat_eq("education", "education_1")),
    ] {
        let q = SelectQuery::new(XSpec::raw("sex"), vec![YSpec::avg("wage_per_hour")])
            .with_z("occupation")
            .with_predicate(pred);
        let tb = bench_query(&bitmap, &q, reps);
        let ts = bench_query(&scan, &q, reps);
        let _ = writeln!(
            out,
            "  {:<12} {:>12} {:>12} {:>8.2}x",
            label,
            fmt_dur(tb),
            fmt_dur(ts),
            ts.as_secs_f64() / tb.as_secs_f64()
        );
    }
    out
}

/// Chapter 8: Table 8.2 and Figure 8.2 from the simulated user study
/// (DESIGN.md substitution 4), plus Findings 1–2 summary statistics.
pub fn study8(scale: &Scale) -> String {
    use zv_study::{run_study, Interface, StudyConfig};
    let cfg = StudyConfig {
        housing: zv_datagen::HousingConfig {
            rows: scale.pick(24_000, 245_000),
            counties: 120,
            cities: 240,
            ..Default::default()
        },
        ..Default::default()
    };
    let r = run_study(&cfg);
    let mut out =
        String::from("Chapter 8 — simulated user study (see DESIGN.md, substitution 4)\n\n");
    let _ = writeln!(
        out,
        "Table 8.1 (participant demographics): not reproducible — human data.\n"
    );
    let _ = writeln!(out, "Findings 1–2 (completion time / accuracy):");
    let _ = writeln!(
        out,
        "  {:<24} {:>12} {:>10} {:>12} {:>10}",
        "interface", "time μ (s)", "time σ", "accuracy μ%", "acc σ"
    );
    for s in &r.interfaces {
        let _ = writeln!(
            out,
            "  {:<24} {:>12.1} {:>10.1} {:>12.1} {:>10.1}",
            s.interface.name(),
            s.mean_time(),
            s.sd_time(),
            s.mean_accuracy(),
            s.sd_accuracy()
        );
    }
    let _ = writeln!(
        out,
        "\nANOVA on completion time: F({}, {}) = {:.2}, p = {:.5}",
        r.anova.df_between, r.anova.df_within, r.anova.f, r.anova.p_value
    );
    let _ = writeln!(out, "\nTable 8.2 — Tukey's HSD on task completion time:");
    let names = ["drag-and-drop", "custom-builder", "baseline"];
    let _ = writeln!(
        out,
        "  {:<38} {:>10} {:>12} inference",
        "treatments", "Q", "p-value"
    );
    for c in &r.tukey {
        let inference = if c.significant(0.01) {
            "significant (p<0.01)"
        } else if c.significant(0.05) {
            "significant (p<0.05)"
        } else {
            "insignificant"
        };
        let _ = writeln!(
            out,
            "  {:<38} {:>10.4} {:>12.5} {}",
            format!("{} vs {}", names[c.group_a], names[c.group_b]),
            c.q,
            c.p_value,
            inference
        );
    }
    let _ = writeln!(
        out,
        "\nInter-rater agreement (Kendall's τ): {:.3} (thesis: 0.854)",
        r.inter_rater_tau
    );
    let _ = writeln!(out, "\nFigure 8.2 — accuracy within time budget (CSV):");
    let _ = writeln!(
        out,
        "  time_s,{},{},{}",
        Interface::ALL[0].name(),
        Interface::ALL[1].name(),
        Interface::ALL[2].name()
    );
    for (t, acc) in &r.accuracy_over_time {
        let _ = writeln!(out, "  {t:.0},{:.1},{:.1},{:.1}", acc[0], acc[1], acc[2]);
    }
    out
}
