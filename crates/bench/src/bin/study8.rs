//! Regenerates study8 (see DESIGN.md §5). Pass --full-scale for paper sizes.
fn main() {
    let scale = zv_bench::Scale::from_args();
    let report = zv_bench::figures::study8(&scale);
    print!("{report}");
    zv_bench::write_result("study8", &report).expect("write bench_results/study8.txt");
}
