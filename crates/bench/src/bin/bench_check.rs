//! Bench regression gate: compare a freshly generated `BENCH_groupby.json`
//! against the committed baseline and fail loudly (exit 1) when a gated
//! latency regressed past a generous noise threshold.
//!
//! ```text
//! bench_check --baseline BENCH_groupby.json --fresh fresh.json [--factor 2.5]
//! ```
//!
//! Gated metrics:
//!
//! * `cache_warm_ms`, `derived_hit_ms` — warm/derived hits never touch
//!   base rows, so they are row-count independent and compared directly.
//! * `cache_cold_ms`, `derived_cold_ms`, `morsel_skew_ms`,
//!   `morsel_skew_static_ms` — scans scale ~linearly with the table, so
//!   they are normalized to ms-per-million-rows before comparison (CI
//!   runs `--quick` at 200k rows against a 1M-row committed baseline).
//! * `cancel_latency_ms` — wall-clock from `QueryCtx::cancel()` to the
//!   scan returning `Cancelled`; bounded by one claim's worth of work,
//!   not by table size, so compared directly under a generous absolute
//!   floor (scheduler wakeup jitter dominates sub-5 ms readings).
//!
//! The default 2.5× threshold is deliberately generous: the baseline and
//! the CI runner are different machines and criterion-grade rigor is not
//! the point — catching an accidental 10× cliff on the hot path is. A
//! metric missing from the *baseline* is skipped with a note (older
//! baselines predate newer fields); a metric missing from the *fresh*
//! run fails, because that means the bench stopped measuring it.

use std::process::ExitCode;

struct Args {
    baseline: String,
    fresh: String,
    factor: f64,
}

fn parse_args() -> Args {
    let mut args = Args {
        baseline: "BENCH_groupby.json".to_string(),
        fresh: "BENCH_groupby.fresh.json".to_string(),
        factor: 2.5,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--baseline" => args.baseline = it.next().expect("--baseline PATH"),
            "--fresh" => args.fresh = it.next().expect("--fresh PATH"),
            "--factor" => {
                args.factor = it
                    .next()
                    .expect("--factor F")
                    .parse()
                    .expect("threshold factor")
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// Extract the first `"name": <number>` scalar from the (hand-rolled,
/// flat-keyed) bench JSON. Good enough for the summary fields this gate
/// reads; not a general JSON parser.
fn field(json: &str, name: &str) -> Option<f64> {
    let needle = format!("\"{name}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() -> ExitCode {
    let args = parse_args();
    let read = |path: &str| {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("bench_check: cannot read {path}: {e}");
            std::process::exit(2);
        })
    };
    let baseline = read(&args.baseline);
    let fresh = read(&args.fresh);

    // (metric, normalize per million rows?, absolute floor in ms —
    // fresh values at or below the floor always pass, because down
    // there timer jitter and cross-machine CPU differences dwarf any
    // real ratio: pointer-bump warm hits live under 0.1 ms, and cancel
    // latency is scheduler-wakeup-dominated under ~5 ms).
    const GATES: [(&str, bool, f64); 7] = [
        ("cache_warm_ms", false, 0.1),
        ("derived_hit_ms", false, 0.1),
        ("cache_cold_ms", true, 0.1),
        ("derived_cold_ms", true, 0.1),
        ("morsel_skew_ms", true, 0.1),
        ("morsel_skew_static_ms", true, 0.1),
        ("cancel_latency_ms", false, 5.0),
    ];

    let per_million = |json: &str, raw: f64| -> f64 {
        let rows = field(json, "rows").unwrap_or(1_000_000.0).max(1.0);
        raw * 1_000_000.0 / rows
    };

    let mut compared = 0usize;
    let mut failures: Vec<String> = Vec::new();
    for (name, normalize, floor_ms) in GATES {
        let Some(fresh_raw) = field(&fresh, name) else {
            failures.push(format!(
                "{name}: missing from the fresh run ({}) — the bench stopped measuring it",
                args.fresh
            ));
            continue;
        };
        let Some(base_raw) = field(&baseline, name) else {
            println!("  {name:<24} skipped (not in baseline {})", args.baseline);
            continue;
        };
        let (fresh_v, base_v, unit) = if normalize {
            (
                per_million(&fresh, fresh_raw),
                per_million(&baseline, base_raw),
                "ms/1M rows",
            )
        } else {
            (fresh_raw, base_raw, "ms")
        };
        compared += 1;
        let limit = (base_v * args.factor).max(floor_ms);
        let ratio = fresh_v / base_v.max(1e-9);
        let verdict = if fresh_v <= limit { "ok" } else { "REGRESSED" };
        println!(
            "  {name:<24} fresh {fresh_v:9.3} vs baseline {base_v:9.3} {unit}  \
             ({ratio:4.2}x, limit {:.1}x)  {verdict}",
            args.factor
        );
        if fresh_v > limit {
            failures.push(format!(
                "{name}: fresh {fresh_v:.3} {unit} is {ratio:.2}x the baseline \
                 {base_v:.3} {unit} (allowed: {:.1}x). If this slowdown is intentional, \
                 regenerate the committed baseline with `cargo run --release -p zv-bench \
                 --bin bench_groupby` and commit the new {}.",
                args.factor, args.baseline
            ));
        }
    }

    // Observability gate: cancel_latency_ms of 0.0 with zero recorded
    // mid-scan cancels means the cancel never took effect — at full
    // table size that is a cancellation regression, not a fast cancel.
    // (--quick runs at 200k rows legitimately finish scans before the
    // cancelling thread is scheduled on small hosts, so only full-size
    // runs are held to it.)
    if let (Some(rows), Some(runs)) = (field(&fresh, "rows"), field(&fresh, "cancel_runs")) {
        if rows >= 500_000.0 && runs < 1.0 {
            failures.push(format!(
                "cancel_runs: a full-size run ({rows:.0} rows) recorded no mid-scan                  cancellation — the cancel path stopped taking effect"
            ));
        }
    }

    // Report collected failures before complaining about an empty
    // comparison: a fresh run missing every field is a fresh-run bug,
    // not a baseline problem.
    if failures.is_empty() && compared == 0 {
        eprintln!(
            "bench_check: nothing compared — baseline {} has none of the gated fields",
            args.baseline
        );
        return ExitCode::from(2);
    }
    if failures.is_empty() {
        println!(
            "bench_check: {compared} metrics within {}x of baseline",
            args.factor
        );
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("bench_check FAILURE: {f}");
        }
        ExitCode::FAILURE
    }
}
