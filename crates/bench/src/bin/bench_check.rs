//! Bench regression gate: compare a freshly generated `BENCH_groupby.json`
//! against the committed baseline and fail loudly (exit 1) when a gated
//! latency regressed past a generous noise threshold.
//!
//! ```text
//! bench_check --baseline BENCH_groupby.json --fresh fresh.json [--factor 2.5]
//! bench_check --net-baseline BENCH_net.json --net-fresh BENCH_net.fresh.json
//! bench_check --persist-baseline BENCH_persist.json --persist-fresh fresh.json
//! bench_check --ivm-baseline BENCH_ivm.json --ivm-fresh BENCH_ivm.fresh.json
//! ```
//!
//! The second form gates the wire-latency summary written by
//! `bench_net` (`net_p50_ms`, `net_p99_ms`) instead; when only the
//! `--net-*` pair is given the groupby gates are skipped, so the CI
//! net-smoke leg can run independently of the criterion leg. Net
//! latencies are gated directly (baseline and fresh runs use the same
//! client/query shape) under generous absolute floors — on a 1-core
//! host 64 clients queueing on a 4-worker pool put p99 in the tens of
//! milliseconds from queueing alone, so anything at or below the floor
//! passes without consulting the ratio.
//!
//! The third form gates the durable-storage summary written by
//! `bench_persist`: `snapshot_write_ms` and `cold_load_ms` are
//! normalized to ms-per-million-rows (both scale with the table);
//! `wal_append_p50_ms` / `wal_append_p99_ms` are compared directly
//! under generous absolute floors, because a WAL append is dominated
//! by one fsync and fsync latency is a property of the host's disk,
//! not of this code.
//!
//! Gated metrics:
//!
//! * `cache_warm_ms`, `derived_hit_ms` — warm/derived hits never touch
//!   base rows, so they are row-count independent and compared directly.
//! * `cache_cold_ms`, `derived_cold_ms`, `morsel_skew_ms`,
//!   `morsel_skew_static_ms` — scans scale ~linearly with the table, so
//!   they are normalized to ms-per-million-rows before comparison (CI
//!   runs `--quick` at 200k rows against a 1M-row committed baseline).
//! * `cancel_latency_ms` — wall-clock from `QueryCtx::cancel()` to the
//!   scan returning `Cancelled`; bounded by one claim's worth of work,
//!   not by table size, so compared directly under a generous absolute
//!   floor (scheduler wakeup jitter dominates sub-5 ms readings).
//! * `fault_overhead_ratio` — armed-but-silent fault hooks vs the
//!   disabled single-branch short-circuit; already a within-run ratio,
//!   so it is gated absolutely (≤1.5) rather than against the baseline.
//! * `encoded_scan_ratio`, `compression_ratio`, `scan_gb_s` — the
//!   compressed-column section's within-run invariants: encoded scans
//!   within 1.15x of plain, the low-cardinality fixture shrinking ≥4x,
//!   and ≥0.5 logical GB/s on the encoded stress table. All absolute,
//!   sized for a 1-core CI host.
//!
//! The default 2.5× threshold is deliberately generous: the baseline and
//! the CI runner are different machines and criterion-grade rigor is not
//! the point — catching an accidental 10× cliff on the hot path is. A
//! metric missing from the *baseline* is skipped with a note (older
//! baselines predate newer fields); a metric missing from the *fresh*
//! run fails, because that means the bench stopped measuring it.

use std::process::ExitCode;

struct Args {
    baseline: String,
    fresh: String,
    factor: f64,
    /// Explicit `--baseline`/`--fresh` (groupby gates requested even
    /// when `--net-*` flags are also present).
    groupby_explicit: bool,
    net_baseline: Option<String>,
    net_fresh: Option<String>,
    persist_baseline: Option<String>,
    persist_fresh: Option<String>,
    ivm_baseline: Option<String>,
    ivm_fresh: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        baseline: "BENCH_groupby.json".to_string(),
        fresh: "BENCH_groupby.fresh.json".to_string(),
        factor: 2.5,
        groupby_explicit: false,
        net_baseline: None,
        net_fresh: None,
        persist_baseline: None,
        persist_fresh: None,
        ivm_baseline: None,
        ivm_fresh: None,
    };
    fn value_of(it: &mut impl Iterator<Item = String>, flag: &str, what: &str) -> String {
        it.next().unwrap_or_else(|| {
            eprintln!("bench_check: {flag} needs {what}");
            std::process::exit(2);
        })
    }
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--baseline" => {
                args.baseline = value_of(&mut it, "--baseline", "a PATH");
                args.groupby_explicit = true;
            }
            "--fresh" => {
                args.fresh = value_of(&mut it, "--fresh", "a PATH");
                args.groupby_explicit = true;
            }
            "--net-baseline" => {
                args.net_baseline = Some(value_of(&mut it, "--net-baseline", "a PATH"));
            }
            "--net-fresh" => {
                args.net_fresh = Some(value_of(&mut it, "--net-fresh", "a PATH"));
            }
            "--persist-baseline" => {
                args.persist_baseline = Some(value_of(&mut it, "--persist-baseline", "a PATH"));
            }
            "--persist-fresh" => {
                args.persist_fresh = Some(value_of(&mut it, "--persist-fresh", "a PATH"));
            }
            "--ivm-baseline" => {
                args.ivm_baseline = Some(value_of(&mut it, "--ivm-baseline", "a PATH"));
            }
            "--ivm-fresh" => {
                args.ivm_fresh = Some(value_of(&mut it, "--ivm-fresh", "a PATH"));
            }
            "--factor" => {
                let v = value_of(&mut it, "--factor", "a threshold factor");
                args.factor = v.parse().unwrap_or_else(|_| {
                    eprintln!("bench_check: --factor {v:?} is not a number");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!(
                    "bench_check: unknown flag {other} \
                     (expected --baseline PATH, --fresh PATH, --factor F, \
                     --net-baseline PATH, --net-fresh PATH, \
                     --persist-baseline PATH, --persist-fresh PATH, \
                     --ivm-baseline PATH, --ivm-fresh PATH)"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

/// Lookup outcome for one scalar in a bench summary. Missing and
/// malformed are deliberately distinct: a *missing* baseline field is
/// routine (older baselines predate newer metrics) while a *malformed*
/// one means the file is damaged and silently skipping it would fake a
/// passing gate.
enum Field {
    Val(f64),
    Missing,
    Malformed(String),
}

impl Field {
    fn val(&self) -> Option<f64> {
        match self {
            Field::Val(v) => Some(*v),
            _ => None,
        }
    }
}

/// Extract the first `"name": <number>` scalar from the (hand-rolled,
/// flat-keyed) bench JSON. Good enough for the summary fields this gate
/// reads; not a general JSON parser.
fn field(json: &str, name: &str) -> Field {
    let needle = format!("\"{name}\":");
    let Some(at) = json.find(&needle) else {
        return Field::Missing;
    };
    let rest = json[at + needle.len()..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    match rest[..end].parse() {
        Ok(v) => Field::Val(v),
        Err(_) => Field::Malformed(rest[..end.min(24)].to_owned()),
    }
}

fn read_or_die(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_check: cannot read {path}: {e}");
        std::process::exit(2);
    })
}

/// Like [`read_or_die`], but for committed *baseline* files: a missing
/// baseline is the one failure a contributor hits on a fresh branch
/// (new gate, no committed JSON yet), so the error names the exact
/// command that regenerates it instead of a bare ENOENT.
fn read_baseline_or_die(path: &str, regen: &str) -> String {
    match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            eprintln!(
                "bench_check: baseline {path} does not exist — generate it with \
                 `{regen}` and commit the result"
            );
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("bench_check: cannot read baseline {path}: {e}");
            std::process::exit(2);
        }
    }
}

/// Groupby / cache / morsel / fault gates over `bench_groupby`
/// summaries. `Err` carries an invocation-level exit code (damaged or
/// missing files); metric regressions accumulate in `failures`.
fn groupby_gates(
    args: &Args,
    compared: &mut usize,
    failures: &mut Vec<String>,
) -> Result<(), ExitCode> {
    let baseline = read_baseline_or_die(
        &args.baseline,
        "cargo run --release -p zv-bench --bin bench_groupby",
    );
    let fresh = read_or_die(&args.fresh);

    // Sanity before any comparison: both files must carry the numeric
    // row count the normalized gates depend on — anything else means
    // the path points at something that is not a bench_groupby summary
    // (or at one that got truncated mid-write).
    for (path, json) in [(&args.baseline, &baseline), (&args.fresh, &fresh)] {
        match field(json, "rows") {
            Field::Val(r) if r >= 1.0 => {}
            Field::Val(r) => {
                eprintln!("bench_check: {path} reports a nonsensical row count ({r})");
                return Err(ExitCode::from(2));
            }
            Field::Missing => {
                eprintln!(
                    "bench_check: {path} has no \"rows\" field — is it really a \
                     bench_groupby summary? Regenerate it with \
                     `cargo run --release -p zv-bench --bin bench_groupby`."
                );
                return Err(ExitCode::from(2));
            }
            Field::Malformed(tok) => {
                eprintln!(
                    "bench_check: {path}: \"rows\" is not a number (got {tok:?}) — \
                     the file is damaged; regenerate it with \
                     `cargo run --release -p zv-bench --bin bench_groupby`."
                );
                return Err(ExitCode::from(2));
            }
        }
    }

    // (metric, normalize per million rows?, absolute floor in ms —
    // fresh values at or below the floor always pass, because down
    // there timer jitter and cross-machine CPU differences dwarf any
    // real ratio: pointer-bump warm hits live under 0.1 ms, and cancel
    // latency is scheduler-wakeup-dominated under ~5 ms).
    const GATES: [(&str, bool, f64); 7] = [
        ("cache_warm_ms", false, 0.1),
        ("derived_hit_ms", false, 0.1),
        ("cache_cold_ms", true, 0.1),
        ("derived_cold_ms", true, 0.1),
        ("morsel_skew_ms", true, 0.1),
        ("morsel_skew_static_ms", true, 0.1),
        ("cancel_latency_ms", false, 5.0),
    ];

    let per_million = |json: &str, raw: f64| -> f64 {
        let rows = field(json, "rows").val().unwrap_or(1_000_000.0).max(1.0);
        raw * 1_000_000.0 / rows
    };

    for (name, normalize, floor_ms) in GATES {
        let fresh_raw = match field(&fresh, name) {
            Field::Val(v) => v,
            Field::Missing => {
                failures.push(format!(
                    "{name}: missing from the fresh run ({}) — the bench stopped measuring it",
                    args.fresh
                ));
                continue;
            }
            Field::Malformed(tok) => {
                failures.push(format!(
                    "{name}: malformed value {tok:?} in the fresh run ({}) — the file is \
                     damaged; rerun bench_groupby",
                    args.fresh
                ));
                continue;
            }
        };
        let base_raw = match field(&baseline, name) {
            Field::Val(v) => v,
            Field::Missing => {
                println!("  {name:<24} skipped (not in baseline {})", args.baseline);
                continue;
            }
            Field::Malformed(tok) => {
                failures.push(format!(
                    "{name}: malformed value {tok:?} in baseline {} — regenerate the \
                     baseline with bench_groupby and commit it",
                    args.baseline
                ));
                continue;
            }
        };
        let (fresh_v, base_v, unit) = if normalize {
            (
                per_million(&fresh, fresh_raw),
                per_million(&baseline, base_raw),
                "ms/1M rows",
            )
        } else {
            (fresh_raw, base_raw, "ms")
        };
        *compared += 1;
        let limit = (base_v * args.factor).max(floor_ms);
        let ratio = fresh_v / base_v.max(1e-9);
        let verdict = if fresh_v <= limit { "ok" } else { "REGRESSED" };
        println!(
            "  {name:<24} fresh {fresh_v:9.3} vs baseline {base_v:9.3} {unit}  \
             ({ratio:4.2}x, limit {:.1}x)  {verdict}",
            args.factor
        );
        if fresh_v > limit {
            // Normalized gates report the raw readings too: deciding
            // whether to re-baseline needs the actual wall-clock numbers,
            // not just ms-per-million, and re-running the bench by hand
            // to recover them wastes a CI round trip.
            let raw = if normalize {
                format!(" [raw: fresh {fresh_raw:.3} ms, baseline {base_raw:.3} ms]")
            } else {
                String::new()
            };
            failures.push(format!(
                "{name}: fresh {fresh_v:.3} {unit} is {ratio:.2}x the baseline \
                 {base_v:.3} {unit} (allowed: {:.1}x){raw}. If this slowdown is \
                 intentional, regenerate the committed baseline with `cargo run --release \
                 -p zv-bench --bin bench_groupby` and commit the new {}.",
                args.factor, args.baseline
            ));
        }
    }

    // Fault-hook overhead gate: `fault_overhead_ratio` compares an
    // armed-but-silent FaultSpec (non-zero seed, rate 0) against the
    // disabled spec's single-branch short-circuit *within one run on
    // one machine*, so it is gated absolutely instead of against the
    // baseline's value — the hooks are supposed to cost one branch per
    // morsel, and anything past the limit means an injection point
    // grew real work on the scan hot path. Skipped (with a note) when
    // the committed baseline predates the metric.
    const FAULT_RATIO_LIMIT: f64 = 1.5;
    match (
        field(&baseline, "fault_overhead_ratio"),
        field(&fresh, "fault_overhead_ratio"),
    ) {
        (Field::Missing, _) => println!(
            "  {:<24} skipped (not in baseline {})",
            "fault_overhead_ratio", args.baseline
        ),
        (_, Field::Val(ratio)) => {
            *compared += 1;
            let verdict = if ratio <= FAULT_RATIO_LIMIT {
                "ok"
            } else {
                "REGRESSED"
            };
            println!(
                "  {:<24} fresh {ratio:9.3} vs absolute limit {FAULT_RATIO_LIMIT:9.3} x  \
                 {verdict}",
                "fault_overhead_ratio"
            );
            if ratio > FAULT_RATIO_LIMIT {
                failures.push(format!(
                    "fault_overhead_ratio: armed-but-silent fault hooks cost {ratio:.2}x a \
                     disabled-spec scan (allowed: {FAULT_RATIO_LIMIT}x) — an injection point \
                     is doing real work on the hot path"
                ));
            }
        }
        (_, Field::Missing) => failures.push(format!(
            "fault_overhead_ratio: missing from the fresh run ({}) — the bench stopped \
             measuring it",
            args.fresh
        )),
        (_, Field::Malformed(tok)) => failures.push(format!(
            "fault_overhead_ratio: malformed value {tok:?} in the fresh run ({}) — the file \
             is damaged; rerun bench_groupby",
            args.fresh
        )),
    }

    // Compression gates: all three are within-run invariants of the
    // encoded-vs-plain A/B fixture (same machine, same kernel, same
    // data), so like `fault_overhead_ratio` they are gated absolutely
    // rather than against the baseline's value, and skipped with a note
    // when the committed baseline predates the compression section.
    //
    // * `encoded_scan_ratio` ≤ 1.15 — scanning packed chunks in place
    //   must not slow the group-by past noise; anything above means a
    //   decode crept onto the hot path (a materializing gather, a
    //   per-row branch in the packed kernel).
    // * `compression_ratio` ≥ 4.0 — the low-cardinality fixture must
    //   shrink at least 4x or chunk selection stopped picking the
    //   encodings it was built for.
    // * `scan_gb_s` ≥ 0.25 — logical bytes per wall-clock second on the
    //   encoded-only stress table; the floor is sized for a busy 1-core
    //   CI host (the dev box clears it ~2x; real hardware far more).
    const COMPRESSION_GATES: [(&str, bool, f64, &str); 3] = [
        (
            "encoded_scan_ratio",
            false,
            1.15,
            "encoded scans are slower than plain past the in-place-scan budget — a \
             decode crept onto the hot path",
        ),
        (
            "compression_ratio",
            true,
            4.0,
            "the low-cardinality fixture stopped compressing — chunk selection is no \
             longer picking dictionary/bit-packed/RLE where they win",
        ),
        (
            "scan_gb_s",
            true,
            0.25,
            "encoded scan throughput collapsed on the stress table",
        ),
    ];
    for (name, at_least, limit, why) in COMPRESSION_GATES {
        match (field(&baseline, name), field(&fresh, name)) {
            (Field::Missing, _) => {
                println!("  {name:<24} skipped (not in baseline {})", args.baseline);
            }
            (_, Field::Val(v)) => {
                *compared += 1;
                let ok = if at_least { v >= limit } else { v <= limit };
                let bound = if at_least { "floor" } else { "limit" };
                let verdict = if ok { "ok" } else { "REGRESSED" };
                println!("  {name:<24} fresh {v:9.3} vs absolute {bound} {limit:9.3}    {verdict}");
                if !ok {
                    failures.push(format!(
                        "{name}: {v:.3} violates the absolute {bound} of {limit} — {why}"
                    ));
                }
            }
            (_, Field::Missing) => failures.push(format!(
                "{name}: missing from the fresh run ({}) — the bench stopped measuring it",
                args.fresh
            )),
            (_, Field::Malformed(tok)) => failures.push(format!(
                "{name}: malformed value {tok:?} in the fresh run ({}) — the file is \
                 damaged; rerun bench_groupby",
                args.fresh
            )),
        }
    }

    // Observability gate: cancel_latency_ms of 0.0 with zero recorded
    // mid-scan cancels means the cancel never took effect — at full
    // table size that is a cancellation regression, not a fast cancel.
    // (--quick runs at 200k rows legitimately finish scans before the
    // cancelling thread is scheduled on small hosts, so only full-size
    // runs are held to it.)
    if let (Some(rows), Some(runs)) = (
        field(&fresh, "rows").val(),
        field(&fresh, "cancel_runs").val(),
    ) {
        if rows >= 500_000.0 && runs < 1.0 {
            failures.push(format!(
                "cancel_runs: a full-size run ({rows:.0} rows) recorded no mid-scan                  cancellation — the cancel path stopped taking effect"
            ));
        }
    }
    Ok(())
}

/// Wire-latency gates over `bench_net` summaries (`net_p50_ms`,
/// `net_p99_ms`). Baseline and fresh runs must use the same client
/// count — latencies under concurrent load are queueing-dominated, so
/// comparing a 64-client baseline to an 8-client smoke run would be
/// meaningless. Floors are generous: on a 1-core host a 64-client run
/// sits in the tens of milliseconds from queueing alone.
fn net_gates(
    args: &Args,
    compared: &mut usize,
    failures: &mut Vec<String>,
) -> Result<(), ExitCode> {
    let base_path = args
        .net_baseline
        .clone()
        .unwrap_or_else(|| "BENCH_net.json".to_string());
    let fresh_path = args
        .net_fresh
        .clone()
        .unwrap_or_else(|| "BENCH_net.fresh.json".to_string());
    let baseline = read_baseline_or_die(
        &base_path,
        &format!("cargo run --release -p zv-bench --bin bench_net -- --json {base_path}"),
    );
    let fresh = read_or_die(&fresh_path);

    for (path, json) in [(&base_path, &baseline), (&fresh_path, &fresh)] {
        match field(json, "clients").val() {
            Some(c) if c >= 1.0 => {}
            _ => {
                eprintln!(
                    "bench_check: {path} has no sane \"clients\" field — is it really a \
                     bench_net summary? Regenerate it with \
                     `cargo run --release -p zv-bench --bin bench_net -- --json {path}`."
                );
                return Err(ExitCode::from(2));
            }
        }
    }
    let base_clients = field(&baseline, "clients").val().unwrap_or(0.0);
    let fresh_clients = field(&fresh, "clients").val().unwrap_or(0.0);
    if base_clients != fresh_clients {
        eprintln!(
            "bench_check: client-count mismatch ({base_clients:.0} in {base_path} vs \
             {fresh_clients:.0} in {fresh_path}) — net latencies are queueing-dominated, \
             rerun bench_net with --clients {base_clients:.0}"
        );
        return Err(ExitCode::from(2));
    }

    // (metric, absolute floor in ms). The p99 floor is sized for
    // 1-core hosts where the whole client fleet shares the scan pool.
    const NET_GATES: [(&str, f64); 2] = [("net_p50_ms", 25.0), ("net_p99_ms", 50.0)];
    for (name, floor_ms) in NET_GATES {
        let fresh_v = match field(&fresh, name) {
            Field::Val(v) => v,
            _ => {
                failures.push(format!(
                    "{name}: missing or malformed in the fresh run ({fresh_path}) — the \
                     load generator stopped measuring it"
                ));
                continue;
            }
        };
        let base_v = match field(&baseline, name) {
            Field::Val(v) => v,
            Field::Missing => {
                println!("  {name:<24} skipped (not in baseline {base_path})");
                continue;
            }
            Field::Malformed(tok) => {
                failures.push(format!(
                    "{name}: malformed value {tok:?} in baseline {base_path} — regenerate \
                     it with bench_net and commit it"
                ));
                continue;
            }
        };
        *compared += 1;
        let limit = (base_v * args.factor).max(floor_ms);
        let ratio = fresh_v / base_v.max(1e-9);
        let verdict = if fresh_v <= limit { "ok" } else { "REGRESSED" };
        println!(
            "  {name:<24} fresh {fresh_v:9.3} vs baseline {base_v:9.3} ms  \
             ({ratio:4.2}x, limit {:.1}x, floor {floor_ms:.0} ms)  {verdict}",
            args.factor
        );
        if fresh_v > limit {
            failures.push(format!(
                "{name}: fresh {fresh_v:.3} ms is {ratio:.2}x the baseline {base_v:.3} ms \
                 (allowed: {:.1}x, floor {floor_ms:.0} ms). If this slowdown is \
                 intentional, regenerate the committed baseline with `cargo run --release \
                 -p zv-bench --bin bench_net -- --json {base_path}` and commit it.",
                args.factor
            ));
        }
    }
    Ok(())
}

/// Durable-storage gates over `bench_persist` summaries. Snapshot
/// write and cold load scale with the table, so they are normalized to
/// ms-per-million-rows (the CI leg runs fewer rows than the committed
/// 1M-row baseline). WAL append percentiles are one-fsync-dominated
/// and compared directly under floors sized for a CI host's disk: an
/// fsync on shared cloud storage can legitimately take milliseconds,
/// so the gate exists to catch the append path growing real work (an
/// extra sync, a full-table re-encode), not to benchmark the drive.
fn persist_gates(
    args: &Args,
    compared: &mut usize,
    failures: &mut Vec<String>,
) -> Result<(), ExitCode> {
    let base_path = args
        .persist_baseline
        .clone()
        .unwrap_or_else(|| "BENCH_persist.json".to_string());
    let fresh_path = args
        .persist_fresh
        .clone()
        .unwrap_or_else(|| "BENCH_persist.fresh.json".to_string());
    let baseline = read_baseline_or_die(
        &base_path,
        &format!("cargo run --release -p zv-bench --bin bench_persist -- --json {base_path}"),
    );
    let fresh = read_or_die(&fresh_path);

    for (path, json) in [(&base_path, &baseline), (&fresh_path, &fresh)] {
        match field(json, "rows").val() {
            Some(r) if r >= 1.0 => {}
            _ => {
                eprintln!(
                    "bench_check: {path} has no sane \"rows\" field — is it really a \
                     bench_persist summary? Regenerate it with \
                     `cargo run --release -p zv-bench --bin bench_persist -- --json {path}`."
                );
                return Err(ExitCode::from(2));
            }
        }
    }

    // (metric, normalize per million rows?, absolute floor in ms).
    const PERSIST_GATES: [(&str, bool, f64); 4] = [
        ("snapshot_write_ms", true, 50.0),
        ("cold_load_ms", true, 50.0),
        ("wal_append_p50_ms", false, 5.0),
        ("wal_append_p99_ms", false, 20.0),
    ];
    let per_million = |json: &str, raw: f64| -> f64 {
        let rows = field(json, "rows").val().unwrap_or(1_000_000.0).max(1.0);
        raw * 1_000_000.0 / rows
    };

    for (name, normalize, floor_ms) in PERSIST_GATES {
        let fresh_raw = match field(&fresh, name) {
            Field::Val(v) => v,
            _ => {
                failures.push(format!(
                    "{name}: missing or malformed in the fresh run ({fresh_path}) — the \
                     bench stopped measuring it"
                ));
                continue;
            }
        };
        let base_raw = match field(&baseline, name) {
            Field::Val(v) => v,
            Field::Missing => {
                println!("  {name:<24} skipped (not in baseline {base_path})");
                continue;
            }
            Field::Malformed(tok) => {
                failures.push(format!(
                    "{name}: malformed value {tok:?} in baseline {base_path} — regenerate \
                     it with bench_persist and commit it"
                ));
                continue;
            }
        };
        let (fresh_v, base_v, unit) = if normalize {
            (
                per_million(&fresh, fresh_raw),
                per_million(&baseline, base_raw),
                "ms/1M rows",
            )
        } else {
            (fresh_raw, base_raw, "ms")
        };
        *compared += 1;
        let limit = (base_v * args.factor).max(floor_ms);
        let ratio = fresh_v / base_v.max(1e-9);
        let verdict = if fresh_v <= limit { "ok" } else { "REGRESSED" };
        println!(
            "  {name:<24} fresh {fresh_v:9.3} vs baseline {base_v:9.3} {unit}  \
             ({ratio:4.2}x, limit {:.1}x, floor {floor_ms:.0} ms)  {verdict}",
            args.factor
        );
        if fresh_v > limit {
            let raw = if normalize {
                format!(" [raw: fresh {fresh_raw:.3} ms, baseline {base_raw:.3} ms]")
            } else {
                String::new()
            };
            failures.push(format!(
                "{name}: fresh {fresh_v:.3} {unit} is {ratio:.2}x the baseline \
                 {base_v:.3} {unit} (allowed: {:.1}x, floor {floor_ms:.0} ms){raw}. If \
                 this slowdown is intentional, regenerate the committed baseline with \
                 `cargo run --release -p zv-bench --bin bench_persist -- --json \
                 {base_path}` and commit it.",
                args.factor
            ));
        }
    }
    Ok(())
}

/// Incremental-view-maintenance gates over `bench_ivm` summaries. The
/// warm tick answers from a cached result plus a delta scan bounded by
/// the appended batch, so it is table-size independent and compared
/// directly under a generous floor; the cold tick is a full recompute
/// and normalized to ms-per-million-rows. Two gates are absolute,
/// within-run invariants rather than baseline comparisons:
/// `ivm_speedup` must stay at or above `IVM_SPEEDUP_FLOOR` (the whole
/// point of the delta path is a ~order-of-magnitude win over recompute
/// at dashboard tick sizes), and `ivm_rows_per_tick` must not exceed
/// the configured `tick_rows` (scanning past the appended batch means
/// the delta path silently degraded to something table-sized).
fn ivm_gates(
    args: &Args,
    compared: &mut usize,
    failures: &mut Vec<String>,
) -> Result<(), ExitCode> {
    let base_path = args
        .ivm_baseline
        .clone()
        .unwrap_or_else(|| "BENCH_ivm.json".to_string());
    let fresh_path = args
        .ivm_fresh
        .clone()
        .unwrap_or_else(|| "BENCH_ivm.fresh.json".to_string());
    let baseline = read_baseline_or_die(
        &base_path,
        &format!("cargo run --release -p zv-bench --bin bench_ivm -- --json {base_path}"),
    );
    let fresh = read_or_die(&fresh_path);

    for (path, json) in [(&base_path, &baseline), (&fresh_path, &fresh)] {
        match field(json, "rows").val() {
            Some(r) if r >= 1.0 => {}
            _ => {
                eprintln!(
                    "bench_check: {path} has no sane \"rows\" field — is it really a \
                     bench_ivm summary? Regenerate it with \
                     `cargo run --release -p zv-bench --bin bench_ivm -- --json {path}`."
                );
                return Err(ExitCode::from(2));
            }
        }
    }

    // (metric, normalize per million rows?, absolute floor in ms). The
    // warm floor is generous: a delta merge is a ~1k-row scan plus a
    // group-wise fold, which lands in the tens of microseconds on any
    // host — 5 ms of headroom is pure scheduler noise allowance.
    const IVM_GATES: [(&str, bool, f64); 2] = [
        ("warm_tick_p50_ms", false, 5.0),
        ("cold_tick_p50_ms", true, 50.0),
    ];
    let per_million = |json: &str, raw: f64| -> f64 {
        let rows = field(json, "rows").val().unwrap_or(1_000_000.0).max(1.0);
        raw * 1_000_000.0 / rows
    };

    for (name, normalize, floor_ms) in IVM_GATES {
        let fresh_raw = match field(&fresh, name) {
            Field::Val(v) => v,
            _ => {
                failures.push(format!(
                    "{name}: missing or malformed in the fresh run ({fresh_path}) — the \
                     bench stopped measuring it"
                ));
                continue;
            }
        };
        let base_raw = match field(&baseline, name) {
            Field::Val(v) => v,
            Field::Missing => {
                println!("  {name:<24} skipped (not in baseline {base_path})");
                continue;
            }
            Field::Malformed(tok) => {
                failures.push(format!(
                    "{name}: malformed value {tok:?} in baseline {base_path} — regenerate \
                     it with bench_ivm and commit it"
                ));
                continue;
            }
        };
        let (fresh_v, base_v, unit) = if normalize {
            (
                per_million(&fresh, fresh_raw),
                per_million(&baseline, base_raw),
                "ms/1M rows",
            )
        } else {
            (fresh_raw, base_raw, "ms")
        };
        *compared += 1;
        let limit = (base_v * args.factor).max(floor_ms);
        let ratio = fresh_v / base_v.max(1e-9);
        let verdict = if fresh_v <= limit { "ok" } else { "REGRESSED" };
        println!(
            "  {name:<24} fresh {fresh_v:9.3} vs baseline {base_v:9.3} {unit}  \
             ({ratio:4.2}x, limit {:.1}x, floor {floor_ms:.0} ms)  {verdict}",
            args.factor
        );
        if fresh_v > limit {
            let raw = if normalize {
                format!(" [raw: fresh {fresh_raw:.3} ms, baseline {base_raw:.3} ms]")
            } else {
                String::new()
            };
            failures.push(format!(
                "{name}: fresh {fresh_v:.3} {unit} is {ratio:.2}x the baseline \
                 {base_v:.3} {unit} (allowed: {:.1}x, floor {floor_ms:.0} ms){raw}. If \
                 this slowdown is intentional, regenerate the committed baseline with \
                 `cargo run --release -p zv-bench --bin bench_ivm -- --json {base_path}` \
                 and commit it.",
                args.factor
            ));
        }
    }

    // Speedup gate: absolute, not baseline-relative — both percentiles
    // come from the same run on the same host, so the ratio is immune
    // to machine differences. Falling under the floor means warm ticks
    // grew table-sized work (a full-column pass on the delta path, a
    // declined merge, a cache regression).
    const IVM_SPEEDUP_FLOOR: f64 = 10.0;
    match field(&fresh, "ivm_speedup") {
        Field::Val(speedup) => {
            *compared += 1;
            let verdict = if speedup >= IVM_SPEEDUP_FLOOR {
                "ok"
            } else {
                "REGRESSED"
            };
            println!(
                "  {:<24} fresh {speedup:9.3} vs absolute floor {IVM_SPEEDUP_FLOOR:9.3} x  \
                 {verdict}",
                "ivm_speedup"
            );
            if speedup < IVM_SPEEDUP_FLOOR {
                failures.push(format!(
                    "ivm_speedup: delta-merged ticks are only {speedup:.2}x faster than \
                     full recompute (required: {IVM_SPEEDUP_FLOOR}x) — the IVM path is \
                     doing table-sized work per tick"
                ));
            }
        }
        _ => failures.push(format!(
            "ivm_speedup: missing or malformed in the fresh run ({fresh_path}) — the \
             bench stopped measuring it"
        )),
    }

    // Delta-boundedness gate: the warm tick must scan only the appended
    // batch. `bench_ivm` exits nonzero if any single tick over-scanned,
    // but gate the summary too so a tampered or stale JSON cannot pass.
    if let (Some(scanned), Some(tick_rows)) = (
        field(&fresh, "ivm_rows_per_tick").val(),
        field(&fresh, "tick_rows").val(),
    ) {
        *compared += 1;
        if scanned > tick_rows {
            failures.push(format!(
                "ivm_rows_per_tick: warm ticks scanned up to {scanned:.0} rows for \
                 {tick_rows:.0}-row appends — the delta path is reading past the batch"
            ));
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = parse_args();
    let run_net = args.net_baseline.is_some() || args.net_fresh.is_some();
    let run_persist = args.persist_baseline.is_some() || args.persist_fresh.is_some();
    let run_ivm = args.ivm_baseline.is_some() || args.ivm_fresh.is_some();
    let run_groupby = args.groupby_explicit || (!run_net && !run_persist && !run_ivm);
    let mut compared = 0usize;
    let mut failures: Vec<String> = Vec::new();
    if run_groupby {
        if let Err(code) = groupby_gates(&args, &mut compared, &mut failures) {
            return code;
        }
    }
    if run_net {
        if let Err(code) = net_gates(&args, &mut compared, &mut failures) {
            return code;
        }
    }
    if run_persist {
        if let Err(code) = persist_gates(&args, &mut compared, &mut failures) {
            return code;
        }
    }
    if run_ivm {
        if let Err(code) = ivm_gates(&args, &mut compared, &mut failures) {
            return code;
        }
    }

    // Report collected failures before complaining about an empty
    // comparison: a fresh run missing every field is a fresh-run bug,
    // not a baseline problem.
    if failures.is_empty() && compared == 0 {
        eprintln!(
            "bench_check: nothing compared — baseline {} has none of the gated fields",
            args.baseline
        );
        return ExitCode::from(2);
    }
    if failures.is_empty() {
        println!(
            "bench_check: {compared} metrics within {}x of baseline",
            args.factor
        );
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("bench_check FAILURE: {f}");
        }
        ExitCode::FAILURE
    }
}
