//! `bench_net` — wire-protocol load generator and latency summary.
//!
//! Drives N concurrent [`NetClient`] connections (default 64 — the
//! connection count `zv-serve` must sustain) against either an
//! in-process [`NetServer`] or an external server (`--addr`, used by
//! the CI net-smoke leg against a spawned `zv-serve`). Each client
//! issues M full-scan queries with distinct thresholds (so the result
//! cache can't answer them all) and measures the round-trip from
//! `send_query` to its matching response frame.
//!
//! ```text
//! bench_net [--clients N] [--queries M] [--rows R] [--workers W]
//!           [--addr HOST:PORT] [--json PATH]
//! ```
//!
//! Writes a flat JSON summary (`net_p50_ms` / `net_p95_ms` /
//! `net_p99_ms` / `net_throughput_qps` …) that `bench_check
//! --net-baseline/--net-fresh` gates against the committed
//! `BENCH_net.json`.
//!
//! Bookkeeping is checked exactly, not sampled: every query must be
//! answered by exactly one frame, and the per-client outcome counts
//! must sum to `clients * queries`. In in-process mode the server-side
//! ledger is also reconciled (no failed queries, no lost sessions).
//! Any mismatch exits nonzero — this doubles as the smoke harness's
//! correctness gate.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use zql::ZqlEngine;
use zv_datagen::sales::{self, SalesConfig};
use zv_server::{NetClient, NetServer, NetServerConfig, Response, SessionConfig, SubmitOptions};
use zv_storage::exec::ParallelConfig;
use zv_storage::{BitmapDb, BitmapDbConfig, CacheConfig, SchedulingMode};

struct Args {
    clients: usize,
    queries: usize,
    rows: usize,
    threads: usize,
    workers: usize,
    addr: Option<String>,
    json: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        clients: 64,
        queries: 8,
        rows: 60_000,
        threads: 2,
        workers: 4,
        addr: None,
        json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("bench_net: {name} needs a value");
                std::process::exit(2);
            })
        };
        let parse = |name: &str, v: String| -> usize {
            v.parse().unwrap_or_else(|_| {
                eprintln!("bench_net: {name} {v:?} is not a number");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--clients" => args.clients = parse("--clients", value("--clients")),
            "--queries" => args.queries = parse("--queries", value("--queries")),
            "--rows" => args.rows = parse("--rows", value("--rows")),
            "--threads" => args.threads = parse("--threads", value("--threads")),
            "--workers" => args.workers = parse("--workers", value("--workers")),
            "--addr" => args.addr = Some(value("--addr")),
            "--json" => args.json = Some(value("--json")),
            other => {
                eprintln!("bench_net: unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// One slider step per (client, query) pair: distinct thresholds make
/// distinct predicates, so most queries are cache-cold full scans.
fn slider_text(client: usize, q: usize, queries: usize) -> String {
    let threshold = (client * queries + q) as f64 * 0.37 + 0.5;
    format!("name | x | y | constraints\n*f1 | 'year' | 'sales' | sales > {threshold}")
}

/// Per-client outcome tally plus every observed round-trip latency.
#[derive(Default)]
struct ClientLedger {
    latencies_us: Vec<u64>,
    completed: u64,
    busy: u64,
    errors: u64,
}

fn drive_client(addr: &str, client: usize, queries: usize) -> Result<ClientLedger, String> {
    let mut conn = NetClient::connect(addr, "")
        .map_err(|e| format!("client {client}: connect failed: {e}"))?;
    let mut ledger = ClientLedger::default();
    for q in 0..queries {
        let text = slider_text(client, q, queries);
        let start = Instant::now();
        let resp = conn
            .query(&text, SubmitOptions::default())
            .map_err(|e| format!("client {client} query {q}: {e}"))?;
        ledger.latencies_us.push(start.elapsed().as_micros() as u64);
        match resp {
            Response::Result { .. } => ledger.completed += 1,
            Response::Busy { .. } => ledger.busy += 1,
            Response::Cancelled { .. } | Response::Error { .. } => ledger.errors += 1,
            Response::Welcome { .. } => {
                return Err(format!("client {client}: stray welcome frame"))
            }
        }
    }
    conn.bye()
        .map_err(|e| format!("client {client}: bye failed: {e}"))?;
    Ok(ledger)
}

/// Nearest-rank percentile over a sorted sample.
fn percentile_ms(sorted_us: &[u64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted_us.len() as f64).ceil() as usize;
    sorted_us[rank.clamp(1, sorted_us.len()) - 1] as f64 / 1e3
}

fn main() -> ExitCode {
    let args = parse_args();

    // In-process server unless --addr points at an external zv-serve.
    let local = if args.addr.is_none() {
        let table = sales::generate(&SalesConfig {
            rows: args.rows,
            products: 50,
            ..Default::default()
        });
        let engine = Arc::new(ZqlEngine::new(Arc::new(BitmapDb::with_config(
            table,
            BitmapDbConfig {
                parallel: ParallelConfig {
                    threads: args.threads,
                    sched: SchedulingMode::Morsel,
                    ..Default::default()
                },
                cache: CacheConfig::admit_all(),
                ..Default::default()
            },
        ))));
        let server = NetServer::start(
            engine,
            "127.0.0.1:0",
            NetServerConfig {
                max_connections: args.clients.max(1),
                session: SessionConfig {
                    max_concurrent: args.workers,
                    // Every client can have a query waiting at once.
                    max_queued: args.clients.max(16),
                    ..SessionConfig::default()
                },
                drain_timeout: Duration::from_secs(30),
                ..NetServerConfig::default()
            },
        )
        .unwrap_or_else(|e| {
            eprintln!("bench_net: bind failed: {e}");
            std::process::exit(2);
        });
        Some(server)
    } else {
        None
    };
    let addr = match (&args.addr, &local) {
        (Some(a), _) => a.clone(),
        (None, Some(server)) => server.local_addr().to_string(),
        (None, None) => unreachable!(),
    };
    eprintln!(
        "bench_net: {} clients x {} queries against {addr} ({})",
        args.clients,
        args.queries,
        if local.is_some() {
            "in-process"
        } else {
            "external"
        }
    );

    let start = Instant::now();
    let ledgers: Vec<Result<ClientLedger, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.clients)
            .map(|client| {
                let addr = addr.as_str();
                scope.spawn(move || drive_client(addr, client, args.queries))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = start.elapsed();

    let mut latencies_us: Vec<u64> = Vec::new();
    let (mut completed, mut busy, mut errors) = (0u64, 0u64, 0u64);
    let mut failures: Vec<String> = Vec::new();
    for ledger in ledgers {
        match ledger {
            Ok(l) => {
                // Exactly one response per query, per client.
                if l.latencies_us.len() != args.queries {
                    failures.push(format!(
                        "a client saw {} responses for {} queries",
                        l.latencies_us.len(),
                        args.queries
                    ));
                }
                latencies_us.extend(l.latencies_us);
                completed += l.completed;
                busy += l.busy;
                errors += l.errors;
            }
            Err(e) => failures.push(e),
        }
    }
    let total = (args.clients * args.queries) as u64;
    if completed + busy + errors != total && failures.is_empty() {
        failures.push(format!(
            "outcomes don't sum: {completed} completed + {busy} busy + {errors} errors != {total}"
        ));
    }

    // In-process: reconcile the server's own ledger with the clients'.
    if let Some(server) = &local {
        let sess = server.session_stats();
        let net = server.stats();
        if sess.failed != 0 {
            failures.push(format!("server recorded {} failed queries", sess.failed));
        }
        if net.sessions_lost != 0 {
            failures.push(format!(
                "server lost {} sessions under a clean load",
                net.sessions_lost
            ));
        }
        if sess.completed != completed {
            failures.push(format!(
                "server completed {} but clients received {completed} results",
                sess.completed
            ));
        }
    }

    latencies_us.sort_unstable();
    let p50 = percentile_ms(&latencies_us, 50.0);
    let p95 = percentile_ms(&latencies_us, 95.0);
    let p99 = percentile_ms(&latencies_us, 99.0);
    let mean = if latencies_us.is_empty() {
        0.0
    } else {
        latencies_us.iter().sum::<u64>() as f64 / latencies_us.len() as f64 / 1e3
    };
    let qps = total as f64 / wall.as_secs_f64().max(1e-9);
    println!(
        " wire latency   p50 {p50:8.2} ms   p95 {p95:8.2} ms   p99 {p99:8.2} ms   mean {mean:8.2} ms"
    );
    println!(
        " throughput     {qps:8.1} q/s   ({total} queries in {:.2} s: {completed} completed, {busy} busy, {errors} errors)",
        wall.as_secs_f64()
    );

    if let Some(path) = &args.json {
        let json = format!(
            "{{\n  \"clients\": {},\n  \"queries_per_client\": {},\n  \"rows\": {},\n  \
             \"net_p50_ms\": {p50:.3},\n  \"net_p95_ms\": {p95:.3},\n  \"net_p99_ms\": {p99:.3},\n  \
             \"net_mean_ms\": {mean:.3},\n  \"net_throughput_qps\": {qps:.1},\n  \
             \"completed\": {completed},\n  \"busy\": {busy},\n  \"errors\": {errors}\n}}\n",
            args.clients, args.queries, args.rows,
        );
        std::fs::write(path, &json).unwrap_or_else(|e| {
            eprintln!("bench_net: cannot write {path}: {e}");
            std::process::exit(2);
        });
        eprintln!("wrote {path}");
    }

    if let Some(server) = local {
        server.shutdown();
    }
    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("bench_net FAILURE: {f}");
        }
        ExitCode::FAILURE
    }
}
