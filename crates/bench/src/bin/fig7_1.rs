//! Regenerates fig7_1 (see DESIGN.md §5). Pass --full-scale for paper sizes.
fn main() {
    let scale = zv_bench::Scale::from_args();
    let report = zv_bench::figures::fig7_1(&scale);
    print!("{report}");
    zv_bench::write_result("fig7_1", &report).expect("write bench_results/fig7_1.txt");
}
