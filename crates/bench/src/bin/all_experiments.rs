//! Runs every evaluation experiment (Figures 7.1–7.5, Chapter 8) and
//! writes each report under bench_results/. Pass --full-scale for the
//! paper's dataset sizes.
type FigureFn = fn(&zv_bench::Scale) -> String;

fn main() {
    let scale = zv_bench::Scale::from_args();
    let figures: [(&str, FigureFn); 6] = [
        ("fig7_1", zv_bench::figures::fig7_1),
        ("fig7_2", zv_bench::figures::fig7_2),
        ("fig7_3", zv_bench::figures::fig7_3),
        ("fig7_4", zv_bench::figures::fig7_4),
        ("fig7_5", zv_bench::figures::fig7_5),
        ("study8", zv_bench::figures::study8),
    ];
    for (name, f) in figures {
        println!("=== {name} ===");
        let (report, took) = zv_bench::time_it(|| f(&scale));
        print!("{report}");
        println!("[{name} finished in {}]\n", zv_bench::fmt_dur(took));
        zv_bench::write_result(name, &report).expect("write result");
    }
}
