//! Regenerates fig7_3 (see DESIGN.md §5). Pass --full-scale for paper sizes.
fn main() {
    let scale = zv_bench::Scale::from_args();
    let report = zv_bench::figures::fig7_3(&scale);
    print!("{report}");
    zv_bench::write_result("fig7_3", &report).expect("write bench_results/fig7_3.txt");
}
