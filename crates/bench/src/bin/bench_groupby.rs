//! Perf-trajectory tracker for the aggregation hot path: measures serial
//! vs sharded grouped aggregation on a generated sales table — plus the
//! engine-level result cache (cold vs warm request latency and hit rate,
//! and subsumption-derived per-Z-slice hits vs cold slice execution) —
//! and dumps a machine-readable summary.
//!
//! ```text
//! bench_groupby [--rows N] [--threads 1,2,4,8] [--reps K] [--json PATH]
//!               [--mega-rows N]
//! ```
//!
//! Writes `BENCH_groupby.json` (override with `--json`) so successive
//! PRs can diff the numbers. Speedups are relative to the serial chunked
//! scan on the same machine; on a single-core host expect ≈1.0 for the
//! sharded rows, while the cache speedup is scan-avoidance and shows up
//! regardless of core count.

use std::time::Instant;
use zv_datagen::sales::{self, product_name, SalesConfig};
use zv_datagen::skew;
use zv_storage::exec::{
    aggregate, aggregate_morsel, aggregate_parallel, compile_pred, GroupStrategy, RowSource,
};
use zv_storage::{BitmapDb, BitmapDbConfig, Database, Predicate, SelectQuery, XSpec, YSpec};

struct Args {
    rows: usize,
    /// Rows for the encoded-only compression stress table (dict/RLE
    /// chunks keep it resident: ~0.5 bytes/row instead of 16).
    mega_rows: usize,
    threads: Vec<usize>,
    reps: usize,
    json: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        rows: 1_000_000,
        mega_rows: 100_000_000,
        threads: vec![1, 2, 4, 8],
        reps: 5,
        json: "BENCH_groupby.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--rows" => args.rows = it.next().expect("--rows N").parse().expect("row count"),
            "--mega-rows" => {
                args.mega_rows = it
                    .next()
                    .expect("--mega-rows N")
                    .parse()
                    .expect("mega row count")
            }
            "--threads" => {
                args.threads = it
                    .next()
                    .expect("--threads list")
                    .split(',')
                    .map(|t| t.parse().expect("thread count"))
                    .collect()
            }
            "--reps" => args.reps = it.next().expect("--reps K").parse().expect("rep count"),
            "--json" => args.json = it.next().expect("--json PATH"),
            "--quick" => {
                args.rows = args.rows.min(200_000);
                args.mega_rows = args.mega_rows.min(2_000_000);
                args.reps = 2;
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// Structural equality with float tolerance: same groups, keys, and
/// x-values; y-values within relative 1e-9. The derived slice and the
/// direct scan reduce floats in different orders, so with forced
/// multi-worker scheduling (`ZV_SCHED_THREADS`) inexact measures can
/// differ in the last ulp — bit-for-bit derived ≡ direct is proptested
/// on exact dyadic data in `cache_derivation.rs`, which is where that
/// assertion belongs.
fn assert_close(a: &zv_storage::ResultTable, b: &zv_storage::ResultTable, what: &str) {
    assert_eq!(a.groups.len(), b.groups.len(), "{what}: group count");
    for (ga, gb) in a.groups.iter().zip(&b.groups) {
        assert_eq!(ga.key, gb.key, "{what}: group key");
        assert_eq!(ga.xs, gb.xs, "{what}: x-values");
        assert_eq!(ga.ys.len(), gb.ys.len(), "{what}: series count");
        for (ya, yb) in ga.ys.iter().zip(&gb.ys) {
            assert_eq!(ya.len(), yb.len(), "{what}: series length");
            for (va, vb) in ya.iter().zip(yb) {
                let tol = 1e-9 * va.abs().max(vb.abs()).max(1.0);
                assert!(
                    (va - vb).abs() <= tol,
                    "{what}: y diverged beyond float merge-order tolerance ({va} vs {vb})"
                );
            }
        }
    }
}

/// Best-of-`reps` wall-clock in milliseconds.
fn best_ms(reps: usize, mut f: impl FnMut() -> usize) -> (f64, usize) {
    let mut best = f64::INFINITY;
    let mut out = 0;
    for _ in 0..reps {
        let start = Instant::now();
        out = f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    (best, out)
}

fn main() {
    let args = parse_args();
    let hardware = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!(
        "generating {} sales rows ({} hardware threads available)…",
        args.rows, hardware
    );
    let table = sales::generate(&SalesConfig {
        rows: args.rows,
        products: 500,
        ..Default::default()
    });
    let q = SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")]).with_z("product");

    let mut entries: Vec<String> = Vec::new();
    let mut summary: Vec<String> = Vec::new();
    for (name, strategy) in [
        ("dense", GroupStrategy::Dense),
        ("hash", GroupStrategy::Hash),
    ] {
        let (serial_ms, groups) = best_ms(args.reps, || {
            let src = RowSource::All(table.num_rows());
            aggregate(&table, &q, &src, strategy)
                .unwrap()
                .0
                .groups
                .len()
        });
        println!("{name:>6} serial      {serial_ms:9.2} ms   ({groups} groups)");
        entries.push(format!(
            "    {{\"strategy\": \"{name}\", \"mode\": \"serial\", \"threads\": 1, \
             \"best_ms\": {serial_ms:.3}}}"
        ));
        for &t in &args.threads {
            let (par_ms, pgroups) = best_ms(args.reps, || {
                let src = RowSource::All(table.num_rows());
                aggregate_parallel(&table, &q, &src, strategy, t)
                    .unwrap()
                    .0
                    .groups
                    .len()
            });
            assert_eq!(pgroups, groups, "parallel result diverged");
            let speedup = serial_ms / par_ms;
            println!("{name:>6} parallel×{t:<2} {par_ms:9.2} ms   speedup {speedup:5.2}×");
            entries.push(format!(
                "    {{\"strategy\": \"{name}\", \"mode\": \"parallel\", \"threads\": {t}, \
                 \"best_ms\": {par_ms:.3}, \"speedup\": {speedup:.3}}}"
            ));
            if Some(&t) == args.threads.iter().max() {
                summary.push(format!("\"{name}_max_speedup\": {speedup:.3}"));
            }
        }
    }

    // Morsel vs static scheduling under a *skewed* selective predicate:
    // every matching row sits in the first eighth of the table, so a
    // static contiguous split strands all the accumulation work on its
    // first worker while the others only evaluate the (cheap) filter;
    // morsel claiming lets free workers absorb the hot region. On a
    // single-core host both collapse to the same serial scan (expect
    // ≈1.0×); the gap appears with real hardware threads.
    {
        let skew_table = skew::generate(args.rows);
        let skew_q = SelectQuery::new(
            XSpec::raw("key"),
            vec![
                YSpec::sum("val"),
                YSpec::new("val", zv_storage::Agg::Min),
                YSpec::new("val", zv_storage::Agg::Max),
            ],
        );
        let pred = skew::hot_predicate();
        let make_src = || RowSource::Filtered {
            n_rows: skew_table.num_rows(),
            pred: compile_pred(&skew_table, &pred).unwrap(),
        };
        // Bit-for-bit reference (the measures are exactly representable,
        // so every scheduler must reproduce the serial result exactly).
        let reference = aggregate(&skew_table, &skew_q, &make_src(), GroupStrategy::Dense)
            .unwrap()
            .0;
        let (serial_ms, groups) = best_ms(args.reps, || {
            aggregate(&skew_table, &skew_q, &make_src(), GroupStrategy::Dense)
                .unwrap()
                .0
                .groups
                .len()
        });
        println!("  skew serial      {serial_ms:9.2} ms   ({groups} groups)");
        entries.push(format!(
            "    {{\"strategy\": \"skew_serial\", \"mode\": \"serial\", \"threads\": 1, \
             \"best_ms\": {serial_ms:.3}}}"
        ));
        let mut static_best = f64::INFINITY;
        let mut morsel_best = f64::INFINITY;
        for &t in &args.threads {
            // Interleave the A/B reps so slow machine drift (page cache,
            // background load) cancels instead of biasing one scheduler.
            let mut static_ms = f64::INFINITY;
            let mut morsel_ms = f64::INFINITY;
            for _ in 0..args.reps.max(3) {
                let start = Instant::now();
                let stat =
                    aggregate_parallel(&skew_table, &skew_q, &make_src(), GroupStrategy::Dense, t)
                        .unwrap()
                        .0;
                static_ms = static_ms.min(start.elapsed().as_secs_f64() * 1e3);
                let start = Instant::now();
                let mor =
                    aggregate_morsel(&skew_table, &skew_q, &make_src(), GroupStrategy::Dense, t)
                        .unwrap()
                        .0;
                morsel_ms = morsel_ms.min(start.elapsed().as_secs_f64() * 1e3);
                // Full-result comparison (outside the timed windows):
                // group counts alone would be vacuously 1 here (no Z).
                assert_eq!(stat, reference, "static skew result diverged");
                assert_eq!(mor, reference, "morsel skew result diverged");
            }
            // Only real fan-outs feed the summary comparison: at one
            // thread both schedulers fall back to the identical serial
            // scan, so any difference there is pure timing noise.
            if t >= 2 {
                static_best = static_best.min(static_ms);
                morsel_best = morsel_best.min(morsel_ms);
            }
            let ratio = static_ms / morsel_ms;
            println!(
                "  skew static×{t:<2}   {static_ms:9.2} ms | morsel×{t:<2} {morsel_ms:9.2} ms   \
                 morsel speedup {ratio:5.2}×"
            );
            entries.push(format!(
                "    {{\"strategy\": \"skew_static\", \"mode\": \"parallel\", \"threads\": {t}, \
                 \"best_ms\": {static_ms:.3}}}"
            ));
            entries.push(format!(
                "    {{\"strategy\": \"skew_morsel\", \"mode\": \"parallel\", \"threads\": {t}, \
                 \"best_ms\": {morsel_ms:.3}, \"speedup\": {ratio:.3}}}"
            ));
        }
        if !static_best.is_finite() || !morsel_best.is_finite() {
            // No multi-thread entries in the sweep: report the serial
            // latency for both rather than NaN.
            static_best = serial_ms;
            morsel_best = serial_ms;
        }
        let morsel_speedup = static_best / morsel_best.max(1e-6);
        summary.push(format!("\"morsel_skew_serial_ms\": {serial_ms:.3}"));
        summary.push(format!("\"morsel_skew_static_ms\": {static_best:.3}"));
        summary.push(format!("\"morsel_skew_ms\": {morsel_best:.3}"));
        summary.push(format!("\"morsel_speedup_vs_static\": {morsel_speedup:.3}"));
    }

    // Engine-level result cache: one cold request (scan + insert), then
    // best-of-reps warm requests on the same engine (pure cache hits).
    // Admission policy is not what this harness measures: admit
    // everything so tiny `--rows` runs still exercise the warm and
    // derived paths instead of tripping the zero-scan asserts.
    let db = BitmapDb::with_config(
        table.clone(),
        BitmapDbConfig {
            cache: zv_storage::CacheConfig::admit_all(),
            ..Default::default()
        },
    );
    let queries = std::slice::from_ref(&q);
    let start = Instant::now();
    let cold_groups = db.run_request(queries).expect("cold request")[0]
        .groups
        .len();
    let cold_ms = start.elapsed().as_secs_f64() * 1e3;
    let (warm_ms, warm_groups) = best_ms(args.reps.max(3), || {
        db.run_request(queries).expect("warm request")[0]
            .groups
            .len()
    });
    assert_eq!(cold_groups, warm_groups, "cached result diverged");
    let cache = db.cache_stats().expect("default engine carries a cache");
    let hit_rate = cache.hit_rate();
    let cache_speedup = cold_ms / warm_ms.max(1e-6);
    println!(" cache cold        {cold_ms:9.2} ms   ({cold_groups} groups)");
    println!(
        " cache warm        {warm_ms:9.2} ms   speedup {cache_speedup:5.2}×  hit rate {:.2}",
        hit_rate
    );
    entries.push(format!(
        "    {{\"strategy\": \"cache\", \"mode\": \"cold\", \"threads\": 1, \
         \"best_ms\": {cold_ms:.3}}}"
    ));
    entries.push(format!(
        "    {{\"strategy\": \"cache\", \"mode\": \"warm\", \"threads\": 1, \
         \"best_ms\": {warm_ms:.3}, \"speedup\": {cache_speedup:.3}}}"
    ));
    summary.push(format!("\"cache_cold_ms\": {cold_ms:.3}"));
    summary.push(format!("\"cache_warm_ms\": {warm_ms:.3}"));
    summary.push(format!("\"cache_hit_rate\": {hit_rate:.3}"));
    summary.push(format!("\"cache_speedup\": {cache_speedup:.3}"));

    // Partial-result reuse: the cached (year, sum sales, z=product)
    // group-by answers per-product Z-slices by subsumption — a filter
    // over ~500 cached groups instead of a scan over all rows. Each rep
    // slices a *different* product so every request exercises the
    // derivation path itself (repeats would be exact hits).
    let bypass = BitmapDb::with_config(table.clone(), BitmapDbConfig::uncached());
    let slice_q = |i: usize| {
        SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")])
            .with_predicate(Predicate::cat_eq("product", product_name(i)))
    };
    let reps = args.reps.max(3);
    let mut cold_slice_ms = f64::INFINITY;
    let mut derived_ms = f64::INFINITY;
    let mut derived_groups = 0usize;
    let scan_before = db.stats().snapshot();
    for i in 0..reps {
        let q = slice_q(i);
        let start = Instant::now();
        let cold = bypass.execute(&q).expect("cold slice");
        cold_slice_ms = cold_slice_ms.min(start.elapsed().as_secs_f64() * 1e3);
        let start = Instant::now();
        let derived = db
            .run_request(std::slice::from_ref(&q))
            .expect("derived slice");
        derived_ms = derived_ms.min(start.elapsed().as_secs_f64() * 1e3);
        assert_close(&derived[0], &cold, "derived slice");
        derived_groups = derived[0].groups.len();
    }
    let scan_delta = db.stats().snapshot().since(&scan_before);
    assert_eq!(
        scan_delta.rows_scanned, 0,
        "derived slices must scan zero base rows"
    );
    let derived_hit_rate = scan_delta.cache_derived_hits as f64 / reps as f64;
    let derived_speedup = cold_slice_ms / derived_ms.max(1e-6);
    println!(" slice cold        {cold_slice_ms:9.2} ms   ({derived_groups} groups)");
    println!(
        " slice derived     {derived_ms:9.2} ms   speedup {derived_speedup:5.2}×  hit rate {derived_hit_rate:.2}"
    );
    entries.push(format!(
        "    {{\"strategy\": \"derived\", \"mode\": \"cold\", \"threads\": 1, \
         \"best_ms\": {cold_slice_ms:.3}}}"
    ));
    entries.push(format!(
        "    {{\"strategy\": \"derived\", \"mode\": \"hit\", \"threads\": 1, \
         \"best_ms\": {derived_ms:.3}, \"speedup\": {derived_speedup:.3}}}"
    ));
    summary.push(format!("\"derived_cold_ms\": {cold_slice_ms:.3}"));
    summary.push(format!("\"derived_hit_ms\": {derived_ms:.3}"));
    summary.push(format!("\"derived_hit_rate\": {derived_hit_rate:.3}"));
    summary.push(format!("\"derived_speedup\": {derived_speedup:.3}"));

    // Fault-injection hook overhead: every morsel scan (and cache
    // insert) consults the engine's `FaultSpec`, so an *armed* spec
    // that never fires (non-zero seed, rate 0) measures the cost of
    // the hooks themselves against the disabled spec's single-branch
    // short-circuit. The reps are interleaved like the skew A/B above
    // so machine drift cancels instead of biasing one side. Expected
    // ≈1.0; bench_check gates the ratio absolutely.
    {
        use zv_storage::fault::FaultSpec;
        use zv_storage::{ScanDb, ScanDbConfig};
        let scan_q = SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")]);
        let mk = |fault: FaultSpec| {
            let mut cfg = ScanDbConfig::uncached();
            cfg.parallel.fault = fault;
            cfg.parallel.min_parallel_rows = 0;
            ScanDb::with_config(table.clone(), cfg)
        };
        let plain = mk(FaultSpec::disabled());
        let armed = mk(FaultSpec {
            seed: 1,
            rate_ppm: 0,
            delay_us: 0,
        });
        let reference = plain.execute(&scan_q).expect("fault-free scan");
        let mut plain_ms = f64::INFINITY;
        let mut armed_ms = f64::INFINITY;
        for _ in 0..args.reps.max(3) {
            let start = Instant::now();
            let p = plain.execute(&scan_q).expect("fault-free scan");
            plain_ms = plain_ms.min(start.elapsed().as_secs_f64() * 1e3);
            let start = Instant::now();
            let a = armed.execute(&scan_q).expect("armed-at-zero scan");
            armed_ms = armed_ms.min(start.elapsed().as_secs_f64() * 1e3);
            // Outside the timed windows: armed-but-silent hooks must
            // not perturb the result either.
            assert_close(&p, &reference, "fault-free scan");
            assert_close(&a, &reference, "armed-at-zero scan");
        }
        let fault_overhead_ratio = armed_ms / plain_ms.max(1e-6);
        println!(
            " fault hooks off   {plain_ms:9.2} ms | armed@0  {armed_ms:9.2} ms   \
             overhead {fault_overhead_ratio:5.2}×"
        );
        entries.push(format!(
            "    {{\"strategy\": \"fault_hooks\", \"mode\": \"disabled\", \"threads\": 0, \
             \"best_ms\": {plain_ms:.3}}}"
        ));
        entries.push(format!(
            "    {{\"strategy\": \"fault_hooks\", \"mode\": \"armed_zero\", \"threads\": 0, \
             \"best_ms\": {armed_ms:.3}, \"speedup\": {:.3}}}",
            1.0 / fault_overhead_ratio.max(1e-6)
        ));
        summary.push(format!("\"fault_disabled_ms\": {plain_ms:.3}"));
        summary.push(format!("\"fault_armed_ms\": {armed_ms:.3}"));
        summary.push(format!(
            "\"fault_overhead_ratio\": {fault_overhead_ratio:.3}"
        ));
    }

    // Compressed-column section. Two fixtures, both low-cardinality and
    // clustered the way the encodings want: `key = (i >> 10) % 100` seals
    // as RLE (1024-row runs inside every 4096-row chunk) and
    // `val = i % 16` bit-packs to 4-bit lanes.
    //
    // 1. An A/B pair at `--rows` scale built with explicit off/auto
    //    policies (immune to `ZV_ENCODING`): same data, plain vs encoded
    //    chunks, scanned by the identical serial kernel. Feeds the
    //    `compression_ratio` (bytes_per_row must drop ≥4x on this
    //    fixture) and `encoded_scan_ratio` (packed scans must stay
    //    within 1.15x of plain) gates, plus per-encoding chunk counts.
    // 2. An encoded-only stress table at `--mega-rows` (default 100M):
    //    at ~0.5 bytes/row it stays resident where the plain layout
    //    (16 B/row) would not, and its group-by feeds `scan_gb_s` —
    //    logical (uncompressed) bytes per second of wall clock.
    {
        use std::sync::Arc;
        use zv_storage::{Column, DataType, EncodePolicy, Field, IntColumn, Schema, Table};

        let lowcard = |rows: usize, policy: EncodePolicy| -> Arc<Table> {
            let schema = Schema::new(vec![
                Field::new("key", DataType::Int),
                Field::new("val", DataType::Int),
            ]);
            let mut key = IntColumn::new(policy);
            let mut val = IntColumn::new(policy);
            for i in 0..rows {
                key.push(((i >> 10) % 100) as i64);
                val.push((i % 16) as i64);
            }
            Arc::new(
                Table::from_columns(schema, vec![Column::Int(key), Column::Int(val)])
                    .expect("lowcard fixture schema is consistent"),
            )
        };
        let heap_bytes = |t: &Table| -> usize {
            (0..t.schema().len())
                .map(|i| t.column_at(i).heap_bytes())
                .sum()
        };
        let comp_q = SelectQuery::new(
            XSpec::raw("key"),
            vec![YSpec::sum("val"), YSpec::new("*", zv_storage::Agg::Count)],
        );
        let scan_ms = |t: &Arc<Table>, reps: usize| -> f64 {
            best_ms(reps, || {
                let src = RowSource::All(t.num_rows());
                aggregate(t, &comp_q, &src, GroupStrategy::Dense)
                    .unwrap()
                    .0
                    .groups
                    .len()
            })
            .0
        };

        // The A/B stays at 1M rows even under --quick: the 1.15x scan
        // ratio gate needs a scan long enough (tens of ms) that per-call
        // overhead and timer noise don't dominate — a 200k-row scan
        // finishes in ~2 ms and flaps past the gate on an idle box.
        let comp_rows = args.rows.max(1_000_000);
        let plain_t = lowcard(comp_rows, EncodePolicy::off());
        let enc_t = lowcard(comp_rows, EncodePolicy::auto());
        // Bit-for-bit equivalence outside the timed windows: integer
        // sums are exact in f64 at this scale, and both sides run the
        // same serial dense kernel, so assert_eq — not assert_close.
        {
            let src = RowSource::All(comp_rows);
            let a = aggregate(&plain_t, &comp_q, &src, GroupStrategy::Dense)
                .unwrap()
                .0;
            let b = aggregate(&enc_t, &comp_q, &src, GroupStrategy::Dense)
                .unwrap()
                .0;
            assert_eq!(a, b, "encoded scan diverged from plain");
        }
        let plain_scan_ms = scan_ms(&plain_t, args.reps.max(3));
        let encoded_scan_ms = scan_ms(&enc_t, args.reps.max(3));
        let encoded_scan_ratio = encoded_scan_ms / plain_scan_ms.max(1e-6);
        let bytes_per_row_plain = heap_bytes(&plain_t) as f64 / comp_rows.max(1) as f64;
        let bytes_per_row_encoded = heap_bytes(&enc_t) as f64 / comp_rows.max(1) as f64;
        let compression_ratio = bytes_per_row_plain / bytes_per_row_encoded.max(1e-9);
        let mut counts = zv_storage::EncodingCounts::default();
        for i in 0..enc_t.schema().len() {
            if let Some(c) = enc_t.column_at(i).encoding_counts() {
                counts.merge(&c);
            }
        }
        println!(
            " compression       {bytes_per_row_plain:6.2} -> {bytes_per_row_encoded:5.2} B/row \
             ({compression_ratio:5.1}x; {} packed / {} rle / {} plain chunks, {} tail rows)",
            counts.packed, counts.rle, counts.plain, counts.tail_rows
        );
        println!(
            " scan plain        {plain_scan_ms:9.2} ms | encoded  {encoded_scan_ms:9.2} ms   \
             ratio {encoded_scan_ratio:5.2}x"
        );
        entries.push(format!(
            "    {{\"strategy\": \"compression\", \"mode\": \"plain\", \"threads\": 1, \
             \"best_ms\": {plain_scan_ms:.3}}}"
        ));
        entries.push(format!(
            "    {{\"strategy\": \"compression\", \"mode\": \"encoded\", \"threads\": 1, \
             \"best_ms\": {encoded_scan_ms:.3}, \"speedup\": {:.3}}}",
            1.0 / encoded_scan_ratio.max(1e-6)
        ));
        summary.push(format!("\"bytes_per_row_plain\": {bytes_per_row_plain:.3}"));
        summary.push(format!(
            "\"bytes_per_row_encoded\": {bytes_per_row_encoded:.3}"
        ));
        summary.push(format!("\"compression_ratio\": {compression_ratio:.3}"));
        summary.push(format!("\"plain_scan_ms\": {plain_scan_ms:.3}"));
        summary.push(format!("\"encoded_scan_ms\": {encoded_scan_ms:.3}"));
        summary.push(format!("\"encoded_scan_ratio\": {encoded_scan_ratio:.3}"));
        summary.push(format!("\"enc_chunks_plain\": {}", counts.plain));
        summary.push(format!("\"enc_chunks_packed\": {}", counts.packed));
        summary.push(format!("\"enc_chunks_rle\": {}", counts.rle));
        summary.push(format!("\"enc_tail_rows\": {}", counts.tail_rows));

        // Encoded-only stress table: logical width is 16 B/row (two
        // i64 columns), so scan_gb_s credits the scan with the bytes it
        // *would* have read from the plain layout.
        eprintln!("building {}-row encoded stress table…", args.mega_rows);
        let mega_t = lowcard(args.mega_rows, EncodePolicy::auto());
        let mega_bytes_per_row = heap_bytes(&mega_t) as f64 / args.mega_rows.max(1) as f64;
        let mega_scan_ms = scan_ms(&mega_t, args.reps.clamp(2, 3));
        let scan_gb_s = (args.mega_rows as f64 * 16.0) / (mega_scan_ms.max(1e-6) / 1e3) / 1e9;
        println!(
            " mega scan         {mega_scan_ms:9.2} ms   ({} rows at {mega_bytes_per_row:.2} \
             B/row, {scan_gb_s:5.2} logical GB/s)",
            args.mega_rows
        );
        summary.push(format!("\"mega_rows\": {}", args.mega_rows));
        summary.push(format!("\"mega_bytes_per_row\": {mega_bytes_per_row:.3}"));
        summary.push(format!("\"mega_scan_ms\": {mega_scan_ms:.3}"));
        summary.push(format!("\"scan_gb_s\": {scan_gb_s:.3}"));
    }

    // Query-lifecycle section: how fast a cancel stops a full-table
    // scan (wall-clock from `cancel()` to the scan returning
    // `Cancelled`), plus a SessionManager slider burst recording the
    // supersede/cancel counters. Cancel latency is bounded by one
    // claim's worth of scan work per worker, so it should sit far below
    // a full scan.
    {
        use zv_storage::{QueryCtx, ScanDb, ScanDbConfig, StorageError};
        let cdb = ScanDb::with_config(table.clone(), ScanDbConfig::uncached());
        let scan_q = SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")]);
        let mut cancel_latency_ms = f64::INFINITY;
        let mut cancelled_runs = 0u32;
        for _ in 0..args.reps.max(3) {
            let ctx = QueryCtx::new();
            let (landed, latency) = std::thread::scope(|s| {
                let handle = s.spawn(|| cdb.execute_ctx(&scan_q, &ctx));
                while ctx.stats().rows_scanned == 0 && !handle.is_finished() {
                    std::hint::spin_loop();
                }
                let t0 = Instant::now();
                ctx.cancel();
                let r = handle.join().expect("scan thread");
                (
                    matches!(r, Err(StorageError::Cancelled)),
                    t0.elapsed().as_secs_f64() * 1e3,
                )
            });
            if landed {
                cancelled_runs += 1;
                cancel_latency_ms = cancel_latency_ms.min(latency);
            }
        }
        if !cancel_latency_ms.is_finite() {
            // Every rep outran the cancel (plausible only on very small
            // --rows): report zero rather than poisoning the gate.
            cancel_latency_ms = 0.0;
        }
        println!(
            " cancel latency    {cancel_latency_ms:9.2} ms   ({cancelled_runs} mid-scan cancels)"
        );
        summary.push(format!("\"cancel_latency_ms\": {cancel_latency_ms:.3}"));
        summary.push(format!("\"cancel_runs\": {cancelled_runs}"));

        // Slider burst through the multi-session front-end: every
        // submit supersedes the previous query on the session.
        use zql::{QueryBuilder, ZqlEngine};
        use zv_server::{SessionConfig, SessionManager};
        use zv_storage::{Atom, CmpOp};
        let engine = std::sync::Arc::new(ZqlEngine::new(std::sync::Arc::new(ScanDb::with_config(
            table.clone(),
            ScanDbConfig::uncached(),
        ))));
        let mgr = SessionManager::new(engine, SessionConfig::default());
        const BURST: usize = 16;
        let start = Instant::now();
        let handles: Vec<_> = (0..BURST)
            .map(|step| {
                let q = QueryBuilder::new()
                    .output_row("f1", |r| {
                        r.x("year")
                            .y("sales")
                            .constraint(zv_storage::Predicate::atom(Atom::NumCmp {
                                col: "sales".into(),
                                op: CmpOp::Gt,
                                value: step as f64,
                            }))
                    })
                    .build();
                mgr.submit(1, q).expect("admitted")
            })
            .collect();
        for h in handles {
            let _ = h.wait();
        }
        let burst_ms = start.elapsed().as_secs_f64() * 1e3;
        let s = mgr.stats();
        assert_eq!(s.completed + s.cancelled + s.failed, BURST as u64);
        println!(
            " supersede burst   {burst_ms:9.2} ms   ({} superseded, {} cancelled, {} completed)",
            s.superseded, s.cancelled, s.completed
        );
        summary.push(format!("\"supersede_burst_ms\": {burst_ms:.3}"));
        summary.push(format!("\"supersede_superseded\": {}", s.superseded));
        summary.push(format!("\"supersede_cancelled\": {}", s.cancelled));
        summary.push(format!("\"supersede_completed\": {}", s.completed));
    }

    let json = format!(
        "{{\n  \"rows\": {},\n  \"hardware_threads\": {},\n  \"results\": [\n{}\n  ],\n  {}\n}}\n",
        args.rows,
        hardware,
        entries.join(",\n"),
        summary.join(",\n  "),
    );
    std::fs::write(&args.json, &json).expect("write json summary");
    eprintln!("wrote {}", args.json);
}
