//! `bench_ivm` — incremental-view-maintenance append-tick latency.
//!
//! Models a live dashboard: a warm result cache, a stream of small
//! appends, and the same group-by re-issued after every tick. The warm
//! engine answers each tick by delta-merging the appended row range into
//! its cached result ([`zv_storage::cache`] IVM); the cold engine
//! recomputes from scratch. Measures:
//!
//! * `warm_tick_p50_ms` / `warm_tick_p99_ms` — append-to-answer latency
//!   through the IVM path;
//! * `cold_tick_p50_ms` / `cold_tick_p99_ms` — the same tick recomputed
//!   in full (table-size bound);
//! * `ivm_speedup` — cold p50 / warm p50;
//! * `ivm_rows_per_tick` — rows the warm tick actually scanned, which
//!   must equal the appended batch exactly or the run exits nonzero.
//! * `dim_stat_rows_per_tick` — rows decoded to refresh full-column
//!   dimension stats after an append. Sealed chunks answer min/max from
//!   stats gathered at seal time, so only the unsealed tail is decoded;
//!   a value at or past one chunk means append cost regressed to O(n)
//!   and the run exits nonzero.
//!
//! ```text
//! bench_ivm [--rows N] [--ticks T] [--tick-rows R] [--json PATH]
//! ```
//!
//! Writes a flat JSON summary that `bench_check --ivm-baseline /
//! --ivm-fresh` gates against the committed `BENCH_ivm.json`.
//! Correctness is asserted, not sampled: every warm tick's answer must
//! match the cold recompute (to float tolerance — the synthetic measures
//! are not dyadic, and a delta merge legitimately reassociates the sum).

use std::process::ExitCode;
use std::time::Instant;

use zv_datagen::sales::{self, SalesConfig};
use zv_storage::{
    Agg, CacheConfig, Database, FaultSpec, ResultTable, ScanDb, ScanDbConfig, SelectQuery, Value,
    XSpec, YSpec,
};

struct Args {
    rows: usize,
    ticks: usize,
    tick_rows: usize,
    json: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        rows: 1_000_000,
        ticks: 20,
        tick_rows: 1_000,
        json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("bench_ivm: {name} needs a value");
                std::process::exit(2);
            })
        };
        let parse = |name: &str, v: String| -> usize {
            v.parse().unwrap_or_else(|_| {
                eprintln!("bench_ivm: {name} {v:?} is not a number");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--rows" => args.rows = parse("--rows", value("--rows")),
            "--ticks" => args.ticks = parse("--ticks", value("--ticks")),
            "--tick-rows" => args.tick_rows = parse("--tick-rows", value("--tick-rows")),
            "--json" => args.json = Some(value("--json")),
            other => {
                eprintln!("bench_ivm: unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// Nearest-rank percentile over a sorted sample.
fn percentile_ms(sorted_us: &[u64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted_us.len() as f64).ceil() as usize;
    sorted_us[rank.clamp(1, sorted_us.len()) - 1] as f64 / 1e3
}

/// Same shape, same groups, every cell within relative tolerance. The
/// delta merge reassociates floating-point sums, so last-ulp drift on
/// non-dyadic data is expected; anything past 1e-9 relative is a bug.
fn agree(a: &ResultTable, b: &ResultTable) -> bool {
    if a.groups.len() != b.groups.len() {
        return false;
    }
    a.groups.iter().zip(&b.groups).all(|(ga, gb)| {
        ga.key == gb.key
            && ga.xs == gb.xs
            && ga.ys.len() == gb.ys.len()
            && ga.ys.iter().zip(&gb.ys).all(|(ya, yb)| {
                ya.iter()
                    .zip(yb)
                    .all(|(x, y)| (x - y).abs() <= 1e-9 * x.abs().max(y.abs()).max(1.0))
            })
    })
}

fn main() -> ExitCode {
    let args = parse_args();
    let table = sales::generate(&SalesConfig {
        rows: args.rows,
        products: 50,
        ..Default::default()
    });

    // Fault injection explicitly disabled: the `ivm-live` CI leg arms
    // `ZV_FAULT_*` process-wide for the chaos suites, and a faulted
    // merge would silently turn warm ticks into full scans.
    let mut warm_cfg = ScanDbConfig {
        cache: CacheConfig::admit_all(),
        ..Default::default()
    };
    warm_cfg.parallel.fault = FaultSpec::disabled();
    let warm_db = ScanDb::with_config(table.clone(), warm_cfg);
    let mut cold_cfg = ScanDbConfig::uncached();
    cold_cfg.parallel.fault = FaultSpec::disabled();
    let cold_db = ScanDb::with_config(table.clone(), cold_cfg);

    let query = SelectQuery::new(
        XSpec::raw("year"),
        vec![
            YSpec::sum("sales"),
            YSpec::avg("sales"),
            YSpec::new("*", Agg::Count),
        ],
    )
    .with_z("product");

    // Cold pass: warms the cache (and the AVG companion state), so every
    // subsequent tick takes the IVM path.
    warm_db
        .run_request(std::slice::from_ref(&query))
        .unwrap_or_else(|e| {
            eprintln!("bench_ivm: warm-up failed: {e}");
            std::process::exit(2);
        });

    let mut failures: Vec<String> = Vec::new();
    let mut warm_us: Vec<u64> = Vec::with_capacity(args.ticks);
    let mut cold_us: Vec<u64> = Vec::with_capacity(args.ticks);
    let mut ivm_rows_per_tick = 0u64;
    let mut dim_stat_rows_per_tick = 0u64;
    let mut ivm_hits = 0u64;

    for t in 0..args.ticks {
        // Re-append copies of existing rows: schema-agnostic, every
        // dictionary code already known plus nothing — so some ticks are
        // rotated to start past row 0 and introduce fresh combinations.
        let batch: Vec<Vec<Value>> = (0..args.tick_rows)
            .map(|r| table.row((t * 7919 + r * 13) % table.num_rows()))
            .collect();

        warm_db.append_rows(&batch).unwrap();
        let before = warm_db.stats().snapshot();
        let start = Instant::now();
        let warm = warm_db
            .run_request(std::slice::from_ref(&query))
            .unwrap()
            .pop()
            .unwrap();
        warm_us.push(start.elapsed().as_micros() as u64);
        let delta = warm_db.stats().snapshot().since(&before);
        ivm_hits += delta.ivm_hits;
        ivm_rows_per_tick = ivm_rows_per_tick.max(delta.ivm_rows_scanned);
        if delta.ivm_hits != 1 {
            failures.push(format!(
                "tick {t}: expected 1 IVM hit, got {} (the delta path declined)",
                delta.ivm_hits
            ));
        }
        if delta.ivm_rows_scanned > args.tick_rows as u64 {
            failures.push(format!(
                "tick {t}: IVM scanned {} rows for a {}-row append",
                delta.ivm_rows_scanned, args.tick_rows
            ));
        }
        // O(delta) append cost: re-deriving full-column dim stats after
        // the append must fold sealed-chunk stats and decode at most the
        // unsealed tail — never rescan the whole (growing) column.
        let stat_rows = match warm_db.table().column("year").unwrap() {
            zv_storage::Column::Int(v) => v.stat_scan_rows(0, v.len()),
            _ => unreachable!("sales.year is an int column"),
        };
        dim_stat_rows_per_tick = dim_stat_rows_per_tick.max(stat_rows as u64);
        if stat_rows >= zv_storage::column::ENC_CHUNK_ROWS {
            failures.push(format!(
                "tick {t}: dim-stat recompute decoded {stat_rows} rows \
                 (tail must stay under one {}-row chunk)",
                zv_storage::column::ENC_CHUNK_ROWS
            ));
        }

        cold_db.append_rows(&batch).unwrap();
        let start = Instant::now();
        let cold = cold_db.execute(&query).unwrap();
        cold_us.push(start.elapsed().as_micros() as u64);
        if !agree(&warm, &cold) {
            failures.push(format!(
                "tick {t}: delta-merged answer disagrees with full recompute"
            ));
        }
    }

    warm_us.sort_unstable();
    cold_us.sort_unstable();
    let warm_p50 = percentile_ms(&warm_us, 50.0);
    let warm_p99 = percentile_ms(&warm_us, 99.0);
    let cold_p50 = percentile_ms(&cold_us, 50.0);
    let cold_p99 = percentile_ms(&cold_us, 99.0);
    let speedup = cold_p50 / warm_p50.max(1e-6);

    println!(
        " warm tick  p50 {warm_p50:8.3} ms   p99 {warm_p99:8.3} ms   \
         ({} ticks x {} rows, IVM delta merge)",
        args.ticks, args.tick_rows
    );
    println!(
        " cold tick  p50 {cold_p50:8.3} ms   p99 {cold_p99:8.3} ms   \
         (full recompute over {} rows)",
        args.rows
    );
    println!(
        " speedup    {speedup:8.1}x   ivm hits {ivm_hits}/{}",
        args.ticks
    );

    if let Some(path) = &args.json {
        let json = format!(
            "{{\n  \"rows\": {},\n  \"ticks\": {},\n  \"tick_rows\": {},\n  \
             \"warm_tick_p50_ms\": {warm_p50:.4},\n  \"warm_tick_p99_ms\": {warm_p99:.4},\n  \
             \"cold_tick_p50_ms\": {cold_p50:.4},\n  \"cold_tick_p99_ms\": {cold_p99:.4},\n  \
             \"ivm_speedup\": {speedup:.2},\n  \"ivm_rows_per_tick\": {ivm_rows_per_tick},\n  \
             \"dim_stat_rows_per_tick\": {dim_stat_rows_per_tick},\n  \
             \"ivm_hits\": {ivm_hits}\n}}\n",
            args.rows, args.ticks, args.tick_rows,
        );
        std::fs::write(path, &json).unwrap_or_else(|e| {
            eprintln!("bench_ivm: cannot write {path}: {e}");
            std::process::exit(2);
        });
        eprintln!("wrote {path}");
    }

    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("bench_ivm FAILURE: {f}");
        }
        ExitCode::FAILURE
    }
}
