//! `bench_persist` — durable-storage latency summary.
//!
//! Measures the three costs `zv-serve --data-dir` pays for crash
//! safety (see [`zv_storage::persist`] for the on-disk format):
//!
//! * `snapshot_write_ms` — one full checkpoint of the table (encode +
//!   write + fsync + rename + dir sync);
//! * `wal_append_p50_ms` / `wal_append_p99_ms` — per-batch WAL append
//!   latency, fsync included (the cost every committed append adds);
//! * `cold_load_ms` — cold-start recovery: decode the snapshot, verify
//!   every CRC, replay the WAL tail.
//!
//! ```text
//! bench_persist [--rows N] [--batches B] [--batch-rows R] [--json PATH]
//! ```
//!
//! Writes a flat JSON summary that `bench_check --persist-baseline /
//! --persist-fresh` gates against the committed `BENCH_persist.json`.
//! Recovery correctness is asserted, not sampled: the reloaded table
//! must match the committed row count and version exactly or the run
//! exits nonzero.

use std::process::ExitCode;
use std::time::Instant;

use zv_datagen::sales::{self, SalesConfig};
use zv_storage::{Database, FaultSpec, PersistOptions, Persistence, ScanDb, ScanDbConfig, Value};

struct Args {
    rows: usize,
    batches: usize,
    batch_rows: usize,
    json: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        rows: 1_000_000,
        batches: 256,
        batch_rows: 8,
        json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("bench_persist: {name} needs a value");
                std::process::exit(2);
            })
        };
        let parse = |name: &str, v: String| -> usize {
            v.parse().unwrap_or_else(|_| {
                eprintln!("bench_persist: {name} {v:?} is not a number");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--rows" => args.rows = parse("--rows", value("--rows")),
            "--batches" => args.batches = parse("--batches", value("--batches")),
            "--batch-rows" => args.batch_rows = parse("--batch-rows", value("--batch-rows")),
            "--json" => args.json = Some(value("--json")),
            other => {
                eprintln!("bench_persist: unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// Nearest-rank percentile over a sorted sample.
fn percentile_ms(sorted_us: &[u64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted_us.len() as f64).ceil() as usize;
    sorted_us[rank.clamp(1, sorted_us.len()) - 1] as f64 / 1e3
}

fn main() -> ExitCode {
    let args = parse_args();
    let dir = std::env::temp_dir().join(format!("zv-bench-persist-{}", std::process::id()));
    if dir.exists() {
        let _ = std::fs::remove_dir_all(&dir);
    }

    let table = sales::generate(&SalesConfig {
        rows: args.rows,
        products: 50,
        ..Default::default()
    });
    let schema = table.schema().clone();

    // Snapshot write: one full checkpoint of the synthetic table.
    let (persist, recovered) =
        Persistence::open(&dir, PersistOptions::default()).unwrap_or_else(|e| {
            eprintln!("bench_persist: open {} failed: {e}", dir.display());
            std::process::exit(2);
        });
    assert!(recovered.is_none(), "bench dir must start fresh");
    let start = Instant::now();
    persist.checkpoint(&table).unwrap_or_else(|e| {
        eprintln!("bench_persist: checkpoint failed: {e}");
        std::process::exit(2);
    });
    let snapshot_write_ms = start.elapsed().as_secs_f64() * 1e3;

    // WAL appends: the per-commit fsync cost, measured per batch. The
    // version only has to ascend for replay; the bench is not an engine.
    let mut append_us: Vec<u64> = Vec::with_capacity(args.batches);
    let mut version = table.version();
    let mut appended_rows = 0usize;
    for b in 0..args.batches {
        // Re-append copies of existing rows: schema-agnostic, and every
        // column type takes the encode path.
        let rows: Vec<Vec<Value>> = (0..args.batch_rows)
            .map(|r| table.row((b * args.batch_rows + r) % table.num_rows()))
            .collect();
        version += 1;
        let start = Instant::now();
        persist
            .log_append(version, &schema, &rows)
            .unwrap_or_else(|e| {
                eprintln!("bench_persist: append {b} failed: {e}");
                std::process::exit(2);
            });
        append_us.push(start.elapsed().as_micros() as u64);
        appended_rows += rows.len();
    }
    let committed_version = version;
    drop(persist);

    // Cold start: decode + CRC-verify the snapshot, replay the WAL.
    let start = Instant::now();
    let (persist, reloaded) =
        Persistence::open(&dir, PersistOptions::default()).unwrap_or_else(|e| {
            eprintln!("bench_persist: cold open failed: {e}");
            std::process::exit(2);
        });
    let cold_load_ms = start.elapsed().as_secs_f64() * 1e3;
    let reloaded = reloaded.expect("snapshot written above");
    let report = persist.recovery_report();
    let mut failures: Vec<String> = Vec::new();
    if reloaded.num_rows() != args.rows + appended_rows {
        failures.push(format!(
            "cold start lost rows: {} reloaded, {} committed",
            reloaded.num_rows(),
            args.rows + appended_rows
        ));
    }
    if reloaded.version() != committed_version {
        failures.push(format!(
            "cold start landed on version {} instead of the committed {committed_version}",
            reloaded.version()
        ));
    }
    if report.frames_replayed != args.batches as u64 {
        failures.push(format!(
            "cold start replayed {} frames, expected {}",
            report.frames_replayed, args.batches
        ));
    }
    drop(persist);

    // The durable engine path must agree with the raw handle.
    let mut cfg = ScanDbConfig::uncached();
    cfg.parallel.fault = FaultSpec::disabled();
    let db = ScanDb::open_durable(&dir, cfg, || unreachable!("dir is seeded")).unwrap();
    if Database::table(&db).num_rows() != args.rows + appended_rows {
        failures.push("engine cold start disagrees with raw recovery".to_string());
    }
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);

    append_us.sort_unstable();
    let p50 = percentile_ms(&append_us, 50.0);
    let p99 = percentile_ms(&append_us, 99.0);
    println!(
        " snapshot write {snapshot_write_ms:8.2} ms   ({} rows)",
        args.rows
    );
    println!(
        " wal append     p50 {p50:8.3} ms   p99 {p99:8.3} ms   ({} batches x {} rows, fsync each)",
        args.batches, args.batch_rows
    );
    println!(
        " cold load      {cold_load_ms:8.2} ms   ({} rows + {} WAL frames)",
        args.rows, args.batches
    );

    if let Some(path) = &args.json {
        let json = format!(
            "{{\n  \"rows\": {},\n  \"batches\": {},\n  \"batch_rows\": {},\n  \
             \"snapshot_write_ms\": {snapshot_write_ms:.3},\n  \
             \"wal_append_p50_ms\": {p50:.4},\n  \"wal_append_p99_ms\": {p99:.4},\n  \
             \"cold_load_ms\": {cold_load_ms:.3}\n}}\n",
            args.rows, args.batches, args.batch_rows,
        );
        std::fs::write(path, &json).unwrap_or_else(|e| {
            eprintln!("bench_persist: cannot write {path}: {e}");
            std::process::exit(2);
        });
        eprintln!("wrote {path}");
    }

    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("bench_persist FAILURE: {f}");
        }
        ExitCode::FAILURE
    }
}
