//! Statistics for the user-study pipeline (thesis Ch. 8): one-way ANOVA,
//! Tukey's HSD with a numerically integrated studentized-range
//! distribution (Table 8.2), descriptive statistics, the chi-square
//! goodness test (Finding 5's χ² = 8.22), and Kendall's τ (the thesis
//! reports inter-rater agreement of 0.854).
//!
//! All special functions are implemented from scratch: log-gamma
//! (Lanczos), the regularized incomplete beta (Lentz continued fraction),
//! erf (Numerical-Recipes-style rational approximation), and
//! Gauss–Legendre quadrature (Newton iteration on Legendre polynomials).

// ---------------------------------------------------------------------
// Descriptive statistics
// ---------------------------------------------------------------------

pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample variance (n − 1 denominator).
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

// ---------------------------------------------------------------------
// Special functions
// ---------------------------------------------------------------------

/// ln Γ(x) via the Lanczos approximation (|ε| < 2e-10 for x > 0).
pub fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 6] = [
        76.18009172947146,
        -86.50532032941677,
        24.01409824083091,
        -1.231739572450155,
        0.1208650973866179e-2,
        -0.5395239384953e-5,
    ];
    assert!(x > 0.0, "ln_gamma domain: x > 0");
    let mut y = x;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000000000190015;
    for c in COEFFS {
        y += 1.0;
        ser += c / y;
    }
    -tmp + (2.5066282746310005 * ser / x).ln()
}

/// Regularized incomplete beta function I_x(a, b).
pub fn inc_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!((0.0..=1.0).contains(&x), "inc_beta domain: 0 ≤ x ≤ 1");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Continued fraction for the incomplete beta (modified Lentz).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 3e-14;
    const FPMIN: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m_f = m as f64;
        let m2 = 2.0 * m_f;
        let aa = m_f * (b - m_f) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        let aa = -(a + m_f) * (qab + m_f) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Complementary error function (fractional error < 1.2e-7 everywhere).
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Standard normal CDF.
pub fn norm_cdf(z: f64) -> f64 {
    0.5 * erfc(-z / std::f64::consts::SQRT_2)
}

/// Standard normal PDF.
pub fn norm_pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Upper-tail probability of an F(df1, df2) variate exceeding `f`.
pub fn f_sf(f: f64, df1: f64, df2: f64) -> f64 {
    if f <= 0.0 {
        return 1.0;
    }
    inc_beta(df2 / 2.0, df1 / 2.0, df2 / (df2 + df1 * f))
}

/// Upper-tail probability of a χ²(df) variate exceeding `x`, via the
/// regularized incomplete gamma (series / continued fraction).
pub fn chi2_sf(x: f64, df: f64) -> f64 {
    if x <= 0.0 {
        return 1.0;
    }
    1.0 - lower_inc_gamma_reg(df / 2.0, x / 2.0)
}

/// Regularized lower incomplete gamma P(a, x).
fn lower_inc_gamma_reg(a: f64, x: f64) -> f64 {
    if x < a + 1.0 {
        // series representation
        let mut sum = 1.0 / a;
        let mut term = sum;
        let mut n = a;
        for _ in 0..500 {
            n += 1.0;
            term *= x / n;
            sum += term;
            if term.abs() < sum.abs() * 1e-15 {
                break;
            }
        }
        sum * (-x + a * x.ln() - ln_gamma(a)).exp()
    } else {
        // continued fraction for Q(a, x)
        const FPMIN: f64 = 1e-300;
        let mut b = x + 1.0 - a;
        let mut c = 1.0 / FPMIN;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..500 {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < FPMIN {
                d = FPMIN;
            }
            c = b + an / c;
            if c.abs() < FPMIN {
                c = FPMIN;
            }
            d = 1.0 / d;
            let del = d * c;
            h *= del;
            if (del - 1.0).abs() < 1e-15 {
                break;
            }
        }
        1.0 - (-x + a * x.ln() - ln_gamma(a)).exp() * h
    }
}

// ---------------------------------------------------------------------
// Gauss–Legendre quadrature
// ---------------------------------------------------------------------

/// Nodes and weights for n-point Gauss–Legendre quadrature on [-1, 1],
/// found by Newton iteration on Pₙ.
pub fn gauss_legendre(n: usize) -> (Vec<f64>, Vec<f64>) {
    let mut nodes = vec![0.0; n];
    let mut weights = vec![0.0; n];
    let m = n.div_ceil(2);
    for i in 0..m {
        // Chebyshev-based initial guess.
        let mut x = (std::f64::consts::PI * (i as f64 + 0.75) / (n as f64 + 0.5)).cos();
        let mut pp = 0.0;
        for _ in 0..100 {
            // Evaluate Pₙ(x) and P'ₙ(x) by recurrence.
            let mut p0 = 1.0;
            let mut p1 = 0.0;
            for j in 0..n {
                let p2 = p1;
                p1 = p0;
                p0 = ((2.0 * j as f64 + 1.0) * x * p1 - j as f64 * p2) / (j as f64 + 1.0);
            }
            pp = n as f64 * (x * p0 - p1) / (x * x - 1.0);
            let dx = p0 / pp;
            x -= dx;
            if dx.abs() < 1e-15 {
                break;
            }
        }
        nodes[i] = -x;
        nodes[n - 1 - i] = x;
        let w = 2.0 / ((1.0 - x * x) * pp * pp);
        weights[i] = w;
        weights[n - 1 - i] = w;
    }
    (nodes, weights)
}

/// ∫ₐᵇ f(x) dx with n-point Gauss–Legendre.
pub fn integrate<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, n: usize) -> f64 {
    let (nodes, weights) = gauss_legendre(n);
    let half = (b - a) / 2.0;
    let mid = (a + b) / 2.0;
    nodes
        .iter()
        .zip(&weights)
        .map(|(&x, &w)| w * f(mid + half * x))
        .sum::<f64>()
        * half
}

// ---------------------------------------------------------------------
// Studentized range distribution (for Tukey HSD)
// ---------------------------------------------------------------------

/// P(Q ≤ q) for the studentized range with `k` groups and `df`
/// within-group degrees of freedom.
///
/// Computed as the double integral
/// `∫₀^∞ f_ν(s) · k ∫ φ(z) [Φ(z) − Φ(z − q·s)]^{k−1} dz ds`
/// where `s = √(χ²_ν/ν)`, both integrals by Gauss–Legendre.
pub fn ptukey(q: f64, k: usize, df: f64) -> f64 {
    assert!(k >= 2, "studentized range needs ≥ 2 groups");
    if q <= 0.0 {
        return 0.0;
    }
    let inner = |w: f64| -> f64 {
        let f = |z: f64| {
            let span = norm_cdf(z) - norm_cdf(z - w);
            norm_pdf(z) * span.powi(k as i32 - 1)
        };
        (k as f64) * integrate(f, -8.0, 8.0 + w.min(30.0), 96)
    };
    if df.is_infinite() || df > 2000.0 {
        return inner(q).clamp(0.0, 1.0);
    }
    // ln of the density of s = sqrt(chi2_df / df).
    let half = df / 2.0;
    let ln_norm = std::f64::consts::LN_2.mul_add(1.0, half * half.ln() / (df / 2.0) * 0.0)
        + std::f64::consts::LN_2
        + half * (df / 2.0).ln()
        - std::f64::consts::LN_2
        - ln_gamma(half);
    let ln_density = |s: f64| -> f64 {
        // f(s) = 2 (ν/2)^{ν/2} s^{ν−1} e^{−ν s²/2} / Γ(ν/2)
        ln_norm + (df - 1.0) * s.ln() - df * s * s / 2.0
    };
    let integrand = |s: f64| -> f64 {
        if s <= 0.0 {
            return 0.0;
        }
        let ln_d = ln_density(s);
        if ln_d < -700.0 {
            return 0.0;
        }
        ln_d.exp() * inner(q * s)
    };
    // s concentrates around 1 with sd ≈ 1/√(2ν); [0, 4] covers df ≥ 2.
    let hi = if df < 10.0 { 8.0 } else { 4.0 };
    integrate(integrand, 1e-9, hi, 128).clamp(0.0, 1.0)
}

/// Upper-tail p-value of the studentized range.
pub fn ptukey_sf(q: f64, k: usize, df: f64) -> f64 {
    (1.0 - ptukey(q, k, df)).clamp(0.0, 1.0)
}

// ---------------------------------------------------------------------
// One-way ANOVA and Tukey's HSD
// ---------------------------------------------------------------------

/// Result of a one-way between-subjects ANOVA.
#[derive(Clone, Copy, Debug)]
pub struct Anova {
    pub f: f64,
    pub df_between: f64,
    pub df_within: f64,
    pub ms_within: f64,
    pub p_value: f64,
}

/// One-way ANOVA across ≥ 2 groups.
pub fn one_way_anova(groups: &[Vec<f64>]) -> Anova {
    let k = groups.len();
    assert!(k >= 2, "ANOVA needs at least two groups");
    let n_total: usize = groups.iter().map(Vec::len).sum();
    assert!(n_total > k, "ANOVA needs more observations than groups");
    let grand = groups.iter().flatten().sum::<f64>() / n_total as f64;
    let mut ss_between = 0.0;
    let mut ss_within = 0.0;
    for g in groups {
        let m = mean(g);
        ss_between += g.len() as f64 * (m - grand) * (m - grand);
        ss_within += g.iter().map(|x| (x - m) * (x - m)).sum::<f64>();
    }
    let df_between = (k - 1) as f64;
    let df_within = (n_total - k) as f64;
    let ms_between = ss_between / df_between;
    let ms_within = ss_within / df_within;
    let f = if ms_within > 0.0 {
        ms_between / ms_within
    } else {
        f64::INFINITY
    };
    let p_value = if f.is_finite() {
        f_sf(f, df_between, df_within)
    } else {
        0.0
    };
    Anova {
        f,
        df_between,
        df_within,
        ms_within,
        p_value,
    }
}

/// One pairwise comparison from Tukey's test.
#[derive(Clone, Debug)]
pub struct TukeyComparison {
    pub group_a: usize,
    pub group_b: usize,
    /// The studentized range statistic for the pair.
    pub q: f64,
    pub p_value: f64,
}

impl TukeyComparison {
    pub fn significant(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Tukey's HSD post-hoc test (thesis Table 8.2): all pairwise
/// comparisons, with the studentized-range p-value for each.
///
/// Unequal group sizes use the Tukey–Kramer harmonic-mean adjustment.
pub fn tukey_hsd(groups: &[Vec<f64>]) -> Vec<TukeyComparison> {
    let anova = one_way_anova(groups);
    let k = groups.len();
    let mut out = Vec::with_capacity(k * (k - 1) / 2);
    for a in 0..k {
        for b in (a + 1)..k {
            let na = groups[a].len() as f64;
            let nb = groups[b].len() as f64;
            let se = (anova.ms_within / 2.0 * (1.0 / na + 1.0 / nb)).sqrt();
            let q = (mean(&groups[a]) - mean(&groups[b])).abs() / se;
            let p_value = ptukey_sf(q, k, anova.df_within);
            out.push(TukeyComparison {
                group_a: a,
                group_b: b,
                q,
                p_value,
            });
        }
    }
    out
}

/// Chi-square goodness-of-fit test against uniform expected counts
/// (used for Finding 5's preference split: χ² = 8.22, p < 0.01).
pub fn chi_square_uniform(observed: &[f64]) -> (f64, f64) {
    let total: f64 = observed.iter().sum();
    let expected = total / observed.len() as f64;
    let chi2: f64 = observed
        .iter()
        .map(|&o| (o - expected) * (o - expected) / expected)
        .sum();
    let df = (observed.len() - 1) as f64;
    (chi2, chi2_sf(chi2, df))
}

/// Kendall's τ-b rank correlation (the thesis reports 0.854 inter-rater
/// agreement between the two ground-truth graders).
pub fn kendall_tau(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len();
    if n < 2 {
        return f64::NAN;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    let mut ties_a = 0i64;
    let mut ties_b = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let da = a[i] - a[j];
            let db = b[i] - b[j];
            if da == 0.0 && db == 0.0 {
                // tied in both: counted in neither denominator term
            } else if da == 0.0 {
                ties_a += 1;
            } else if db == 0.0 {
                ties_b += 1;
            } else if da * db > 0.0 {
                concordant += 1;
            } else {
                discordant += 1;
            }
        }
    }
    let n0 = concordant + discordant;
    let denom = (((n0 + ties_a) as f64) * ((n0 + ties_b) as f64)).sqrt();
    if denom == 0.0 {
        return f64::NAN;
    }
    (concordant - discordant) as f64 / denom
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptive_statistics() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
        assert!(mean(&[]).is_nan());
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn ln_gamma_known_values() {
        // Γ(5) = 24, Γ(0.5) = √π
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
        assert!((ln_gamma(1.0)).abs() < 1e-10);
    }

    #[test]
    fn erfc_and_norm_cdf() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-6);
        assert!((norm_cdf(0.0) - 0.5).abs() < 1e-6);
        assert!((norm_cdf(1.96) - 0.9750021).abs() < 1e-4);
        assert!((norm_cdf(-1.96) - 0.0249979).abs() < 1e-4);
        assert!(norm_cdf(8.0) > 0.999999999);
    }

    #[test]
    fn incomplete_beta_symmetry_and_known() {
        // I_x(1,1) = x
        for x in [0.1, 0.5, 0.9] {
            assert!((inc_beta(1.0, 1.0, x) - x).abs() < 1e-10);
        }
        // I_{0.5}(a,a) = 0.5
        assert!((inc_beta(3.0, 3.0, 0.5) - 0.5).abs() < 1e-10);
        assert_eq!(inc_beta(2.0, 5.0, 0.0), 0.0);
        assert_eq!(inc_beta(2.0, 5.0, 1.0), 1.0);
    }

    #[test]
    fn f_distribution_critical_values() {
        // F_{0.05}(1, 10) ≈ 4.965
        assert!((f_sf(4.965, 1.0, 10.0) - 0.05).abs() < 2e-3);
        // F_{0.05}(2, 33) ≈ 3.285
        assert!((f_sf(3.285, 2.0, 33.0) - 0.05).abs() < 2e-3);
        assert!(f_sf(0.0, 2.0, 10.0) == 1.0);
    }

    #[test]
    fn chi2_critical_values() {
        // χ²_{0.05}(1) ≈ 3.841, χ²_{0.01}(1) ≈ 6.635
        assert!((chi2_sf(3.841, 1.0) - 0.05).abs() < 1e-3);
        assert!((chi2_sf(6.635, 1.0) - 0.01).abs() < 1e-3);
        // χ²_{0.05}(4) ≈ 9.488
        assert!((chi2_sf(9.488, 4.0) - 0.05).abs() < 1e-3);
    }

    #[test]
    fn gauss_legendre_integrates_polynomials_exactly() {
        // n-point GL is exact up to degree 2n−1.
        let val = integrate(|x| x * x * x + 2.0 * x * x + 1.0, -1.0, 2.0, 8);
        // ∫ = x⁴/4 + 2x³/3 + x from -1 to 2 = (4 + 16/3 + 2) − (1/4 − 2/3 − 1)
        let exact = (4.0 + 16.0 / 3.0 + 2.0) - (0.25 - 2.0 / 3.0 - 1.0);
        assert!((val - exact).abs() < 1e-12);
        // weights sum to 2
        let (_, w) = gauss_legendre(32);
        assert!((w.iter().sum::<f64>() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn studentized_range_critical_values() {
        // Published q tables: q_{0.05}(k=3, df=30) ≈ 3.486
        assert!(
            (ptukey(3.486, 3, 30.0) - 0.95).abs() < 3e-3,
            "{}",
            ptukey(3.486, 3, 30.0)
        );
        // q_{0.05}(k=2, df=10) ≈ 3.151
        assert!((ptukey(3.151, 2, 10.0) - 0.95).abs() < 3e-3);
        // q_{0.01}(k=3, df=60) ≈ 4.282
        assert!((ptukey(4.282, 3, 60.0) - 0.99).abs() < 3e-3);
        // df = ∞: q_{0.05}(k=3, ∞) ≈ 3.314
        assert!((ptukey(3.314, 3, f64::INFINITY) - 0.95).abs() < 3e-3);
    }

    #[test]
    fn reproduces_paper_table_8_2_p_values() {
        // Thesis Table 8.2 (k = 3 interfaces, n = 12 each → df = 33):
        //   drag-drop vs custom builder: Q = 3.3463 → p ≈ 0.0605 (n.s.)
        //   custom builder vs baseline:  Q = 4.6238 → p ≈ 0.0069 (sig.)
        //   drag-drop vs baseline:       Q = 7.9701 → p ≤ 0.001  (sig.;
        //     the thesis value 0.0010053 is its calculator's clamp floor)
        let p1 = ptukey_sf(3.3463, 3, 33.0);
        assert!((p1 - 0.0605).abs() < 4e-3, "got {p1}");
        let p2 = ptukey_sf(4.6238, 3, 33.0);
        assert!((p2 - 0.0069).abs() < 2e-3, "got {p2}");
        let p3 = ptukey_sf(7.9701, 3, 33.0);
        assert!(p3 < 0.0011, "got {p3}");
        // Same significance pattern as the thesis at α = 0.01/0.05.
        assert!(p1 > 0.05 && p2 < 0.01 && p3 < 0.01);
    }

    #[test]
    fn anova_detects_group_differences() {
        let same = vec![
            vec![1.0, 2.0, 3.0],
            vec![1.1, 2.1, 2.9],
            vec![0.9, 2.0, 3.1],
        ];
        let diff = vec![
            vec![1.0, 2.0, 3.0],
            vec![11.0, 12.0, 13.0],
            vec![21.0, 22.0, 23.0],
        ];
        assert!(one_way_anova(&same).p_value > 0.5);
        let a = one_way_anova(&diff);
        assert!(a.p_value < 1e-4);
        assert_eq!(a.df_between, 2.0);
        assert_eq!(a.df_within, 6.0);
    }

    #[test]
    fn tukey_pairwise_pattern() {
        // Two close groups and one distant: only comparisons involving
        // group 2 should be significant.
        let groups = vec![
            vec![10.0, 11.0, 9.0, 10.5, 9.5, 10.2],
            vec![10.4, 11.2, 9.6, 10.8, 9.9, 10.6],
            vec![30.0, 31.0, 29.0, 30.5, 29.5, 30.2],
        ];
        let cmps = tukey_hsd(&groups);
        assert_eq!(cmps.len(), 3);
        let find = |a: usize, b: usize| cmps.iter().find(|c| c.group_a == a && c.group_b == b);
        assert!(!find(0, 1).unwrap().significant(0.05));
        assert!(find(0, 2).unwrap().significant(0.01));
        assert!(find(1, 2).unwrap().significant(0.01));
    }

    #[test]
    fn chi_square_preference_split() {
        // Finding 5: 9 of 12 would use zenvisage vs 2 baseline (1 neither);
        // the thesis reports χ² = 8.22 for the 9-vs-2 split — matching
        // a 2-cell uniform test: (9−5.5)²/5.5 × 2 ≈ 4.45... The thesis
        // value corresponds to observed [9, 2] against expected 5.5 each
        // *plus* continuity ≈ 8.22 under a 3-cell [9,2,1] split.
        let (chi2, p) = chi_square_uniform(&[9.0, 2.0, 1.0]);
        assert!((chi2 - 9.5).abs() < 0.01, "three-cell split gives {chi2}");
        assert!(p < 0.01);
        // The published 8.22 rounds from slightly different binning; the
        // qualitative claim (p < 0.01) holds either way.
        let (chi2_2, p2) = chi_square_uniform(&[9.0, 2.0]);
        assert!(chi2_2 > 3.84 && p2 < 0.05);
    }

    #[test]
    fn kendall_tau_values() {
        assert!((kendall_tau(&[1.0, 2.0, 3.0, 4.0], &[1.0, 2.0, 3.0, 4.0]) - 1.0).abs() < 1e-12);
        assert!((kendall_tau(&[1.0, 2.0, 3.0, 4.0], &[4.0, 3.0, 2.0, 1.0]) + 1.0).abs() < 1e-12);
        let t = kendall_tau(&[1.0, 2.0, 3.0, 4.0, 5.0], &[1.0, 3.0, 2.0, 4.0, 5.0]);
        assert!(t > 0.7 && t < 1.0);
        // ties handled (tau-b)
        let t = kendall_tau(&[1.0, 1.0, 2.0], &[1.0, 2.0, 3.0]);
        assert!(t > 0.0 && t < 1.0);
    }

    proptest::proptest! {
        #[test]
        fn prop_ptukey_monotone_in_q(q1 in 0.1f64..6.0, dq in 0.01f64..3.0) {
            let a = ptukey(q1, 3, 20.0);
            let b = ptukey(q1 + dq, 3, 20.0);
            proptest::prop_assert!(b >= a - 1e-9);
        }

        #[test]
        fn prop_inc_beta_monotone_in_x(x1 in 0.01f64..0.98, dx in 0.001f64..0.01) {
            let a = inc_beta(2.5, 3.5, x1);
            let b = inc_beta(2.5, 3.5, (x1 + dx).min(1.0));
            proptest::prop_assert!(b >= a - 1e-12);
        }
    }
}
