//! The functional primitive `R(k, v, f)` (thesis §3.8) — k-representative
//! selection — and the outlier search built on top of it (§7.2: "we first
//! apply the representative search task, and then return the k
//! visualizations for which the minimum distance D to the representative
//! trends is maximized").

use crate::kmeans::{kmeans, nearest, KMeansConfig};
use crate::series::Series;

/// Dimensionality visualizations are resampled to before clustering.
pub const EMBED_DIM: usize = 32;

/// Embed a set of series into a common vector space (resample onto
/// [`EMBED_DIM`] points).
pub fn embed(series: &[Series]) -> Vec<Vec<f64>> {
    series.iter().map(|s| s.resample(EMBED_DIM)).collect()
}

/// Shape embedding: resample then z-normalize each vector, so clustering
/// compares *trends* rather than magnitudes (the same normalization the
/// default distance primitive `D` applies). Preferred input for
/// [`auto_k`], whose silhouette criterion assumes clusters of comparable
/// scale.
pub fn embed_normalized(series: &[Series]) -> Vec<Vec<f64>> {
    series
        .iter()
        .map(|s| {
            let mut v = s.resample(EMBED_DIM);
            crate::series::normalize(&mut v, crate::series::Normalize::ZScore);
            v
        })
        .collect()
}

/// Select the indices of `k` representative members: run k-means and take
/// the member closest to each centroid (so the answer is always an actual
/// visualization, as `R`'s return value is "the set of axis variable
/// values which produced the representative visualizations").
pub fn representatives(points: &[Vec<f64>], k: usize, seed: u64) -> Vec<usize> {
    if points.is_empty() || k == 0 {
        return Vec::new();
    }
    let res = kmeans(points, KMeansConfig::new(k, seed));
    let mut reps = Vec::with_capacity(res.centroids.len());
    for c in &res.centroids {
        let (best, _) = nearest(c, points);
        if !reps.contains(&best) {
            reps.push(best);
        }
    }
    // Deduplication can shrink the set below k when clusters collapse;
    // top up with the points farthest from the chosen representatives.
    while reps.len() < k.min(points.len()) {
        let next = (0..points.len())
            .filter(|i| !reps.contains(i))
            .max_by(|&a, &b| {
                min_dist_to(points, &reps, a).total_cmp(&min_dist_to(points, &reps, b))
            });
        match next {
            Some(i) => reps.push(i),
            None => break,
        }
    }
    reps
}

fn min_dist_to(points: &[Vec<f64>], chosen: &[usize], i: usize) -> f64 {
    chosen
        .iter()
        .map(|&c| crate::distance::squared_euclidean(&points[i], &points[c]))
        .fold(f64::INFINITY, f64::min)
}

/// Choose the number of representatives from the data itself — the
/// thesis's §10.1 future-work item ("when the actual number of
/// representative \[trends\] is different than the pre-defined k, the
/// quality of results is poor ... automatically figure out the right
/// number of representative trends based on data characteristics").
///
/// Uses the *mean silhouette coefficient*: for each candidate `k` in
/// `2..=k_max`, cluster and score how well-separated the clusters are;
/// return the best-scoring `k`. Falls back to 1 when even the best
/// split is worse than no split (silhouette ≤ 0.25, a standard "no
/// substantial structure" threshold).
pub fn auto_k(points: &[Vec<f64>], k_max: usize, seed: u64) -> usize {
    if points.len() < 3 {
        return points.len().max(1);
    }
    let k_max = k_max.min(points.len() - 1).max(2);
    let mut best = (1usize, 0.25f64); // (k, silhouette floor)
    for k in 2..=k_max {
        let res = kmeans(points, KMeansConfig::new(k, seed));
        let score = mean_silhouette(points, &res.assignments, k);
        if score > best.1 {
            best = (k, score);
        }
    }
    best.0
}

/// Representatives with the cluster count chosen by [`auto_k`].
pub fn auto_representatives(points: &[Vec<f64>], k_max: usize, seed: u64) -> Vec<usize> {
    representatives(points, auto_k(points, k_max, seed), seed)
}

/// Mean silhouette coefficient over all points: `(b − a) / max(a, b)`
/// where `a` is the mean intra-cluster distance and `b` the mean
/// distance to the nearest other cluster. In [−1, 1]; higher = better
/// separated.
fn mean_silhouette(points: &[Vec<f64>], assignments: &[usize], k: usize) -> f64 {
    let n = points.len();
    let mut total = 0.0;
    let mut counted = 0usize;
    for i in 0..n {
        let own = assignments[i];
        // mean distance to every cluster
        let mut sums = vec![0.0f64; k];
        let mut counts = vec![0usize; k];
        for j in 0..n {
            if i == j {
                continue;
            }
            let d = crate::distance::euclidean(&points[i], &points[j]);
            sums[assignments[j]] += d;
            counts[assignments[j]] += 1;
        }
        if counts[own] == 0 {
            continue; // singleton cluster: silhouette undefined, skip
        }
        let a = sums[own] / counts[own] as f64;
        let b = (0..k)
            .filter(|&c| c != own && counts[c] > 0)
            .map(|c| sums[c] / counts[c] as f64)
            .fold(f64::INFINITY, f64::min);
        if !b.is_finite() {
            continue;
        }
        let denom = a.max(b);
        if denom > 0.0 {
            total += (b - a) / denom;
            counted += 1;
        }
    }
    if counted == 0 {
        0.0
    } else {
        total / counted as f64
    }
}

/// Per-point outlier score: distance to the nearest of `k_reps`
/// representative centroids (higher = more anomalous).
pub fn outlier_scores(points: &[Vec<f64>], k_reps: usize, seed: u64) -> Vec<f64> {
    if points.is_empty() {
        return Vec::new();
    }
    let res = kmeans(points, KMeansConfig::new(k_reps.max(1), seed));
    points
        .iter()
        .map(|p| nearest(p, &res.centroids).1.sqrt())
        .collect()
}

/// Indices of the `k` most anomalous points, sorted by decreasing score.
pub fn top_outliers(points: &[Vec<f64>], k_reps: usize, k_out: usize, seed: u64) -> Vec<usize> {
    let scores = outlier_scores(points, k_reps, seed);
    let mut idx: Vec<usize> = (0..points.len()).collect();
    idx.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
    idx.truncate(k_out);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clustered_series() -> Vec<Series> {
        let mut out = Vec::new();
        // 8 increasing, 8 decreasing, 1 spike (outlier)
        for i in 0..8 {
            let o = i as f64 * 0.1;
            out.push(Series::from_ys(&[0.0 + o, 1.0 + o, 2.0 + o, 3.0 + o]));
        }
        for i in 0..8 {
            let o = i as f64 * 0.1;
            out.push(Series::from_ys(&[3.0 + o, 2.0 + o, 1.0 + o, 0.0 + o]));
        }
        // A moderate anomaly: far from both shapes, but not so extreme
        // that k-means dedicates a centroid to it (in which case it would
        // become a *representative*, not an outlier — a known property of
        // the paper's outlier-search definition).
        out.push(Series::from_ys(&[0.0, 5.0, -5.0, 0.0]));
        out
    }

    #[test]
    fn representatives_cover_both_clusters() {
        let series = clustered_series();
        let pts = embed(&series[..16]); // exclude the spike
        let reps = representatives(&pts, 2, 11);
        assert_eq!(reps.len(), 2);
        let one_up = reps.iter().any(|&r| r < 8);
        let one_down = reps.iter().any(|&r| r >= 8);
        assert!(
            one_up && one_down,
            "representatives {reps:?} should span both shapes"
        );
    }

    #[test]
    fn representatives_are_member_indices() {
        let pts = embed(&clustered_series());
        let reps = representatives(&pts, 3, 5);
        assert!(reps.iter().all(|&r| r < pts.len()));
        // no duplicates
        let mut sorted = reps.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), reps.len());
    }

    #[test]
    fn k_zero_and_empty_inputs() {
        assert!(representatives(&[], 3, 0).is_empty());
        assert!(representatives(&[vec![1.0]], 0, 0).is_empty());
        assert!(outlier_scores(&[], 3, 0).is_empty());
        assert!(top_outliers(&[], 3, 2, 0).is_empty());
    }

    #[test]
    fn spike_is_top_outlier() {
        let series = clustered_series();
        let pts = embed(&series);
        let out = top_outliers(&pts, 2, 1, 13);
        assert_eq!(out, vec![16], "the spike series should be the #1 outlier");
    }

    #[test]
    fn outlier_scores_rank_spike_highest() {
        let series = clustered_series();
        let pts = embed(&series);
        let scores = outlier_scores(&pts, 2, 13);
        let max_idx = (0..scores.len())
            .max_by(|&a, &b| scores[a].total_cmp(&scores[b]))
            .unwrap();
        assert_eq!(max_idx, 16);
    }

    #[test]
    fn auto_k_recovers_planted_cluster_count() {
        // Two clean shape clusters → auto_k should find 2.
        let series = clustered_series();
        let pts = embed_normalized(&series[..16]); // 8 up + 8 down
        assert_eq!(auto_k(&pts, 6, 3), 2);
        let reps = auto_representatives(&pts, 6, 3);
        assert_eq!(reps.len(), 2);
        // Add a third distinct *shape* cluster (zig-zag) → 3.
        let mut three = series[..16].to_vec();
        for i in 0..8 {
            let o = i as f64 * 0.02;
            three.push(Series::from_ys(&[0.0 + o, 3.0 + o, 0.0 + o, 3.0 + o]));
        }
        assert_eq!(auto_k(&embed_normalized(&three), 6, 3), 3);
    }

    #[test]
    fn auto_k_degenerate_inputs() {
        // No structure at all: identical points → silhouette degenerates
        // to 0 everywhere → k = 1. (For merely *near*-uniform data the
        // silhouette criterion, like all scale-free criteria, may still
        // split — the gap statistic would be the next refinement.)
        let blob: Vec<Vec<f64>> = (0..12).map(|_| vec![1.0, 2.0]).collect();
        assert_eq!(auto_k(&blob, 5, 0), 1);
        // Tiny inputs clamp sensibly.
        assert_eq!(auto_k(&[vec![1.0]], 5, 0), 1);
        assert_eq!(auto_k(&[vec![1.0], vec![2.0]], 5, 0), 2);
        assert_eq!(auto_representatives(&blob, 5, 0).len(), 1);
    }

    #[test]
    fn representative_topup_when_clusters_collapse() {
        // All identical points: k-means centroids coincide; top-up must
        // still return min(k, n) distinct indices.
        let pts = vec![vec![1.0, 1.0]; 5];
        let reps = representatives(&pts, 3, 0);
        assert_eq!(reps.len(), 3);
    }
}
