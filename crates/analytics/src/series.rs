//! Numeric series: the data behind a visualization once axes are fixed.
//!
//! Distance computations (thesis §3.8, functional primitive `D`) need the
//! two operand visualizations on a common x-grid; this module provides
//! alignment via linear interpolation (the thesis's future-work item
//! "use interpolation techniques to populate the missing \[points\] for
//! better comparisons" — implemented here), plus the normalizations
//! applied before comparing shapes.

/// A visualization's data: `(x, y)` points sorted by `x`.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Series {
    points: Vec<(f64, f64)>,
}

impl Series {
    /// Build from points; sorts by x and averages duplicate x values.
    pub fn new(mut points: Vec<(f64, f64)>) -> Self {
        points.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut dedup: Vec<(f64, f64)> = Vec::with_capacity(points.len());
        let mut i = 0;
        while i < points.len() {
            let x = points[i].0;
            let mut sum = 0.0;
            let mut n = 0usize;
            while i < points.len() && points[i].0 == x {
                sum += points[i].1;
                n += 1;
                i += 1;
            }
            dedup.push((x, sum / n as f64));
        }
        Series { points: dedup }
    }

    /// Build from y values on an implicit 0..n x-grid.
    pub fn from_ys(ys: &[f64]) -> Self {
        Series {
            points: ys.iter().enumerate().map(|(i, &y)| (i as f64, y)).collect(),
        }
    }

    /// Build from points already sorted by strictly increasing `x` — the
    /// shape grouped-aggregation results arrive in — skipping the
    /// sort-and-merge pass of [`Series::new`]. Checked in debug builds.
    pub fn from_sorted_points(points: Vec<(f64, f64)>) -> Self {
        debug_assert!(
            points.windows(2).all(|w| w[0].0 < w[1].0),
            "from_sorted_points requires strictly increasing x"
        );
        Series { points }
    }

    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    pub fn xs(&self) -> impl Iterator<Item = f64> + '_ {
        self.points.iter().map(|p| p.0)
    }

    pub fn ys(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.1).collect()
    }

    /// Linearly interpolated value at `x`; clamps beyond the domain.
    pub fn value_at(&self, x: f64) -> f64 {
        assert!(!self.is_empty(), "value_at on empty series");
        let pts = &self.points;
        if x <= pts[0].0 {
            return pts[0].1;
        }
        if x >= pts[pts.len() - 1].0 {
            return pts[pts.len() - 1].1;
        }
        // Find the segment containing x.
        let mut hi = pts.partition_point(|p| p.0 < x);
        if pts[hi].0 == x {
            return pts[hi].1;
        }
        let lo = hi - 1;
        if pts[hi].0 == pts[lo].0 {
            hi = lo;
        }
        let (x0, y0) = pts[lo];
        let (x1, y1) = pts[hi];
        y0 + (y1 - y0) * (x - x0) / (x1 - x0)
    }

    /// Resample onto `n` evenly spaced x positions spanning the domain.
    /// Used to embed variable-length visualizations into a fixed-dimension
    /// vector space for k-means (functional primitive `R`).
    pub fn resample(&self, n: usize) -> Vec<f64> {
        assert!(n >= 1);
        if self.is_empty() {
            return vec![0.0; n];
        }
        let x0 = self.points[0].0;
        let x1 = self.points[self.points.len() - 1].0;
        if n == 1 || x1 == x0 {
            return vec![self.points[0].1; n];
        }
        (0..n)
            .map(|i| self.value_at(x0 + (x1 - x0) * i as f64 / (n - 1) as f64))
            .collect()
    }
}

/// Pre-distance normalization of y values.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Normalize {
    /// Compare raw magnitudes.
    None,
    /// Zero mean, unit variance — compares *shapes*, the zenvisage
    /// default for trend similarity.
    #[default]
    ZScore,
    /// Scale into [0, 1].
    MinMax,
}

/// Apply a normalization in place.
pub fn normalize(ys: &mut [f64], mode: Normalize) {
    match mode {
        Normalize::None => {}
        Normalize::ZScore => {
            let n = ys.len() as f64;
            if ys.is_empty() {
                return;
            }
            let mean = ys.iter().sum::<f64>() / n;
            let var = ys.iter().map(|y| (y - mean) * (y - mean)).sum::<f64>() / n;
            let sd = var.sqrt();
            if sd > 0.0 {
                for y in ys.iter_mut() {
                    *y = (*y - mean) / sd;
                }
            } else {
                for y in ys.iter_mut() {
                    *y = 0.0;
                }
            }
        }
        Normalize::MinMax => {
            let lo = ys.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = ys.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            if hi > lo {
                for y in ys.iter_mut() {
                    *y = (*y - lo) / (hi - lo);
                }
            } else {
                for y in ys.iter_mut() {
                    *y = 0.0;
                }
            }
        }
    }
}

/// Put two series on the union of their x-grids via linear interpolation,
/// returning aligned y vectors.
pub fn align(a: &Series, b: &Series) -> (Vec<f64>, Vec<f64>) {
    if a.is_empty() || b.is_empty() {
        return (Vec::new(), Vec::new());
    }
    let mut grid: Vec<f64> = a.xs().chain(b.xs()).collect();
    grid.sort_by(|x, y| x.total_cmp(y));
    grid.dedup();
    let ya = grid.iter().map(|&x| a.value_at(x)).collect();
    let yb = grid.iter().map(|&x| b.value_at(x)).collect();
    (ya, yb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_sorts_and_merges_duplicates() {
        let s = Series::new(vec![(2.0, 4.0), (1.0, 1.0), (2.0, 6.0)]);
        assert_eq!(s.points(), &[(1.0, 1.0), (2.0, 5.0)]);
    }

    #[test]
    fn interpolation_and_clamping() {
        let s = Series::new(vec![(0.0, 0.0), (10.0, 10.0)]);
        assert_eq!(s.value_at(5.0), 5.0);
        assert_eq!(s.value_at(-3.0), 0.0);
        assert_eq!(s.value_at(42.0), 10.0);
        assert_eq!(s.value_at(0.0), 0.0);
        assert_eq!(s.value_at(10.0), 10.0);
    }

    #[test]
    fn resample_even_grid() {
        let s = Series::new(vec![(0.0, 0.0), (4.0, 8.0)]);
        assert_eq!(s.resample(5), vec![0.0, 2.0, 4.0, 6.0, 8.0]);
        assert_eq!(s.resample(1), vec![0.0]);
        let flat = Series::new(vec![(3.0, 7.0)]);
        assert_eq!(flat.resample(3), vec![7.0, 7.0, 7.0]);
    }

    #[test]
    fn align_on_union_grid() {
        let a = Series::new(vec![(0.0, 0.0), (2.0, 2.0)]);
        let b = Series::new(vec![(1.0, 10.0), (3.0, 30.0)]);
        let (ya, yb) = align(&a, &b);
        // union grid: 0,1,2,3
        assert_eq!(ya, vec![0.0, 1.0, 2.0, 2.0]);
        assert_eq!(yb, vec![10.0, 10.0, 20.0, 30.0]);
    }

    #[test]
    fn align_empty_is_empty() {
        let a = Series::new(vec![(0.0, 1.0)]);
        let (ya, yb) = align(&a, &Series::default());
        assert!(ya.is_empty() && yb.is_empty());
    }

    #[test]
    fn zscore_normalization() {
        let mut ys = vec![1.0, 2.0, 3.0];
        normalize(&mut ys, Normalize::ZScore);
        let mean: f64 = ys.iter().sum::<f64>() / 3.0;
        assert!(mean.abs() < 1e-12);
        let var: f64 = ys.iter().map(|y| y * y).sum::<f64>() / 3.0;
        assert!((var - 1.0).abs() < 1e-12);
        // constant series normalizes to zeros, not NaN
        let mut flat = vec![5.0, 5.0];
        normalize(&mut flat, Normalize::ZScore);
        assert_eq!(flat, vec![0.0, 0.0]);
    }

    #[test]
    fn minmax_normalization() {
        let mut ys = vec![2.0, 4.0, 6.0];
        normalize(&mut ys, Normalize::MinMax);
        assert_eq!(ys, vec![0.0, 0.5, 1.0]);
    }

    proptest::proptest! {
        #[test]
        fn prop_resample_preserves_endpoints(
            ys in proptest::collection::vec(-100.0f64..100.0, 2..20),
            n in 2usize..50,
        ) {
            let s = Series::from_ys(&ys);
            let r = s.resample(n);
            proptest::prop_assert!((r[0] - ys[0]).abs() < 1e-9);
            proptest::prop_assert!((r[n-1] - ys[ys.len()-1]).abs() < 1e-9);
        }

        #[test]
        fn prop_value_at_within_bounds(
            ys in proptest::collection::vec(-100.0f64..100.0, 1..20),
            x in -50.0f64..50.0,
        ) {
            let s = Series::from_ys(&ys);
            let v = s.value_at(x);
            let lo = ys.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = ys.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            proptest::prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
    }
}
