//! # zv-analytics
//!
//! The analytical toolkit behind ZQL's functional primitives (thesis
//! §3.8) and the Chapter 8 measurement pipeline:
//!
//! * [`trend()`] — `T(f)`: least-squares trend estimation;
//! * [`distance`] — `D(f, f')`: ℓ2, DTW, KL, and Earth Mover's metrics
//!   on aligned, normalized series;
//! * [`kmeans()`] / [`representative`] — `R(k, v, f)`: k-representative
//!   selection and the outlier search derived from it;
//! * [`series`] — alignment, interpolation, resampling, normalization;
//! * [`stats`] — ANOVA, Tukey HSD (studentized range by numerical
//!   integration), χ², Kendall's τ, and the special functions they need.
//!
//! This crate is deliberately storage-agnostic: everything operates on
//! plain `f64` series so it can be tested and benchmarked in isolation.

pub mod distance;
pub mod kmeans;
pub mod representative;
pub mod series;
pub mod stats;
pub mod trend;

pub use distance::{series_distance, vec_distance, DistanceKind};
pub use kmeans::{kmeans, KMeansConfig, KMeansResult};
pub use representative::{
    auto_k, auto_representatives, embed, embed_normalized, outlier_scores, representatives,
    top_outliers, EMBED_DIM,
};
pub use series::{align, normalize, Normalize, Series};
pub use stats::{one_way_anova, ptukey, ptukey_sf, tukey_hsd, Anova, TukeyComparison};
pub use trend::{linear_fit, normalized_trend, trend, LinearFit};
