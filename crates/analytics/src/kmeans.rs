//! Lloyd's k-means with k-means++ seeding — the engine behind the
//! functional primitive `R` ("run k-means clustering on the given set of
//! visualizations and return the k centroids", thesis §3.8) and the
//! recommendation service's diverse-trend search (§6.2, k = 5).

use crate::distance::squared_euclidean;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of a clustering run.
#[derive(Clone, Debug)]
pub struct KMeansResult {
    /// `k` centroids, each with the input dimensionality.
    pub centroids: Vec<Vec<f64>>,
    /// Cluster id per input point.
    pub assignments: Vec<usize>,
    /// Sum of squared distances to assigned centroids.
    pub inertia: f64,
    /// Lloyd iterations executed.
    pub iterations: usize,
}

/// Parameters for [`kmeans`].
#[derive(Clone, Copy, Debug)]
pub struct KMeansConfig {
    pub k: usize,
    pub max_iterations: usize,
    pub seed: u64,
    /// Stop when inertia improves by less than this fraction.
    pub tolerance: f64,
}

impl KMeansConfig {
    pub fn new(k: usize, seed: u64) -> Self {
        KMeansConfig {
            k,
            max_iterations: 100,
            seed,
            tolerance: 1e-6,
        }
    }
}

/// Cluster `points` (all of equal dimension) into `config.k` groups.
///
/// If there are fewer points than clusters, every point becomes its own
/// centroid. Empty clusters are re-seeded with the point farthest from
/// its assigned centroid.
pub fn kmeans(points: &[Vec<f64>], config: KMeansConfig) -> KMeansResult {
    assert!(config.k > 0, "k must be positive");
    let n = points.len();
    if n == 0 {
        return KMeansResult {
            centroids: Vec::new(),
            assignments: Vec::new(),
            inertia: 0.0,
            iterations: 0,
        };
    }
    let dim = points[0].len();
    debug_assert!(
        points.iter().all(|p| p.len() == dim),
        "inconsistent dimensions"
    );
    let k = config.k.min(n);

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut centroids = plus_plus_init(points, k, &mut rng);
    let mut assignments = vec![0usize; n];
    let mut inertia = f64::INFINITY;
    let mut iterations = 0;

    for it in 0..config.max_iterations {
        iterations = it + 1;
        // Assignment step.
        let mut new_inertia = 0.0;
        for (i, p) in points.iter().enumerate() {
            let (best, d) = nearest(p, &centroids);
            assignments[i] = best;
            new_inertia += d;
        }
        // Update step.
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (p, &a) in points.iter().zip(&assignments) {
            counts[a] += 1;
            for (s, &v) in sums[a].iter_mut().zip(p) {
                *s += v;
            }
        }
        for (c, (sum, &count)) in centroids.iter_mut().zip(sums.iter().zip(&counts)) {
            if count > 0 {
                for (cv, &sv) in c.iter_mut().zip(sum) {
                    *cv = sv / count as f64;
                }
            }
        }
        // Re-seed empty clusters with the worst-fit point.
        for (cluster, &count) in counts.iter().enumerate() {
            if count == 0 {
                if let Some((worst, _)) = points
                    .iter()
                    .enumerate()
                    .map(|(i, p)| (i, squared_euclidean(p, &centroids[assignments[i]])))
                    .max_by(|a, b| a.1.total_cmp(&b.1))
                {
                    centroids[cluster] = points[worst].clone();
                }
            }
        }
        let improved = inertia - new_inertia;
        inertia = new_inertia;
        if improved >= 0.0 && improved <= config.tolerance * inertia.max(f64::EPSILON) {
            break;
        }
    }

    KMeansResult {
        centroids,
        assignments,
        inertia,
        iterations,
    }
}

/// k-means++ seeding: each next centroid is sampled proportionally to its
/// squared distance from the nearest already-chosen centroid.
fn plus_plus_init(points: &[Vec<f64>], k: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
    let n = points.len();
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..n)].clone());
    let mut d2: Vec<f64> = points
        .iter()
        .map(|p| squared_euclidean(p, &centroids[0]))
        .collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut chosen = n - 1;
            for (i, &d) in d2.iter().enumerate() {
                if target < d {
                    chosen = i;
                    break;
                }
                target -= d;
            }
            chosen
        };
        centroids.push(points[next].clone());
        for (i, p) in points.iter().enumerate() {
            let d = squared_euclidean(p, centroids.last().unwrap());
            if d < d2[i] {
                d2[i] = d;
            }
        }
    }
    centroids
}

/// Index and squared distance of the nearest centroid.
pub fn nearest(point: &[f64], centroids: &[Vec<f64>]) -> (usize, f64) {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, c) in centroids.iter().enumerate() {
        let d = squared_euclidean(point, c);
        if d < best_d {
            best = i;
            best_d = d;
        }
    }
    (best, best_d)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..10 {
            let j = i as f64 * 0.01;
            pts.push(vec![0.0 + j, 0.0]);
            pts.push(vec![10.0 + j, 10.0]);
            pts.push(vec![-10.0 + j, 10.0]);
        }
        pts
    }

    #[test]
    fn separates_well_separated_blobs() {
        let pts = three_blobs();
        let res = kmeans(&pts, KMeansConfig::new(3, 42));
        assert_eq!(res.centroids.len(), 3);
        // Every blob's points land in one cluster.
        for blob in 0..3 {
            let ids: Vec<usize> = (0..10).map(|i| res.assignments[i * 3 + blob]).collect();
            assert!(
                ids.iter().all(|&c| c == ids[0]),
                "blob {blob} split across clusters"
            );
        }
        // Low inertia: points are within 0.1 of their blob center.
        assert!(res.inertia < 1.0, "inertia {}", res.inertia);
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let pts = three_blobs();
        let a = kmeans(&pts, KMeansConfig::new(3, 7));
        let b = kmeans(&pts, KMeansConfig::new(3, 7));
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.centroids, b.centroids);
    }

    #[test]
    fn k_larger_than_n_clamps() {
        let pts = vec![vec![0.0], vec![1.0]];
        let res = kmeans(&pts, KMeansConfig::new(5, 1));
        assert_eq!(res.centroids.len(), 2);
        assert!(res.inertia < 1e-12);
    }

    #[test]
    fn empty_input() {
        let res = kmeans(&[], KMeansConfig::new(3, 1));
        assert!(res.centroids.is_empty());
        assert!(res.assignments.is_empty());
    }

    #[test]
    fn identical_points_single_effective_cluster() {
        let pts = vec![vec![2.0, 2.0]; 8];
        let res = kmeans(&pts, KMeansConfig::new(3, 9));
        assert!(res.inertia < 1e-12);
        assert!(res.assignments.iter().all(|&a| a < 3));
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]
        #[test]
        fn prop_inertia_nonincreasing_in_k(
            raw in proptest::collection::vec(
                proptest::collection::vec(-100.0f64..100.0, 3),
                8..40,
            ),
            seed in 0u64..1000,
        ) {
            let k1 = kmeans(&raw, KMeansConfig::new(1, seed));
            let k3 = kmeans(&raw, KMeansConfig::new(3, seed));
            // k-means is a heuristic, but k=1 has a closed-form optimum
            // (the mean), so more clusters can't be worse than optimal-1.
            proptest::prop_assert!(k3.inertia <= k1.inertia + 1e-6);
        }

        #[test]
        fn prop_assignments_in_range(
            raw in proptest::collection::vec(
                proptest::collection::vec(-10.0f64..10.0, 2),
                1..30,
            ),
            k in 1usize..6,
            seed in 0u64..100,
        ) {
            let res = kmeans(&raw, KMeansConfig::new(k, seed));
            let kk = k.min(raw.len());
            proptest::prop_assert_eq!(res.centroids.len(), kk);
            proptest::prop_assert!(res.assignments.iter().all(|&a| a < kk));
        }
    }
}
