//! Distance metrics between visualizations — the functional primitive
//! `D(f, f')` of thesis §3.8. "For example, this might mean calculating
//! the Earth Mover's Distance or the Kullback-Leibler Divergence between
//! the induced probability distributions"; the prototype shipped
//! Euclidean (ℓ2) and dynamic time warping (§10.1), so all four are here.

use crate::series::{align, normalize, Normalize, Series};

/// Which metric `D` uses.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub enum DistanceKind {
    /// ℓ2 distance on aligned y vectors — the prototype default (§7.2
    /// "with ℓ2 as a distance metric D").
    #[default]
    Euclidean,
    /// Dynamic time warping with an optional Sakoe-Chiba band.
    Dtw { window: Option<usize> },
    /// Symmetrised Kullback-Leibler divergence on induced distributions.
    KlDivergence,
    /// 1-D Earth Mover's Distance on induced distributions.
    EarthMovers,
}

/// Distance between two equal-length vectors.
pub fn vec_distance(kind: DistanceKind, a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "vec_distance requires equal lengths");
    if a.is_empty() {
        return 0.0;
    }
    match kind {
        DistanceKind::Euclidean => euclidean(a, b),
        DistanceKind::Dtw { window } => dtw(a, b, window),
        DistanceKind::KlDivergence => sym_kl(&induced_distribution(a), &induced_distribution(b)),
        DistanceKind::EarthMovers => emd1d(&induced_distribution(a), &induced_distribution(b)),
    }
}

/// Distance between two series: align on the union x-grid, normalize,
/// then apply the metric.
pub fn series_distance(kind: DistanceKind, norm: Normalize, a: &Series, b: &Series) -> f64 {
    let (mut ya, mut yb) = align(a, b);
    if ya.is_empty() {
        // One side has no data: maximally dissimilar unless both empty.
        return if a.is_empty() && b.is_empty() {
            0.0
        } else {
            f64::INFINITY
        };
    }
    normalize(&mut ya, norm);
    normalize(&mut yb, norm);
    vec_distance(kind, &ya, &yb)
}

pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

pub fn squared_euclidean(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>()
}

/// Dynamic time warping with |a-b| local cost. `window` bounds the
/// warping path's deviation from the diagonal (Sakoe-Chiba).
pub fn dtw(a: &[f64], b: &[f64], window: Option<usize>) -> f64 {
    let (n, m) = (a.len(), b.len());
    if n == 0 || m == 0 {
        return if n == m { 0.0 } else { f64::INFINITY };
    }
    let w = window.unwrap_or(n.max(m)).max(n.abs_diff(m));
    // Two-row DP to keep memory O(m).
    let mut prev = vec![f64::INFINITY; m + 1];
    let mut cur = vec![f64::INFINITY; m + 1];
    prev[0] = 0.0;
    for i in 1..=n {
        cur[0] = f64::INFINITY;
        let j_lo = i.saturating_sub(w).max(1);
        let j_hi = (i + w).min(m);
        cur[1..=m].fill(f64::INFINITY);
        for j in j_lo..=j_hi {
            let cost = (a[i - 1] - b[j - 1]).abs();
            let best = prev[j].min(cur[j - 1]).min(prev[j - 1]);
            cur[j] = cost + best;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m]
}

/// Turn arbitrary y values into a probability distribution: shift to be
/// non-negative, add ε smoothing, normalize to sum 1.
pub fn induced_distribution(ys: &[f64]) -> Vec<f64> {
    const EPS: f64 = 1e-9;
    let lo = ys.iter().copied().fold(f64::INFINITY, f64::min);
    let shifted: Vec<f64> = ys.iter().map(|&y| y - lo + EPS).collect();
    let total: f64 = shifted.iter().sum();
    shifted.into_iter().map(|v| v / total).collect()
}

/// Symmetrised KL divergence `(KL(p‖q) + KL(q‖p)) / 2`.
pub fn sym_kl(p: &[f64], q: &[f64]) -> f64 {
    let kl = |p: &[f64], q: &[f64]| -> f64 {
        p.iter()
            .zip(q)
            .map(|(&pi, &qi)| if pi > 0.0 { pi * (pi / qi).ln() } else { 0.0 })
            .sum::<f64>()
    };
    (kl(p, q) + kl(q, p)) / 2.0
}

/// 1-D Earth Mover's Distance = ℓ1 distance of CDFs.
pub fn emd1d(p: &[f64], q: &[f64]) -> f64 {
    let mut cp = 0.0;
    let mut cq = 0.0;
    let mut total = 0.0;
    for (&pi, &qi) in p.iter().zip(q) {
        cp += pi;
        cq += qi;
        total += (cp - cq).abs();
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_basics() {
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(euclidean(&[1.0], &[1.0]), 0.0);
        assert_eq!(squared_euclidean(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    #[test]
    fn dtw_handles_phase_shift_better_than_l2() {
        // Same shape shifted by one step: DTW should be near zero while
        // L2 is large.
        let a: Vec<f64> = (0..20).map(|i| ((i as f64) / 3.0).sin()).collect();
        let b: Vec<f64> = (0..20).map(|i| ((i as f64 - 1.0) / 3.0).sin()).collect();
        let d_dtw = dtw(&a, &b, None);
        let d_l2 = euclidean(&a, &b);
        assert!(
            d_dtw < d_l2,
            "dtw {d_dtw} should beat l2 {d_l2} on shifted series"
        );
    }

    #[test]
    fn dtw_identity_and_symmetry() {
        let a = [1.0, 2.0, 3.0, 2.0];
        let b = [2.0, 2.0, 4.0, 1.0];
        assert_eq!(dtw(&a, &a, None), 0.0);
        assert!((dtw(&a, &b, None) - dtw(&b, &a, None)).abs() < 1e-12);
    }

    #[test]
    fn dtw_with_band_at_least_unbanded() {
        let a: Vec<f64> = (0..30).map(|i| (i as f64).sin()).collect();
        let b: Vec<f64> = (0..30).map(|i| (i as f64 * 1.1).cos()).collect();
        let unbanded = dtw(&a, &b, None);
        let banded = dtw(&a, &b, Some(2));
        assert!(banded >= unbanded - 1e-12);
    }

    #[test]
    fn dtw_different_lengths() {
        let a = [0.0, 1.0, 2.0];
        let b = [0.0, 0.5, 1.0, 1.5, 2.0];
        let d = dtw(&a, &b, None);
        assert!(d.is_finite());
        assert!(d < 2.0);
    }

    #[test]
    fn induced_distribution_is_probability() {
        let d = induced_distribution(&[-5.0, 0.0, 5.0]);
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(d.iter().all(|&p| p > 0.0));
    }

    #[test]
    fn kl_zero_iff_equal() {
        let p = induced_distribution(&[1.0, 2.0, 3.0]);
        let q = induced_distribution(&[3.0, 2.0, 1.0]);
        assert_eq!(sym_kl(&p, &p), 0.0);
        assert!(sym_kl(&p, &q) > 0.0);
    }

    #[test]
    fn emd_moves_mass_proportionally_to_displacement() {
        let p = [1.0, 0.0, 0.0];
        let q_near = [0.0, 1.0, 0.0];
        let q_far = [0.0, 0.0, 1.0];
        assert!(emd1d(&p, &q_far) > emd1d(&p, &q_near));
        assert_eq!(emd1d(&p, &p), 0.0);
    }

    #[test]
    fn series_distance_aligns_and_normalizes() {
        use crate::series::Series;
        // Same shape at wildly different scales → zero z-scored distance.
        let a = Series::new(vec![(0.0, 1.0), (1.0, 2.0), (2.0, 3.0)]);
        let b = Series::new(vec![(0.0, 100.0), (1.0, 200.0), (2.0, 300.0)]);
        let d = series_distance(DistanceKind::Euclidean, Normalize::ZScore, &a, &b);
        assert!(
            d < 1e-9,
            "shape-equal series should have ~0 distance, got {d}"
        );
        // Without normalization the scales matter.
        let d_raw = series_distance(DistanceKind::Euclidean, Normalize::None, &a, &b);
        assert!(d_raw > 100.0);
    }

    #[test]
    fn series_distance_empty_semantics() {
        use crate::series::Series;
        let a = Series::new(vec![(0.0, 1.0)]);
        let empty = Series::default();
        assert_eq!(
            series_distance(DistanceKind::Euclidean, Normalize::ZScore, &empty, &empty),
            0.0
        );
        assert!(
            series_distance(DistanceKind::Euclidean, Normalize::ZScore, &a, &empty).is_infinite()
        );
    }

    proptest::proptest! {
        #[test]
        fn prop_metrics_nonnegative_and_reflexive(
            a in proptest::collection::vec(-100.0f64..100.0, 1..30),
            b in proptest::collection::vec(-100.0f64..100.0, 1..30),
        ) {
            let n = a.len().min(b.len());
            let (a, b) = (&a[..n], &b[..n]);
            for kind in [
                DistanceKind::Euclidean,
                DistanceKind::Dtw { window: None },
                DistanceKind::KlDivergence,
                DistanceKind::EarthMovers,
            ] {
                let d = vec_distance(kind, a, b);
                proptest::prop_assert!(d >= -1e-12, "{kind:?} gave negative distance {d}");
                let dd = vec_distance(kind, a, a);
                proptest::prop_assert!(dd.abs() < 1e-9, "{kind:?} not reflexive: {dd}");
            }
        }

        #[test]
        fn prop_euclidean_triangle_inequality(
            a in proptest::collection::vec(-10.0f64..10.0, 5),
            b in proptest::collection::vec(-10.0f64..10.0, 5),
            c in proptest::collection::vec(-10.0f64..10.0, 5),
        ) {
            let ab = euclidean(&a, &b);
            let bc = euclidean(&b, &c);
            let ac = euclidean(&a, &c);
            proptest::prop_assert!(ac <= ab + bc + 1e-9);
        }
    }
}
