//! Trend estimation — the functional primitive `T(f)` of thesis §3.8:
//! "measure the slope of a linear fit to the given input visualization".

use crate::series::Series;

/// Ordinary-least-squares fit of `y = slope·x + intercept`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinearFit {
    pub slope: f64,
    pub intercept: f64,
    /// Coefficient of determination in [0, 1].
    pub r_squared: f64,
}

/// Fit a line through `(x, y)` points. A series with fewer than two
/// distinct x values has zero slope by convention.
pub fn linear_fit(points: &[(f64, f64)]) -> LinearFit {
    let n = points.len() as f64;
    if points.len() < 2 {
        let y = points.first().map(|p| p.1).unwrap_or(0.0);
        return LinearFit {
            slope: 0.0,
            intercept: y,
            r_squared: 1.0,
        };
    }
    let mean_x = points.iter().map(|p| p.0).sum::<f64>() / n;
    let mean_y = points.iter().map(|p| p.1).sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for &(x, y) in points {
        let dx = x - mean_x;
        let dy = y - mean_y;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    if sxx == 0.0 {
        return LinearFit {
            slope: 0.0,
            intercept: mean_y,
            r_squared: 1.0,
        };
    }
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let r_squared = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    LinearFit {
        slope,
        intercept,
        r_squared,
    }
}

/// The default `T`: positive for growth, negative for decline (the slope
/// of the least-squares line).
pub fn trend(series: &Series) -> f64 {
    linear_fit(series.points()).slope
}

/// `T` normalized by the y scale, so trends are comparable across
/// measures with different magnitudes (used when ranking by slope across
/// heterogeneous visualizations).
pub fn normalized_trend(series: &Series) -> f64 {
    let pts = series.points();
    if pts.len() < 2 {
        return 0.0;
    }
    let fit = linear_fit(pts);
    let mean_y = pts.iter().map(|p| p.1).sum::<f64>() / pts.len() as f64;
    if mean_y.abs() < f64::EPSILON {
        fit.slope
    } else {
        fit.slope / mean_y.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 * i as f64 + 2.0)).collect();
        let fit = linear_fit(&pts);
        assert!((fit.slope - 3.0).abs() < 1e-12);
        assert!((fit.intercept - 2.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn trend_sign_detects_growth_and_decline() {
        let up = Series::from_ys(&[1.0, 2.0, 2.5, 4.0]);
        let down = Series::from_ys(&[4.0, 3.0, 2.5, 1.0]);
        let flat = Series::from_ys(&[2.0, 2.0, 2.0]);
        assert!(trend(&up) > 0.0);
        assert!(trend(&down) < 0.0);
        assert_eq!(trend(&flat), 0.0);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(linear_fit(&[]).slope, 0.0);
        assert_eq!(linear_fit(&[(1.0, 5.0)]).intercept, 5.0);
        // vertical stack of points: zero slope by convention
        let fit = linear_fit(&[(2.0, 1.0), (2.0, 9.0)]);
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.intercept, 5.0);
    }

    #[test]
    fn r_squared_decreases_with_noise() {
        let clean: Vec<(f64, f64)> = (0..20).map(|i| (i as f64, i as f64)).collect();
        let noisy: Vec<(f64, f64)> = (0..20)
            .map(|i| (i as f64, i as f64 + if i % 2 == 0 { 4.0 } else { -4.0 }))
            .collect();
        assert!(linear_fit(&clean).r_squared > linear_fit(&noisy).r_squared);
    }

    #[test]
    fn normalized_trend_is_scale_free() {
        let small = Series::from_ys(&[1.0, 2.0, 3.0]);
        let big = Series::from_ys(&[100.0, 200.0, 300.0]);
        assert!((normalized_trend(&small) - normalized_trend(&big)).abs() < 1e-12);
    }

    proptest::proptest! {
        #[test]
        fn prop_slope_invariant_to_y_shift(
            ys in proptest::collection::vec(-50.0f64..50.0, 3..30),
            shift in -100.0f64..100.0,
        ) {
            let base = Series::from_ys(&ys);
            let shifted = Series::from_ys(&ys.iter().map(|y| y + shift).collect::<Vec<_>>());
            proptest::prop_assert!((trend(&base) - trend(&shifted)).abs() < 1e-6);
        }

        #[test]
        fn prop_r_squared_bounded(ys in proptest::collection::vec(-50.0f64..50.0, 2..30)) {
            let fit = linear_fit(Series::from_ys(&ys).points());
            proptest::prop_assert!(fit.r_squared >= -1e-9 && fit.r_squared <= 1.0 + 1e-9);
        }
    }
}
