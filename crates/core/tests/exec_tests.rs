//! End-to-end executor tests: the thesis's example queries (Ch. 2–3)
//! run against the planted synthetic sales dataset.

use std::collections::HashMap;
use std::sync::Arc;
use zql::{OptLevel, ZqlEngine};
use zv_analytics::{trend, Series};
use zv_datagen::sales::{
    self, has_profit_discrepancy, is_us_up_uk_down, product_name, SalesConfig,
};
use zv_storage::{
    BitmapDb, BitmapDbConfig, CacheConfig, DynDatabase, ParallelConfig, Predicate, SelectQuery,
    XSpec, YSpec,
};

/// Scan routing for this suite's fixtures: pinned serial. Many tests
/// here assert bit-for-bit equality between *different query shapes*
/// (ZQL batched output vs a hand-written direct query, OptLevel vs
/// OptLevel), and the sales measures are inexact floats — two different
/// shapes only reduce in the same float order when both scan serially
/// in row order. Scheduling equivalence itself is proptested bit-for-bit
/// on exact dyadic data in the storage suites, and stays covered here
/// wherever assertions are shape-local.
fn serial_scan() -> ParallelConfig {
    ParallelConfig {
        threads: 1,
        min_parallel_rows: usize::MAX,
        ..Default::default()
    }
}

fn small_db() -> DynDatabase {
    let table = sales::generate(&SalesConfig {
        rows: 40_000,
        products: 20,
        locations: 4,
        cities: 10,
        ..Default::default()
    });
    Arc::new(BitmapDb::with_config(
        table,
        BitmapDbConfig {
            parallel: serial_scan(),
            ..Default::default()
        },
    ))
}

/// Same data, engine-level result cache off — for tests that assert raw
/// query counts across repeated executions of one engine (the cache
/// would otherwise answer later runs without issuing queries at all;
/// that behaviour has its own tests).
fn small_db_uncached() -> DynDatabase {
    let table = sales::generate(&SalesConfig {
        rows: 40_000,
        products: 20,
        locations: 4,
        cities: 10,
        ..Default::default()
    });
    Arc::new(BitmapDb::with_config(
        table,
        BitmapDbConfig {
            parallel: serial_scan(),
            ..BitmapDbConfig::uncached()
        },
    ))
}

fn engine() -> ZqlEngine {
    ZqlEngine::new(small_db())
}

#[test]
fn table_2_1_collection_of_visualizations() {
    // "the set of total sales over years bar charts for each product sold
    // in the US"
    let eng = engine();
    let out = eng
        .execute_text(
            "name | x | y | z | constraints | viz | process\n\
             *f1 | 'year' | 'sales' | v1 <- 'product'.* | location='US' | bar.(y=agg('sum')) |",
        )
        .unwrap();
    assert_eq!(
        out.visualizations.len(),
        20,
        "one visualization per product"
    );
    // Cross-check one against a direct query.
    let direct = eng
        .database()
        .execute(
            &SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")]).with_predicate(
                Predicate::cat_eq("product", "stapler").and(Predicate::cat_eq("location", "US")),
            ),
        )
        .unwrap();
    let expected = Series::new(direct.groups[0].points(0));
    let stapler = out
        .visualizations
        .iter()
        .find(|v| v.label.contains("stapler"))
        .expect("stapler visualization present");
    assert_eq!(stapler.series, expected);
    assert_eq!(stapler.x, "year");
    assert_eq!(stapler.y, "sales");
}

#[test]
fn table_3_1_y_axis_set() {
    // One viz per y ∈ {profit, sales} for the stapler.
    let out = engine()
        .execute_text(
            "name | x | y | constraints\n\
             *f1 | 'year' | y1 <- {'profit', 'sales'} | product='stapler'",
        )
        .unwrap();
    assert_eq!(out.visualizations.len(), 2);
    assert_eq!(out.visualizations[0].y, "profit");
    assert_eq!(out.visualizations[1].y, "sales");
}

#[test]
fn table_3_2_composite_y_axis() {
    // 'profit' + 'sales' on a single y axis.
    let eng = engine();
    let out = eng
        .execute_text(
            "name | x | y | constraints\n\
             *f1 | 'year' | 'profit' + 'sales' | location='US'",
        )
        .unwrap();
    assert_eq!(out.visualizations.len(), 1);
    let combined = &out.visualizations[0].series;
    // equals the sum of the two individual series
    let q = |col: &str| {
        let rt = eng
            .database()
            .execute(
                &SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum(col)])
                    .with_predicate(Predicate::cat_eq("location", "US")),
            )
            .unwrap();
        Series::new(rt.groups[0].points(0))
    };
    let profit = q("profit");
    let sales = q("sales");
    for (i, p) in combined.points().iter().enumerate() {
        let want = profit.points()[i].1 + sales.points()[i].1;
        assert!((p.1 - want).abs() < 1e-6);
    }
}

#[test]
fn table_3_4_fixed_slices() {
    let out = engine()
        .execute_text(
            "name | x | y | z\n\
             *f1 | 'year' | 'sales' | 'product'.'chair'\n\
             *f2 | 'year' | 'sales' | 'product'.'desk'",
        )
        .unwrap();
    assert_eq!(out.visualizations.len(), 2);
    assert_eq!(out.visualizations[0].label, "product=chair");
    assert_eq!(out.visualizations[1].label, "product=desk");
    assert_ne!(out.visualizations[0].series, out.visualizations[1].series);
}

#[test]
fn table_3_8_multiple_z_columns() {
    // product × location ∈ {US, Canada}
    let out = engine()
        .execute_text(
            "name | x | y | z | z2\n\
             *f1 | 'year' | 'sales' | v1 <- 'product'.* | v2 <- 'location'.{'US', 'Canada'}",
        )
        .unwrap();
    assert_eq!(out.visualizations.len(), 40, "20 products × 2 locations");
    assert!(out.visualizations[0].label.contains("product="));
    assert!(out.visualizations[0].label.contains("location=US"));
    assert!(out.visualizations[1].label.contains("location=Canada"));
}

#[test]
fn table_2_2_similarity_to_user_drawn_input() {
    // Draw a strongly increasing line; the most similar product-sales
    // shape (in the US) must itself be increasing.
    let eng = engine();
    let sketch = Series::from_ys(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    let mut inputs = HashMap::new();
    inputs.insert("f1".to_string(), sketch);
    let out = eng
        .execute_text_with_inputs(
            "name | x | y | z | constraints | process\n\
             -f1 | | | | |\n\
             f2 | 'year' | 'sales' | v1 <- 'product'.* | location='US' | v2 <- argmin(v1)[k=1] D(f1, f2)\n\
             *f3 | 'year' | 'sales' | v2 | location='US' |",
            &inputs,
        )
        .unwrap();
    assert_eq!(out.visualizations.len(), 1);
    let winner = &out.visualizations[0];
    assert!(
        trend(&winner.series) > 0.0,
        "most-similar-to-increasing should increase; got {} with trend {}",
        winner.label,
        trend(&winner.series)
    );
}

#[test]
fn table_5_1_us_up_uk_down_with_representatives() {
    // Products with positive US trend AND negative UK trend, then R(4,...).
    let out = engine()
        .execute_text(
            "name | x | y | z | constraints | viz | process\n\
             f1 | 'year' | 'sales' | v1 <- 'product'.* | location='US' | bar.(y=agg('sum')) | v2 <- argany(v1)[t > 0] T(f1)\n\
             f2 | 'year' | 'sales' | v1 | location='UK' | bar.(y=agg('sum')) | v3 <- argany(v1)[t < 0] T(f2)\n\
             f3 | 'year' | 'profit' | v4 <- (v2.range & v3.range) | | bar.(y=agg('sum')) | v5 <- R(4, v4, f3)\n\
             *f4 | 'year' | 'profit' | v5 | | bar.(y=agg('sum')) |",
        )
        .unwrap();
    assert_eq!(out.visualizations.len(), 4);
    // Every returned product must *actually* satisfy the two thresholds
    // (planted products dominate, but an unplanted product may qualify by
    // chance — that is correct behaviour, so verify against the data).
    let eng = engine();
    let trend_of = |product: &str, location: &str| {
        let rt = eng
            .database()
            .execute(
                &SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")]).with_predicate(
                    Predicate::cat_eq("product", product)
                        .and(Predicate::cat_eq("location", location)),
                ),
            )
            .unwrap();
        trend(&Series::new(rt.groups[0].points(0)))
    };
    let mut planted = 0;
    for viz in &out.visualizations {
        let product = viz.label.strip_prefix("product=").unwrap();
        assert!(
            trend_of(product, "US") > 0.0,
            "{product} US trend not positive"
        );
        assert!(
            trend_of(product, "UK") < 0.0,
            "{product} UK trend not negative"
        );
        let idx = (0..20).find(|&p| product_name(p) == product).unwrap();
        if is_us_up_uk_down(idx) {
            planted += 1;
        }
    }
    assert!(planted >= 2, "planted products should dominate the answer");
}

#[test]
fn table_3_13_top_k_most_similar_to_stapler() {
    let out = engine()
        .execute_text(
            "name | x | y | z | process\n\
             f1 | 'year' | 'sales' | 'product'.'stapler' |\n\
             f2 | 'year' | 'sales' | v1 <- 'product'.(* \\ {'stapler'}) | v2 <- argmin(v1)[k=5] D(f1, f2)\n\
             *f3 | 'year' | 'sales' | v2 |",
        )
        .unwrap();
    assert_eq!(out.visualizations.len(), 5);
    // None of them is the stapler itself.
    assert!(out
        .visualizations
        .iter()
        .all(|v| !v.label.contains("stapler")));
    // The list is sorted by similarity: distances non-decreasing.
    let eng = engine();
    let stapler = eng
        .execute_text("name | x | y | z\n*f | 'year' | 'sales' | 'product'.'stapler'")
        .unwrap()
        .visualizations
        .remove(0)
        .series;
    let reg = zql::FunctionRegistry::default();
    let dists: Vec<f64> = out
        .visualizations
        .iter()
        .map(|v| reg.d(&v.series, &stapler))
        .collect();
    for w in dists.windows(2) {
        assert!(w[0] <= w[1] + 1e-9, "similarity order violated: {dists:?}");
    }
}

#[test]
fn table_3_15_order_reordering() {
    // Reorder product visualizations by increasing overall trend.
    let out = engine()
        .execute_text(
            "name | x | y | z | process\n\
             f1 | 'year' | 'sales' | v1 <- 'product'.* | u1 <- argmin(v1)[k=inf] T(f1)\n\
             *f2=f1.order | | | u1 ->",
        )
        .unwrap();
    assert_eq!(out.visualizations.len(), 20);
    let trends: Vec<f64> = out
        .visualizations
        .iter()
        .map(|v| trend(&v.series))
        .collect();
    for w in trends.windows(2) {
        assert!(w[0] <= w[1] + 1e-9, "not sorted by trend: {trends:?}");
    }
}

#[test]
fn table_3_16_derived_component_with_bindings() {
    // f3 = f1 + f2; bind v2 to f3's products; argmax discrepancy.
    let out = engine()
        .execute_text(
            "name | x | y | z | process\n\
             f1 | 'year' | 'sales' | v1 <- 'product'.(* \\ {'stapler'}) |\n\
             f2 | 'year' | 'sales' | 'product'.'stapler' |\n\
             f3=f1+f2 | | y1 <- _ | v2 <- 'product'._ |\n\
             f4 | 'year' | 'profit' | v2 | v3 <- argmax(v2)[k=5] D(f3, f4)\n\
             *f5 | 'year' | 'sales' | v3 |",
        )
        .unwrap();
    assert_eq!(out.visualizations.len(), 5);
}

#[test]
fn table_3_17_dissimilar_sales_vs_profit() {
    // Top-k products where sales and profit trends diverge most: the
    // planted discrepancy products must dominate.
    let out = engine()
        .execute_text(
            "name | x | y | z | process\n\
             f1 | 'year' | 'sales' | v1 <- 'product'.* |\n\
             f2 | 'year' | 'profit' | v1 | v2 <- argmax(v1)[k=3] D(f1, f2)\n\
             *f3 | 'year' | 'sales' | v2\n\
             *f4 | 'year' | 'profit' | v2",
        )
        .unwrap();
    assert_eq!(
        out.visualizations.len(),
        6,
        "3 sales + 3 profit visualizations"
    );
    for viz in &out.visualizations[..3] {
        let product = viz.label.strip_prefix("product=").unwrap();
        let idx = (0..20).find(|&p| product_name(p) == product).unwrap();
        assert!(
            has_profit_discrepancy(idx),
            "{product} should be a planted discrepancy product"
        );
    }
}

#[test]
fn table_3_18_in_range_constraint() {
    // Top products by sales trend; then one combined profit viz over them.
    let out = engine()
        .execute_text(
            "name | x | y | z | constraints | process\n\
             f1 | 'year' | 'sales' | v1 <- 'product'.* | | v2 <- argmax(v1)[k=5] T(f1)\n\
             *f2 | 'year' | 'profit' | | product IN (v2.range) |",
        )
        .unwrap();
    assert_eq!(
        out.visualizations.len(),
        1,
        "one aggregate over the 5 products"
    );
    assert!(!out.visualizations[0].series.is_empty());
}

#[test]
fn table_3_20_outlier_search_two_level_iteration() {
    let out = engine()
        .execute_text(
            "name | x | y | z | process\n\
             f1 | 'year' | 'sales' | v1 <- 'product'.* | v2 <- R(3, v1, f1)\n\
             f2 | 'year' | 'sales' | v2 | v3 <- argmax(v1)[k=4] min(v2) D(f1, f2)\n\
             *f3 | 'year' | 'sales' | v3 |",
        )
        .unwrap();
    assert_eq!(out.visualizations.len(), 4);
}

#[test]
fn table_3_21_multiple_processes_per_row() {
    let sketch = Series::from_ys(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    let mut inputs = HashMap::new();
    inputs.insert("f1".to_string(), sketch);
    let out = engine()
        .execute_text_with_inputs(
            "name | x | y | z | process\n\
             -f1 | | | |\n\
             f2 | 'year' | 'sales' | v1 <- 'product'.* | (v2 <- argmin(v1)[k=1] D(f1, f2)), (v3 <- argmax(v1)[k=1] D(f1, f2))\n\
             *f3 | 'year' | 'sales' | v2 |\n\
             *f4 | 'year' | 'sales' | v3 |",
            &inputs,
        )
        .unwrap();
    assert_eq!(out.visualizations.len(), 2);
    // most-similar and most-dissimilar must differ
    assert_ne!(out.visualizations[0].label, out.visualizations[1].label);
}

#[test]
fn table_3_10_binned_bar_chart() {
    let out = engine()
        .execute_text(
            "name | x | y | viz\n\
             *f1 | 'weight' | 'sales' | bar.(x=bin(20), y=agg('sum'))",
        )
        .unwrap();
    assert_eq!(out.visualizations.len(), 1);
    let xs: Vec<f64> = out.visualizations[0].series.xs().collect();
    for w in xs.windows(2) {
        assert!(
            (w[1] - w[0]).rem_euclid(20.0) < 1e-9,
            "bins should be 20 apart: {xs:?}"
        );
    }
}

#[test]
fn table_3_12_viz_type_set() {
    let out = engine()
        .execute_text(
            "name | x | y | viz\n\
             *f1 | 'weight' | 'sales' | t1 <- {bar, dotplot}.(x=bin(20), y=agg('sum'))",
        )
        .unwrap();
    assert_eq!(out.visualizations.len(), 2);
    assert_ne!(
        out.visualizations[0].spec.chart,
        out.visualizations[1].spec.chart
    );
    // identical data, different chart type
    assert_eq!(out.visualizations[0].series, out.visualizations[1].series);
}

#[test]
fn name_expression_index_slice_range() {
    let out = engine()
        .execute_text(
            "name | x | y | z\n\
             f1 | 'year' | 'sales' | v1 <- 'product'.*\n\
             *f2=f1[1:3] | | |\n\
             *f3=f1[5] | | |",
        )
        .unwrap();
    assert_eq!(out.visualizations.len(), 4); // 3 + 1
    assert_eq!(out.visualizations[3].component, "f3");
}

#[test]
fn name_expression_sub_and_intersect() {
    let out = engine()
        .execute_text(
            "name | x | y | z\n\
             f1 | 'year' | 'sales' | v1 <- 'product'.*\n\
             f2 | 'year' | 'sales' | v2 <- 'product'.{'chair', 'desk'}\n\
             *f3=f1-f2 | | |\n\
             *f4=f1^f2 | | |",
        )
        .unwrap();
    let f3: Vec<&str> = out
        .visualizations
        .iter()
        .filter(|v| v.component == "f3")
        .map(|v| v.label.as_str())
        .collect();
    let f4: Vec<&str> = out
        .visualizations
        .iter()
        .filter(|v| v.component == "f4")
        .map(|v| v.label.as_str())
        .collect();
    assert_eq!(f3.len(), 18);
    assert!(!f3.contains(&"product=chair"));
    assert_eq!(f4, vec!["product=chair", "product=desk"]);
}

#[test]
fn all_opt_levels_agree_and_batch_monotonically() {
    let db = small_db_uncached();
    let text = "name | x | y | z | constraints | process\n\
         f1 | 'year' | 'sales' | v1 <- 'product'.* | location='US' | v2 <- argany(v1)[t > 0] T(f1)\n\
         f2 | 'year' | 'sales' | v1 | location='UK' | v3 <- argany(v1)[t < 0] T(f2)\n\
         *f3 | 'year' | 'profit' | v4 <- (v2.range & v3.range) | |";
    let mut reference: Option<Vec<(String, Series)>> = None;
    let mut queries = Vec::new();
    let mut requests = Vec::new();
    for opt in [
        OptLevel::NoOpt,
        OptLevel::IntraLine,
        OptLevel::IntraTask,
        OptLevel::InterTask,
    ] {
        let eng = ZqlEngine::with_opt_level(db.clone(), opt);
        let out = eng.execute_text(text).unwrap();
        let shape: Vec<(String, Series)> = out
            .visualizations
            .iter()
            .map(|v| (v.label.clone(), v.series.clone()))
            .collect();
        match &reference {
            None => reference = Some(shape),
            Some(r) => assert_eq!(&shape, r, "results diverge at {opt:?}"),
        }
        queries.push(out.report.sql_queries);
        requests.push(out.report.requests);
    }
    // NoOpt issues one query per visualization; batched levels far fewer.
    assert!(
        queries[0] > queries[1],
        "intra-line must reduce query count: {queries:?}"
    );
    assert_eq!(queries[1], queries[2]);
    assert_eq!(queries[2], queries[3]);
    // Requests: NoOpt = one per query; then per-row; then per-task-block;
    // inter-task batches f2 with f1 (f2 is independent of t1).
    assert_eq!(requests[0], queries[0]);
    assert!(requests[1] >= requests[2], "{requests:?}");
    assert!(requests[2] >= requests[3], "{requests:?}");
    assert!(
        requests[3] < requests[1],
        "inter-task must reduce requests: {requests:?}"
    );
}

#[test]
fn report_counts_queries() {
    let out = engine()
        .execute_text(
            "name | x | y | z\n\
             *f1 | 'year' | 'sales' | v1 <- 'product'.*",
        )
        .unwrap();
    assert!(out.report.sql_queries >= 1);
    assert!(out.report.requests >= 1);
    assert!(out.report.rows_scanned > 0);
    assert!(out.report.total_time >= out.report.db_time);
}

#[test]
fn semantic_errors_are_reported() {
    let eng = engine();
    // unknown variable
    assert!(eng
        .execute_text("name | x | y | z\n*f1 | 'year' | 'sales' | vz")
        .is_err());
    // duplicate component
    assert!(eng
        .execute_text("name | x | y\nf1 | 'year' | 'sales'\nf1 | 'year' | 'profit'")
        .is_err());
    // missing user input
    assert!(eng.execute_text("name | x | y\n-f1 | |").is_err());
    // unknown column
    assert!(eng
        .execute_text("name | x | y\n*f1 | 'bogus' | 'sales'")
        .is_err());
}

#[test]
fn named_value_sets_from_registry() {
    let mut eng = engine();
    eng.registry_mut()
        .register_value_set("P", vec!["chair".into(), "desk".into(), "table".into()]);
    // named set without attribute qualification
    let out = eng
        .execute_text(
            "name | x | y | z\n\
             *f1 | 'year' | 'sales' | v1 <- 'product'.P",
        )
        .unwrap();
    assert_eq!(out.visualizations.len(), 3);
}

#[test]
fn named_attr_sets_from_registry() {
    let mut eng = engine();
    eng.registry_mut()
        .register_attr_set("M", vec!["sales".into(), "profit".into(), "weight".into()]);
    let out = eng
        .execute_text(
            "name | x | y\n\
             *f1 | 'year' | y1 <- M",
        )
        .unwrap();
    assert_eq!(out.visualizations.len(), 3);
}

#[test]
fn table_3_19_axes_that_differentiate_two_slices() {
    // "finds the x- and y- axes which differentiate the chair and the
    // desk most" — co-declared (x1, y1) iteration, paired comparison,
    // two outputs feeding two output rows.
    let mut eng = engine();
    eng.registry_mut()
        .register_attr_set("C", vec!["year".into(), "month".into()]);
    eng.registry_mut()
        .register_attr_set("M", vec!["sales".into(), "profit".into(), "weight".into()]);
    let out = eng
        .execute_text(
            "name | x | y | z | process\n\
             f1 | x1 <- C | y1 <- M | 'product'.'chair' |\n\
             f2 | x1 | y1 | 'product'.'desk' | x2, y2 <- argmax(x1, y1)[k=1] D(f1, f2)\n\
             *f3 | x2 | y2 | 'product'.'chair' |\n\
             *f4 | x2 | y2 | 'product'.'desk' |",
        )
        .unwrap();
    assert_eq!(out.visualizations.len(), 2);
    // Both outputs share the winning axes and differ only in the slice.
    assert_eq!(out.visualizations[0].x, out.visualizations[1].x);
    assert_eq!(out.visualizations[0].y, out.visualizations[1].y);
    assert_eq!(out.visualizations[0].label, "product=chair");
    assert_eq!(out.visualizations[1].label, "product=desk");
}

#[test]
fn table_3_22_representative_sales_for_stapler_like_profits() {
    // §3.9 Query 1: products whose profit trend resembles the stapler's,
    // then representative sales visualizations among them.
    let out = engine()
        .execute_text(
            "name | x | y | z | viz | process\n\
             f1 | 'year' | 'profit' | 'product'.'stapler' | bar.(y=agg('sum')) |\n\
             f2 | 'year' | 'profit' | v1 <- 'product'.(* \\ {'stapler'}) | bar.(y=agg('sum')) | v2 <- argmin(v1)[k=8] D(f1, f2)\n\
             f3 | 'year' | 'sales' | v2 | bar.(y=agg('sum')) | v3 <- R(3, v2, f3)\n\
             *f4 | 'year' | 'sales' | v3 | bar.(y=agg('sum')) |",
        )
        .unwrap();
    assert_eq!(out.visualizations.len(), 3);
    assert!(out
        .visualizations
        .iter()
        .all(|v| !v.label.contains("stapler")));
}

#[test]
fn table_3_23_monthly_discrepancy_in_2015() {
    // §3.9 Query 2: top products with 2015 sales/profit discrepancies,
    // plotted for both measures via a y-axis set.
    let out = engine()
        .execute_text(
            "name | x | y | z | constraints | viz | process\n\
             f1 | 'month' | 'profit' | v1 <- 'product'.* | year=2015 | bar.(y=agg('sum')) |\n\
             f2 | 'month' | 'sales' | v1 | year=2015 | bar.(y=agg('sum')) | v2 <- argmax(v1)[k=4] D(f1, f2)\n\
             *f3 | 'month' | y1 <- {'sales', 'profit'} | v2 | year=2015 | bar.(y=agg('sum')) |",
        )
        .unwrap();
    // 4 products × 2 measures; y-major order (Y column precedes Z).
    assert_eq!(out.visualizations.len(), 8);
    assert_eq!(out.visualizations[0].y, "sales");
    assert_eq!(out.visualizations[4].y, "profit");
    // each visualization covers only 2015's twelve months
    for viz in &out.visualizations {
        assert!(viz.series.len() <= 12);
    }
}

#[test]
fn table_3_24_axes_separating_flattest_and_steepest_products() {
    // §3.9 Query 3: R(1,…) picks the most average product, argmax T the
    // steepest; then find the y-axes separating them the most.
    let mut eng = engine();
    eng.registry_mut()
        .register_attr_set("M", vec!["sales".into(), "profit".into(), "weight".into()]);
    let out = eng
        .execute_text(
            "name | x | y | z | viz | process\n\
             f1 | 'year' | 'sales' | v1 <- 'product'.* | bar.(y=agg('sum')) | (v2 <- R(1, v1, f1)), (v3 <- argmax(v1)[k=1] T(f1))\n\
             f2 | 'year' | y1 <- M | v2 | bar.(y=agg('sum')) |\n\
             f3 | 'year' | y1 | v3 | bar.(y=agg('sum')) | y2, v4, v5 <- argmax(y1, v2, v3)[k=2] D(f2, f3)\n\
             *f4 | 'year' | y2 | v6 <- (v4.range | v5.range) | bar.(y=agg('sum')) |",
        )
        .unwrap();
    // y2 iterates the top-2 (y, v2, v3) combos; v6 unions the two product
    // ranges → per combo: |y2 group| × |v6 group| cells.
    assert!(!out.visualizations.is_empty());
    // the two products differ, so the union range has 2 values
    let labels: Vec<&str> = out
        .visualizations
        .iter()
        .map(|v| v.label.as_str())
        .collect();
    let mut distinct = labels.clone();
    distinct.sort_unstable();
    distinct.dedup();
    assert!(
        distinct.len() >= 2,
        "expected ≥2 product slices, got {labels:?}"
    );
}

#[test]
fn shared_pass_cache_deduplicates_identical_group_bys() {
    // Two fresh components with identical (x, y, z-domain, predicate)
    // compile to the same combined GROUP BY; at IntraTask and above the
    // shared-pass cache must fetch it once.
    let text = "name | x | y | z | constraints | viz\n\
         f1 | 'year' | 'sales' | v1 <- 'product'.* | location='US' | bar.(y=agg('sum'))\n\
         *f2 | 'year' | 'sales' | v2 <- 'product'.* | location='US' | bar.(y=agg('sum'))";
    let db = small_db_uncached();
    let run = |opt: OptLevel| {
        let engine = ZqlEngine::with_opt_level(db.clone(), opt);
        engine.execute_text(text).unwrap().report.sql_queries
    };
    let intra_line = run(OptLevel::IntraLine);
    let inter_task = run(OptLevel::InterTask);
    assert_eq!(
        intra_line, 2,
        "one combined query per row without the cache"
    );
    assert_eq!(inter_task, 1, "the cache collapses the identical group-bys");

    // The cached plan must still produce the same visualizations.
    let a = ZqlEngine::with_opt_level(db.clone(), OptLevel::IntraLine)
        .execute_text(text)
        .unwrap();
    let b = ZqlEngine::with_opt_level(db, OptLevel::InterTask)
        .execute_text(text)
        .unwrap();
    assert_eq!(a.visualizations.len(), b.visualizations.len());
    for (va, vb) in a.visualizations.iter().zip(&b.visualizations) {
        assert_eq!(va.series, vb.series, "{}", va.label);
    }
}

#[test]
fn permuted_predicates_share_one_canonical_query() {
    // Regression: the shared-pass cache used to key on an ad-hoc
    // `format!("{:?}")` rendering of the query, so two rows whose
    // constraints listed the same atoms in a different order fetched
    // twice. The canonical `QueryKey` must make them collide.
    let text = "name | x | y | constraints | viz\n\
         f1 | 'year' | 'sales' | location='US' and product='stapler' | bar.(y=agg('sum'))\n\
         *f2 | 'year' | 'sales' | product='stapler' and location='US' | bar.(y=agg('sum'))";
    let db = small_db_uncached();
    let out = ZqlEngine::with_opt_level(db.clone(), OptLevel::InterTask)
        .execute_text(text)
        .unwrap();
    assert_eq!(
        out.report.sql_queries, 1,
        "permuted-but-equivalent predicates must share one fetch"
    );
    // And the deduplicated fetch feeds both components identically.
    assert_eq!(out.visualizations.len(), 1);
    let unpermuted = ZqlEngine::with_opt_level(db, OptLevel::NoOpt)
        .execute_text(
            "name | x | y | constraints | viz\n\
             *f2 | 'year' | 'sales' | product='stapler' and location='US' | bar.(y=agg('sum'))",
        )
        .unwrap();
    assert_eq!(
        out.visualizations[0].series,
        unpermuted.visualizations[0].series
    );
}

#[test]
fn engine_cache_derivation_is_transparent_across_opt_levels() {
    // Interactive drill-down: a full per-product sweep, then a single
    // product slice. The engine-level cache answers the slice without
    // scanning — exactly (NoOpt cached the per-product queries) or by
    // deriving from the combined group-by (batched levels) — and at
    // every OptLevel the output must be identical to an uncached run.
    let table = sales::generate(&SalesConfig {
        rows: 40_000,
        products: 20,
        locations: 4,
        cities: 10,
        ..Default::default()
    });
    let sweep = "name | x | y | z\n\
         *f1 | 'year' | 'sales' | v1 <- 'product'.*";
    let slice = "name | x | y | constraints\n\
         *f2 | 'year' | 'sales' | product='stapler'";
    // Serial for the same reason as `serial_scan` (a derived slice is
    // post-filtered out of a cached full-table group-by — a different
    // shape than the direct scan it is compared against). Cached ≡
    // bypassed under parallel routing is covered bit-for-bit by the
    // dyadic-data suites (cache_equivalence / cache_derivation).
    let serial = serial_scan();
    for opt in [
        OptLevel::NoOpt,
        OptLevel::IntraLine,
        OptLevel::IntraTask,
        OptLevel::InterTask,
    ] {
        let cached_db: DynDatabase = Arc::new(BitmapDb::with_config(
            table.clone(),
            BitmapDbConfig {
                cache: CacheConfig::admit_all(),
                parallel: serial,
                ..Default::default()
            },
        ));
        let uncached_db: DynDatabase = Arc::new(BitmapDb::with_config(
            table.clone(),
            BitmapDbConfig {
                parallel: serial,
                ..BitmapDbConfig::uncached()
            },
        ));
        let engine = ZqlEngine::with_opt_level(cached_db, opt);
        let _ = engine.execute_text(sweep).unwrap();
        let out = engine.execute_text(slice).unwrap();
        assert_eq!(
            out.report.rows_scanned, 0,
            "{opt:?}: the slice must be answered without a scan"
        );
        assert!(
            out.report.cache_hits + out.report.cache_derived_hits >= 1,
            "{opt:?}: the slice must come from the cache"
        );
        let reference = ZqlEngine::with_opt_level(uncached_db, opt)
            .execute_text(slice)
            .unwrap();
        assert_eq!(out.visualizations.len(), reference.visualizations.len());
        for (a, b) in out.visualizations.iter().zip(&reference.visualizations) {
            assert_eq!(a.series, b.series, "{opt:?}: derived slice diverges");
        }
    }
}

#[test]
fn cancelled_ctx_aborts_zql_execution() {
    use zql::{QueryCtx, ZqlError};
    use zv_storage::StorageError;

    let eng = engine();
    let zql = "name | x | y | z | constraints\n\
               *f1 | 'year' | 'sales' | v1 <- 'product'.* | location='US'";

    // Pre-cancelled: the execution aborts at its first data fetch and
    // the cancellation is visible in the engine's counters.
    let before = eng.database().stats().snapshot();
    let ctx = QueryCtx::new();
    ctx.cancel();
    let err = eng.execute_text_ctx(zql, &ctx).unwrap_err();
    assert!(
        matches!(err, ZqlError::Storage(StorageError::Cancelled)),
        "expected Cancelled, got {err}"
    );
    let delta = eng.database().stats().snapshot().since(&before);
    assert_eq!(delta.queries_cancelled, 1);
    assert_eq!(delta.rows_scanned, 0, "no fetch ran");

    // A row budget cancels mid-execution; the same query then succeeds
    // on a fresh ctx and reports the cancellation counters it *didn't*
    // accumulate (its own ExecReport deltas start clean).
    let budget = QueryCtx::new().with_row_budget(1);
    let err = eng.execute_text_ctx(zql, &budget).unwrap_err();
    assert!(matches!(err, ZqlError::Storage(StorageError::Cancelled)));
    assert!(budget.stats().cancelled);

    let out = eng.execute_text(zql).unwrap();
    assert_eq!(out.visualizations.len(), 20);
    assert_eq!(out.report.queries_cancelled, 0);
    assert_eq!(out.report.morsels_cancelled, 0);
}
