//! Visual-exploration-completeness checks (thesis Ch. 4): for each
//! algebra operator, run the operator directly (`zv-vea`) and an
//! equivalent ZQL query (`zql`), and compare the resulting visualization
//! bags. These are executable versions of the constructions in
//! Tables 4.4–4.23, on a Table-4.1-style relation.

use std::collections::HashMap;
use std::sync::Arc;
use zql::{OptLevel, ZqlEngine};
use zv_analytics::Series;
use zv_storage::{BitmapDb, DataType, DynDatabase, Field, Schema, TableBuilder, Value};
use zv_vea::{
    delta_v, diff_v, eta_v, intersect_v, mu_v_range, sigma_v, slice_group, tau_v, union_v, zeta_v,
    AttrFilter, Primitives, Term, Theta, VisualGroup, VisualSource, VisualUniverse,
};

/// A small relation shaped like thesis Table 4.1 with enough rows that
/// per-product trends differ.
fn db() -> DynDatabase {
    let schema = Schema::new(vec![
        Field::new("year", DataType::Int),
        Field::new("month", DataType::Int),
        Field::new("product", DataType::Cat),
        Field::new("location", DataType::Cat),
        Field::new("sales", DataType::Float),
        Field::new("profit", DataType::Float),
    ]);
    let mut b = TableBuilder::new(schema);
    let products = ["chair", "table", "stapler"];
    for (pi, product) in products.iter().enumerate() {
        for year in 2013..=2016i64 {
            for (li, location) in ["US", "UK"].iter().enumerate() {
                let t = (year - 2013) as f64;
                // chair rises, table falls, stapler flat-ish; UK shifted
                let base = match pi {
                    0 => 100.0 + 30.0 * t,
                    1 => 200.0 - 25.0 * t,
                    _ => 150.0 + 2.0 * t,
                };
                let sales = base * if li == 0 { 1.0 } else { 0.6 };
                b.push_row(vec![
                    Value::Int(year),
                    Value::Int(((year * 7 + pi as i64) % 12) + 1),
                    Value::str(*product),
                    Value::str(*location),
                    Value::Float(sales),
                    Value::Float(sales * 0.4 - 10.0 * t * (pi as f64 - 1.0)),
                ])
                .unwrap();
            }
        }
    }
    Arc::new(BitmapDb::new(b.finish_shared()))
}

fn universe(db: &DynDatabase) -> VisualUniverse {
    VisualUniverse::with_axes(
        db.clone(),
        vec!["year".into(), "month".into()],
        vec!["sales".into(), "profit".into()],
    )
}

fn engine(db: &DynDatabase) -> ZqlEngine {
    ZqlEngine::with_opt_level(db.clone(), OptLevel::InterTask)
}

/// Render a VEA group into (product-label, series) pairs.
fn render_group(u: &VisualUniverse, g: &VisualGroup) -> Vec<(String, Series)> {
    g.iter()
        .map(|vs| {
            let label = vs
                .filters
                .iter()
                .zip(u.attrs())
                .filter_map(|(f, a)| match f {
                    AttrFilter::Is(v) => Some(format!("{a}={v}")),
                    AttrFilter::Star => None,
                })
                .collect::<Vec<_>>()
                .join(", ");
            (label, u.render(vs).unwrap())
        })
        .collect()
}

/// Collect a ZQL output into (label, series) pairs.
fn zql_pairs(out: &zql::ZqlOutput) -> Vec<(String, Series)> {
    out.visualizations
        .iter()
        .map(|v| (v.label.clone(), v.series.clone()))
        .collect()
}

/// θ for "year-vs-sales per product" (Table 4.3's shape).
fn theta_products() -> Theta {
    Theta::AxisEq(Term::X, "year".into())
        .and(Theta::AxisEq(Term::Y, "sales".into()))
        .and(Theta::FilterEq(0, None))
        .and(Theta::FilterEq(1, None))
        .and(Theta::FilterNeq(2, None))
        .and(Theta::FilterEq(3, None))
        .and(Theta::FilterEq(4, None))
        .and(Theta::FilterEq(5, None))
}

#[test]
fn sigma_v_matches_zql_slicing() {
    // σᵛ over the full universe vs the one-line ZQL query of Table 2.1
    // (without the location constraint).
    let db = db();
    let u = universe(&db);
    let all = u.enumerate().unwrap();
    let algebra = sigma_v(&all, &theta_products());
    let zql_out = engine(&db)
        .execute_text("name | x | y | z\n*f1 | 'year' | 'sales' | v1 <- 'product'.*")
        .unwrap();
    assert_eq!(render_group(&u, &algebra), zql_pairs(&zql_out));
}

#[test]
fn sigma_v_with_location_constraint() {
    let db = db();
    let u = universe(&db);
    let all = u.enumerate().unwrap();
    // Table 4.3's θ: product ≠ ∗ ∧ location = 'US', everything else ∗.
    let theta = Theta::AxisEq(Term::X, "year".into())
        .and(Theta::AxisEq(Term::Y, "sales".into()))
        .and(Theta::FilterEq(0, None))
        .and(Theta::FilterEq(1, None))
        .and(Theta::FilterNeq(2, None))
        .and(Theta::FilterEq(3, Some(Value::str("US"))))
        .and(Theta::FilterEq(4, None))
        .and(Theta::FilterEq(5, None));
    let algebra = sigma_v(&all, &theta);
    let zql_out = engine(&db)
        .execute_text(
            "name | x | y | z | constraints\n\
             *f1 | 'year' | 'sales' | v1 <- 'product'.* | location='US'",
        )
        .unwrap();
    // The σᵛ result pins location in the *visual source*; ZQL pins it in
    // Constraints. Labels differ (location appears only in the former),
    // but the visualized data must agree.
    let a: Vec<Series> = render_group(&u, &algebra)
        .into_iter()
        .map(|(_, s)| s)
        .collect();
    let b: Vec<Series> = zql_pairs(&zql_out).into_iter().map(|(_, s)| s).collect();
    assert_eq!(a, b);
}

#[test]
fn tau_v_matches_zql_order_by_trend() {
    // Table 4.13's construction: argmin(k=∞) T + .order.
    let db = db();
    let u = universe(&db);
    let group = slice_group(&u, "year", "sales", "product").unwrap();
    let prims = Primitives::default();
    let algebra = tau_v(&u, &group, |t| t, &prims).unwrap();
    let zql_out = engine(&db)
        .execute_text(
            "name | x | y | z | process\n\
             f1 | 'year' | 'sales' | v1 <- 'product'.* | u1 <- argmin(v1)[k=inf] T(f1)\n\
             *f2=f1.order | | | u1 ->",
        )
        .unwrap();
    assert_eq!(render_group(&u, &algebra), zql_pairs(&zql_out));
}

#[test]
fn mu_v_matches_zql_slice() {
    // Table 4.14: µᵛ_{[a:b]} ⇔ f2=f1[a:b].
    let db = db();
    let u = universe(&db);
    let group = slice_group(&u, "year", "sales", "product").unwrap();
    let algebra = mu_v_range(&group, 2, 3);
    let zql_out = engine(&db)
        .execute_text(
            "name | x | y | z\n\
             f1 | 'year' | 'sales' | v1 <- 'product'.*\n\
             *f2=f1[2:3] | | |",
        )
        .unwrap();
    assert_eq!(render_group(&u, &algebra), zql_pairs(&zql_out));
}

#[test]
fn delta_v_matches_zql_range() {
    // Table 4.16: δᵛ ⇔ f2=f1.range.
    let db = db();
    let u = universe(&db);
    let group = slice_group(&u, "year", "sales", "product").unwrap();
    let doubled = group.union(&group);
    let algebra = delta_v(&doubled);
    let zql_out = engine(&db)
        .execute_text(
            "name | x | y | z\n\
             f1 | 'year' | 'sales' | v1 <- 'product'.*\n\
             f2 | 'year' | 'sales' | v2 <- 'product'.*\n\
             f3=f1+f2 | | |\n\
             *f4=f3.range | | |",
        )
        .unwrap();
    assert_eq!(render_group(&u, &algebra), zql_pairs(&zql_out));
}

#[test]
fn union_diff_intersect_match_zql_name_ops() {
    // Tables 4.17 / 4.18: ∪ᵛ ⇔ f1+f2, \ᵛ ⇔ f1-f2, ∩ᵛ ⇔ f1^f2.
    let db = db();
    let u = universe(&db);
    let all = slice_group(&u, "year", "sales", "product").unwrap();
    let chair_desk: VisualGroup = all.slice(1, 2);
    let zql_out = engine(&db)
        .execute_text(
            "name | x | y | z\n\
             f1 | 'year' | 'sales' | v1 <- 'product'.*\n\
             f2 | 'year' | 'sales' | v2 <- 'product'.{'chair', 'table'}\n\
             *f3=f1+f2 | | |\n\
             *f4=f1-f2 | | |\n\
             *f5=f1^f2 | | |",
        )
        .unwrap();
    let f = |name: &str| -> Vec<(String, Series)> {
        zql_out
            .visualizations
            .iter()
            .filter(|v| v.component == name)
            .map(|v| (v.label.clone(), v.series.clone()))
            .collect()
    };
    assert_eq!(render_group(&u, &union_v(&all, &chair_desk)), f("f3"));
    assert_eq!(render_group(&u, &diff_v(&all, &chair_desk)), f("f4"));
    assert_eq!(render_group(&u, &intersect_v(&all, &chair_desk)), f("f5"));
}

#[test]
fn zeta_v_matches_zql_representative() {
    // Table 4.15: ζᵛ ⇔ the R(...) process. Both sides use the default
    // registry's R (k-means, seed 0), so the picks agree.
    let db = db();
    let u = universe(&db);
    let group = slice_group(&u, "year", "sales", "product").unwrap();
    let algebra = zeta_v(&u, &group, 2, &Primitives::default()).unwrap();
    let zql_out = engine(&db)
        .execute_text(
            "name | x | y | z | process\n\
             f1 | 'year' | 'sales' | v1 <- 'product'.* | v2 <- R(2, v1, f1)\n\
             *f2 | 'year' | 'sales' | v2 |",
        )
        .unwrap();
    let mut a = render_group(&u, &algebra);
    let mut b = zql_pairs(&zql_out);
    a.sort_by(|x, y| x.0.cmp(&y.0));
    b.sort_by(|x, y| x.0.cmp(&y.0));
    assert_eq!(a, b);
}

#[test]
fn eta_v_matches_zql_similarity_sort() {
    // Table 4.23: ηᵛ ⇔ argmin(k=∞) D(f, ref) + .order.
    let db = db();
    let u = universe(&db);
    let group = slice_group(&u, "month", "sales", "product").unwrap();
    let reference: VisualGroup = group.slice(1, 1);
    let prims = Primitives::default();
    let algebra = eta_v(&u, &group, &reference, |d| d, &prims).unwrap();
    let zql_out = engine(&db)
        .execute_text(
            "name | x | y | z | process\n\
             f1 | 'month' | 'sales' | 'product'.'chair' |\n\
             f2 | 'month' | 'sales' | v1 <- 'product'.* | u1 <- argmin(v1)[k=inf] D(f2, f1)\n\
             *f3=f2.order | | | u1 ->",
        )
        .unwrap();
    assert_eq!(render_group(&u, &algebra), zql_pairs(&zql_out));
}

#[test]
fn phi_v_matches_zql_paired_comparison() {
    // Table 4.22's shape: compare sales-vs-profit per product and sort.
    let db = db();
    let u = universe(&db);
    let v = slice_group(&u, "year", "sales", "product").unwrap();
    let w = slice_group(&u, "year", "profit", "product").unwrap();
    let prims = Primitives::default();
    let algebra = zv_vea::phi_v(&u, &v, &w, &[zv_vea::MatchAttr::Attr(2)], |d| d, &prims).unwrap();
    let zql_out = engine(&db)
        .execute_text(
            "name | x | y | z | process\n\
             f1 | 'year' | 'sales' | v1 <- 'product'.* |\n\
             f2 | 'year' | 'profit' | v1 | u1 <- argmin(v1)[k=inf] D(f1, f2)\n\
             *f3=f1.order | | | u1 ->",
        )
        .unwrap();
    assert_eq!(render_group(&u, &algebra), zql_pairs(&zql_out));
}

#[test]
fn beta_v_matches_zql_axis_swap() {
    // Table 4.20's effect: swap every source's Y to U's y values. Order
    // differs (βᵛ is V-major; ZQL's column order is Y-major), so compare
    // as sorted bags — the thesis controls order with superscripts, which
    // the textual format does not carry.
    let db = db();
    let u = universe(&db);
    let v = slice_group(&u, "year", "sales", "product").unwrap();
    let donors: VisualGroup = [
        VisualSource::unfiltered("year", "sales", 6),
        VisualSource::unfiltered("year", "profit", 6),
    ]
    .into_iter()
    .collect();
    let algebra = zv_vea::beta_v(&v, &donors, zv_vea::BetaAttr::Y);
    let zql_out = engine(&db)
        .execute_text(
            "name | x | y | z\n\
             *f1 | 'year' | y1 <- {'sales', 'profit'} | v1 <- 'product'.*",
        )
        .unwrap();
    let mut a: Vec<(String, String, Series)> = algebra
        .iter()
        .map(|vs| {
            (
                vs.y.clone(),
                vs.filters[2].to_string(),
                u.render(vs).unwrap(),
            )
        })
        .collect();
    let mut b: Vec<(String, String, Series)> = zql_out
        .visualizations
        .iter()
        .map(|v| {
            (
                v.y.clone(),
                v.label
                    .strip_prefix("product=")
                    .unwrap_or(&v.label)
                    .to_string(),
                v.series.clone(),
            )
        })
        .collect();
    a.sort_by(|x, y| (&x.0, &x.1).cmp(&(&y.0, &y.1)));
    b.sort_by(|x, y| (&x.0, &x.1).cmp(&(&y.0, &y.1)));
    assert_eq!(a, b);
}

#[test]
fn lemma_1_visual_component_expresses_visual_group() {
    // Table 4.4: any visual group can be written as one ZQL component —
    // here a hand-picked group of three heterogeneous sources.
    let db = db();
    let u = universe(&db);
    let group: VisualGroup = [
        VisualSource::unfiltered("year", "sales", 6).with_filter(2, Value::str("chair")),
        VisualSource::unfiltered("year", "profit", 6).with_filter(3, Value::str("UK")),
        VisualSource::unfiltered("month", "sales", 6),
    ]
    .into_iter()
    .collect();
    let zql_out = engine(&db)
        .execute_text(
            "name | x | y | z\n\
             f1 | 'year' | 'sales' | 'product'.'chair'\n\
             f2 | 'year' | 'profit' | 'location'.'UK'\n\
             f3 | 'month' | 'sales' |\n\
             *f4=f1+f2+f3 | | |",
        )
        .unwrap();
    let a: Vec<Series> = u.render_group(&group).unwrap();
    let b: Vec<Series> = zql_out
        .visualizations
        .iter()
        .map(|v| v.series.clone())
        .collect();
    assert_eq!(a, b);
}

#[test]
fn user_input_reference_behaves_like_singleton_group() {
    // ηᵛ with a user-drawn reference (the -f1 rows of Ch. 2).
    let db = db();
    let eng = engine(&db);
    let mut inputs = HashMap::new();
    inputs.insert("f1".to_string(), Series::from_ys(&[0.0, 1.0, 2.0, 3.0]));
    let out = eng
        .execute_text_with_inputs(
            "name | x | y | z | process\n\
             -f1 | | | |\n\
             f2 | 'year' | 'sales' | v1 <- 'product'.* | v2 <- argmin(v1)[k=1] D(f1, f2)\n\
             *f3 | 'year' | 'sales' | v2 |",
            &inputs,
        )
        .unwrap();
    // chair is the planted riser → nearest to an increasing sketch
    assert_eq!(out.visualizations[0].label, "product=chair");
}
