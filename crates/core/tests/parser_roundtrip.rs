//! Property-style parser robustness tests: generated cell contents must
//! either parse cleanly or fail with a diagnostic — never panic — and
//! structurally equivalent spellings must parse identically.

use proptest::prelude::*;
use zql::parser::{
    parse_axis_cell, parse_constraints_cell, parse_name_cell, parse_process_cell, parse_query,
    parse_viz_cell, parse_z_cell,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// No input may panic any cell parser.
    #[test]
    fn cell_parsers_never_panic(cell in ".{0,60}") {
        let _ = parse_name_cell(&cell);
        let _ = parse_axis_cell(&cell);
        let _ = parse_z_cell(&cell);
        let _ = parse_constraints_cell(&cell);
        let _ = parse_viz_cell(&cell);
        let _ = parse_process_cell(&cell);
    }

    /// Whole-table parsing never panics on arbitrary text.
    #[test]
    fn table_parser_never_panics(text in "[ -~\n]{0,200}") {
        let _ = parse_query(&text);
    }

    /// Whitespace around tokens is insignificant.
    #[test]
    fn whitespace_insensitivity(extra in " {0,3}") {
        let tight = parse_z_cell("v1 <- 'product'.*").unwrap();
        let loose = parse_z_cell(&format!("v1{extra}<-{extra}'product'{extra}.{extra}*")).unwrap();
        prop_assert_eq!(tight, loose);
    }

    /// Quoted attribute names survive a parse for arbitrary identifiers.
    #[test]
    fn quoted_attrs_roundtrip(name in "[a-z][a-z0-9_]{0,12}") {
        let entry = parse_axis_cell(&format!("'{name}'")).unwrap().unwrap();
        match entry {
            zql::AxisEntry::Fixed(zql::AttrExpr::Attr(a)) => prop_assert_eq!(a, name),
            other => prop_assert!(false, "unexpected {:?}", other),
        }
    }

    /// Top-k values roundtrip through the process grammar.
    #[test]
    fn process_topk_roundtrip(k in 1usize..100_000) {
        let decls = parse_process_cell(&format!("v2 <- argmin(v1)[k={k}] T(f1)")).unwrap();
        match &decls[0] {
            zql::ProcessDecl::Rank { filter: zql::ProcessFilter::TopK(got), .. } => {
                prop_assert_eq!(*got, k)
            }
            other => prop_assert!(false, "unexpected {:?}", other),
        }
    }

    /// Threshold values (incl. negative) roundtrip.
    #[test]
    fn process_threshold_roundtrip(t in -1000i32..1000) {
        let decls = parse_process_cell(&format!("v2 <- argany(v1)[t > {t}] T(f1)")).unwrap();
        match &decls[0] {
            zql::ProcessDecl::Rank {
                filter: zql::ProcessFilter::Threshold { value, .. }, ..
            } => prop_assert!((value - t as f64).abs() < 1e-9),
            other => prop_assert!(false, "unexpected {:?}", other),
        }
    }
}

#[test]
fn error_messages_name_the_offending_column() {
    let err = parse_query("name | x | y\nf1 | 'year' 'extra' | 'sales'").unwrap_err();
    assert_eq!(err.column, "x");
    assert_eq!(err.line, 2);
    let err = parse_query("name | x | y | process\nf1 | 'year' | 'sales' | v <- argmiX(v1) T(f1)")
        .unwrap_err();
    assert_eq!(err.column, "process");
    assert!(err.message.contains("argmiX"), "{}", err.message);
}

#[test]
fn comments_and_blank_lines_are_skipped() {
    let q = parse_query(
        "# a ZQL query\n\
         name | x | y\n\
         \n\
         # the only row:\n\
         *f1 | 'year' | 'sales'\n",
    )
    .unwrap();
    assert_eq!(q.rows.len(), 1);
}
