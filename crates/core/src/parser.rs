//! Recursive-descent parser for the textual ZQL table format.
//!
//! A query is written as a pipe-separated table whose header names the
//! columns; `#`-prefixed lines are comments:
//!
//! ```text
//! name | x      | y       | z                  | constraints   | viz                 | process
//! *f1  | 'year' | 'sales' | v1 <- 'product'.*  | location='US' | bar.(y=agg('sum'))  |
//! ```
//!
//! Pipes nested inside `(…)`, `{…}`, `[…]` or quotes do **not** split
//! cells, so set unions like `(v2.range | v3.range)` parse naturally.

use crate::ast::*;
use crate::lexer::{tokenize, Tok};
use zv_storage::{Agg, Atom, CmpOp, Predicate, Value};

/// Parse error with row/column context.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub message: String,
    pub line: usize,
    pub column: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "parse error at line {} ({}): {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Which table column a header cell denotes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ColKind {
    Name,
    X,
    Y,
    Z(usize),
    Constraints,
    Viz,
    Process,
}

fn header_col(s: &str) -> Option<ColKind> {
    let s = s.trim().to_ascii_lowercase();
    match s.as_str() {
        "name" => Some(ColKind::Name),
        "x" => Some(ColKind::X),
        "y" => Some(ColKind::Y),
        "z" => Some(ColKind::Z(0)),
        "constraints" => Some(ColKind::Constraints),
        "viz" => Some(ColKind::Viz),
        "process" => Some(ColKind::Process),
        _ => {
            if let Some(n) = s.strip_prefix('z') {
                n.parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 2)
                    .map(|n| ColKind::Z(n - 1))
            } else {
                None
            }
        }
    }
}

/// Split a row into cells on top-level pipes.
fn split_cells(line: &str) -> Vec<String> {
    let mut cells = Vec::new();
    let mut cur = String::new();
    let mut depth = 0i32;
    let mut quote: Option<char> = None;
    for c in line.chars() {
        match quote {
            Some(q) => {
                cur.push(c);
                if c == q {
                    quote = None;
                }
            }
            None => match c {
                '\'' | '"' => {
                    quote = Some(c);
                    cur.push(c);
                }
                '(' | '{' | '[' => {
                    depth += 1;
                    cur.push(c);
                }
                ')' | '}' | ']' => {
                    depth -= 1;
                    cur.push(c);
                }
                '|' if depth == 0 => {
                    cells.push(cur.trim().to_string());
                    cur = String::new();
                }
                _ => cur.push(c),
            },
        }
    }
    cells.push(cur.trim().to_string());
    cells
}

/// Parse a full ZQL query table.
pub fn parse_query(text: &str) -> Result<ZqlQuery, ParseError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));
    let (hline, header) = lines
        .next()
        .ok_or_else(|| err(0, "header", "empty query"))?;
    let cols: Vec<ColKind> = split_cells(header)
        .iter()
        .map(|c| header_col(c).ok_or_else(|| err(hline, "header", format!("unknown column '{c}'"))))
        .collect::<Result<_, _>>()?;
    if !cols.contains(&ColKind::Name) {
        return Err(err(hline, "header", "a ZQL table needs a 'name' column"));
    }

    let mut rows = Vec::new();
    for (lno, line) in lines {
        let cells = split_cells(line);
        if cells.len() > cols.len() {
            return Err(err(
                lno,
                "row",
                format!("{} cells but {} columns", cells.len(), cols.len()),
            ));
        }
        let mut name: Option<NameCol> = None;
        let mut x = None;
        let mut y = None;
        let mut zs: Vec<(usize, ZEntry)> = Vec::new();
        let mut constraints = None;
        let mut viz = None;
        let mut processes = Vec::new();
        for (kind, cell) in cols.iter().zip(&cells) {
            let cell = cell.as_str();
            match kind {
                ColKind::Name => {
                    if cell.is_empty() {
                        return Err(err(lno, "name", "every row needs a name"));
                    }
                    name = Some(parse_name_cell(cell).map_err(|m| err(lno, "name", m))?);
                }
                ColKind::X => x = parse_axis_cell(cell).map_err(|m| err(lno, "x", m))?,
                ColKind::Y => y = parse_axis_cell(cell).map_err(|m| err(lno, "y", m))?,
                ColKind::Z(i) => {
                    // Blank Z cells contribute nothing to the component.
                    match parse_z_cell(cell).map_err(|m| err(lno, "z", m))? {
                        ZEntry::None => {}
                        entry => zs.push((*i, entry)),
                    }
                }
                ColKind::Constraints => {
                    constraints =
                        parse_constraints_cell(cell).map_err(|m| err(lno, "constraints", m))?
                }
                ColKind::Viz => viz = parse_viz_cell(cell).map_err(|m| err(lno, "viz", m))?,
                ColKind::Process => {
                    processes = parse_process_cell(cell).map_err(|m| err(lno, "process", m))?
                }
            }
        }
        zs.sort_by_key(|(i, _)| *i);
        let zs: Vec<ZEntry> = zs.into_iter().map(|(_, e)| e).collect();
        rows.push(ZqlRow {
            name: name.ok_or_else(|| err(lno, "name", "missing name cell"))?,
            x,
            y,
            zs,
            constraints,
            viz,
            processes,
        });
    }
    Ok(ZqlQuery::new(rows))
}

fn err(line: usize, column: &str, message: impl Into<String>) -> ParseError {
    ParseError {
        message: message.into(),
        line,
        column: column.to_string(),
    }
}

// ---------------------------------------------------------------------
// Token cursor
// ---------------------------------------------------------------------

struct P {
    toks: Vec<Tok>,
    pos: usize,
}

impl P {
    fn new(cell: &str) -> Result<P, String> {
        Ok(P {
            toks: tokenize(cell)?,
            pos: 0,
        })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok) -> Result<(), String> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(format!("expected '{t}', found {}", self.describe_next()))
        }
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(format!(
                "expected identifier, found {}",
                describe(other.as_ref())
            )),
        }
    }

    fn expect_quoted(&mut self) -> Result<String, String> {
        match self.next() {
            Some(Tok::Quoted(s)) => Ok(s),
            other => Err(format!(
                "expected quoted string, found {}",
                describe(other.as_ref())
            )),
        }
    }

    fn expect_number(&mut self) -> Result<f64, String> {
        match self.next() {
            Some(Tok::Number(n)) => Ok(n),
            other => Err(format!(
                "expected number, found {}",
                describe(other.as_ref())
            )),
        }
    }

    fn done(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn expect_done(&self) -> Result<(), String> {
        if self.done() {
            Ok(())
        } else {
            Err(format!("trailing input: {}", self.describe_next()))
        }
    }

    fn describe_next(&self) -> String {
        describe(self.peek())
    }
}

fn describe(t: Option<&Tok>) -> String {
    match t {
        Some(t) => format!("'{t}'"),
        None => "end of cell".to_string(),
    }
}

// ---------------------------------------------------------------------
// Name column
// ---------------------------------------------------------------------

pub fn parse_name_cell(cell: &str) -> Result<NameCol, String> {
    let mut p = P::new(cell)?;
    let output = p.eat(&Tok::Star);
    let user_input = !output && p.eat(&Tok::Minus);
    let name = p.expect_ident()?;
    let derived = if p.eat(&Tok::Eq) {
        Some(parse_name_expr(&mut p)?)
    } else {
        None
    };
    p.expect_done()?;
    if user_input && derived.is_some() {
        return Err("a user-input component cannot also be derived".into());
    }
    Ok(NameCol {
        name,
        output,
        user_input,
        derived,
    })
}

fn parse_name_expr(p: &mut P) -> Result<NameExpr, String> {
    let mut lhs = parse_name_postfix(p)?;
    loop {
        let op = match p.peek() {
            Some(Tok::Plus) => '+',
            Some(Tok::Minus) => '-',
            Some(Tok::Caret) => '^',
            _ => break,
        };
        p.next();
        let rhs = parse_name_postfix(p)?;
        lhs = match op {
            '+' => NameExpr::Add(Box::new(lhs), Box::new(rhs)),
            '-' => NameExpr::Sub(Box::new(lhs), Box::new(rhs)),
            _ => NameExpr::Intersect(Box::new(lhs), Box::new(rhs)),
        };
    }
    Ok(lhs)
}

fn parse_name_postfix(p: &mut P) -> Result<NameExpr, String> {
    let name = p.expect_ident()?;
    let mut expr = NameExpr::Ref(name);
    loop {
        if p.eat(&Tok::LBracket) {
            let a = p.expect_number()? as usize;
            if p.eat(&Tok::Colon) {
                let b = p.expect_number()? as usize;
                p.expect(&Tok::RBracket)?;
                expr = NameExpr::Slice(Box::new(expr), a, b);
            } else {
                p.expect(&Tok::RBracket)?;
                expr = NameExpr::Index(Box::new(expr), a);
            }
        } else if p.peek() == Some(&Tok::Dot) {
            match p.peek2() {
                Some(Tok::Ident(id)) if id == "range" => {
                    p.next();
                    p.next();
                    expr = NameExpr::Range(Box::new(expr));
                }
                Some(Tok::Ident(id)) if id == "order" => {
                    p.next();
                    p.next();
                    expr = NameExpr::Order(Box::new(expr));
                }
                _ => break,
            }
        } else {
            break;
        }
    }
    Ok(expr)
}

// ---------------------------------------------------------------------
// X / Y columns
// ---------------------------------------------------------------------

pub fn parse_axis_cell(cell: &str) -> Result<Option<AxisEntry>, String> {
    if cell.is_empty() || cell == "-" {
        return Ok(None);
    }
    let mut p = P::new(cell)?;
    let entry = match p.peek() {
        Some(Tok::Quoted(_)) => AxisEntry::Fixed(parse_attr_expr(&mut p)?),
        Some(Tok::Ident(_)) => {
            let var = p.expect_ident()?;
            if p.eat(&Tok::Arrow) {
                if p.eat(&Tok::Underscore) {
                    AxisEntry::BindDerived { var }
                } else {
                    AxisEntry::Declare {
                        var,
                        set: parse_attr_set(&mut p)?,
                    }
                }
            } else {
                AxisEntry::Var(var)
            }
        }
        other => return Err(format!("unexpected {} in axis cell", describe(other))),
    };
    p.expect_done()?;
    Ok(Some(entry))
}

fn parse_attr_expr(p: &mut P) -> Result<AttrExpr, String> {
    let first = p.expect_quoted()?;
    match p.peek() {
        Some(Tok::Plus) => {
            let mut attrs = vec![first];
            while p.eat(&Tok::Plus) {
                attrs.push(p.expect_quoted()?);
            }
            Ok(AttrExpr::Plus(attrs))
        }
        Some(Tok::Ident(id)) if id == "x" => {
            let mut attrs = vec![first];
            while matches!(p.peek(), Some(Tok::Ident(id)) if id == "x") {
                p.next();
                attrs.push(p.expect_quoted()?);
            }
            Ok(AttrExpr::Cross(attrs))
        }
        _ => Ok(AttrExpr::Attr(first)),
    }
}

fn parse_attr_set(p: &mut P) -> Result<AttrSet, String> {
    let mut lhs = parse_attr_set_term(p)?;
    loop {
        let op = match p.peek() {
            Some(Tok::Pipe) => 'u',
            Some(Tok::Backslash) => 'd',
            Some(Tok::Amp) => 'i',
            _ => break,
        };
        p.next();
        let rhs = parse_attr_set_term(p)?;
        lhs = match op {
            'u' => AttrSet::Union(Box::new(lhs), Box::new(rhs)),
            'd' => AttrSet::Diff(Box::new(lhs), Box::new(rhs)),
            _ => AttrSet::Intersect(Box::new(lhs), Box::new(rhs)),
        };
    }
    Ok(lhs)
}

fn parse_attr_set_term(p: &mut P) -> Result<AttrSet, String> {
    match p.peek() {
        Some(Tok::LBrace) => {
            p.next();
            let mut items = Vec::new();
            if !p.eat(&Tok::RBrace) {
                loop {
                    items.push(parse_attr_expr(p)?);
                    if !p.eat(&Tok::Comma) {
                        break;
                    }
                }
                p.expect(&Tok::RBrace)?;
            }
            Ok(AttrSet::List(items))
        }
        Some(Tok::Star) => {
            p.next();
            if p.eat(&Tok::Backslash) {
                p.expect(&Tok::LBrace)?;
                let mut items = Vec::new();
                loop {
                    items.push(p.expect_quoted()?);
                    if !p.eat(&Tok::Comma) {
                        break;
                    }
                }
                p.expect(&Tok::RBrace)?;
                Ok(AttrSet::AllExcept(items))
            } else {
                Ok(AttrSet::All)
            }
        }
        Some(Tok::LParen) => {
            p.next();
            let inner = parse_attr_set(p)?;
            p.expect(&Tok::RParen)?;
            Ok(inner)
        }
        Some(Tok::Ident(_)) => {
            let id = p.expect_ident()?;
            if p.peek() == Some(&Tok::Dot)
                && matches!(p.peek2(), Some(Tok::Ident(r)) if r == "range")
            {
                p.next();
                p.next();
                Ok(AttrSet::RangeOf(id))
            } else {
                Ok(AttrSet::Named(id))
            }
        }
        other => Err(format!("unexpected {} in attribute set", describe(other))),
    }
}

// ---------------------------------------------------------------------
// Z columns
// ---------------------------------------------------------------------

pub fn parse_z_cell(cell: &str) -> Result<ZEntry, String> {
    if cell.is_empty() || cell == "-" {
        return Ok(ZEntry::None);
    }
    let mut p = P::new(cell)?;
    let entry = parse_z_entry(&mut p)?;
    p.expect_done()?;
    Ok(entry)
}

fn parse_z_entry(p: &mut P) -> Result<ZEntry, String> {
    match p.peek().cloned() {
        // 'attr'.'value' / 'attr'.number — a fixed slice.
        Some(Tok::Quoted(attr)) => {
            p.next();
            p.expect(&Tok::Dot)?;
            let value = parse_value(p)?;
            Ok(ZEntry::Fixed { attr, value })
        }
        Some(Tok::Ident(first)) => {
            p.next();
            // `u1 ->` ordering marker
            if p.eat(&Tok::RArrow) {
                return Ok(ZEntry::OrderBy(first));
            }
            // `z1.v1 <- ...` pair declaration
            if p.peek() == Some(&Tok::Dot) && matches!(p.peek2(), Some(Tok::Ident(_))) {
                p.next();
                let val_var = p.expect_ident()?;
                p.expect(&Tok::Arrow)?;
                if p.eat(&Tok::Underscore) {
                    return Ok(ZEntry::BindDerived {
                        attr_var: Some(first),
                        val_var,
                        attr: None,
                    });
                }
                let set = parse_zset(p)?;
                return Ok(ZEntry::DeclarePairs {
                    attr_var: first,
                    val_var,
                    set,
                });
            }
            // `v1 <- ...` value declaration
            if p.eat(&Tok::Arrow) {
                // `v2 <- 'product'._` derived binding
                if let Some(Tok::Quoted(attr)) = p.peek().cloned() {
                    if p.peek2() == Some(&Tok::Dot) {
                        // look ahead for `._`
                        let save = p.pos;
                        p.next();
                        p.next();
                        if p.eat(&Tok::Underscore) {
                            return Ok(ZEntry::BindDerived {
                                attr_var: None,
                                val_var: first,
                                attr: Some(attr),
                            });
                        }
                        p.pos = save;
                    }
                }
                if p.eat(&Tok::Underscore) {
                    return Ok(ZEntry::BindDerived {
                        attr_var: None,
                        val_var: first,
                        attr: None,
                    });
                }
                let set = parse_zset(p)?;
                return Ok(ZEntry::DeclareValues { var: first, set });
            }
            // bare reuse
            Ok(ZEntry::Var(first))
        }
        other => Err(format!("unexpected {} in z cell", describe(other.as_ref()))),
    }
}

/// A pair-set or value-set for Z declarations.
fn parse_zset(p: &mut P) -> Result<ZSet, String> {
    let mut lhs = parse_zset_term(p)?;
    while p.eat(&Tok::Pipe) {
        let rhs = parse_zset_term(p)?;
        lhs = ZSet::Union(Box::new(lhs), Box::new(rhs));
    }
    Ok(lhs)
}

fn parse_zset_term(p: &mut P) -> Result<ZSet, String> {
    match p.peek().cloned() {
        // 'product'.<values>
        Some(Tok::Quoted(attr)) => {
            p.next();
            p.expect(&Tok::Dot)?;
            let values = parse_value_set(p)?;
            Ok(ZSet::AttrValues {
                attr: Some(attr),
                values,
            })
        }
        // (attr-set).(value-set)  — attribute iteration, e.g. (* \ {'y'}).*
        // or a parenthesized set expression over ranges:
        // (v2.range & v3.range)
        Some(Tok::LParen) => {
            p.next();
            // Try: range-expression over value vars.
            if matches!(p.peek(), Some(Tok::Ident(_))) && p.peek2() == Some(&Tok::Dot) {
                let values = parse_value_set(p)?;
                p.expect(&Tok::RParen)?;
                return Ok(ZSet::AttrValues { attr: None, values });
            }
            // `('product'.{…} | 'location'.'US')` — nested pair-set union.
            if matches!(p.peek(), Some(Tok::Quoted(_))) && p.peek2() == Some(&Tok::Dot) {
                let inner = parse_zset(p)?;
                p.expect(&Tok::RParen)?;
                return Ok(inner);
            }
            let attrs = parse_attr_set(p)?;
            p.expect(&Tok::RParen)?;
            p.expect(&Tok::Dot)?;
            let values = parse_value_set(p)?;
            Ok(ZSet::CrossAttrs { attrs, values })
        }
        // * . *  — every attribute, every value (z.v <- *.*)
        Some(Tok::Star) => {
            p.next();
            if p.eat(&Tok::Backslash) {
                // * \ {'a'} . * without parens
                p.expect(&Tok::LBrace)?;
                let mut items = Vec::new();
                loop {
                    items.push(p.expect_quoted()?);
                    if !p.eat(&Tok::Comma) {
                        break;
                    }
                }
                p.expect(&Tok::RBrace)?;
                p.expect(&Tok::Dot)?;
                let values = parse_value_set(p)?;
                return Ok(ZSet::CrossAttrs {
                    attrs: AttrSet::AllExcept(items),
                    values,
                });
            }
            p.expect(&Tok::Dot)?;
            let values = parse_value_set(p)?;
            Ok(ZSet::CrossAttrs {
                attrs: AttrSet::All,
                values,
            })
        }
        // Named value set (engine-registered), e.g. `v1 <- P`
        Some(Tok::Ident(_)) => {
            let values = parse_value_set(p)?;
            Ok(ZSet::AttrValues { attr: None, values })
        }
        other => Err(format!("unexpected {} in z set", describe(other.as_ref()))),
    }
}

fn parse_value_set(p: &mut P) -> Result<ValueSet, String> {
    let mut lhs = parse_value_set_term(p)?;
    loop {
        let op = match p.peek() {
            Some(Tok::Pipe) => {
                // A `|` followed by `'attr'.` is a *pair-set* union
                // (Table 3.7); leave it for the enclosing parse_zset.
                if matches!(p.toks.get(p.pos + 1), Some(Tok::Quoted(_)))
                    && p.toks.get(p.pos + 2) == Some(&Tok::Dot)
                {
                    break;
                }
                'u'
            }
            Some(Tok::Backslash) => 'd',
            Some(Tok::Amp) => 'i',
            _ => break,
        };
        p.next();
        let rhs = parse_value_set_term(p)?;
        lhs = match op {
            'u' => ValueSet::Union(Box::new(lhs), Box::new(rhs)),
            'd' => ValueSet::Diff(Box::new(lhs), Box::new(rhs)),
            _ => ValueSet::Intersect(Box::new(lhs), Box::new(rhs)),
        };
    }
    Ok(lhs)
}

fn parse_value_set_term(p: &mut P) -> Result<ValueSet, String> {
    match p.peek().cloned() {
        Some(Tok::Star) => {
            p.next();
            if p.eat(&Tok::Backslash) {
                let items = parse_value_brace_list(p)?;
                Ok(ValueSet::AllExcept(items))
            } else {
                Ok(ValueSet::All)
            }
        }
        Some(Tok::LBrace) => Ok(ValueSet::List(parse_value_brace_list(p)?)),
        Some(Tok::LParen) => {
            p.next();
            let inner = parse_value_set(p)?;
            p.expect(&Tok::RParen)?;
            Ok(inner)
        }
        Some(Tok::Quoted(s)) => {
            p.next();
            Ok(ValueSet::List(vec![Value::str(s)]))
        }
        Some(Tok::Number(n)) => {
            p.next();
            Ok(ValueSet::List(vec![number_value(n)]))
        }
        Some(Tok::Ident(_)) => {
            let id = p.expect_ident()?;
            if p.peek() == Some(&Tok::Dot)
                && matches!(p.peek2(), Some(Tok::Ident(r)) if r == "range")
            {
                p.next();
                p.next();
                Ok(ValueSet::RangeOf(id))
            } else {
                Ok(ValueSet::Named(id))
            }
        }
        other => Err(format!(
            "unexpected {} in value set",
            describe(other.as_ref())
        )),
    }
}

fn parse_value_brace_list(p: &mut P) -> Result<Vec<Value>, String> {
    p.expect(&Tok::LBrace)?;
    let mut items = Vec::new();
    if !p.eat(&Tok::RBrace) {
        loop {
            items.push(parse_value(p)?);
            if !p.eat(&Tok::Comma) {
                break;
            }
        }
        p.expect(&Tok::RBrace)?;
    }
    Ok(items)
}

fn parse_value(p: &mut P) -> Result<Value, String> {
    match p.next() {
        Some(Tok::Quoted(s)) => Ok(Value::str(s)),
        Some(Tok::Number(n)) => Ok(number_value(n)),
        other => Err(format!(
            "expected a value, found {}",
            describe(other.as_ref())
        )),
    }
}

fn number_value(n: f64) -> Value {
    if n.fract() == 0.0 && n.abs() < i64::MAX as f64 {
        Value::Int(n as i64)
    } else {
        Value::Float(n)
    }
}

// ---------------------------------------------------------------------
// Constraints column
// ---------------------------------------------------------------------

pub fn parse_constraints_cell(cell: &str) -> Result<Option<ConstraintExpr>, String> {
    if cell.is_empty() || cell == "-" {
        return Ok(None);
    }
    let mut p = P::new(cell)?;
    let mut expr = parse_constraint_atom(&mut p)?;
    loop {
        match p.peek() {
            Some(Tok::Ident(id)) if id.eq_ignore_ascii_case("and") => {
                p.next();
                let rhs = parse_constraint_atom(&mut p)?;
                expr = expr.and(rhs);
            }
            _ => break,
        }
    }
    p.expect_done()?;
    Ok(Some(expr))
}

fn parse_constraint_atom(p: &mut P) -> Result<ConstraintExpr, String> {
    let attr = match p.next() {
        Some(Tok::Ident(s)) => s,
        Some(Tok::Quoted(s)) => s,
        other => {
            return Err(format!(
                "expected attribute name, found {}",
                describe(other.as_ref())
            ))
        }
    };
    match p.next() {
        Some(Tok::Eq) => match p.next() {
            Some(Tok::Quoted(v)) => Ok(ConstraintExpr::Static(Predicate::cat_eq(attr, v))),
            Some(Tok::Number(n)) => Ok(ConstraintExpr::Static(Predicate::num_eq(attr, n))),
            other => Err(format!(
                "expected value after '=', found {}",
                describe(other.as_ref())
            )),
        },
        Some(Tok::Neq) => match p.next() {
            Some(Tok::Quoted(v)) => Ok(ConstraintExpr::Static(Predicate::atom(Atom::CatNeq {
                col: attr,
                value: v,
            }))),
            Some(Tok::Number(n)) => Ok(ConstraintExpr::Static(Predicate::atom(Atom::NumCmp {
                col: attr,
                op: CmpOp::Neq,
                value: n,
            }))),
            other => Err(format!(
                "expected value after '<>', found {}",
                describe(other.as_ref())
            )),
        },
        Some(tok @ (Tok::Lt | Tok::Le | Tok::Gt | Tok::Ge)) => {
            let n = p.expect_number()?;
            let op = match tok {
                Tok::Lt => CmpOp::Lt,
                Tok::Le => CmpOp::Le,
                Tok::Gt => CmpOp::Gt,
                _ => CmpOp::Ge,
            };
            Ok(ConstraintExpr::Static(Predicate::atom(Atom::NumCmp {
                col: attr,
                op,
                value: n,
            })))
        }
        Some(Tok::Ident(kw)) if kw.eq_ignore_ascii_case("like") => {
            let pat = p.expect_quoted()?;
            let prefix = pat.strip_suffix('%').ok_or_else(|| {
                format!("only 'prefix%' LIKE patterns are supported, got '{pat}'")
            })?;
            if prefix.contains('%') {
                return Err(format!(
                    "only 'prefix%' LIKE patterns are supported, got '{pat}'"
                ));
            }
            Ok(ConstraintExpr::Static(Predicate::atom(Atom::StrPrefix {
                col: attr,
                prefix: prefix.to_string(),
            })))
        }
        Some(Tok::Ident(kw)) if kw.eq_ignore_ascii_case("in") => {
            p.expect(&Tok::LParen)?;
            // `attr IN (v2.range)` or `attr IN ('a','b',...)`
            if let Some(Tok::Ident(_)) = p.peek() {
                let var = p.expect_ident()?;
                p.expect(&Tok::Dot)?;
                let kw = p.expect_ident()?;
                if kw != "range" {
                    return Err(format!("expected '.range' in IN clause, found '.{kw}'"));
                }
                p.expect(&Tok::RParen)?;
                return Ok(ConstraintExpr::InRange { attr, var });
            }
            let mut values = Vec::new();
            loop {
                values.push(p.expect_quoted()?);
                if !p.eat(&Tok::Comma) {
                    break;
                }
            }
            p.expect(&Tok::RParen)?;
            Ok(ConstraintExpr::Static(Predicate::cat_in(attr, values)))
        }
        Some(Tok::Ident(kw)) if kw.eq_ignore_ascii_case("between") => {
            let lo = p.expect_number()?;
            let and = p.expect_ident()?;
            if !and.eq_ignore_ascii_case("and") {
                return Err("expected AND in BETWEEN".into());
            }
            let hi = p.expect_number()?;
            Ok(ConstraintExpr::Static(Predicate::atom(Atom::NumBetween {
                col: attr,
                lo,
                hi,
            })))
        }
        other => Err(format!(
            "expected comparison, found {}",
            describe(other.as_ref())
        )),
    }
}

// ---------------------------------------------------------------------
// Viz column
// ---------------------------------------------------------------------

pub fn parse_viz_cell(cell: &str) -> Result<Option<VizEntry>, String> {
    if cell.is_empty() || cell == "-" {
        return Ok(None);
    }
    let mut p = P::new(cell)?;
    // `var <- ...` declaration?
    if matches!(p.peek(), Some(Tok::Ident(_))) && p.peek2() == Some(&Tok::Arrow) {
        let var = p.expect_ident()?;
        p.next(); // arrow
        let specs = parse_viz_set(&mut p)?;
        p.expect_done()?;
        return Ok(Some(VizEntry::Declare { var, specs }));
    }
    // Bare var reuse: a single identifier that is not a chart type.
    if let Some(Tok::Ident(id)) = p.peek() {
        if ChartType::parse(id).is_none() && p.peek2().is_none() {
            let var = p.expect_ident()?;
            return Ok(Some(VizEntry::Var(var)));
        }
    }
    let specs = parse_viz_set(&mut p)?;
    p.expect_done()?;
    match specs.len() {
        1 => Ok(Some(VizEntry::Fixed(specs.into_iter().next().unwrap()))),
        n => Err(format!(
            "a set of {n} viz specs must be bound to a variable"
        )),
    }
}

fn parse_viz_set(p: &mut P) -> Result<Vec<VizSpec>, String> {
    // `{bar, dotplot}.(params)` — chart set
    if p.eat(&Tok::LBrace) {
        let mut charts = Vec::new();
        loop {
            let id = p.expect_ident()?;
            charts.push(ChartType::parse(&id).ok_or_else(|| format!("unknown chart type '{id}'"))?);
            if !p.eat(&Tok::Comma) {
                break;
            }
        }
        p.expect(&Tok::RBrace)?;
        let mut base = VizSpec::default();
        if p.eat(&Tok::Dot) {
            p.expect(&Tok::LParen)?;
            parse_viz_params(p, &mut base)?;
            p.expect(&Tok::RParen)?;
        }
        return Ok(charts
            .into_iter()
            .map(|c| VizSpec {
                chart: c,
                ..base.clone()
            })
            .collect());
    }
    let id = p.expect_ident()?;
    let chart = ChartType::parse(&id).ok_or_else(|| format!("unknown chart type '{id}'"))?;
    if !p.eat(&Tok::Dot) {
        return Ok(vec![VizSpec {
            chart,
            ..Default::default()
        }]);
    }
    // `bar.{(params), (params)}` — summarization set
    if p.eat(&Tok::LBrace) {
        let mut specs = Vec::new();
        loop {
            let mut spec = VizSpec {
                chart,
                ..Default::default()
            };
            p.expect(&Tok::LParen)?;
            parse_viz_params(p, &mut spec)?;
            p.expect(&Tok::RParen)?;
            specs.push(spec);
            if !p.eat(&Tok::Comma) {
                break;
            }
        }
        p.expect(&Tok::RBrace)?;
        return Ok(specs);
    }
    let mut spec = VizSpec {
        chart,
        ..Default::default()
    };
    p.expect(&Tok::LParen)?;
    parse_viz_params(p, &mut spec)?;
    p.expect(&Tok::RParen)?;
    Ok(vec![spec])
}

fn parse_viz_params(p: &mut P, spec: &mut VizSpec) -> Result<(), String> {
    loop {
        let axis = p.expect_ident()?;
        p.expect(&Tok::Eq)?;
        let func = p.expect_ident()?;
        p.expect(&Tok::LParen)?;
        match (axis.as_str(), func.as_str()) {
            ("x", "bin") => {
                spec.x_bin = Some(p.expect_number()?);
            }
            ("y", "agg") => {
                let name = p.expect_quoted()?;
                spec.y_agg =
                    Agg::parse(&name).ok_or_else(|| format!("unknown aggregate '{name}'"))?;
            }
            (a, f) => return Err(format!("unsupported summarization {a}={f}(...)")),
        }
        p.expect(&Tok::RParen)?;
        if !p.eat(&Tok::Comma) {
            break;
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Process column
// ---------------------------------------------------------------------

pub fn parse_process_cell(cell: &str) -> Result<Vec<ProcessDecl>, String> {
    if cell.is_empty() || cell == "-" {
        return Ok(Vec::new());
    }
    let mut p = P::new(cell)?;
    let mut decls = Vec::new();
    // `(decl), (decl)` or a single bare decl
    if p.peek() == Some(&Tok::LParen) {
        loop {
            p.expect(&Tok::LParen)?;
            decls.push(parse_process_decl(&mut p)?);
            p.expect(&Tok::RParen)?;
            if !p.eat(&Tok::Comma) {
                break;
            }
        }
    } else {
        decls.push(parse_process_decl(&mut p)?);
    }
    p.expect_done()?;
    Ok(decls)
}

fn parse_process_decl(p: &mut P) -> Result<ProcessDecl, String> {
    let mut outputs = vec![p.expect_ident()?];
    while p.eat(&Tok::Comma) {
        outputs.push(p.expect_ident()?);
    }
    p.expect(&Tok::Arrow)?;
    let head = p.expect_ident()?;
    if head == "R" {
        p.expect(&Tok::LParen)?;
        let k = p.expect_number()? as usize;
        p.expect(&Tok::Comma)?;
        let mut args = vec![p.expect_ident()?];
        while p.eat(&Tok::Comma) {
            args.push(p.expect_ident()?);
        }
        p.expect(&Tok::RParen)?;
        let component = args
            .pop()
            .ok_or_else(|| "R(k, vars..., component) needs a component".to_string())?;
        if args.is_empty() {
            return Err("R(k, vars..., component) needs at least one variable".into());
        }
        return Ok(ProcessDecl::Representative {
            outputs,
            k,
            over: args,
            component,
        });
    }
    let mechanism = match head.as_str() {
        "argmin" => Mechanism::ArgMin,
        "argmax" => Mechanism::ArgMax,
        "argany" => Mechanism::ArgAny,
        other => return Err(format!("unknown mechanism '{other}'")),
    };
    p.expect(&Tok::LParen)?;
    let mut over = vec![p.expect_ident()?];
    while p.eat(&Tok::Comma) {
        over.push(p.expect_ident()?);
    }
    p.expect(&Tok::RParen)?;
    let filter = parse_process_filter(p)?;
    let objective = parse_obj_expr(p)?;
    Ok(ProcessDecl::Rank {
        outputs,
        mechanism,
        over,
        filter,
        objective,
    })
}

fn parse_process_filter(p: &mut P) -> Result<ProcessFilter, String> {
    if !p.eat(&Tok::LBracket) {
        return Ok(ProcessFilter::None);
    }
    let kind = p.expect_ident()?;
    let filter = match kind.as_str() {
        "k" => {
            p.expect(&Tok::Eq)?;
            match p.next() {
                Some(Tok::Number(n)) => ProcessFilter::TopK(n as usize),
                Some(Tok::Ident(s)) if s == "inf" || s == "infinity" => {
                    ProcessFilter::TopK(usize::MAX)
                }
                other => {
                    return Err(format!(
                        "expected k value, found {}",
                        describe(other.as_ref())
                    ))
                }
            }
        }
        "t" => {
            let op = match p.next() {
                Some(Tok::Gt) => ThresholdOp::Gt,
                Some(Tok::Ge) => ThresholdOp::Ge,
                Some(Tok::Lt) => ThresholdOp::Lt,
                Some(Tok::Le) => ThresholdOp::Le,
                other => {
                    return Err(format!(
                        "expected threshold op, found {}",
                        describe(other.as_ref())
                    ))
                }
            };
            let neg = p.eat(&Tok::Minus);
            let mut value = p.expect_number()?;
            if neg {
                value = -value;
            }
            ProcessFilter::Threshold { op, value }
        }
        other => return Err(format!("unknown filter '{other}' (expected k or t)")),
    };
    p.expect(&Tok::RBracket)?;
    Ok(filter)
}

fn parse_obj_expr(p: &mut P) -> Result<ObjExpr, String> {
    if p.eat(&Tok::Minus) {
        return Ok(ObjExpr::Neg(Box::new(parse_obj_expr(p)?)));
    }
    let head = p.expect_ident()?;
    let inner_op = match head.as_str() {
        "min" => Some(InnerOp::Min),
        "max" => Some(InnerOp::Max),
        "sum" => Some(InnerOp::Sum),
        "avg" => Some(InnerOp::Avg),
        _ => None,
    };
    if let Some(op) = inner_op {
        p.expect(&Tok::LParen)?;
        let mut vars = vec![p.expect_ident()?];
        while p.eat(&Tok::Comma) {
            vars.push(p.expect_ident()?);
        }
        p.expect(&Tok::RParen)?;
        let expr = parse_obj_expr(p)?;
        return Ok(ObjExpr::InnerAgg {
            op,
            vars,
            expr: Box::new(expr),
        });
    }
    p.expect(&Tok::LParen)?;
    let mut args = vec![p.expect_ident()?];
    while p.eat(&Tok::Comma) {
        args.push(p.expect_ident()?);
    }
    p.expect(&Tok::RParen)?;
    match head.as_str() {
        "T" => {
            if args.len() != 1 {
                return Err(format!("T takes one component, got {}", args.len()));
            }
            Ok(ObjExpr::T(args.remove(0)))
        }
        "D" => {
            if args.len() != 2 {
                return Err(format!("D takes two components, got {}", args.len()));
            }
            let b = args.pop().unwrap();
            let a = args.pop().unwrap();
            Ok(ObjExpr::D(a, b))
        }
        _ => Ok(ObjExpr::UserFn { name: head, args }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_cells_respects_nesting_and_quotes() {
        let cells = split_cells("a | (x | y) | {p | q} | 'u|v' | b");
        assert_eq!(cells, vec!["a", "(x | y)", "{p | q}", "'u|v'", "b"]);
        assert_eq!(split_cells("a||b"), vec!["a", "", "b"]);
    }

    #[test]
    fn parse_table_2_1() {
        // Thesis Table 2.1: set of sales-over-years bar charts per product
        // sold in the US.
        let q = parse_query(
            "name | x | y | z | constraints | viz | process\n\
             *f1 | 'year' | 'sales' | v1 <- 'product'.* | location='US' | bar.(y=agg('sum')) |",
        )
        .unwrap();
        assert_eq!(q.rows.len(), 1);
        let row = &q.rows[0];
        assert!(row.name.output);
        assert_eq!(row.name.name, "f1");
        assert_eq!(row.x, Some(AxisEntry::fixed("year")));
        assert_eq!(
            row.zs[0],
            ZEntry::DeclareValues {
                var: "v1".into(),
                set: ZSet::AttrValues {
                    attr: Some("product".into()),
                    values: ValueSet::All
                },
            }
        );
        assert!(row.constraints.is_some());
        assert_eq!(
            row.viz,
            Some(VizEntry::Fixed(VizSpec {
                chart: ChartType::Bar,
                x_bin: None,
                y_agg: Agg::Sum
            }))
        );
        assert!(row.processes.is_empty());
    }

    #[test]
    fn parse_table_2_2_with_user_input_and_process() {
        let q = parse_query(
            "name | x | y | z | process\n\
             -f1 | | | |\n\
             f2 | 'year' | 'sales' | v1 <- 'product'.* | v2 <- argmin(v1)[k=1] D(f1, f2)\n\
             *f3 | 'year' | 'sales' | v2 |",
        )
        .unwrap();
        assert!(q.rows[0].name.user_input);
        let p = &q.rows[1].processes[0];
        match p {
            ProcessDecl::Rank {
                outputs,
                mechanism,
                over,
                filter,
                objective,
            } => {
                assert_eq!(outputs, &["v2"]);
                assert_eq!(*mechanism, Mechanism::ArgMin);
                assert_eq!(over, &["v1"]);
                assert_eq!(*filter, ProcessFilter::TopK(1));
                assert_eq!(*objective, ObjExpr::D("f1".into(), "f2".into()));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(q.rows[2].zs[0], ZEntry::Var("v2".into()));
    }

    #[test]
    fn parse_table_2_3_style_threshold_and_ranges() {
        let q = parse_query(
            "name | x | y | z | constraints | process\n\
             f1 | 'year' | 'sales' | v1 <- 'product'.* | location='US' | v2 <- argany(v1)[t > 0] T(f1)\n\
             f2 | 'year' | 'sales' | v1 | location='UK' | v3 <- argany(v1)[t < 0] T(f2)\n\
             f3 | 'year' | 'sales' | v4 <- (v2.range & v3.range) | | v5 <- R(10, v4, f3)\n\
             *f4 | 'year' | 'profit' | v5 | |",
        )
        .unwrap();
        assert_eq!(q.rows.len(), 4);
        match &q.rows[0].processes[0] {
            ProcessDecl::Rank { filter, .. } => {
                assert_eq!(
                    *filter,
                    ProcessFilter::Threshold {
                        op: ThresholdOp::Gt,
                        value: 0.0
                    }
                );
            }
            other => panic!("unexpected {other:?}"),
        }
        match &q.rows[2].zs[0] {
            ZEntry::DeclareValues { var, set } => {
                assert_eq!(var, "v4");
                assert_eq!(
                    *set,
                    ZSet::AttrValues {
                        attr: None,
                        values: ValueSet::Intersect(
                            Box::new(ValueSet::RangeOf("v2".into())),
                            Box::new(ValueSet::RangeOf("v3".into())),
                        ),
                    }
                );
            }
            other => panic!("unexpected {other:?}"),
        }
        match &q.rows[2].processes[0] {
            ProcessDecl::Representative {
                outputs,
                k,
                over,
                component,
            } => {
                assert_eq!(outputs, &["v5"]);
                assert_eq!(*k, 10);
                assert_eq!(over, &["v4"]);
                assert_eq!(component, "f3");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_axis_sets_and_reuse() {
        let e = parse_axis_cell("y1 <- {'profit', 'sales'}")
            .unwrap()
            .unwrap();
        assert_eq!(
            e,
            AxisEntry::Declare {
                var: "y1".into(),
                set: AttrSet::List(vec![AttrExpr::attr("profit"), AttrExpr::attr("sales")]),
            }
        );
        assert_eq!(
            parse_axis_cell("x2").unwrap().unwrap(),
            AxisEntry::Var("x2".into())
        );
        assert_eq!(
            parse_axis_cell("x1 <- M").unwrap().unwrap(),
            AxisEntry::Declare {
                var: "x1".into(),
                set: AttrSet::Named("M".into())
            }
        );
        assert_eq!(
            parse_axis_cell("y1 <- _").unwrap().unwrap(),
            AxisEntry::BindDerived { var: "y1".into() }
        );
        assert_eq!(parse_axis_cell("").unwrap(), None);
        // composite axes
        assert_eq!(
            parse_axis_cell("'profit' + 'sales'").unwrap().unwrap(),
            AxisEntry::Fixed(AttrExpr::Plus(vec!["profit".into(), "sales".into()]))
        );
        assert_eq!(
            parse_axis_cell("'product' x 'county'").unwrap().unwrap(),
            AxisEntry::Fixed(AttrExpr::Cross(vec!["product".into(), "county".into()]))
        );
    }

    #[test]
    fn parse_z_variants() {
        assert_eq!(
            parse_z_cell("'product'.'chair'").unwrap(),
            ZEntry::Fixed {
                attr: "product".into(),
                value: Value::str("chair")
            }
        );
        assert_eq!(
            parse_z_cell("v1 <- 'product'.(* \\ {'stapler'})").unwrap(),
            ZEntry::DeclareValues {
                var: "v1".into(),
                set: ZSet::AttrValues {
                    attr: Some("product".into()),
                    values: ValueSet::AllExcept(vec![Value::str("stapler")]),
                },
            }
        );
        assert_eq!(
            parse_z_cell("z1.v1 <- (* \\ {'year', 'sales'}).*").unwrap(),
            ZEntry::DeclarePairs {
                attr_var: "z1".into(),
                val_var: "v1".into(),
                set: ZSet::CrossAttrs {
                    attrs: AttrSet::AllExcept(vec!["year".into(), "sales".into()]),
                    values: ValueSet::All,
                },
            }
        );
        // union of explicit pairs (Table 3.7)
        match parse_z_cell("z1.v1 <- ('product'.{'chair','desk'} | 'location'.'US')").unwrap() {
            ZEntry::DeclarePairs {
                set: ZSet::Union(a, b),
                ..
            } => {
                assert!(matches!(*a, ZSet::AttrValues { .. }));
                assert!(matches!(*b, ZSet::AttrValues { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            parse_z_cell("v2 <- 'product'._").unwrap(),
            ZEntry::BindDerived {
                attr_var: None,
                val_var: "v2".into(),
                attr: Some("product".into()),
            }
        );
        assert_eq!(parse_z_cell("u1 ->").unwrap(), ZEntry::OrderBy("u1".into()));
        assert_eq!(parse_z_cell("").unwrap(), ZEntry::None);
        assert_eq!(
            parse_z_cell("'year'.2015").unwrap(),
            ZEntry::Fixed {
                attr: "year".into(),
                value: Value::Int(2015)
            }
        );
        // named set (user-registered), e.g. airports OA
        assert_eq!(
            parse_z_cell("v1 <- OA").unwrap(),
            ZEntry::DeclareValues {
                var: "v1".into(),
                set: ZSet::AttrValues {
                    attr: None,
                    values: ValueSet::Named("OA".into())
                },
            }
        );
    }

    #[test]
    fn parse_constraints_variants() {
        let c = parse_constraints_cell("product='chair' AND zip LIKE '02%'")
            .unwrap()
            .unwrap();
        match c {
            ConstraintExpr::And(a, b) => {
                assert!(matches!(*a, ConstraintExpr::Static(_)));
                assert!(matches!(*b, ConstraintExpr::Static(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            parse_constraints_cell("year=2015").unwrap().unwrap(),
            ConstraintExpr::Static(Predicate::num_eq("year", 2015.0))
        );
        assert_eq!(
            parse_constraints_cell("product IN (v2.range)")
                .unwrap()
                .unwrap(),
            ConstraintExpr::InRange {
                attr: "product".into(),
                var: "v2".into()
            }
        );
        assert!(parse_constraints_cell("zip LIKE '%02'").is_err());
        assert!(matches!(
            parse_constraints_cell("sales BETWEEN 10 AND 20")
                .unwrap()
                .unwrap(),
            ConstraintExpr::Static(_)
        ));
        assert_eq!(parse_constraints_cell("").unwrap(), None);
    }

    #[test]
    fn parse_viz_variants() {
        assert_eq!(
            parse_viz_cell("bar.(x=bin(20), y=agg('sum'))")
                .unwrap()
                .unwrap(),
            VizEntry::Fixed(VizSpec {
                chart: ChartType::Bar,
                x_bin: Some(20.0),
                y_agg: Agg::Sum
            })
        );
        assert_eq!(
            parse_viz_cell("scatterplot").unwrap().unwrap(),
            VizEntry::Fixed(VizSpec {
                chart: ChartType::Scatterplot,
                ..Default::default()
            })
        );
        match parse_viz_cell("t1 <- {bar, dotplot}.(x=bin(20), y=agg('sum'))")
            .unwrap()
            .unwrap()
        {
            VizEntry::Declare { var, specs } => {
                assert_eq!(var, "t1");
                assert_eq!(specs.len(), 2);
                assert_eq!(specs[0].chart, ChartType::Bar);
                assert_eq!(specs[1].chart, ChartType::DotPlot);
                assert_eq!(specs[1].x_bin, Some(20.0));
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse_viz_cell("s1 <- bar.{(x=bin(20), y=agg('sum')), (x=bin(30), y=agg('sum'))}")
            .unwrap()
            .unwrap()
        {
            VizEntry::Declare { specs, .. } => {
                assert_eq!(specs.len(), 2);
                assert_eq!(specs[0].x_bin, Some(20.0));
                assert_eq!(specs[1].x_bin, Some(30.0));
            }
            other => panic!("unexpected {other:?}"),
        }
        // a bare non-chart identifier is a variable reuse
        assert_eq!(
            parse_viz_cell("t1").unwrap().unwrap(),
            VizEntry::Var("t1".into())
        );
        assert!(parse_viz_cell("piechart.(y=agg('sum'))").is_err());
    }

    #[test]
    fn parse_process_variants() {
        // multiple processes (Table 3.21)
        let ps = parse_process_cell(
            "(v2 <- argmax(v1)[k=1] D(f1, f2)), (v3 <- argmin(v1)[k=1] D(f1, f2))",
        )
        .unwrap();
        assert_eq!(ps.len(), 2);
        // multi-variable iteration (Table 3.19)
        match &parse_process_cell("x2, y2 <- argmax(x1, y1)[k=10] D(f1, f2)").unwrap()[0] {
            ProcessDecl::Rank { outputs, over, .. } => {
                assert_eq!(outputs, &["x2", "y2"]);
                assert_eq!(over, &["x1", "y1"]);
            }
            other => panic!("unexpected {other:?}"),
        }
        // nested iteration (Table 3.20)
        match &parse_process_cell("v3 <- argmax(v1)[k=10] min(v2) D(f1, f2)").unwrap()[0] {
            ProcessDecl::Rank {
                objective: ObjExpr::InnerAgg { op, vars, expr },
                ..
            } => {
                assert_eq!(*op, InnerOp::Min);
                assert_eq!(vars, &["v2"]);
                assert_eq!(**expr, ObjExpr::D("f1".into(), "f2".into()));
            }
            other => panic!("unexpected {other:?}"),
        }
        // sum objective (Table 3.25)
        match &parse_process_cell("x3, y3 <- argmax(x1, y1)[k=1] sum(x2, y2) D(f1, f2)").unwrap()[0]
        {
            ProcessDecl::Rank {
                objective: ObjExpr::InnerAgg { op, vars, .. },
                ..
            } => {
                assert_eq!(*op, InnerOp::Sum);
                assert_eq!(vars, &["x2", "y2"]);
            }
            other => panic!("unexpected {other:?}"),
        }
        // k = inf sort (Table 3.15)
        match &parse_process_cell("u1 <- argmin(v1)[k=inf] T(f1)").unwrap()[0] {
            ProcessDecl::Rank { filter, .. } => {
                assert_eq!(*filter, ProcessFilter::TopK(usize::MAX))
            }
            other => panic!("unexpected {other:?}"),
        }
        // negated objective
        match &parse_process_cell("u1 <- argmin(v1) -T(f1)").unwrap()[0] {
            ProcessDecl::Rank {
                objective: ObjExpr::Neg(inner),
                filter,
                ..
            } => {
                assert_eq!(**inner, ObjExpr::T("f1".into()));
                assert_eq!(*filter, ProcessFilter::None);
            }
            other => panic!("unexpected {other:?}"),
        }
        // user-defined function
        match &parse_process_cell("v2 <- argmax(v1)[k=5] wiggliness(f1)").unwrap()[0] {
            ProcessDecl::Rank {
                objective: ObjExpr::UserFn { name, args },
                ..
            } => {
                assert_eq!(name, "wiggliness");
                assert_eq!(args, &["f1"]);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(parse_process_cell("").unwrap(), Vec::new());
    }

    #[test]
    fn parse_name_expressions() {
        let n = parse_name_cell("f3=f1+f2").unwrap();
        assert_eq!(
            n.derived,
            Some(NameExpr::Add(
                Box::new(NameExpr::Ref("f1".into())),
                Box::new(NameExpr::Ref("f2".into()))
            ))
        );
        let n = parse_name_cell("*f4=f1^f3").unwrap();
        assert!(n.output);
        assert!(matches!(n.derived, Some(NameExpr::Intersect(_, _))));
        assert!(matches!(
            parse_name_cell("f2=f1[2:5]").unwrap().derived,
            Some(NameExpr::Slice(_, 2, 5))
        ));
        assert!(matches!(
            parse_name_cell("f2=f1[3]").unwrap().derived,
            Some(NameExpr::Index(_, 3))
        ));
        assert!(matches!(
            parse_name_cell("f2=f1.range").unwrap().derived,
            Some(NameExpr::Range(_))
        ));
        assert!(matches!(
            parse_name_cell("*f2=f1.order").unwrap().derived,
            Some(NameExpr::Order(_))
        ));
        assert!(parse_name_cell("-f1=f2+f3").is_err());
    }

    #[test]
    fn parse_errors_carry_location() {
        let e = parse_query("name | x\nf1 | 'year' | extra").unwrap_err();
        assert_eq!(e.line, 2);
        let e = parse_query("nome | x").unwrap_err();
        assert!(e.message.contains("unknown column"));
        let e = parse_query("x | y").unwrap_err();
        assert!(e.message.contains("name"));
    }

    #[test]
    fn parse_multiple_z_columns() {
        // Table 3.8: Z and Z2
        let q = parse_query(
            "name | x | y | z | z2\n\
             f1 | 'year' | 'sales' | v1 <- 'product'.* | v2 <- 'location'.{'US', 'Canada'}",
        )
        .unwrap();
        assert_eq!(q.rows[0].zs.len(), 2);
        match &q.rows[0].zs[1] {
            ZEntry::DeclareValues {
                set:
                    ZSet::AttrValues {
                        values: ValueSet::List(v),
                        ..
                    },
                ..
            } => {
                assert_eq!(v.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
