//! The three task processors evaluated in thesis §7.2 — similarity,
//! representative, and outlier search — expressed *as ZQL queries* over
//! the engine (each corresponds to a thesis table: 3.13, 3.20's first
//! row, and 3.20 entire).

use crate::ast::*;
use crate::exec::{ZqlEngine, ZqlError, ZqlOutput};
use std::collections::HashMap;
use zv_analytics::Series;

/// What a task operates over: `x` vs `y`, one visualization per value of
/// the slicing attribute `z`.
#[derive(Clone, Debug)]
pub struct TaskSpec {
    pub x: String,
    pub y: String,
    pub z: String,
    /// Aggregate for the y axis (`sum` unless stated).
    pub agg: zv_storage::Agg,
}

impl TaskSpec {
    pub fn new(x: impl Into<String>, y: impl Into<String>, z: impl Into<String>) -> Self {
        TaskSpec {
            x: x.into(),
            y: y.into(),
            z: z.into(),
            agg: zv_storage::Agg::Sum,
        }
    }

    pub fn with_agg(mut self, agg: zv_storage::Agg) -> Self {
        self.agg = agg;
        self
    }

    fn viz(&self) -> VizEntry {
        VizEntry::Fixed(VizSpec {
            chart: ChartType::Bar,
            x_bin: None,
            y_agg: self.agg,
        })
    }

    fn fresh_row(&self, name: NameCol, z: ZEntry, processes: Vec<ProcessDecl>) -> ZqlRow {
        ZqlRow {
            name,
            x: Some(AxisEntry::fixed(self.x.clone())),
            y: Some(AxisEntry::fixed(self.y.clone())),
            zs: vec![z],
            constraints: None,
            viz: Some(self.viz()),
            processes,
        }
    }

    fn all_values(&self, var: &str) -> ZEntry {
        ZEntry::DeclareValues {
            var: var.into(),
            set: ZSet::AttrValues {
                attr: Some(self.z.clone()),
                values: ValueSet::All,
            },
        }
    }
}

/// Similarity search (§7.2 (i), Table 3.13 shape): the `k` slices whose
/// visualization is most similar to a drawn/reference series.
pub fn similarity_search(
    engine: &ZqlEngine,
    spec: &TaskSpec,
    reference: &Series,
    k: usize,
) -> Result<ZqlOutput, ZqlError> {
    let query = ZqlQuery::new(vec![
        ZqlRow::named(NameCol::input("f1")),
        spec.fresh_row(
            NameCol::fresh("f2"),
            spec.all_values("v1"),
            vec![ProcessDecl::Rank {
                outputs: vec!["v2".into()],
                mechanism: Mechanism::ArgMin,
                over: vec!["v1".into()],
                filter: ProcessFilter::TopK(k),
                objective: ObjExpr::D("f1".into(), "f2".into()),
            }],
        ),
        spec.fresh_row(NameCol::output("f3"), ZEntry::Var("v2".into()), vec![]),
    ]);
    let mut inputs = HashMap::new();
    inputs.insert("f1".to_string(), reference.clone());
    engine.execute_with_inputs(&query, &inputs)
}

/// Representative search (§7.2 (ii)): `k` slices whose visualizations
/// are representative of the whole set (k-means centroids by default).
pub fn representative_search(
    engine: &ZqlEngine,
    spec: &TaskSpec,
    k: usize,
) -> Result<ZqlOutput, ZqlError> {
    let query = ZqlQuery::new(vec![
        spec.fresh_row(
            NameCol::fresh("f1"),
            spec.all_values("v1"),
            vec![ProcessDecl::Representative {
                outputs: vec!["v2".into()],
                k,
                over: vec!["v1".into()],
                component: "f1".into(),
            }],
        ),
        spec.fresh_row(NameCol::output("f2"), ZEntry::Var("v2".into()), vec![]),
    ]);
    engine.execute(&query)
}

/// Outlier search (§7.2 (iii), Table 3.20): find `k_reps` representative
/// visualizations, then return the `k` slices maximizing the minimum
/// distance to any representative.
pub fn outlier_search(
    engine: &ZqlEngine,
    spec: &TaskSpec,
    k_reps: usize,
    k: usize,
) -> Result<ZqlOutput, ZqlError> {
    let query = ZqlQuery::new(vec![
        spec.fresh_row(
            NameCol::fresh("f1"),
            spec.all_values("v1"),
            vec![ProcessDecl::Representative {
                outputs: vec!["v2".into()],
                k: k_reps,
                over: vec!["v1".into()],
                component: "f1".into(),
            }],
        ),
        spec.fresh_row(
            NameCol::fresh("f2"),
            ZEntry::Var("v2".into()),
            vec![ProcessDecl::Rank {
                outputs: vec!["v3".into()],
                mechanism: Mechanism::ArgMax,
                over: vec!["v1".into()],
                filter: ProcessFilter::TopK(k),
                objective: ObjExpr::InnerAgg {
                    op: InnerOp::Min,
                    vars: vec!["v2".into()],
                    expr: Box::new(ObjExpr::D("f1".into(), "f2".into())),
                },
            }],
        ),
        spec.fresh_row(NameCol::output("f3"), ZEntry::Var("v3".into()), vec![]),
    ]);
    engine.execute(&query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ZqlEngine;
    use std::sync::Arc;
    use zv_datagen::sales::{self, SalesConfig};
    use zv_storage::BitmapDb;

    fn engine() -> ZqlEngine {
        let table = sales::generate(&SalesConfig {
            rows: 30_000,
            products: 16,
            locations: 4,
            cities: 8,
            ..Default::default()
        });
        ZqlEngine::new(Arc::new(BitmapDb::new(table)))
    }

    fn spec() -> TaskSpec {
        TaskSpec::new("year", "sales", "product")
    }

    #[test]
    fn similarity_returns_k_ranked_matches() {
        let eng = engine();
        let reference = Series::from_ys(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let out = similarity_search(&eng, &spec(), &reference, 3).unwrap();
        assert_eq!(out.visualizations.len(), 3);
        let d = |s: &Series| eng.registry().d(s, &reference);
        let dists: Vec<f64> = out.visualizations.iter().map(|v| d(&v.series)).collect();
        assert!(dists.windows(2).all(|w| w[0] <= w[1] + 1e-9), "{dists:?}");
    }

    #[test]
    fn representative_returns_k_members() {
        let out = representative_search(&engine(), &spec(), 4).unwrap();
        assert_eq!(out.visualizations.len(), 4);
        let mut labels: Vec<&str> = out
            .visualizations
            .iter()
            .map(|v| v.label.as_str())
            .collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 4, "representatives must be distinct slices");
    }

    #[test]
    fn outlier_excludes_nothing_but_ranks_far_slices_first() {
        let eng = engine();
        let out = outlier_search(&eng, &spec(), 3, 2).unwrap();
        assert_eq!(out.visualizations.len(), 2);
    }

    #[test]
    fn avg_aggregate_task() {
        let out = representative_search(
            &engine(),
            &TaskSpec::new("year", "profit", "product").with_agg(zv_storage::Agg::Avg),
            2,
        )
        .unwrap();
        assert_eq!(out.visualizations.len(), 2);
    }
}
