//! The ZQL execution engine (thesis Ch. 5): rows become *visual
//! components* (n-dimensional arrays of visualizations over the
//! Cartesian product of their axis variables), data is fetched through a
//! [`Database`](zv_storage::Database) with one of four batching levels
//! ([`OptLevel`]), and
//! Process-column tasks filter/sort/compare components to bind output
//! variables.

use crate::ast::*;
use crate::parser::{parse_query, ParseError};
use crate::primitives::FunctionRegistry;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};
use zv_analytics::Series;
use zv_storage::{
    parallel, Atom, CmpOp, Column, DynDatabase, Predicate, QueryCtx, QueryKey, ResultTable,
    SelectQuery, StorageError, Value, XSpec, YSpec,
};

/// Process-column scoring loops below this many combinations stay serial
/// (thread spawn costs more than the work).
const PROCESS_PARALLEL_MIN: usize = 16;

// ---------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------

/// The external optimizations of §5.2, in increasing order of batching.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum OptLevel {
    /// One SQL query *and* one request per visualization (§5.1's naive
    /// compiler).
    NoOpt,
    /// Batch each row's visualizations into combined GROUP-BY queries,
    /// one request per row.
    IntraLine,
    /// Additionally pipeline task-less rows into the request of the next
    /// task row.
    IntraTask,
    /// Additionally batch any later row whose inputs are already
    /// available (the query-tree coloring of §5.2).
    InterTask,
}

/// Errors surfaced by parsing or executing ZQL.
#[derive(Debug)]
pub enum ZqlError {
    Parse(ParseError),
    Storage(StorageError),
    Semantic(String),
}

impl fmt::Display for ZqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ZqlError::Parse(e) => write!(f, "{e}"),
            ZqlError::Storage(e) => write!(f, "{e}"),
            ZqlError::Semantic(m) => write!(f, "semantic error: {m}"),
        }
    }
}

impl std::error::Error for ZqlError {}

impl From<ParseError> for ZqlError {
    fn from(e: ParseError) -> Self {
        ZqlError::Parse(e)
    }
}

impl From<StorageError> for ZqlError {
    fn from(e: StorageError) -> Self {
        ZqlError::Storage(e)
    }
}

fn sem(msg: impl Into<String>) -> ZqlError {
    ZqlError::Semantic(msg.into())
}

/// One output visualization.
#[derive(Clone, Debug)]
pub struct OutputViz {
    /// The component (`*f…`) this came from.
    pub component: String,
    pub x: String,
    pub y: String,
    /// Human-readable slice description, e.g. `product=chair, location=US`.
    pub label: String,
    pub spec: VizSpec,
    pub series: Series,
}

/// Execution metrics (the quantities plotted in Figures 7.1–7.4).
#[derive(Clone, Copy, Debug, Default)]
pub struct ExecReport {
    pub sql_queries: u64,
    pub requests: u64,
    pub rows_scanned: u64,
    /// Queries answered from the engine-level result cache (no scan).
    pub cache_hits: u64,
    /// Queries answered by deriving from a cached superset result
    /// (predicate subsumption / Z-slice extraction — no scan either).
    pub cache_derived_hits: u64,
    /// Queries that missed the engine-level result cache.
    pub cache_misses: u64,
    /// Queries answered by incremental view maintenance: an
    /// appended-range delta scan merged into a cached ancestor-version
    /// result (bounded scan instead of a full recompute).
    pub ivm_hits: u64,
    /// Rows visited by IVM delta scans — appended rows only, kept out
    /// of `rows_scanned`.
    pub ivm_rows_scanned: u64,
    /// Queries that returned `StorageError::Cancelled` during this
    /// execution (superseded interactions, deadlines, row budgets).
    pub queries_cancelled: u64,
    /// Morsels left unclaimed by cancelled scans — work the
    /// cancellation saved.
    pub morsels_cancelled: u64,
    /// Parallel scan attempts killed by a contained worker panic
    /// (`StorageError::WorkerPanicked`).
    pub worker_panics: u64,
    /// Queries re-attempted after a transient failure (recorded by
    /// `zv-server`'s retry policy; once per query).
    pub queries_retried: u64,
    /// Queries degraded to serial execution (retry ladder or breaker;
    /// once per query).
    pub queries_degraded: u64,
    /// Time inside the database backend.
    pub db_time: Duration,
    /// Post-processing (task) time.
    pub compute_time: Duration,
    pub total_time: Duration,
}

/// Result of executing a ZQL query.
#[derive(Debug, Default)]
pub struct ZqlOutput {
    pub visualizations: Vec<OutputViz>,
    pub report: ExecReport,
}

/// The zenvisage back-end: a database plus the function registry.
pub struct ZqlEngine {
    db: DynDatabase,
    registry: FunctionRegistry,
    opt: OptLevel,
}

impl ZqlEngine {
    pub fn new(db: DynDatabase) -> Self {
        ZqlEngine {
            db,
            registry: FunctionRegistry::default(),
            opt: OptLevel::InterTask,
        }
    }

    pub fn with_opt_level(db: DynDatabase, opt: OptLevel) -> Self {
        ZqlEngine {
            db,
            registry: FunctionRegistry::default(),
            opt,
        }
    }

    pub fn set_opt_level(&mut self, opt: OptLevel) {
        self.opt = opt;
    }

    pub fn opt_level(&self) -> OptLevel {
        self.opt
    }

    pub fn registry(&self) -> &FunctionRegistry {
        &self.registry
    }

    pub fn registry_mut(&mut self) -> &mut FunctionRegistry {
        &mut self.registry
    }

    pub fn database(&self) -> &DynDatabase {
        &self.db
    }

    /// Execute an already-parsed query.
    pub fn execute(&self, query: &ZqlQuery) -> Result<ZqlOutput, ZqlError> {
        self.execute_with_inputs(query, &HashMap::new())
    }

    /// Execute under an explicit lifecycle ctx: every data fetch the
    /// query issues observes the ctx's cancellation token / deadline at
    /// the scan's cancellation points, and a cancelled execution
    /// surfaces as `ZqlError::Storage(StorageError::Cancelled)` — this
    /// is the hook `zv-server`'s session supersession drives.
    pub fn execute_ctx(&self, query: &ZqlQuery, ctx: &QueryCtx) -> Result<ZqlOutput, ZqlError> {
        self.execute_with_inputs_ctx(query, &HashMap::new(), ctx)
    }

    /// Execute, supplying user-drawn inputs for `-f…` components.
    pub fn execute_with_inputs(
        &self,
        query: &ZqlQuery,
        inputs: &HashMap<String, Series>,
    ) -> Result<ZqlOutput, ZqlError> {
        self.execute_with_inputs_ctx(query, inputs, &QueryCtx::new())
    }

    /// [`ZqlEngine::execute_with_inputs`] under an explicit lifecycle
    /// ctx (see [`ZqlEngine::execute_ctx`]).
    pub fn execute_with_inputs_ctx(
        &self,
        query: &ZqlQuery,
        inputs: &HashMap<String, Series>,
        ctx: &QueryCtx,
    ) -> Result<ZqlOutput, ZqlError> {
        Exec::new(self, inputs, ctx).run(query)
    }

    /// Parse and execute the textual table format.
    pub fn execute_text(&self, text: &str) -> Result<ZqlOutput, ZqlError> {
        self.execute(&parse_query(text)?)
    }

    /// Parse and execute under an explicit lifecycle ctx.
    pub fn execute_text_ctx(&self, text: &str, ctx: &QueryCtx) -> Result<ZqlOutput, ZqlError> {
        self.execute_ctx(&parse_query(text)?, ctx)
    }

    pub fn execute_text_with_inputs(
        &self,
        text: &str,
        inputs: &HashMap<String, Series>,
    ) -> Result<ZqlOutput, ZqlError> {
        self.execute_with_inputs(&parse_query(text)?, inputs)
    }
}

// ---------------------------------------------------------------------
// Internal representation
// ---------------------------------------------------------------------

type GroupId = usize;

/// Deduplicated groups behind an iteration, plus each variable's
/// `(group, column)` slot.
type IterationGroups = (Vec<GroupId>, Vec<(GroupId, usize)>);

/// One value an axis variable can take.
#[derive(Clone, Debug, PartialEq)]
enum AxisValue {
    Attr(AttrExpr),
    Val(Value),
    Viz(VizSpec),
}

impl AxisValue {
    /// Rendering for diagnostics and `v.range`-style error messages.
    fn display(&self) -> String {
        match self {
            AxisValue::Attr(a) => a.attrs().join("×"),
            AxisValue::Val(v) => v.to_string(),
            AxisValue::Viz(v) => v.chart.to_string(),
        }
    }
}

/// A set of variables declared together (lockstep iteration, §3.7).
#[derive(Clone, Debug)]
struct VarGroup {
    vars: Vec<String>,
    /// `domain[i][c]` = value of `vars[c]` at position `i`.
    domain: Vec<Vec<AxisValue>>,
}

/// The axis assignments behind one visualization (its "visual source").
#[derive(Clone, Debug, PartialEq)]
struct CellSpec {
    x: AttrExpr,
    y: AttrExpr,
    /// Resolved slices: `(attribute, value)` per active Z column.
    z: Vec<(String, Value)>,
    viz: VizSpec,
    predicate: Predicate,
}

impl CellSpec {
    fn label(&self) -> String {
        self.z
            .iter()
            .map(|(a, v)| format!("{a}={v}"))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

/// A named visual component: an array of visualizations over `dims`.
#[derive(Clone, Debug)]
struct Component {
    dims: Vec<GroupId>,
    cells: Vec<CellSpec>,
    series: Vec<Option<Series>>,
    output: bool,
}

impl Component {
    fn len(&self) -> usize {
        self.cells.len()
    }
}

/// How one axis column of a row resolves.
#[derive(Clone, Debug)]
enum Slot {
    FixedAttr(AttrExpr),
    /// Variable value from `(group, column)`.
    Group(GroupId, usize),
}

#[derive(Clone, Debug)]
enum ZSlot {
    Fixed {
        attr: String,
        value: Value,
    },
    /// Value from a group column, attribute fixed.
    Values {
        gid: GroupId,
        col: usize,
        attr: String,
    },
    /// `(attribute, value)` pair from two group columns.
    Pairs {
        gid: GroupId,
        attr_col: usize,
        val_col: usize,
    },
}

#[derive(Clone, Debug)]
enum VizSlot {
    Fixed(VizSpec),
    Group(GroupId, usize),
}

/// A data-fetch unit: one SQL query plus the component cells it feeds.
struct BatchQuery {
    query: SelectQuery,
    consumers: Vec<Consumer>,
}

struct Consumer {
    component: String,
    cell: usize,
    /// Indices into the query's `ys` to sum (composite `+` measures).
    y_idxs: Vec<usize>,
    /// Expected Z-key inside the grouped result (empty = ungrouped).
    z_key: Vec<Value>,
    /// Flatten leading group dimensions into a sequential x (X = `a×b`).
    flatten_x: bool,
}

// ---------------------------------------------------------------------
// Execution state
// ---------------------------------------------------------------------

struct Exec<'a> {
    engine: &'a ZqlEngine,
    inputs: &'a HashMap<String, Series>,
    /// Lifecycle handle covering the whole ZQL execution: one user
    /// interaction = one ctx, threaded into every `run_request_ctx`.
    ctx: &'a QueryCtx,
    groups: Vec<VarGroup>,
    /// var name → (group, column)
    var_of: HashMap<String, (GroupId, usize)>,
    /// Z-value variables' attribute, when known.
    var_attr: HashMap<String, String>,
    components: HashMap<String, Component>,
    component_order: Vec<String>,
    pending: Vec<BatchQuery>,
    /// Rows already built ahead of schedule (InterTask lookahead).
    built_rows: Vec<bool>,
    /// Shared-pass cache (IntraTask and above): one fetch per distinct
    /// group-by within a single ZQL query, keyed by the canonical
    /// [`QueryKey`] — the same normalization the engine-level cache uses,
    /// so permuted-but-equivalent predicates collide instead of fetching
    /// twice. This layer reads *through* the engine cache: misses go to
    /// `Database::run_request`, which serves cross-execution repeats
    /// without a scan. Values are the engine's shared `Arc`s — a warm
    /// pass holds pointers into the engine cache, copying nothing.
    query_cache: HashMap<QueryKey, Arc<ResultTable>>,
    compute_time: Duration,
}

impl<'a> Exec<'a> {
    fn new(engine: &'a ZqlEngine, inputs: &'a HashMap<String, Series>, ctx: &'a QueryCtx) -> Self {
        Exec {
            engine,
            inputs,
            ctx,
            groups: Vec::new(),
            var_of: HashMap::new(),
            var_attr: HashMap::new(),
            components: HashMap::new(),
            component_order: Vec::new(),
            pending: Vec::new(),
            built_rows: Vec::new(),
            query_cache: HashMap::new(),
            compute_time: Duration::ZERO,
        }
    }

    fn run(mut self, query: &ZqlQuery) -> Result<ZqlOutput, ZqlError> {
        let start = Instant::now();
        let db_before = self.engine.db.stats().snapshot();
        self.built_rows = vec![false; query.rows.len()];

        for idx in 0..query.rows.len() {
            if self.built_rows[idx] {
                // Fetched ahead by InterTask lookahead; just run its
                // processes now (they run in row order regardless).
            } else {
                self.build_row(&query.rows[idx])?;
                self.built_rows[idx] = true;
                match self.engine.opt {
                    OptLevel::NoOpt | OptLevel::IntraLine => self.flush()?,
                    OptLevel::IntraTask | OptLevel::InterTask => {}
                }
            }
            if !query.rows[idx].processes.is_empty() {
                if self.engine.opt == OptLevel::InterTask {
                    // Lookahead: also build (and batch) later rows whose
                    // inputs don't depend on this or later tasks.
                    self.lookahead(query, idx + 1)?;
                }
                self.flush()?;
                let t = Instant::now();
                for p in &query.rows[idx].processes {
                    self.run_process(p)?;
                }
                self.compute_time += t.elapsed();
            }
        }
        self.flush()?;

        // Collect outputs in component order.
        let mut visualizations = Vec::new();
        for name in &self.component_order {
            let comp = &self.components[name];
            if !comp.output {
                continue;
            }
            for (cell, series) in comp.cells.iter().zip(&comp.series) {
                visualizations.push(OutputViz {
                    component: name.clone(),
                    x: cell.x.attrs().join("×"),
                    y: cell.y.attrs().join("+"),
                    label: cell.label(),
                    spec: cell.viz.clone(),
                    series: series.clone().unwrap_or_default(),
                });
            }
        }

        let db_stats = self.engine.db.stats().snapshot().since(&db_before);
        Ok(ZqlOutput {
            visualizations,
            report: ExecReport {
                sql_queries: db_stats.queries,
                requests: db_stats.requests,
                rows_scanned: db_stats.rows_scanned,
                cache_hits: db_stats.cache_hits,
                cache_derived_hits: db_stats.cache_derived_hits,
                cache_misses: db_stats.cache_misses,
                ivm_hits: db_stats.ivm_hits,
                ivm_rows_scanned: db_stats.ivm_rows_scanned,
                queries_cancelled: db_stats.queries_cancelled,
                morsels_cancelled: db_stats.morsels_cancelled,
                worker_panics: db_stats.worker_panics,
                queries_retried: db_stats.queries_retried,
                queries_degraded: db_stats.queries_degraded,
                db_time: db_stats.exec_time,
                compute_time: self.compute_time,
                total_time: start.elapsed(),
            },
        })
    }

    /// InterTask lookahead: build later rows that (a) haven't been built,
    /// (b) are fresh (not derived/user-input), and (c) reference only
    /// variables that already exist.
    fn lookahead(&mut self, query: &ZqlQuery, from: usize) -> Result<(), ZqlError> {
        for idx in from..query.rows.len() {
            if self.built_rows[idx] {
                continue;
            }
            let row = &query.rows[idx];
            if row.name.user_input || row.name.derived.is_some() {
                continue;
            }
            if self.row_vars_available(row) {
                self.build_row(row)?;
                self.built_rows[idx] = true;
            }
        }
        Ok(())
    }

    /// True when every variable the row *references* (without declaring)
    /// already exists.
    fn row_vars_available(&self, row: &ZqlRow) -> bool {
        let axis_ok = |e: &Option<AxisEntry>| match e {
            Some(AxisEntry::Var(v)) => self.var_of.contains_key(v),
            Some(AxisEntry::BindDerived { .. }) => false,
            Some(AxisEntry::Declare { set, .. }) => self.attr_set_available(set),
            _ => true,
        };
        if !axis_ok(&row.x) || !axis_ok(&row.y) {
            return false;
        }
        for z in &row.zs {
            let ok = match z {
                ZEntry::Var(v) => self.var_of.contains_key(v),
                ZEntry::DeclareValues { set, .. } | ZEntry::DeclarePairs { set, .. } => {
                    self.zset_available(set)
                }
                ZEntry::BindDerived { .. } | ZEntry::OrderBy(_) => false,
                ZEntry::None | ZEntry::Fixed { .. } => true,
            };
            if !ok {
                return false;
            }
        }
        if let Some(c) = &row.constraints {
            if !self.constraint_available(c) {
                return false;
            }
        }
        if let Some(VizEntry::Var(v)) = &row.viz {
            if !self.var_of.contains_key(v) {
                return false;
            }
        }
        true
    }

    fn attr_set_available(&self, set: &AttrSet) -> bool {
        match set {
            AttrSet::RangeOf(v) => self.var_of.contains_key(v),
            AttrSet::Union(a, b) | AttrSet::Diff(a, b) | AttrSet::Intersect(a, b) => {
                self.attr_set_available(a) && self.attr_set_available(b)
            }
            _ => true,
        }
    }

    fn value_set_available(&self, set: &ValueSet) -> bool {
        match set {
            ValueSet::RangeOf(v) => self.var_of.contains_key(v),
            ValueSet::Union(a, b) | ValueSet::Diff(a, b) | ValueSet::Intersect(a, b) => {
                self.value_set_available(a) && self.value_set_available(b)
            }
            _ => true,
        }
    }

    fn zset_available(&self, set: &ZSet) -> bool {
        match set {
            ZSet::AttrValues { values, .. } => self.value_set_available(values),
            ZSet::CrossAttrs { attrs, values } => {
                self.attr_set_available(attrs) && self.value_set_available(values)
            }
            ZSet::Union(a, b) => self.zset_available(a) && self.zset_available(b),
        }
    }

    fn constraint_available(&self, c: &ConstraintExpr) -> bool {
        match c {
            ConstraintExpr::Static(_) => true,
            ConstraintExpr::InRange { var, .. } => self.var_of.contains_key(var),
            ConstraintExpr::And(a, b) => {
                self.constraint_available(a) && self.constraint_available(b)
            }
        }
    }

    // -----------------------------------------------------------------
    // Row building
    // -----------------------------------------------------------------

    fn build_row(&mut self, row: &ZqlRow) -> Result<(), ZqlError> {
        let name = row.name.name.clone();
        if self.components.contains_key(&name) {
            return Err(sem(format!("component '{name}' defined twice")));
        }
        if row.name.user_input {
            let series = self
                .inputs
                .get(&name)
                .cloned()
                .ok_or_else(|| sem(format!("no user input supplied for -{name}")))?;
            self.insert_component(
                name,
                Component {
                    dims: Vec::new(),
                    cells: vec![CellSpec {
                        x: AttrExpr::attr("<input>"),
                        y: AttrExpr::attr("<input>"),
                        z: Vec::new(),
                        viz: VizSpec::default(),
                        predicate: Predicate::True,
                    }],
                    series: vec![Some(series)],
                    output: row.name.output,
                },
            );
            return Ok(());
        }
        if let Some(expr) = &row.name.derived {
            return self.build_derived_row(row, expr.clone());
        }
        self.build_fresh_row(row)
    }

    fn insert_component(&mut self, name: String, comp: Component) {
        self.component_order.push(name.clone());
        self.components.insert(name, comp);
    }

    fn new_group(
        &mut self,
        vars: Vec<String>,
        domain: Vec<Vec<AxisValue>>,
    ) -> Result<GroupId, ZqlError> {
        let gid = self.groups.len();
        for (c, v) in vars.iter().enumerate() {
            if self.var_of.contains_key(v) {
                return Err(sem(format!("variable '{v}' declared twice")));
            }
            self.var_of.insert(v.clone(), (gid, c));
        }
        self.groups.push(VarGroup { vars, domain });
        Ok(gid)
    }

    fn group_len(&self, gid: GroupId) -> usize {
        self.groups[gid].domain.len()
    }

    fn lookup_var(&self, v: &str) -> Result<(GroupId, usize), ZqlError> {
        self.var_of
            .get(v)
            .copied()
            .ok_or_else(|| sem(format!("variable '{v}' is not defined")))
    }

    /// Ordered, deduplicated values a variable ranges over (`v.range`).
    fn var_range(&self, v: &str) -> Result<Vec<AxisValue>, ZqlError> {
        let (gid, col) = self.lookup_var(v)?;
        let mut out: Vec<AxisValue> = Vec::new();
        for row in &self.groups[gid].domain {
            if !out.contains(&row[col]) {
                out.push(row[col].clone());
            }
        }
        Ok(out)
    }

    fn build_fresh_row(&mut self, row: &ZqlRow) -> Result<(), ZqlError> {
        let x_slot = self.resolve_axis(row.x.as_ref(), "x")?;
        let y_slot = self.resolve_axis(row.y.as_ref(), "y")?;
        let mut z_slots = Vec::new();
        for z in &row.zs {
            if let Some(slot) = self.resolve_z(z)? {
                z_slots.push(slot);
            }
        }
        let viz_slot = self.resolve_viz(row.viz.as_ref())?;
        let predicate = self.resolve_constraints(row.constraints.as_ref())?;

        // Dimensions: distinct groups in column order X, Y, Z…, Viz.
        let mut dims: Vec<GroupId> = Vec::new();
        let add_dim = |gid: GroupId, dims: &mut Vec<GroupId>| {
            if !dims.contains(&gid) {
                dims.push(gid);
            }
        };
        if let Slot::Group(g, _) = x_slot {
            add_dim(g, &mut dims);
        }
        if let Slot::Group(g, _) = y_slot {
            add_dim(g, &mut dims);
        }
        for z in &z_slots {
            match z {
                ZSlot::Values { gid, .. } | ZSlot::Pairs { gid, .. } => add_dim(*gid, &mut dims),
                ZSlot::Fixed { .. } => {}
            }
        }
        if let VizSlot::Group(g, _) = viz_slot {
            add_dim(g, &mut dims);
        }

        // Materialize cells in row-major order over the dims.
        let lens: Vec<usize> = dims.iter().map(|&g| self.group_len(g)).collect();
        let total: usize = lens
            .iter()
            .product::<usize>()
            .max(if dims.is_empty() { 1 } else { 0 });
        let mut cells = Vec::with_capacity(total);
        for flat in 0..total {
            let combo = unflatten(flat, &lens);
            let env: HashMap<GroupId, usize> =
                dims.iter().copied().zip(combo.iter().copied()).collect();
            let x = self.slot_attr(&x_slot, &env)?;
            let y = self.slot_attr(&y_slot, &env)?;
            let mut z = Vec::with_capacity(z_slots.len());
            for zs in &z_slots {
                z.push(self.zslot_pair(zs, &env)?);
            }
            let viz = match &viz_slot {
                VizSlot::Fixed(v) => v.clone(),
                VizSlot::Group(g, c) => match &self.groups[*g].domain[env[g]][*c] {
                    AxisValue::Viz(v) => v.clone(),
                    other => return Err(sem(format!("viz variable bound to {other:?}"))),
                },
            };
            cells.push(CellSpec {
                x,
                y,
                z,
                viz,
                predicate: predicate.clone(),
            });
        }

        let series = vec![None; cells.len()];
        let comp = Component {
            dims,
            cells,
            series,
            output: row.name.output,
        };
        self.plan_fetch(&row.name.name, &comp)?;
        self.insert_component(row.name.name.clone(), comp);
        Ok(())
    }

    fn resolve_axis(&mut self, entry: Option<&AxisEntry>, which: &str) -> Result<Slot, ZqlError> {
        match entry {
            None => Err(sem(format!(
                "a fresh visual component needs an {which} axis"
            ))),
            Some(AxisEntry::Fixed(a)) => Ok(Slot::FixedAttr(a.clone())),
            Some(AxisEntry::Var(v)) => {
                let (g, c) = self.lookup_var(v)?;
                Ok(Slot::Group(g, c))
            }
            Some(AxisEntry::Declare { var, set }) => {
                let attrs = self.resolve_attr_set(set)?;
                if attrs.is_empty() {
                    return Err(sem(format!("{which} set for '{var}' is empty")));
                }
                let domain = attrs
                    .into_iter()
                    .map(|a| vec![AxisValue::Attr(a)])
                    .collect();
                let gid = self.new_group(vec![var.clone()], domain)?;
                Ok(Slot::Group(gid, 0))
            }
            Some(AxisEntry::BindDerived { .. }) => Err(sem(
                "'<- _' bindings are only valid on derived rows".to_string(),
            )),
        }
    }

    fn resolve_attr_set(&self, set: &AttrSet) -> Result<Vec<AttrExpr>, ZqlError> {
        Ok(match set {
            AttrSet::List(items) => items.clone(),
            AttrSet::All => self
                .engine
                .db
                .table()
                .attribute_names()
                .into_iter()
                .map(AttrExpr::Attr)
                .collect(),
            AttrSet::AllExcept(except) => self
                .engine
                .db
                .table()
                .attribute_names()
                .into_iter()
                .filter(|a| !except.contains(a))
                .map(AttrExpr::Attr)
                .collect(),
            AttrSet::Named(n) => self
                .engine
                .registry
                .attr_set(n)
                .ok_or_else(|| sem(format!("unknown named attribute set '{n}'")))?
                .iter()
                .cloned()
                .map(AttrExpr::Attr)
                .collect(),
            AttrSet::RangeOf(v) => self
                .var_range(v)?
                .into_iter()
                .map(|av| match av {
                    AxisValue::Attr(a) => Ok(a),
                    other => Err(sem(format!("'{v}.range' holds non-attribute {other:?}"))),
                })
                .collect::<Result<_, _>>()?,
            AttrSet::Union(a, b) => {
                let mut out = self.resolve_attr_set(a)?;
                for item in self.resolve_attr_set(b)? {
                    if !out.contains(&item) {
                        out.push(item);
                    }
                }
                out
            }
            AttrSet::Diff(a, b) => {
                let rhs = self.resolve_attr_set(b)?;
                self.resolve_attr_set(a)?
                    .into_iter()
                    .filter(|i| !rhs.contains(i))
                    .collect()
            }
            AttrSet::Intersect(a, b) => {
                let rhs = self.resolve_attr_set(b)?;
                self.resolve_attr_set(a)?
                    .into_iter()
                    .filter(|i| rhs.contains(i))
                    .collect()
            }
        })
    }

    fn distinct_values(&self, attr: &str) -> Result<Vec<Value>, ZqlError> {
        Ok(self.engine.db.table().column(attr)?.distinct_values())
    }

    fn resolve_value_set(
        &self,
        set: &ValueSet,
        attr: Option<&str>,
    ) -> Result<Vec<Value>, ZqlError> {
        Ok(match set {
            ValueSet::List(v) => v.clone(),
            ValueSet::All => {
                let attr = attr.ok_or_else(|| sem("'*' needs an attribute context"))?;
                self.distinct_values(attr)?
            }
            ValueSet::AllExcept(except) => {
                let attr = attr.ok_or_else(|| sem("'* \\ …' needs an attribute context"))?;
                self.distinct_values(attr)?
                    .into_iter()
                    .filter(|v| !except.contains(v))
                    .collect()
            }
            ValueSet::Named(n) => self
                .engine
                .registry
                .value_set(n)
                .ok_or_else(|| sem(format!("unknown named value set '{n}'")))?
                .to_vec(),
            ValueSet::RangeOf(v) => self
                .var_range(v)?
                .into_iter()
                .map(|av| match av {
                    AxisValue::Val(val) => Ok(val),
                    other => Err(sem(format!("'{v}.range' holds non-value {other:?}"))),
                })
                .collect::<Result<_, _>>()?,
            ValueSet::Union(a, b) => {
                let mut out = self.resolve_value_set(a, attr)?;
                for item in self.resolve_value_set(b, attr)? {
                    if !out.contains(&item) {
                        out.push(item);
                    }
                }
                out
            }
            ValueSet::Diff(a, b) => {
                let rhs = self.resolve_value_set(b, attr)?;
                self.resolve_value_set(a, attr)?
                    .into_iter()
                    .filter(|i| !rhs.contains(i))
                    .collect()
            }
            ValueSet::Intersect(a, b) => {
                let rhs = self.resolve_value_set(b, attr)?;
                self.resolve_value_set(a, attr)?
                    .into_iter()
                    .filter(|i| rhs.contains(i))
                    .collect()
            }
        })
    }

    /// Infer the attribute for an unqualified Z value set from the range
    /// variables it references.
    fn infer_zset_attr(&self, set: &ValueSet) -> Option<String> {
        match set {
            ValueSet::RangeOf(v) => self.var_attr.get(v).cloned(),
            ValueSet::Union(a, b) | ValueSet::Diff(a, b) | ValueSet::Intersect(a, b) => {
                self.infer_zset_attr(a).or_else(|| self.infer_zset_attr(b))
            }
            _ => None,
        }
    }

    fn resolve_zset_pairs(&self, set: &ZSet) -> Result<Vec<(String, Value)>, ZqlError> {
        Ok(match set {
            ZSet::AttrValues { attr, values } => {
                let attr = match attr {
                    Some(a) => a.clone(),
                    None => self.infer_zset_attr(values).ok_or_else(|| {
                        sem("cannot infer the attribute for this Z set; qualify it as 'attr'.set")
                    })?,
                };
                self.resolve_value_set(values, Some(&attr))?
                    .into_iter()
                    .map(|v| (attr.clone(), v))
                    .collect()
            }
            ZSet::CrossAttrs { attrs, values } => {
                let mut out = Vec::new();
                for attr_expr in self.resolve_attr_set(attrs)? {
                    let AttrExpr::Attr(attr) = attr_expr else {
                        return Err(sem("composite attributes cannot be sliced in Z"));
                    };
                    for v in self.resolve_value_set(values, Some(&attr))? {
                        out.push((attr.clone(), v));
                    }
                }
                out
            }
            ZSet::Union(a, b) => {
                let mut out = self.resolve_zset_pairs(a)?;
                for p in self.resolve_zset_pairs(b)? {
                    if !out.contains(&p) {
                        out.push(p);
                    }
                }
                out
            }
        })
    }

    fn resolve_z(&mut self, entry: &ZEntry) -> Result<Option<ZSlot>, ZqlError> {
        match entry {
            ZEntry::None => Ok(None),
            ZEntry::Fixed { attr, value } => Ok(Some(ZSlot::Fixed {
                attr: attr.clone(),
                value: value.clone(),
            })),
            ZEntry::Var(v) => {
                let (gid, col) = self.lookup_var(v)?;
                let attr = self
                    .var_attr
                    .get(v)
                    .cloned()
                    .ok_or_else(|| sem(format!("variable '{v}' has no slice attribute")))?;
                Ok(Some(ZSlot::Values { gid, col, attr }))
            }
            ZEntry::DeclareValues { var, set } => {
                let pairs = self.resolve_zset_pairs(set)?;
                if pairs.is_empty() {
                    return Err(sem(format!("Z set for '{var}' is empty")));
                }
                let attrs: Vec<&String> = pairs.iter().map(|(a, _)| a).collect();
                let uniform = attrs.windows(2).all(|w| w[0] == w[1]);
                if uniform {
                    let attr = pairs[0].0.clone();
                    let domain = pairs
                        .into_iter()
                        .map(|(_, v)| vec![AxisValue::Val(v)])
                        .collect();
                    let gid = self.new_group(vec![var.clone()], domain)?;
                    self.var_attr.insert(var.clone(), attr.clone());
                    Ok(Some(ZSlot::Values { gid, col: 0, attr }))
                } else {
                    // Mixed attributes behave like an anonymous pair group.
                    let domain = pairs
                        .into_iter()
                        .map(|(a, v)| vec![AxisValue::Attr(AttrExpr::Attr(a)), AxisValue::Val(v)])
                        .collect();
                    let hidden = format!("__attr_of_{var}");
                    let gid = self.new_group(vec![hidden, var.clone()], domain)?;
                    Ok(Some(ZSlot::Pairs {
                        gid,
                        attr_col: 0,
                        val_col: 1,
                    }))
                }
            }
            ZEntry::DeclarePairs {
                attr_var,
                val_var,
                set,
            } => {
                let pairs = self.resolve_zset_pairs(set)?;
                if pairs.is_empty() {
                    return Err(sem(format!("Z set for '{attr_var}.{val_var}' is empty")));
                }
                let domain = pairs
                    .into_iter()
                    .map(|(a, v)| vec![AxisValue::Attr(AttrExpr::Attr(a)), AxisValue::Val(v)])
                    .collect();
                let gid = self.new_group(vec![attr_var.clone(), val_var.clone()], domain)?;
                Ok(Some(ZSlot::Pairs {
                    gid,
                    attr_col: 0,
                    val_col: 1,
                }))
            }
            ZEntry::BindDerived { .. } => Err(sem(
                "'<- _' bindings are only valid on derived rows".to_string(),
            )),
            ZEntry::OrderBy(_) => Err(sem(
                "ordering markers ('var ->') are only valid on '.order' rows".to_string(),
            )),
        }
    }

    fn resolve_viz(&mut self, entry: Option<&VizEntry>) -> Result<VizSlot, ZqlError> {
        match entry {
            None => Ok(VizSlot::Fixed(VizSpec::default())),
            Some(VizEntry::Fixed(spec)) => Ok(VizSlot::Fixed(spec.clone())),
            Some(VizEntry::Var(v)) => {
                let (g, c) = self.lookup_var(v)?;
                Ok(VizSlot::Group(g, c))
            }
            Some(VizEntry::Declare { var, specs }) => {
                let domain = specs
                    .iter()
                    .map(|s| vec![AxisValue::Viz(s.clone())])
                    .collect();
                let gid = self.new_group(vec![var.clone()], domain)?;
                Ok(VizSlot::Group(gid, 0))
            }
        }
    }

    fn resolve_constraints(&self, entry: Option<&ConstraintExpr>) -> Result<Predicate, ZqlError> {
        match entry {
            None => Ok(Predicate::True),
            Some(ConstraintExpr::Static(p)) => Ok(p.clone()),
            Some(ConstraintExpr::InRange { attr, var }) => {
                let values: Vec<Value> = self
                    .var_range(var)?
                    .into_iter()
                    .map(|av| match av {
                        AxisValue::Val(v) => Ok(v),
                        other => Err(sem(format!("'{var}.range' holds non-value {other:?}"))),
                    })
                    .collect::<Result<_, _>>()?;
                self.in_predicate(attr, &values)
            }
            Some(ConstraintExpr::And(a, b)) => Ok(self
                .resolve_constraints(Some(a))?
                .and(self.resolve_constraints(Some(b))?)),
        }
    }

    fn in_predicate(&self, attr: &str, values: &[Value]) -> Result<Predicate, ZqlError> {
        let table = self.engine.db.table();
        let col = table.column(attr)?;
        match col {
            Column::Cat(_) => {
                let strs = values
                    .iter()
                    .map(|v| match v {
                        Value::Str(s) => Ok(s.clone()),
                        other => Err(sem(format!("IN value {other} on categorical {attr}"))),
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Predicate::cat_in(attr.to_string(), strs))
            }
            _ => {
                let disj = values
                    .iter()
                    .map(|v| {
                        let n = v
                            .as_f64()
                            .ok_or_else(|| sem(format!("IN value {v} on numeric {attr}")))?;
                        Ok(vec![Atom::NumCmp {
                            col: attr.to_string(),
                            op: CmpOp::Eq,
                            value: n,
                        }])
                    })
                    .collect::<Result<Vec<_>, ZqlError>>()?;
                Ok(Predicate::Or(disj))
            }
        }
    }

    fn slot_attr(&self, slot: &Slot, env: &HashMap<GroupId, usize>) -> Result<AttrExpr, ZqlError> {
        match slot {
            Slot::FixedAttr(a) => Ok(a.clone()),
            Slot::Group(g, c) => match &self.groups[*g].domain[env[g]][*c] {
                AxisValue::Attr(a) => Ok(a.clone()),
                other => Err(sem(format!(
                    "axis variable bound to non-attribute {}",
                    other.display()
                ))),
            },
        }
    }

    fn zslot_pair(
        &self,
        slot: &ZSlot,
        env: &HashMap<GroupId, usize>,
    ) -> Result<(String, Value), ZqlError> {
        match slot {
            ZSlot::Fixed { attr, value } => Ok((attr.clone(), value.clone())),
            ZSlot::Values { gid, col, attr } => match &self.groups[*gid].domain[env[gid]][*col] {
                AxisValue::Val(v) => Ok((attr.clone(), v.clone())),
                other => Err(sem(format!("z variable bound to non-value {other:?}"))),
            },
            ZSlot::Pairs {
                gid,
                attr_col,
                val_col,
            } => {
                let row = &self.groups[*gid].domain[env[gid]];
                let attr = match &row[*attr_col] {
                    AxisValue::Attr(AttrExpr::Attr(a)) => a.clone(),
                    other => return Err(sem(format!("pair attribute is {other:?}"))),
                };
                let value = match &row[*val_col] {
                    AxisValue::Val(v) => v.clone(),
                    other => return Err(sem(format!("pair value is {other:?}"))),
                };
                Ok((attr, value))
            }
        }
    }

    // -----------------------------------------------------------------
    // Derived rows
    // -----------------------------------------------------------------

    fn build_derived_row(&mut self, row: &ZqlRow, expr: NameExpr) -> Result<(), ZqlError> {
        // Derivation needs fetched sources.
        self.flush()?;
        let mut cells = self.eval_name_expr(&expr)?;

        // `.order` reordering via `var ->` markers.
        let order_vars: Vec<String> = row
            .zs
            .iter()
            .filter_map(|z| match z {
                ZEntry::OrderBy(v) => Some(v.clone()),
                _ => None,
            })
            .collect();
        if contains_order(&expr) {
            if order_vars.is_empty() {
                return Err(sem("'.order' needs at least one 'var ->' column"));
            }
            cells = self.reorder_cells(cells, &order_vars)?;
        } else if !order_vars.is_empty() {
            return Err(sem("'var ->' columns are only valid with '.order'"));
        }

        // Bind `<- _` variables to the derived component's values.
        let mut bind_vars: Vec<String> = Vec::new();
        let mut bind_cols: Vec<Vec<AxisValue>> = Vec::new();
        let mut add_binding = |var: &str, col: Vec<AxisValue>| {
            bind_vars.push(var.to_string());
            bind_cols.push(col);
        };
        if let Some(AxisEntry::BindDerived { var }) = &row.x {
            add_binding(
                var,
                cells
                    .iter()
                    .map(|(c, _)| AxisValue::Attr(c.x.clone()))
                    .collect(),
            );
        }
        if let Some(AxisEntry::BindDerived { var }) = &row.y {
            add_binding(
                var,
                cells
                    .iter()
                    .map(|(c, _)| AxisValue::Attr(c.y.clone()))
                    .collect(),
            );
        }
        for z in &row.zs {
            if let ZEntry::BindDerived {
                attr_var,
                val_var,
                attr,
            } = z
            {
                let mut attrs_col = Vec::with_capacity(cells.len());
                let mut vals_col = Vec::with_capacity(cells.len());
                for (c, _) in &cells {
                    let pair = match attr {
                        Some(a) => c.z.iter().find(|(za, _)| za == a),
                        None => c.z.first(),
                    }
                    .ok_or_else(|| {
                        sem(format!(
                            "derived visualization has no slice for binding '{val_var}'"
                        ))
                    })?;
                    attrs_col.push(AxisValue::Attr(AttrExpr::Attr(pair.0.clone())));
                    vals_col.push(AxisValue::Val(pair.1.clone()));
                }
                if let Some(av) = attr_var {
                    add_binding(av, attrs_col);
                }
                if let Some(a) = attr {
                    self.var_attr.insert(val_var.clone(), a.clone());
                } else if let Some((first, _)) = cells.first().and_then(|(c, _)| c.z.first()) {
                    self.var_attr.insert(val_var.clone(), first.clone());
                }
                add_binding(val_var, vals_col);
            }
        }

        let dims = if bind_vars.is_empty() {
            Vec::new()
        } else {
            let domain: Vec<Vec<AxisValue>> = (0..cells.len())
                .map(|i| bind_cols.iter().map(|col| col[i].clone()).collect())
                .collect();
            vec![self.new_group(bind_vars, domain)?]
        };
        if !dims.is_empty() && self.group_len(dims[0]) != cells.len() {
            return Err(sem("derived binding length mismatch"));
        }

        let (specs, series): (Vec<CellSpec>, Vec<Option<Series>>) =
            cells.into_iter().map(|(c, s)| (c, Some(s))).unzip();
        self.insert_component(
            row.name.name.clone(),
            Component {
                dims,
                cells: specs,
                series,
                output: row.name.output,
            },
        );
        Ok(())
    }

    fn eval_name_expr(&self, expr: &NameExpr) -> Result<Vec<(CellSpec, Series)>, ZqlError> {
        Ok(match expr {
            NameExpr::Ref(name) => {
                let comp = self
                    .components
                    .get(name)
                    .ok_or_else(|| sem(format!("unknown component '{name}'")))?;
                comp.cells
                    .iter()
                    .zip(&comp.series)
                    .map(|(c, s)| (c.clone(), s.clone().unwrap_or_default()))
                    .collect()
            }
            NameExpr::Add(a, b) => {
                let mut out = self.eval_name_expr(a)?;
                out.extend(self.eval_name_expr(b)?);
                out
            }
            NameExpr::Sub(a, b) => {
                let rhs = self.eval_name_expr(b)?;
                self.eval_name_expr(a)?
                    .into_iter()
                    .filter(|(c, _)| !rhs.iter().any(|(rc, _)| rc == c))
                    .collect()
            }
            NameExpr::Intersect(a, b) => {
                let rhs = self.eval_name_expr(b)?;
                self.eval_name_expr(a)?
                    .into_iter()
                    .filter(|(c, _)| rhs.iter().any(|(rc, _)| rc == c))
                    .collect()
            }
            NameExpr::Index(inner, i) => {
                let cells = self.eval_name_expr(inner)?;
                if *i == 0 || *i > cells.len() {
                    return Err(sem(format!(
                        "index [{i}] out of bounds (1..={})",
                        cells.len()
                    )));
                }
                vec![cells[i - 1].clone()]
            }
            NameExpr::Slice(inner, a, b) => {
                let cells = self.eval_name_expr(inner)?;
                if *a == 0 || a > b {
                    return Err(sem(format!("bad slice [{a}:{b}]")));
                }
                let hi = (*b).min(cells.len());
                if *a > hi {
                    Vec::new()
                } else {
                    cells[a - 1..hi].to_vec()
                }
            }
            NameExpr::Range(inner) => {
                let cells = self.eval_name_expr(inner)?;
                let mut out: Vec<(CellSpec, Series)> = Vec::new();
                for (c, s) in cells {
                    if !out.iter().any(|(oc, _)| *oc == c) {
                        out.push((c, s));
                    }
                }
                out
            }
            // `.order` is applied by the caller (needs the row's markers).
            NameExpr::Order(inner) => self.eval_name_expr(inner)?,
        })
    }

    fn reorder_cells(
        &self,
        cells: Vec<(CellSpec, Series)>,
        order_vars: &[String],
    ) -> Result<Vec<(CellSpec, Series)>, ZqlError> {
        // All order variables must come from one (lockstep) group.
        let (gid, _) = self.lookup_var(&order_vars[0])?;
        let cols: Vec<usize> = order_vars
            .iter()
            .map(|v| {
                let (g, c) = self.lookup_var(v)?;
                if g != gid {
                    return Err(sem("'.order' variables must be declared together"));
                }
                Ok(c)
            })
            .collect::<Result<_, _>>()?;
        let mut out = Vec::new();
        for domain_row in &self.groups[gid].domain {
            let matched = cells.iter().find(|(c, _)| {
                order_vars
                    .iter()
                    .zip(&cols)
                    .all(|(v, &col)| cell_matches(c, self.var_attr.get(v), &domain_row[col]))
            });
            if let Some(m) = matched {
                out.push(m.clone());
            }
        }
        Ok(out)
    }

    // -----------------------------------------------------------------
    // Fetch planning and flushing
    // -----------------------------------------------------------------

    fn plan_fetch(&mut self, name: &str, comp: &Component) -> Result<(), ZqlError> {
        match self.engine.opt {
            OptLevel::NoOpt => self.plan_unbatched(name, comp),
            _ => self.plan_batched(name, comp),
        }
    }

    /// §5.1: one SQL query per visualization, z slices as predicates.
    fn plan_unbatched(&mut self, name: &str, comp: &Component) -> Result<(), ZqlError> {
        for (idx, cell) in comp.cells.iter().enumerate() {
            let (query, y_idxs, flatten_x) = self.cell_query(cell, false)?;
            self.pending.push(BatchQuery {
                query,
                consumers: vec![Consumer {
                    component: name.to_string(),
                    cell: idx,
                    y_idxs,
                    z_key: Vec::new(),
                    flatten_x,
                }],
            });
        }
        Ok(())
    }

    /// §5.2 intra-line: merge cells that differ only in Z values (and/or
    /// Y measure) into combined GROUP BY queries.
    fn plan_batched(&mut self, name: &str, comp: &Component) -> Result<(), ZqlError> {
        // Partition cells by everything except z *values* and y.
        let mut batches: HashMap<String, Vec<usize>> = HashMap::new();
        let mut order: Vec<String> = Vec::new();
        for (idx, cell) in comp.cells.iter().enumerate() {
            let z_attrs: Vec<&str> = cell.z.iter().map(|(a, _)| a.as_str()).collect();
            let key = format!(
                "{:?}|{:?}|{:?}|{:?}|{:?}",
                cell.x, z_attrs, cell.viz.x_bin, cell.viz.y_agg, cell.predicate
            );
            if !batches.contains_key(&key) {
                order.push(key.clone());
            }
            batches.entry(key).or_default().push(idx);
        }
        for key in order {
            let idxs = &batches[&key];
            let first = &comp.cells[idxs[0]];
            if matches!(first.x, AttrExpr::Cross(_)) {
                // Cross axes keep per-cell queries (they already group).
                for &idx in idxs {
                    let (query, y_idxs, flatten_x) = self.cell_query(&comp.cells[idx], false)?;
                    self.pending.push(BatchQuery {
                        query,
                        consumers: vec![Consumer {
                            component: name.to_string(),
                            cell: idx,
                            y_idxs,
                            z_key: Vec::new(),
                            flatten_x,
                        }],
                    });
                }
                continue;
            }
            // Combined query: GROUP BY z attrs, all y measures at once.
            let mut ys: Vec<YSpec> = Vec::new();
            let mut y_index: HashMap<String, usize> = HashMap::new();
            let mut consumers = Vec::with_capacity(idxs.len());
            let z_attrs: Vec<String> = first.z.iter().map(|(a, _)| a.clone()).collect();
            // Restrict each grouped attribute to the values actually
            // requested ("WHERE product IN P" in the paper's rewrite).
            let mut z_values: Vec<Vec<Value>> = vec![Vec::new(); z_attrs.len()];
            for &idx in idxs {
                let cell = &comp.cells[idx];
                let mut y_idxs = Vec::new();
                for yattr in cell.y.attrs() {
                    let slot = match y_index.get(yattr) {
                        Some(&s) => s,
                        None => {
                            let s = ys.len();
                            ys.push(YSpec::new(yattr.to_string(), cell.viz.y_agg));
                            y_index.insert(yattr.to_string(), s);
                            s
                        }
                    };
                    y_idxs.push(slot);
                }
                for (zi, (_, v)) in cell.z.iter().enumerate() {
                    if !z_values[zi].contains(v) {
                        z_values[zi].push(v.clone());
                    }
                }
                consumers.push(Consumer {
                    component: name.to_string(),
                    cell: idx,
                    y_idxs,
                    z_key: cell.z.iter().map(|(_, v)| v.clone()).collect(),
                    flatten_x: false,
                });
            }
            let x = match &first.x {
                AttrExpr::Attr(a) => a.clone(),
                AttrExpr::Plus(_) => return Err(sem("composite '+' axes are only supported on Y")),
                AttrExpr::Cross(_) => unreachable!("handled above"),
            };
            let mut predicate = first.predicate.clone();
            for (attr, values) in z_attrs.iter().zip(&z_values) {
                // Only restrict when it's an actual subset; an IN over
                // every value would just slow the scan down.
                let all = self.distinct_values(attr)?;
                if values.len() < all.len() {
                    predicate = predicate.and(self.in_predicate(attr, values)?);
                }
            }
            let mut query = SelectQuery::new(
                XSpec {
                    col: x,
                    bin: first.viz.x_bin,
                },
                ys,
            )
            .with_predicate(predicate);
            for z in z_attrs {
                query = query.with_z(z);
            }
            self.pending.push(BatchQuery { query, consumers });
        }
        Ok(())
    }

    /// Build the per-cell (unbatched) query.
    fn cell_query(
        &self,
        cell: &CellSpec,
        _grouped: bool,
    ) -> Result<(SelectQuery, Vec<usize>, bool), ZqlError> {
        let mut predicate = cell.predicate.clone();
        let table = self.engine.db.table();
        for (attr, value) in &cell.z {
            let atom = match (table.column(attr)?, value) {
                (Column::Cat(_), Value::Str(s)) => Predicate::cat_eq(attr.clone(), s.clone()),
                (_, v) => {
                    let n = v
                        .as_f64()
                        .ok_or_else(|| sem(format!("slice value {v} on numeric {attr}")))?;
                    Predicate::num_eq(attr.clone(), n)
                }
            };
            predicate = predicate.and(atom);
        }
        let ys: Vec<YSpec> = cell
            .y
            .attrs()
            .iter()
            .map(|a| YSpec::new(a.to_string(), cell.viz.y_agg))
            .collect();
        let y_idxs: Vec<usize> = (0..ys.len()).collect();
        match &cell.x {
            AttrExpr::Attr(a) => {
                let q = SelectQuery::new(
                    XSpec {
                        col: a.clone(),
                        bin: cell.viz.x_bin,
                    },
                    ys,
                )
                .with_predicate(predicate);
                Ok((q, y_idxs, false))
            }
            AttrExpr::Cross(attrs) => {
                // GROUP BY the leading attributes, x = the last; the
                // extraction flattens groups into one sequential axis.
                let (last, leading) = attrs.split_last().unwrap();
                let mut q = SelectQuery::new(
                    XSpec {
                        col: last.clone(),
                        bin: cell.viz.x_bin,
                    },
                    ys,
                )
                .with_predicate(predicate);
                for a in leading {
                    q = q.with_z(a.clone());
                }
                Ok((q, y_idxs, true))
            }
            AttrExpr::Plus(_) => Err(sem("composite '+' axes are only supported on Y")),
        }
    }

    /// Issue all pending queries as requests according to the opt level,
    /// and distribute results to component cells.
    ///
    /// At `IntraTask`/`InterTask` a shared-pass cache deduplicates
    /// equivalent group-bys across the whole ZQL query, keyed by the
    /// canonical [`QueryKey`] (so predicate permutations collide): only
    /// the first occurrence is fetched; later rows (and same-flush
    /// duplicates) read the cached `ResultTable`. The request itself fans
    /// the remaining distinct queries across the shared pool
    /// (`Database::run_request`), where the *engine-level* result cache
    /// answers cross-request and cross-execution repeats without a scan —
    /// this per-pass map is a read-through layer on top of it.
    fn flush(&mut self) -> Result<(), ZqlError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let batches = std::mem::take(&mut self.pending);
        let cache_on = self.engine.opt >= OptLevel::IntraTask;
        let keys: Vec<QueryKey> = if cache_on {
            batches.iter().map(|b| QueryKey::of(&b.query)).collect()
        } else {
            Vec::new()
        };
        let fresh: Vec<Arc<ResultTable>> = match self.engine.opt {
            OptLevel::NoOpt => {
                // one request per query, nothing shared
                let mut out = Vec::with_capacity(batches.len());
                for b in &batches {
                    out.push(
                        self.engine
                            .db
                            .run_request_ctx(std::slice::from_ref(&b.query), self.ctx)?
                            .pop()
                            .unwrap(),
                    );
                }
                out
            }
            OptLevel::IntraLine => {
                let queries: Vec<SelectQuery> = batches.iter().map(|b| b.query.clone()).collect();
                self.engine.db.run_request_ctx(&queries, self.ctx)?
            }
            OptLevel::IntraTask | OptLevel::InterTask => {
                let mut to_run: Vec<SelectQuery> = Vec::new();
                let mut run_keys: Vec<QueryKey> = Vec::new();
                let mut planned: HashSet<&QueryKey> = HashSet::new();
                for (b, k) in batches.iter().zip(&keys) {
                    if !self.query_cache.contains_key(k) && planned.insert(k) {
                        to_run.push(b.query.clone());
                        run_keys.push(k.clone());
                    }
                }
                let results = if to_run.is_empty() {
                    Vec::new()
                } else {
                    self.engine.db.run_request_ctx(&to_run, self.ctx)?
                };
                for (k, rt) in run_keys.into_iter().zip(results) {
                    self.query_cache.insert(k, rt);
                }
                Vec::new()
            }
        };
        let t = Instant::now();
        for (i, batch) in batches.iter().enumerate() {
            let result: &ResultTable = if cache_on {
                self.query_cache
                    .get(&keys[i])
                    .expect("query cached by this flush")
            } else {
                &fresh[i]
            };
            let index = result.index();
            for consumer in &batch.consumers {
                let series = if consumer.flatten_x {
                    // Concatenate groups sequentially (x = a×b axes).
                    let mut ys_flat: Vec<f64> = Vec::new();
                    for g in &result.groups {
                        for i in 0..g.xs.len() {
                            let v: f64 = consumer.y_idxs.iter().map(|&yi| g.ys[yi][i]).sum();
                            ys_flat.push(v);
                        }
                    }
                    Series::from_ys(&ys_flat)
                } else if consumer.z_key.is_empty() && batch.query.zs.is_empty() {
                    match result.groups.first() {
                        Some(g) => combine_measures(g, &consumer.y_idxs),
                        None => Series::default(),
                    }
                } else {
                    match index.get(consumer.z_key.as_slice()) {
                        Some(&gi) => combine_measures(&result.groups[gi], &consumer.y_idxs),
                        None => Series::default(),
                    }
                };
                let comp = self
                    .components
                    .get_mut(&consumer.component)
                    .ok_or_else(|| sem(format!("internal: component {}", consumer.component)))?;
                comp.series[consumer.cell] = Some(series);
            }
        }
        self.compute_time += t.elapsed();
        Ok(())
    }

    // -----------------------------------------------------------------
    // Process evaluation
    // -----------------------------------------------------------------

    fn run_process(&mut self, decl: &ProcessDecl) -> Result<(), ZqlError> {
        match decl {
            ProcessDecl::Rank {
                outputs,
                mechanism,
                over,
                filter,
                objective,
            } => self.run_rank(outputs, *mechanism, over, *filter, objective),
            ProcessDecl::Representative {
                outputs,
                k,
                over,
                component,
            } => self.run_representative(outputs, *k, over, component),
        }
    }

    /// Groups (deduplicated, in order) behind a list of variables, plus
    /// each variable's (group, column).
    fn iteration_groups(&self, vars: &[String]) -> Result<IterationGroups, ZqlError> {
        let mut gids: Vec<GroupId> = Vec::new();
        let mut slots = Vec::with_capacity(vars.len());
        for v in vars {
            let (g, c) = self.lookup_var(v)?;
            if !gids.contains(&g) {
                gids.push(g);
            }
            slots.push((g, c));
        }
        Ok((gids, slots))
    }

    fn run_rank(
        &mut self,
        outputs: &[String],
        mechanism: Mechanism,
        over: &[String],
        filter: ProcessFilter,
        objective: &ObjExpr,
    ) -> Result<(), ZqlError> {
        if outputs.len() != over.len() {
            return Err(sem(format!(
                "{} outputs for {} iterated variables (they map positionally)",
                outputs.len(),
                over.len()
            )));
        }
        let (gids, slots) = self.iteration_groups(over)?;
        let lens: Vec<usize> = gids.iter().map(|&g| self.group_len(g)).collect();
        let total: usize = lens.iter().product();
        // Score every combination across the shared pool (the objective
        // may hide expensive distance computations); results come back in
        // combination order, so ranking stays deterministic.
        let this: &Exec<'_> = self;
        let threads = if total >= PROCESS_PARALLEL_MIN { 0 } else { 1 };
        let mut scored: Vec<(Vec<usize>, f64)> =
            parallel::try_parallel_map(total, threads, |flat| {
                let combo = unflatten(flat, &lens);
                let env: HashMap<GroupId, usize> =
                    gids.iter().copied().zip(combo.iter().copied()).collect();
                let score = this.eval_obj(objective, &env)?;
                Ok::<_, ZqlError>((combo, score))
            })?;
        match mechanism {
            Mechanism::ArgMin => scored.sort_by(|a, b| a.1.total_cmp(&b.1)),
            Mechanism::ArgMax => scored.sort_by(|a, b| b.1.total_cmp(&a.1)),
            Mechanism::ArgAny => {}
        }
        let kept: Vec<&(Vec<usize>, f64)> = match filter {
            ProcessFilter::TopK(k) => scored.iter().take(k).collect(),
            ProcessFilter::Threshold { op, value } => {
                scored.iter().filter(|(_, s)| op.eval(*s, value)).collect()
            }
            ProcessFilter::None => scored.iter().collect(),
        };
        // Output group: lockstep tuples, outputs[i] ← over[i]'s value.
        let domain: Vec<Vec<AxisValue>> = kept
            .iter()
            .map(|(combo, _)| {
                slots
                    .iter()
                    .map(|(g, c)| {
                        let gi = gids.iter().position(|x| x == g).unwrap();
                        self.groups[*g].domain[combo[gi]][*c].clone()
                    })
                    .collect()
            })
            .collect();
        for (out, src) in outputs.iter().zip(over) {
            if let Some(attr) = self.var_attr.get(src).cloned() {
                self.var_attr.insert(out.clone(), attr);
            }
        }
        self.new_group(outputs.to_vec(), domain)?;
        Ok(())
    }

    fn run_representative(
        &mut self,
        outputs: &[String],
        k: usize,
        over: &[String],
        component: &str,
    ) -> Result<(), ZqlError> {
        if outputs.len() != over.len() {
            return Err(sem(
                "R outputs map positionally to its variables".to_string()
            ));
        }
        let (gids, slots) = self.iteration_groups(over)?;
        let lens: Vec<usize> = gids.iter().map(|&g| self.group_len(g)).collect();
        let total: usize = lens.iter().product();
        let this: &Exec<'_> = self;
        let threads = if total >= PROCESS_PARALLEL_MIN { 0 } else { 1 };
        let (combos, series): (Vec<Vec<usize>>, Vec<Series>) =
            parallel::try_parallel_map(total, threads, |flat| {
                let combo = unflatten(flat, &lens);
                let env: HashMap<GroupId, usize> =
                    gids.iter().copied().zip(combo.iter().copied()).collect();
                let s = this.component_series(component, &env)?;
                Ok::<_, ZqlError>((combo, s))
            })?
            .into_iter()
            .unzip();
        let picked = self.engine.registry.r(&series, k);
        let domain: Vec<Vec<AxisValue>> = picked
            .iter()
            .map(|&i| {
                slots
                    .iter()
                    .map(|(g, c)| {
                        let gi = gids.iter().position(|x| x == g).unwrap();
                        self.groups[*g].domain[combos[i][gi]][*c].clone()
                    })
                    .collect()
            })
            .collect();
        for (out, src) in outputs.iter().zip(over) {
            if let Some(attr) = self.var_attr.get(src).cloned() {
                self.var_attr.insert(out.clone(), attr);
            }
        }
        self.new_group(outputs.to_vec(), domain)?;
        Ok(())
    }

    /// The series of `component` at the variable assignment `env`.
    fn component_series(
        &self,
        name: &str,
        env: &HashMap<GroupId, usize>,
    ) -> Result<Series, ZqlError> {
        let comp = self
            .components
            .get(name)
            .ok_or_else(|| sem(format!("unknown component '{name}'")))?;
        let mut idx = 0usize;
        for &g in &comp.dims {
            let i = *env.get(&g).ok_or_else(|| {
                sem(format!(
                    "component '{name}' needs an index for variable group ({})",
                    self.groups[g].vars.join(", ")
                ))
            })?;
            idx = idx * self.group_len(g) + i;
        }
        if comp.dims.is_empty() && comp.len() != 1 {
            return Err(sem(format!(
                "component '{name}' has {} visualizations but no iterating variable",
                comp.len()
            )));
        }
        comp.series[idx]
            .clone()
            .ok_or_else(|| sem(format!("component '{name}' not fetched before use")))
    }

    fn eval_obj(&self, expr: &ObjExpr, env: &HashMap<GroupId, usize>) -> Result<f64, ZqlError> {
        Ok(match expr {
            ObjExpr::T(f) => self.engine.registry.t(&self.component_series(f, env)?),
            ObjExpr::D(a, b) => self.engine.registry.d(
                &self.component_series(a, env)?,
                &self.component_series(b, env)?,
            ),
            ObjExpr::Neg(inner) => -self.eval_obj(inner, env)?,
            ObjExpr::UserFn { name, args } => {
                let series: Vec<Series> = args
                    .iter()
                    .map(|a| self.component_series(a, env))
                    .collect::<Result<_, _>>()?;
                self.engine
                    .registry
                    .call_user(name, &series)
                    .ok_or_else(|| sem(format!("unknown function '{name}'")))?
            }
            ObjExpr::InnerAgg { op, vars, expr } => {
                let (gids, _) = self.iteration_groups(vars)?;
                for g in &gids {
                    if env.contains_key(g) {
                        return Err(sem(
                            "inner aggregation variables must differ from the outer iteration"
                                .to_string(),
                        ));
                    }
                }
                let lens: Vec<usize> = gids.iter().map(|&g| self.group_len(g)).collect();
                let total: usize = lens.iter().product();
                let mut acc: f64 = match op {
                    InnerOp::Min => f64::INFINITY,
                    InnerOp::Max => f64::NEG_INFINITY,
                    InnerOp::Sum | InnerOp::Avg => 0.0,
                };
                for flat in 0..total {
                    let combo = unflatten(flat, &lens);
                    let mut inner_env = env.clone();
                    inner_env.extend(gids.iter().copied().zip(combo.iter().copied()));
                    let v = self.eval_obj(expr, &inner_env)?;
                    match op {
                        InnerOp::Min => acc = acc.min(v),
                        InnerOp::Max => acc = acc.max(v),
                        InnerOp::Sum | InnerOp::Avg => acc += v,
                    }
                }
                if *op == InnerOp::Avg && total > 0 {
                    acc /= total as f64;
                }
                acc
            }
        })
    }
}

// ---------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------

fn unflatten(mut flat: usize, lens: &[usize]) -> Vec<usize> {
    let mut combo = vec![0usize; lens.len()];
    for i in (0..lens.len()).rev() {
        combo[i] = flat % lens[i];
        flat /= lens[i];
    }
    combo
}

fn combine_measures(g: &zv_storage::GroupSeries, y_idxs: &[usize]) -> Series {
    let pts: Vec<(f64, f64)> =
        g.xs.iter()
            .enumerate()
            .filter_map(|(i, x)| {
                x.as_f64()
                    .map(|xf| (xf, y_idxs.iter().map(|&yi| g.ys[yi][i]).sum::<f64>()))
            })
            .collect();
    if pts.len() == g.xs.len() {
        // The kernel guarantees xs ascending and unique within a group, so
        // the sort + dedup scan of `Series::new` is skipped.
        Series::from_sorted_points(pts)
    } else {
        // Categorical x: index positions keep alignment stable.
        let ys: Vec<f64> = (0..g.xs.len())
            .map(|i| y_idxs.iter().map(|&yi| g.ys[yi][i]).sum::<f64>())
            .collect();
        Series::from_ys(&ys)
    }
}

fn contains_order(expr: &NameExpr) -> bool {
    match expr {
        NameExpr::Order(_) => true,
        NameExpr::Ref(_) => false,
        NameExpr::Add(a, b) | NameExpr::Sub(a, b) | NameExpr::Intersect(a, b) => {
            contains_order(a) || contains_order(b)
        }
        NameExpr::Index(a, _) | NameExpr::Slice(a, _, _) | NameExpr::Range(a) => contains_order(a),
    }
}

fn cell_matches(cell: &CellSpec, attr: Option<&String>, value: &AxisValue) -> bool {
    match value {
        AxisValue::Val(v) => match attr {
            Some(a) => cell.z.iter().any(|(za, zv)| za == a && zv == v),
            None => cell.z.iter().any(|(_, zv)| zv == v),
        },
        AxisValue::Attr(a) => {
            let name = a.attrs().join("×");
            cell.x.attrs().join("×") == name || cell.y.attrs().join("+") == name
        }
        AxisValue::Viz(v) => cell.viz == *v,
    }
}
