//! The ZQL query model (thesis Ch. 3): a query is a table whose rows are
//! visual components, with the fixed columns Name, X, Y, Z (Z2, Z3, …),
//! Constraints, Viz, and Process.

use std::fmt;
use zv_storage::{Agg, Predicate, Value};

/// A whole ZQL query: an ordered list of rows.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct ZqlQuery {
    pub rows: Vec<ZqlRow>,
}

impl ZqlQuery {
    pub fn new(rows: Vec<ZqlRow>) -> Self {
        ZqlQuery { rows }
    }
}

/// One row: a named visual component plus optional processes.
#[derive(Clone, Debug, PartialEq)]
pub struct ZqlRow {
    pub name: NameCol,
    pub x: Option<AxisEntry>,
    pub y: Option<AxisEntry>,
    /// Z, Z2, Z3, … slice columns.
    pub zs: Vec<ZEntry>,
    pub constraints: Option<ConstraintExpr>,
    pub viz: Option<VizEntry>,
    pub processes: Vec<ProcessDecl>,
}

impl ZqlRow {
    pub fn named(name: NameCol) -> Self {
        ZqlRow {
            name,
            x: None,
            y: None,
            zs: Vec::new(),
            constraints: None,
            viz: None,
            processes: Vec::new(),
        }
    }
}

// ---------------------------------------------------------------------
// Name column
// ---------------------------------------------------------------------

/// The Name column: an identifier, an output flag (`*f1`), a user-input
/// flag (`-f1`), or a derivation (`f3=f1+f2`).
#[derive(Clone, Debug, PartialEq)]
pub struct NameCol {
    pub name: String,
    /// `*` prefix: this component is part of the query output.
    pub output: bool,
    /// `-` prefix: the component is provided by the user (sketch input).
    pub user_input: bool,
    /// `= <expr>` suffix: the component derives from earlier components.
    pub derived: Option<NameExpr>,
}

impl NameCol {
    pub fn fresh(name: impl Into<String>) -> Self {
        NameCol {
            name: name.into(),
            output: false,
            user_input: false,
            derived: None,
        }
    }

    pub fn output(name: impl Into<String>) -> Self {
        NameCol {
            output: true,
            ..Self::fresh(name)
        }
    }

    pub fn input(name: impl Into<String>) -> Self {
        NameCol {
            user_input: true,
            ..Self::fresh(name)
        }
    }

    pub fn derived(name: impl Into<String>, expr: NameExpr) -> Self {
        NameCol {
            derived: Some(expr),
            ..Self::fresh(name)
        }
    }

    pub fn derived_output(name: impl Into<String>, expr: NameExpr) -> Self {
        NameCol {
            output: true,
            derived: Some(expr),
            ..Self::fresh(name)
        }
    }
}

/// Operations over previously-named visual components (§3.6).
#[derive(Clone, Debug, PartialEq)]
pub enum NameExpr {
    /// `f1` — reference.
    Ref(String),
    /// `f1+f2` — concatenation.
    Add(Box<NameExpr>, Box<NameExpr>),
    /// `f1-f2` — list difference.
    Sub(Box<NameExpr>, Box<NameExpr>),
    /// `f1^f2` — intersection.
    Intersect(Box<NameExpr>, Box<NameExpr>),
    /// `f1[i]` — i-th visualization (1-based).
    Index(Box<NameExpr>, usize),
    /// `f1[i:j]` — 1-based inclusive slice.
    Slice(Box<NameExpr>, usize, usize),
    /// `f1.range` — duplicate elimination.
    Range(Box<NameExpr>),
    /// `f1.order` — reorder by the `-->` axis variables of the row.
    Order(Box<NameExpr>),
}

// ---------------------------------------------------------------------
// Axis entries (X and Y columns)
// ---------------------------------------------------------------------

/// An attribute expression: a single attribute or a Polaris table-algebra
/// composition (§3.2; `+` sums measures, `*` crosses dimensions).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum AttrExpr {
    Attr(String),
    /// `'profit' + 'sales'` — both measures on one axis.
    Plus(Vec<String>),
    /// `'product' × 'county'` — concatenated dimension axis.
    Cross(Vec<String>),
}

impl AttrExpr {
    pub fn attr(name: impl Into<String>) -> Self {
        AttrExpr::Attr(name.into())
    }

    /// All attribute names mentioned.
    pub fn attrs(&self) -> Vec<&str> {
        match self {
            AttrExpr::Attr(a) => vec![a],
            AttrExpr::Plus(v) | AttrExpr::Cross(v) => v.iter().map(String::as_str).collect(),
        }
    }
}

impl fmt::Display for AttrExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrExpr::Attr(a) => write!(f, "'{a}'"),
            AttrExpr::Plus(v) => write!(
                f,
                "{}",
                v.iter()
                    .map(|a| format!("'{a}'"))
                    .collect::<Vec<_>>()
                    .join("+")
            ),
            AttrExpr::Cross(v) => write!(
                f,
                "{}",
                v.iter()
                    .map(|a| format!("'{a}'"))
                    .collect::<Vec<_>>()
                    .join("x")
            ),
        }
    }
}

/// A set of axis values (attribute names here; see [`ZSet`] for Z).
#[derive(Clone, Debug, PartialEq)]
pub enum AttrSet {
    /// `{'a', 'b'}` — explicit list.
    List(Vec<AttrExpr>),
    /// `*` — every attribute of the relation.
    All,
    /// `* \ {'a', 'b'}` — every attribute except the listed ones.
    AllExcept(Vec<String>),
    /// A named set registered on the engine (`M`, `C`, `P`, …).
    Named(String),
    /// `v.range` — the set an earlier variable iterates over.
    RangeOf(String),
    /// Union / difference / intersection of sets (`|`, `\`, `&`).
    Union(Box<AttrSet>, Box<AttrSet>),
    Diff(Box<AttrSet>, Box<AttrSet>),
    Intersect(Box<AttrSet>, Box<AttrSet>),
}

/// An X or Y column cell.
#[derive(Clone, Debug, PartialEq)]
pub enum AxisEntry {
    /// `'year'` — a fixed attribute (possibly composite).
    Fixed(AttrExpr),
    /// `y1 <- {'profit','sales'}` — declare a variable over a set.
    Declare { var: String, set: AttrSet },
    /// `x2` — reuse a variable declared earlier (here or in a process).
    Var(String),
    /// `y1 <- _` — bind to the values present in this row's *derived*
    /// component (§3.6).
    BindDerived { var: String },
}

impl AxisEntry {
    pub fn fixed(attr: impl Into<String>) -> Self {
        AxisEntry::Fixed(AttrExpr::attr(attr))
    }
}

// ---------------------------------------------------------------------
// Z entries
// ---------------------------------------------------------------------

/// A set of values for a Z attribute.
#[derive(Clone, Debug, PartialEq)]
pub enum ValueSet {
    /// `{'chair', 'desk'}`.
    List(Vec<Value>),
    /// `*` — all values of the attribute.
    All,
    /// `(* \ {'stapler'})`.
    AllExcept(Vec<Value>),
    /// A named set registered on the engine.
    Named(String),
    /// `v2.range`.
    RangeOf(String),
    Union(Box<ValueSet>, Box<ValueSet>),
    Diff(Box<ValueSet>, Box<ValueSet>),
    Intersect(Box<ValueSet>, Box<ValueSet>),
}

/// A set of `(attribute, value)` pairs for attribute-varying Z columns
/// (§3.3, Table 3.6/3.7).
#[derive(Clone, Debug, PartialEq)]
pub enum ZSet {
    /// `'product'.*` or `'product'.{'chair','desk'}` — fixed attribute.
    /// `attr = None` (e.g. `v4 <- (v2.range & v3.range)`) infers the
    /// attribute from the referenced range variables.
    AttrValues {
        attr: Option<String>,
        values: ValueSet,
    },
    /// `(* \ {'year','sales'}).*` — every (attr, value) pair over an
    /// attribute set.
    CrossAttrs { attrs: AttrSet, values: ValueSet },
    /// Explicit union of pair sets: `('product'.{'chair'} | 'location'.'US')`.
    Union(Box<ZSet>, Box<ZSet>),
}

/// A Z (or Z2, Z3, …) column cell.
#[derive(Clone, Debug, PartialEq)]
pub enum ZEntry {
    /// Blank — no slicing on this Z column.
    None,
    /// `'product'.'chair'` — a fixed slice.
    Fixed { attr: String, value: Value },
    /// `v1 <- 'product'.*` — value variable over one attribute.
    DeclareValues { var: String, set: ZSet },
    /// `z1.v1 <- (*).(*)` — attribute *and* value vary together.
    DeclarePairs {
        attr_var: String,
        val_var: String,
        set: ZSet,
    },
    /// `v1` — reuse.
    Var(String),
    /// `v2 <- 'product'._` / `z1.v1 <- _` — bind to a derived component.
    BindDerived {
        attr_var: Option<String>,
        val_var: String,
        attr: Option<String>,
    },
    /// `u1 ->` — ordering marker for `.order` rows (§3.6, Table 3.15).
    OrderBy(String),
}

// ---------------------------------------------------------------------
// Constraints column
// ---------------------------------------------------------------------

/// A constraint that may reference variable ranges, resolved to a
/// [`Predicate`] at execution time (§3.7: "In the Constraints column,
/// only the expanded set form of a variable may be used").
#[derive(Clone, Debug, PartialEq)]
pub enum ConstraintExpr {
    /// A fully static predicate.
    Static(Predicate),
    /// `attr IN (v2.range)`.
    InRange {
        attr: String,
        var: String,
    },
    And(Box<ConstraintExpr>, Box<ConstraintExpr>),
}

impl ConstraintExpr {
    pub fn and(self, other: ConstraintExpr) -> Self {
        ConstraintExpr::And(Box::new(self), Box::new(other))
    }
}

// ---------------------------------------------------------------------
// Viz column
// ---------------------------------------------------------------------

/// Visualization type (§3.5).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ChartType {
    Bar,
    Line,
    Scatterplot,
    DotPlot,
    BoxPlot,
    /// Blank Viz column: "standard rules of thumb" pick the type.
    Auto,
}

impl ChartType {
    pub fn parse(s: &str) -> Option<ChartType> {
        match s.to_ascii_lowercase().as_str() {
            "bar" => Some(ChartType::Bar),
            "line" => Some(ChartType::Line),
            "scatterplot" | "scatter" => Some(ChartType::Scatterplot),
            "dotplot" | "dot" => Some(ChartType::DotPlot),
            "boxplot" | "box" => Some(ChartType::BoxPlot),
            _ => None,
        }
    }
}

impl fmt::Display for ChartType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ChartType::Bar => "bar",
            ChartType::Line => "line",
            ChartType::Scatterplot => "scatterplot",
            ChartType::DotPlot => "dotplot",
            ChartType::BoxPlot => "boxplot",
            ChartType::Auto => "auto",
        };
        write!(f, "{s}")
    }
}

/// Chart type + summarization: `bar.(x=bin(20), y=agg('sum'))`.
#[derive(Clone, Debug, PartialEq)]
pub struct VizSpec {
    pub chart: ChartType,
    /// `x=bin(w)` — bin the x axis with width `w`.
    pub x_bin: Option<f64>,
    /// `y=agg('sum')` — aggregate for y values; defaults to SUM.
    pub y_agg: Agg,
}

impl Default for VizSpec {
    fn default() -> Self {
        VizSpec {
            chart: ChartType::Auto,
            x_bin: None,
            y_agg: Agg::Sum,
        }
    }
}

impl VizSpec {
    pub fn bar_sum() -> Self {
        VizSpec {
            chart: ChartType::Bar,
            x_bin: None,
            y_agg: Agg::Sum,
        }
    }

    pub fn with_agg(mut self, agg: Agg) -> Self {
        self.y_agg = agg;
        self
    }

    pub fn with_bin(mut self, width: f64) -> Self {
        self.x_bin = Some(width);
        self
    }
}

/// A Viz column cell (may declare a variable over a set of specs,
/// Tables 3.11–3.12).
#[derive(Clone, Debug, PartialEq)]
pub enum VizEntry {
    Fixed(VizSpec),
    Declare { var: String, specs: Vec<VizSpec> },
    Var(String),
}

// ---------------------------------------------------------------------
// Process column
// ---------------------------------------------------------------------

/// Sorting/filtering mechanism (§3.8).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mechanism {
    /// Sort increasing by the objective, keep per the filter.
    ArgMin,
    /// Sort decreasing by the objective, keep per the filter.
    ArgMax,
    /// Keep traversal order; filter only.
    ArgAny,
}

/// `[k = 10]`, `[k = ∞]`, `[t > 0]` — what to keep after ranking.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ProcessFilter {
    /// Top-k (`k = ∞` ⇒ `usize::MAX`: sort only).
    TopK(usize),
    /// Threshold on the objective.
    Threshold { op: ThresholdOp, value: f64 },
    /// No filter: sort everything (same as `k = ∞`).
    None,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ThresholdOp {
    Gt,
    Ge,
    Lt,
    Le,
}

impl ThresholdOp {
    pub fn eval(self, lhs: f64, rhs: f64) -> bool {
        match self {
            ThresholdOp::Gt => lhs > rhs,
            ThresholdOp::Ge => lhs >= rhs,
            ThresholdOp::Lt => lhs < rhs,
            ThresholdOp::Le => lhs <= rhs,
        }
    }
}

/// The objective expression applied per combination of the iterated
/// variables.
#[derive(Clone, Debug, PartialEq)]
pub enum ObjExpr {
    /// `T(f1)`.
    T(String),
    /// `D(f1, f2)`.
    D(String, String),
    /// `-expr` (used for decreasing F(T), e.g. τᵛ_{−T}).
    Neg(Box<ObjExpr>),
    /// `min(v2) D(f1, f2)` — inner aggregation over more variables
    /// (Table 3.20's two-level iteration).
    InnerAgg {
        op: InnerOp,
        vars: Vec<String>,
        expr: Box<ObjExpr>,
    },
    /// A user-defined function over named components (§3.8 "user-defined
    /// functions ... zenvisage treats them as black boxes").
    UserFn { name: String, args: Vec<String> },
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InnerOp {
    Min,
    Max,
    Sum,
    Avg,
}

/// One entry of the Process column.
#[derive(Clone, Debug, PartialEq)]
pub enum ProcessDecl {
    /// `v2, y2 <- argmax(v1, y1)[k=10] D(f1, f2)`.
    Rank {
        outputs: Vec<String>,
        mechanism: Mechanism,
        over: Vec<String>,
        filter: ProcessFilter,
        objective: ObjExpr,
    },
    /// `v2 <- R(10, v1, f1)` — the representative primitive.
    Representative {
        outputs: Vec<String>,
        k: usize,
        over: Vec<String>,
        component: String,
    },
}

impl ProcessDecl {
    pub fn outputs(&self) -> &[String] {
        match self {
            ProcessDecl::Rank { outputs, .. } => outputs,
            ProcessDecl::Representative { outputs, .. } => outputs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_col_constructors() {
        let n = NameCol::output("f1");
        assert!(n.output && !n.user_input && n.derived.is_none());
        let n = NameCol::input("f1");
        assert!(n.user_input);
        let n = NameCol::derived(
            "f3",
            NameExpr::Add(
                Box::new(NameExpr::Ref("f1".into())),
                Box::new(NameExpr::Ref("f2".into())),
            ),
        );
        assert!(n.derived.is_some());
    }

    #[test]
    fn attr_expr_display_and_attrs() {
        assert_eq!(AttrExpr::attr("year").to_string(), "'year'");
        let plus = AttrExpr::Plus(vec!["profit".into(), "sales".into()]);
        assert_eq!(plus.to_string(), "'profit'+'sales'");
        assert_eq!(plus.attrs(), vec!["profit", "sales"]);
    }

    #[test]
    fn viz_spec_builders() {
        let v = VizSpec::bar_sum().with_bin(20.0).with_agg(Agg::Avg);
        assert_eq!(v.chart, ChartType::Bar);
        assert_eq!(v.x_bin, Some(20.0));
        assert_eq!(v.y_agg, Agg::Avg);
        assert_eq!(
            ChartType::parse("scatterplot"),
            Some(ChartType::Scatterplot)
        );
        assert_eq!(ChartType::parse("pie"), None);
    }

    #[test]
    fn threshold_ops() {
        assert!(ThresholdOp::Gt.eval(1.0, 0.0));
        assert!(!ThresholdOp::Gt.eval(0.0, 0.0));
        assert!(ThresholdOp::Ge.eval(0.0, 0.0));
        assert!(ThresholdOp::Lt.eval(-1.0, 0.0));
        assert!(ThresholdOp::Le.eval(0.0, 0.0));
    }
}
