//! Fluent programmatic construction of ZQL queries — the equivalent of
//! the thesis's client library embedding ("users can easily embed ZQL
//! queries into other computation", §3.1) for callers who prefer typed
//! builders over the textual table format.
//!
//! ```
//! use zql::builder::QueryBuilder;
//!
//! let query = QueryBuilder::new()
//!     .row("f1", |r| {
//!         r.x("year")
//!             .y("sales")
//!             .z_over("v1", "product")
//!             .constraint_eq("location", "US")
//!             .argany_threshold_gt("v2", "v1", 0.0, "f1")
//!     })
//!     .output_row("f2", |r| r.x("year").y("profit").z_var("v2"))
//!     .build();
//! assert_eq!(query.rows.len(), 2);
//! ```

use crate::ast::*;
use zv_storage::{Predicate, Value};

/// Builds a [`ZqlQuery`] row by row.
#[derive(Default)]
pub struct QueryBuilder {
    rows: Vec<ZqlRow>,
}

impl QueryBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a (non-output) row.
    pub fn row(mut self, name: &str, f: impl FnOnce(RowBuilder) -> RowBuilder) -> Self {
        self.rows
            .push(f(RowBuilder::new(NameCol::fresh(name))).finish());
        self
    }

    /// Add an output (`*f…`) row.
    pub fn output_row(mut self, name: &str, f: impl FnOnce(RowBuilder) -> RowBuilder) -> Self {
        self.rows
            .push(f(RowBuilder::new(NameCol::output(name))).finish());
        self
    }

    /// Add a user-input (`-f…`) row; supply the sketch at execution time.
    pub fn input_row(mut self, name: &str) -> Self {
        self.rows.push(ZqlRow::named(NameCol::input(name)));
        self
    }

    /// Add a derived row (`f3 = f1 + f2`, `.order`, slices, …).
    pub fn derived_row(
        mut self,
        name: &str,
        output: bool,
        expr: NameExpr,
        f: impl FnOnce(RowBuilder) -> RowBuilder,
    ) -> Self {
        let col = if output {
            NameCol::derived_output(name, expr)
        } else {
            NameCol::derived(name, expr)
        };
        self.rows.push(f(RowBuilder::new(col)).finish());
        self
    }

    pub fn build(self) -> ZqlQuery {
        ZqlQuery::new(self.rows)
    }
}

/// Builds one [`ZqlRow`].
pub struct RowBuilder {
    row: ZqlRow,
}

impl RowBuilder {
    fn new(name: NameCol) -> Self {
        RowBuilder {
            row: ZqlRow::named(name),
        }
    }

    /// Fixed X attribute.
    pub fn x(mut self, attr: &str) -> Self {
        self.row.x = Some(AxisEntry::fixed(attr));
        self
    }

    /// X variable over a set of attributes.
    pub fn x_over(mut self, var: &str, attrs: &[&str]) -> Self {
        self.row.x = Some(AxisEntry::Declare {
            var: var.into(),
            set: AttrSet::List(attrs.iter().map(|a| AttrExpr::attr(*a)).collect()),
        });
        self
    }

    /// Reuse an attribute variable on X.
    pub fn x_var(mut self, var: &str) -> Self {
        self.row.x = Some(AxisEntry::Var(var.into()));
        self
    }

    /// Fixed Y attribute.
    pub fn y(mut self, attr: &str) -> Self {
        self.row.y = Some(AxisEntry::fixed(attr));
        self
    }

    /// Y variable over a set of attributes.
    pub fn y_over(mut self, var: &str, attrs: &[&str]) -> Self {
        self.row.y = Some(AxisEntry::Declare {
            var: var.into(),
            set: AttrSet::List(attrs.iter().map(|a| AttrExpr::attr(*a)).collect()),
        });
        self
    }

    pub fn y_var(mut self, var: &str) -> Self {
        self.row.y = Some(AxisEntry::Var(var.into()));
        self
    }

    /// Fixed slice: `'attr'.'value'`.
    pub fn z_fixed(mut self, attr: &str, value: impl Into<Value>) -> Self {
        self.row.zs.push(ZEntry::Fixed {
            attr: attr.into(),
            value: value.into(),
        });
        self
    }

    /// Z variable over every value of `attr` (`v <- 'attr'.*`).
    pub fn z_over(mut self, var: &str, attr: &str) -> Self {
        self.row.zs.push(ZEntry::DeclareValues {
            var: var.into(),
            set: ZSet::AttrValues {
                attr: Some(attr.into()),
                values: ValueSet::All,
            },
        });
        self
    }

    /// Z variable over listed values.
    pub fn z_in(mut self, var: &str, attr: &str, values: &[&str]) -> Self {
        self.row.zs.push(ZEntry::DeclareValues {
            var: var.into(),
            set: ZSet::AttrValues {
                attr: Some(attr.into()),
                values: ValueSet::List(values.iter().map(|v| Value::str(*v)).collect()),
            },
        });
        self
    }

    /// Reuse a Z variable.
    pub fn z_var(mut self, var: &str) -> Self {
        self.row.zs.push(ZEntry::Var(var.into()));
        self
    }

    /// `var ->` ordering marker for `.order` rows.
    pub fn order_by(mut self, var: &str) -> Self {
        self.row.zs.push(ZEntry::OrderBy(var.into()));
        self
    }

    /// Add an equality constraint.
    pub fn constraint_eq(mut self, attr: &str, value: &str) -> Self {
        let c = ConstraintExpr::Static(Predicate::cat_eq(attr, value));
        self.row.constraints = Some(match self.row.constraints.take() {
            Some(prev) => prev.and(c),
            None => c,
        });
        self
    }

    /// Add an arbitrary static predicate.
    pub fn constraint(mut self, pred: Predicate) -> Self {
        let c = ConstraintExpr::Static(pred);
        self.row.constraints = Some(match self.row.constraints.take() {
            Some(prev) => prev.and(c),
            None => c,
        });
        self
    }

    /// Set the visualization spec.
    pub fn viz(mut self, spec: VizSpec) -> Self {
        self.row.viz = Some(VizEntry::Fixed(spec));
        self
    }

    /// `out <- argmin(over)[k=k] D(a, b)`.
    pub fn argmin_distance(mut self, out: &str, over: &str, k: usize, a: &str, b: &str) -> Self {
        self.row.processes.push(ProcessDecl::Rank {
            outputs: vec![out.into()],
            mechanism: Mechanism::ArgMin,
            over: vec![over.into()],
            filter: ProcessFilter::TopK(k),
            objective: ObjExpr::D(a.into(), b.into()),
        });
        self
    }

    /// `out <- argmax(over)[k=k] D(a, b)`.
    pub fn argmax_distance(mut self, out: &str, over: &str, k: usize, a: &str, b: &str) -> Self {
        self.row.processes.push(ProcessDecl::Rank {
            outputs: vec![out.into()],
            mechanism: Mechanism::ArgMax,
            over: vec![over.into()],
            filter: ProcessFilter::TopK(k),
            objective: ObjExpr::D(a.into(), b.into()),
        });
        self
    }

    /// `out <- argany(over)[t > threshold] T(component)`.
    pub fn argany_threshold_gt(
        mut self,
        out: &str,
        over: &str,
        threshold: f64,
        component: &str,
    ) -> Self {
        self.row.processes.push(ProcessDecl::Rank {
            outputs: vec![out.into()],
            mechanism: Mechanism::ArgAny,
            over: vec![over.into()],
            filter: ProcessFilter::Threshold {
                op: ThresholdOp::Gt,
                value: threshold,
            },
            objective: ObjExpr::T(component.into()),
        });
        self
    }

    /// `out <- argany(over)[t < threshold] T(component)`.
    pub fn argany_threshold_lt(
        mut self,
        out: &str,
        over: &str,
        threshold: f64,
        component: &str,
    ) -> Self {
        self.row.processes.push(ProcessDecl::Rank {
            outputs: vec![out.into()],
            mechanism: Mechanism::ArgAny,
            over: vec![over.into()],
            filter: ProcessFilter::Threshold {
                op: ThresholdOp::Lt,
                value: threshold,
            },
            objective: ObjExpr::T(component.into()),
        });
        self
    }

    /// `out <- R(k, over, component)`.
    pub fn representatives(mut self, out: &str, k: usize, over: &str, component: &str) -> Self {
        self.row.processes.push(ProcessDecl::Representative {
            outputs: vec![out.into()],
            k,
            over: vec![over.into()],
            component: component.into(),
        });
        self
    }

    /// Attach a fully custom process declaration.
    pub fn process(mut self, decl: ProcessDecl) -> Self {
        self.row.processes.push(decl);
        self
    }

    fn finish(self) -> ZqlRow {
        self.row
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    #[test]
    fn builder_matches_parsed_table_2_1() {
        let built = QueryBuilder::new()
            .output_row("f1", |r| {
                r.x("year")
                    .y("sales")
                    .z_over("v1", "product")
                    .constraint_eq("location", "US")
                    .viz(VizSpec::bar_sum())
            })
            .build();
        let parsed = parse_query(
            "name | x | y | z | constraints | viz\n\
             *f1 | 'year' | 'sales' | v1 <- 'product'.* | location='US' | bar.(y=agg('sum'))",
        )
        .unwrap();
        assert_eq!(built, parsed);
    }

    #[test]
    fn builder_matches_parsed_table_2_2() {
        let built = QueryBuilder::new()
            .input_row("f1")
            .row("f2", |r| {
                r.x("year")
                    .y("sales")
                    .z_over("v1", "product")
                    .argmin_distance("v2", "v1", 1, "f1", "f2")
            })
            .output_row("f3", |r| r.x("year").y("sales").z_var("v2"))
            .build();
        let parsed = parse_query(
            "name | x | y | z | process\n\
             -f1 | | | |\n\
             f2 | 'year' | 'sales' | v1 <- 'product'.* | v2 <- argmin(v1)[k=1] D(f1, f2)\n\
             *f3 | 'year' | 'sales' | v2 |",
        )
        .unwrap();
        assert_eq!(built, parsed);
    }

    #[test]
    fn derived_rows_and_ordering() {
        let built = QueryBuilder::new()
            .row("f1", |r| {
                r.x("year")
                    .y("sales")
                    .z_over("v1", "product")
                    .process(ProcessDecl::Rank {
                        outputs: vec!["u1".into()],
                        mechanism: Mechanism::ArgMin,
                        over: vec!["v1".into()],
                        filter: ProcessFilter::TopK(usize::MAX),
                        objective: ObjExpr::T("f1".into()),
                    })
            })
            .derived_row(
                "f2",
                true,
                NameExpr::Order(Box::new(NameExpr::Ref("f1".into()))),
                |r| r.order_by("u1"),
            )
            .build();
        let parsed = parse_query(
            "name | x | y | z | process\n\
             f1 | 'year' | 'sales' | v1 <- 'product'.* | u1 <- argmin(v1)[k=inf] T(f1)\n\
             *f2=f1.order | | | u1 ->",
        )
        .unwrap();
        assert_eq!(built, parsed);
    }

    #[test]
    fn constraints_accumulate_conjunctively() {
        let built = QueryBuilder::new()
            .output_row("f1", |r| {
                r.x("year")
                    .y("sales")
                    .constraint_eq("location", "US")
                    .constraint_eq("product", "chair")
            })
            .build();
        let parsed = parse_query(
            "name | x | y | constraints\n\
             *f1 | 'year' | 'sales' | location='US' AND product='chair'",
        )
        .unwrap();
        assert_eq!(built, parsed);
    }
}
