//! Terminal rendering of visualizations. The thesis front-end maps
//! results through Vega-lite (§6.1); a library has no browser, so the
//! examples render ASCII charts instead (DESIGN.md substitution 5).

use crate::exec::OutputViz;
use zv_analytics::Series;

/// Render a series as a fixed-size ASCII line/area chart.
pub fn ascii_chart(series: &Series, title: &str, width: usize, height: usize) -> String {
    let width = width.max(8);
    let height = height.max(3);
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    if series.is_empty() {
        out.push_str("  (no data)\n");
        return out;
    }
    let ys = series.resample(width);
    let lo = ys.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = ys.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = if hi > lo { hi - lo } else { 1.0 };
    let mut grid = vec![vec![' '; width]; height];
    for (col, &y) in ys.iter().enumerate() {
        let level = (((y - lo) / span) * (height as f64 - 1.0)).round() as usize;
        let row = height - 1 - level.min(height - 1);
        grid[row][col] = '*';
    }
    let label_w = 10;
    for (r, row) in grid.iter().enumerate() {
        let label = if r == 0 {
            format!("{hi:>label_w$.1}")
        } else if r == height - 1 {
            format!("{lo:>label_w$.1}")
        } else {
            " ".repeat(label_w)
        };
        out.push_str(&label);
        out.push_str(" |");
        out.extend(row.iter());
        out.push('\n');
    }
    let x0 = series.points().first().map(|p| p.0).unwrap_or(0.0);
    let x1 = series.points().last().map(|p| p.0).unwrap_or(0.0);
    out.push_str(&format!("{:label_w$} +{}\n", "", "-".repeat(width)));
    out.push_str(&format!(
        "{:label_w$}  {x0:<.0}{:>pad$.0}\n",
        "",
        x1,
        pad = width - 1
    ));
    out
}

/// Render a bar chart of labelled values.
pub fn ascii_bars(items: &[(String, f64)], title: &str, width: usize) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    if items.is_empty() {
        out.push_str("  (no data)\n");
        return out;
    }
    let max = items
        .iter()
        .map(|(_, v)| v.abs())
        .fold(f64::MIN_POSITIVE, f64::max);
    let label_w = items
        .iter()
        .map(|(l, _)| l.len())
        .max()
        .unwrap_or(0)
        .min(24);
    for (label, value) in items {
        let bars = ((value.abs() / max) * width as f64).round() as usize;
        let mut l = label.clone();
        l.truncate(label_w);
        out.push_str(&format!(
            "  {l:<label_w$} |{} {value:.1}\n",
            (if *value >= 0.0 { "#" } else { "-" }).repeat(bars)
        ));
    }
    out
}

/// One-line summary of an output visualization.
pub fn describe(viz: &OutputViz) -> String {
    let label = if viz.label.is_empty() {
        "(all data)".to_string()
    } else {
        viz.label.clone()
    };
    format!(
        "[{}] {} vs {} — {} ({} points)",
        viz.component,
        viz.y,
        viz.x,
        label,
        viz.series.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chart_dimensions_and_extremes() {
        let s = Series::from_ys(&[0.0, 5.0, 10.0]);
        let chart = ascii_chart(&s, "demo", 30, 8);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines[0], "demo");
        assert_eq!(lines.len(), 1 + 8 + 2);
        assert!(
            lines[1].contains("10.0"),
            "max label on top row: {}",
            lines[1]
        );
        assert!(
            lines[8].contains("0.0"),
            "min label on bottom row: {}",
            lines[8]
        );
        // rising line: first column marked near the bottom, last near top
        assert!(lines[8].contains('*'));
        assert!(lines[1].contains('*'));
    }

    #[test]
    fn empty_series_is_handled() {
        let chart = ascii_chart(&Series::default(), "empty", 20, 5);
        assert!(chart.contains("(no data)"));
        assert!(ascii_bars(&[], "none", 10).contains("(no data)"));
    }

    #[test]
    fn bars_scale_to_max() {
        let items = vec![
            ("a".to_string(), 10.0),
            ("b".to_string(), 5.0),
            ("c".to_string(), -2.5),
        ];
        let s = ascii_bars(&items, "t", 20);
        let lines: Vec<&str> = s.lines().collect();
        let count = |l: &str, ch: char| l.chars().filter(|&c| c == ch).count();
        assert_eq!(count(lines[1], '#'), 20);
        assert_eq!(count(lines[2], '#'), 10);
        assert_eq!(count(lines[3], '-'), 5 + 1); // bar plus the sign in -2.5
    }

    #[test]
    fn flat_series_does_not_divide_by_zero() {
        let s = Series::from_ys(&[3.0, 3.0, 3.0]);
        let chart = ascii_chart(&s, "flat", 10, 4);
        assert!(chart.contains('*'));
    }
}
