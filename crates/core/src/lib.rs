//! # zql
//!
//! The ZQL visual query language (thesis Ch. 3) and the zenvisage
//! back-end that executes it (Ch. 5–6): AST, text-table parser,
//! functional primitives, the four-level batching optimizer, and the
//! execution engine.

pub mod ast;
pub mod builder;
pub mod exec;
pub mod lexer;
pub mod parser;
pub mod primitives;
pub mod qtree;
pub mod recommend;
pub mod render;
pub mod tasks;

pub use ast::*;
pub use builder::{QueryBuilder, RowBuilder};
pub use exec::{ExecReport, OptLevel, OutputViz, ZqlEngine, ZqlError, ZqlOutput};
pub use parser::{parse_query, ParseError};
pub use primitives::FunctionRegistry;
pub use qtree::{Node, QueryTree};
pub use recommend::{recommend, recommend_auto, recommend_diverse};
pub use tasks::{outlier_search, representative_search, similarity_search, TaskSpec};
// Lifecycle handles are part of the public execution API (see
// `ZqlEngine::execute_ctx`); re-exported so callers don't need a direct
// zv-storage dependency.
pub use zv_storage::{CancelReason, QueryCtx, QueryCtxStats};
