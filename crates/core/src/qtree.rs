//! The query tree of thesis §5.2 / Figure 5.1: "All axis variables, name
//! variables, and tasks of a ZQL query are nodes in its query tree"
//! (children point to parents). The inter-task optimizer's coloring
//! algorithm batches the SQL queries of every name-variable node whose
//! children are all colored.

use crate::ast::*;
use std::collections::HashMap;
use std::fmt;

/// A node of the query tree.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Node {
    /// An axis variable (`v1`, `x2`, …).
    Var(String),
    /// A name variable / visual component (`f1`, …).
    Name(String),
    /// The i-th process of row r, displayed as `t<r+1>`.
    Task { row: usize, index: usize },
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Node::Var(v) => write!(f, "{v}"),
            Node::Name(n) => write!(f, "{n}"),
            Node::Task { row, index } => {
                if *index == 0 {
                    write!(f, "t{}", row + 1)
                } else {
                    write!(f, "t{}.{}", row + 1, index + 1)
                }
            }
        }
    }
}

/// The tree: `parents[child]` = nodes the child points to (Figure 5.1's
/// arrows go child → parent).
#[derive(Debug, Default)]
pub struct QueryTree {
    pub nodes: Vec<Node>,
    pub parents: HashMap<Node, Vec<Node>>,
}

impl QueryTree {
    /// Build the tree for a query.
    pub fn build(query: &ZqlQuery) -> QueryTree {
        let mut tree = QueryTree::default();
        // Which task produced each variable (for declaration edges).
        let mut producer: HashMap<String, Node> = HashMap::new();

        for (r, row) in query.rows.iter().enumerate() {
            let name_node = Node::Name(row.name.name.clone());
            tree.add_node(name_node.clone());

            // (variable, variables used in its declaration)
            let mut row_vars: Vec<(String, Vec<String>)> = Vec::new();
            collect_axis_vars(&row.x, &mut row_vars);
            collect_axis_vars(&row.y, &mut row_vars);
            for z in &row.zs {
                collect_z_vars(z, &mut row_vars);
            }
            if let Some(c) = &row.constraints {
                collect_constraint_vars(c, &mut row_vars);
            }
            match &row.viz {
                Some(VizEntry::Var(v)) => row_vars.push((v.clone(), Vec::new())),
                Some(VizEntry::Declare { var, .. }) => row_vars.push((var.clone(), Vec::new())),
                _ => {}
            }

            // "Name variables become the parents of the axis variables in
            // its visual component" — child var → parent name.
            for (v, deps) in &row_vars {
                let var_node = Node::Var(v.clone());
                tree.add_node(var_node.clone());
                tree.add_edge(var_node.clone(), name_node.clone());
                // "Axis variables become the parents over the nodes which
                // are used in its declaration" — either other variables
                // (`v4 <- (v2.range | v3.range)`) or the producing task.
                for dep in deps {
                    let dep_node = Node::Var(dep.clone());
                    tree.add_edge(dep_node.clone(), var_node.clone());
                    if let Some(task) = producer.get(dep) {
                        tree.add_edge(task.clone(), dep_node);
                    }
                }
                if let Some(task) = producer.get(v) {
                    tree.add_edge(task.clone(), var_node);
                }
            }

            for (i, p) in row.processes.iter().enumerate() {
                let task_node = Node::Task { row: r, index: i };
                tree.add_node(task_node.clone());
                // "Tasks become the parents of the visualizations it
                // operates over": every component the objective mentions.
                for comp in process_components(p) {
                    tree.add_edge(Node::Name(comp), task_node.clone());
                }
                for out in p.outputs() {
                    producer.insert(out.clone(), task_node.clone());
                }
            }
        }
        tree
    }

    fn add_node(&mut self, n: Node) {
        if !self.nodes.contains(&n) {
            self.nodes.push(n);
        }
    }

    fn add_edge(&mut self, child: Node, parent: Node) {
        self.add_node(child.clone());
        self.add_node(parent.clone());
        let e = self.parents.entry(child).or_default();
        if !e.contains(&parent) {
            e.push(parent);
        }
    }

    /// Children of a node (nodes pointing to it).
    pub fn children(&self, node: &Node) -> Vec<&Node> {
        self.parents
            .iter()
            .filter(|(_, ps)| ps.contains(node))
            .map(|(c, _)| c)
            .collect()
    }

    /// Does this name-variable node transitively depend on any task?
    /// (If not, its SQL can be batched into the very first request —
    /// the inter-task optimization.)
    pub fn depends_on_task(&self, node: &Node) -> bool {
        let mut stack: Vec<&Node> = self.children(node);
        let mut seen: Vec<&Node> = Vec::new();
        while let Some(n) = stack.pop() {
            if seen.contains(&n) {
                continue;
            }
            seen.push(n);
            if matches!(n, Node::Task { .. }) {
                return true;
            }
            stack.extend(self.children(n));
        }
        false
    }

    /// The coloring schedule of §5.2: waves of name nodes whose children
    /// are all colored; tasks color once their children are colored.
    pub fn batch_waves(&self) -> Vec<Vec<Node>> {
        let mut colored: Vec<Node> = Vec::new();
        // leaves: nodes with no children
        for n in &self.nodes {
            if self.children(n).is_empty() && !matches!(n, Node::Name(_)) {
                colored.push(n.clone());
            }
        }
        let mut waves = Vec::new();
        loop {
            let wave: Vec<Node> = self
                .nodes
                .iter()
                .filter(|n| matches!(n, Node::Name(_)))
                .filter(|n| !colored.contains(n))
                .filter(|n| self.children(n).iter().all(|c| colored.contains(c)))
                .cloned()
                .collect();
            if wave.is_empty() {
                break;
            }
            colored.extend(wave.iter().cloned());
            waves.push(wave);
            // propagate: color vars and tasks whose children are colored
            loop {
                let ready: Vec<Node> = self
                    .nodes
                    .iter()
                    .filter(|n| !matches!(n, Node::Name(_)))
                    .filter(|n| !colored.contains(n))
                    .filter(|n| self.children(n).iter().all(|c| colored.contains(c)))
                    .cloned()
                    .collect();
                if ready.is_empty() {
                    break;
                }
                colored.extend(ready);
            }
        }
        waves
    }
}

fn collect_axis_vars(entry: &Option<AxisEntry>, out: &mut Vec<(String, Vec<String>)>) {
    match entry {
        Some(AxisEntry::Declare { var, set }) => {
            let mut deps = Vec::new();
            collect_attr_set_vars(set, &mut deps);
            out.push((var.clone(), deps));
        }
        Some(AxisEntry::Var(var)) | Some(AxisEntry::BindDerived { var }) => {
            out.push((var.clone(), Vec::new()))
        }
        _ => {}
    }
}

fn collect_attr_set_vars(set: &AttrSet, out: &mut Vec<String>) {
    match set {
        AttrSet::RangeOf(v) => out.push(v.clone()),
        AttrSet::Union(a, b) | AttrSet::Diff(a, b) | AttrSet::Intersect(a, b) => {
            collect_attr_set_vars(a, out);
            collect_attr_set_vars(b, out);
        }
        _ => {}
    }
}

fn collect_z_vars(entry: &ZEntry, out: &mut Vec<(String, Vec<String>)>) {
    match entry {
        ZEntry::DeclareValues { var, set } => {
            let mut deps = Vec::new();
            collect_zset_vars(set, &mut deps);
            out.push((var.clone(), deps));
        }
        ZEntry::DeclarePairs {
            attr_var,
            val_var,
            set,
        } => {
            let mut deps = Vec::new();
            collect_zset_vars(set, &mut deps);
            out.push((attr_var.clone(), deps.clone()));
            out.push((val_var.clone(), deps));
        }
        ZEntry::Var(v) | ZEntry::OrderBy(v) => out.push((v.clone(), Vec::new())),
        ZEntry::BindDerived {
            attr_var, val_var, ..
        } => {
            if let Some(a) = attr_var {
                out.push((a.clone(), Vec::new()));
            }
            out.push((val_var.clone(), Vec::new()));
        }
        ZEntry::None | ZEntry::Fixed { .. } => {}
    }
}

fn collect_zset_vars(set: &ZSet, out: &mut Vec<String>) {
    match set {
        ZSet::AttrValues { values, .. } => collect_value_set_vars(values, out),
        ZSet::CrossAttrs { values, .. } => collect_value_set_vars(values, out),
        ZSet::Union(a, b) => {
            collect_zset_vars(a, out);
            collect_zset_vars(b, out);
        }
    }
}

fn collect_value_set_vars(set: &ValueSet, out: &mut Vec<String>) {
    match set {
        ValueSet::RangeOf(v) => out.push(v.clone()),
        ValueSet::Union(a, b) | ValueSet::Diff(a, b) | ValueSet::Intersect(a, b) => {
            collect_value_set_vars(a, out);
            collect_value_set_vars(b, out);
        }
        _ => {}
    }
}

fn collect_constraint_vars(c: &ConstraintExpr, out: &mut Vec<(String, Vec<String>)>) {
    match c {
        ConstraintExpr::InRange { var, .. } => out.push((var.clone(), Vec::new())),
        ConstraintExpr::And(a, b) => {
            collect_constraint_vars(a, out);
            collect_constraint_vars(b, out);
        }
        ConstraintExpr::Static(_) => {}
    }
}

fn process_components(p: &ProcessDecl) -> Vec<String> {
    match p {
        ProcessDecl::Rank { objective, .. } => {
            let mut out = Vec::new();
            collect_obj_components(objective, &mut out);
            out
        }
        ProcessDecl::Representative { component, .. } => vec![component.clone()],
    }
}

fn collect_obj_components(o: &ObjExpr, out: &mut Vec<String>) {
    match o {
        ObjExpr::T(f) => out.push(f.clone()),
        ObjExpr::D(a, b) => {
            out.push(a.clone());
            out.push(b.clone());
        }
        ObjExpr::Neg(i) => collect_obj_components(i, out),
        ObjExpr::InnerAgg { expr, .. } => collect_obj_components(expr, out),
        ObjExpr::UserFn { args, .. } => out.extend(args.iter().cloned()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    /// Thesis Table 5.1 → Figure 5.1.
    fn table_5_1() -> ZqlQuery {
        parse_query(
            "name | x | y | z | constraints | process\n\
             f1 | 'year' | 'sales' | v1 <- 'product'.{'chair','desk'} | location='US' | v2 <- argany(v1)[t > 0] T(f1)\n\
             f2 | 'year' | 'sales' | v1 | location='UK' | v3 <- argany(v1)[t < 0] T(f2)\n\
             *f3 | 'year' | 'profit' | v4 <- (v2.range | v3.range) | |",
        )
        .unwrap()
    }

    #[test]
    fn figure_5_1_structure() {
        let tree = QueryTree::build(&table_5_1());
        let name = |s: &str| Node::Name(s.into());
        let var = |s: &str| Node::Var(s.into());
        let t1 = Node::Task { row: 0, index: 0 };
        let t2 = Node::Task { row: 1, index: 0 };
        // v1 → f1, v1 → f2 (v1 feeds both components)
        assert!(tree.parents[&var("v1")].contains(&name("f1")));
        assert!(tree.parents[&var("v1")].contains(&name("f2")));
        // f1 → t1, f2 → t2 (tasks parent the components they read)
        assert!(tree.parents[&name("f1")].contains(&t1));
        assert!(tree.parents[&name("f2")].contains(&t2));
        // t1 → v2, t2 → v3 (tasks produce the vars), v2/v3 → v4 … → f3
        assert!(tree.parents[&t1].contains(&var("v2")));
        assert!(tree.parents[&t2].contains(&var("v3")));
        assert!(tree.parents[&var("v2")].contains(&var("v4")));
        assert!(tree.parents[&var("v3")].contains(&var("v4")));
        assert!(tree.parents[&var("v4")].contains(&name("f3")));
    }

    #[test]
    fn f2_is_independent_of_t1() {
        // "the visual component for f2 is independent of t1" (§5.2)
        let tree = QueryTree::build(&table_5_1());
        assert!(!tree.depends_on_task(&Node::Name("f1".into())));
        assert!(!tree.depends_on_task(&Node::Name("f2".into())));
        assert!(tree.depends_on_task(&Node::Name("f3".into())));
    }

    #[test]
    fn batch_waves_group_f1_f2_then_f3() {
        let tree = QueryTree::build(&table_5_1());
        let waves = tree.batch_waves();
        assert_eq!(waves.len(), 2);
        assert!(waves[0].contains(&Node::Name("f1".into())));
        assert!(waves[0].contains(&Node::Name("f2".into())));
        assert_eq!(waves[1], vec![Node::Name("f3".into())]);
    }

    #[test]
    fn independent_rows_form_one_wave() {
        let q = parse_query(
            "name | x | y | z\n\
             *f1 | 'year' | 'sales' | v1 <- 'product'.*\n\
             *f2 | 'year' | 'profit' | v2 <- 'location'.*",
        )
        .unwrap();
        let tree = QueryTree::build(&q);
        let waves = tree.batch_waves();
        assert_eq!(waves.len(), 1);
        assert_eq!(waves[0].len(), 2);
    }
}
