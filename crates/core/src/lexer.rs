//! Tokenizer for ZQL cell expressions.

use std::fmt;

/// One lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    /// Bare identifier: `v1`, `f1`, `argmin`, `AND`, `bar`, `M`, …
    Ident(String),
    /// `'year'` — quoted attribute or string value.
    Quoted(String),
    /// Numeric literal.
    Number(f64),
    Arrow,      // <-
    RArrow,     // ->
    Star,       // *
    Backslash,  // \
    Pipe,       // |
    Amp,        // &
    LBrace,     // {
    RBrace,     // }
    LParen,     // (
    RParen,     // )
    LBracket,   // [
    RBracket,   // ]
    Comma,      // ,
    Dot,        // .
    Eq,         // =
    Neq,        // <> or !=
    Lt,         // <
    Gt,         // >
    Le,         // <=
    Ge,         // >=
    Plus,       // +
    Minus,      // -
    Caret,      // ^
    Colon,      // :
    Underscore, // _
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Quoted(s) => write!(f, "'{s}'"),
            Tok::Number(n) => write!(f, "{n}"),
            Tok::Arrow => write!(f, "<-"),
            Tok::RArrow => write!(f, "->"),
            Tok::Star => write!(f, "*"),
            Tok::Backslash => write!(f, "\\"),
            Tok::Pipe => write!(f, "|"),
            Tok::Amp => write!(f, "&"),
            Tok::LBrace => write!(f, "{{"),
            Tok::RBrace => write!(f, "}}"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::LBracket => write!(f, "["),
            Tok::RBracket => write!(f, "]"),
            Tok::Comma => write!(f, ","),
            Tok::Dot => write!(f, "."),
            Tok::Eq => write!(f, "="),
            Tok::Neq => write!(f, "<>"),
            Tok::Lt => write!(f, "<"),
            Tok::Gt => write!(f, ">"),
            Tok::Le => write!(f, "<="),
            Tok::Ge => write!(f, ">="),
            Tok::Plus => write!(f, "+"),
            Tok::Minus => write!(f, "-"),
            Tok::Caret => write!(f, "^"),
            Tok::Colon => write!(f, ":"),
            Tok::Underscore => write!(f, "_"),
        }
    }
}

/// Tokenize one cell. `%` inside quoted strings is preserved (LIKE
/// patterns); identifiers may contain `_` (so a lone `_` is the special
/// derived-binding token, but `my_fn` is an identifier).
pub fn tokenize(input: &str) -> Result<Vec<Tok>, String> {
    let chars: Vec<char> = input.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '\'' => {
                let start = i + 1;
                let mut j = start;
                while j < chars.len() && chars[j] != '\'' {
                    j += 1;
                }
                if j >= chars.len() {
                    return Err(format!("unterminated string starting at {start}"));
                }
                toks.push(Tok::Quoted(chars[start..j].iter().collect()));
                i = j + 1;
            }
            '"' => {
                let start = i + 1;
                let mut j = start;
                while j < chars.len() && chars[j] != '"' {
                    j += 1;
                }
                if j >= chars.len() {
                    return Err(format!("unterminated string starting at {start}"));
                }
                toks.push(Tok::Quoted(chars[start..j].iter().collect()));
                i = j + 1;
            }
            '<' => {
                if chars.get(i + 1) == Some(&'-') {
                    toks.push(Tok::Arrow);
                    i += 2;
                } else if chars.get(i + 1) == Some(&'=') {
                    toks.push(Tok::Le);
                    i += 2;
                } else if chars.get(i + 1) == Some(&'>') {
                    toks.push(Tok::Neq);
                    i += 2;
                } else {
                    toks.push(Tok::Lt);
                    i += 1;
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    toks.push(Tok::Ge);
                    i += 2;
                } else {
                    toks.push(Tok::Gt);
                    i += 1;
                }
            }
            '!' => {
                if chars.get(i + 1) == Some(&'=') {
                    toks.push(Tok::Neq);
                    i += 2;
                } else {
                    return Err("unexpected '!'".into());
                }
            }
            '-' => {
                if chars.get(i + 1) == Some(&'>') {
                    toks.push(Tok::RArrow);
                    i += 2;
                } else {
                    toks.push(Tok::Minus);
                    i += 1;
                }
            }
            '*' => {
                toks.push(Tok::Star);
                i += 1;
            }
            '\\' => {
                toks.push(Tok::Backslash);
                i += 1;
            }
            '|' => {
                toks.push(Tok::Pipe);
                i += 1;
            }
            '&' => {
                toks.push(Tok::Amp);
                i += 1;
            }
            '{' => {
                toks.push(Tok::LBrace);
                i += 1;
            }
            '}' => {
                toks.push(Tok::RBrace);
                i += 1;
            }
            '(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            '[' => {
                toks.push(Tok::LBracket);
                i += 1;
            }
            ']' => {
                toks.push(Tok::RBracket);
                i += 1;
            }
            ',' => {
                toks.push(Tok::Comma);
                i += 1;
            }
            '.' => {
                toks.push(Tok::Dot);
                i += 1;
            }
            '=' => {
                toks.push(Tok::Eq);
                i += 1;
            }
            '+' => {
                toks.push(Tok::Plus);
                i += 1;
            }
            '^' => {
                toks.push(Tok::Caret);
                i += 1;
            }
            ':' => {
                toks.push(Tok::Colon);
                i += 1;
            }
            '0'..='9' => {
                let start = i;
                let mut j = i;
                let mut seen_dot = false;
                while j < chars.len()
                    && (chars[j].is_ascii_digit() || (chars[j] == '.' && !seen_dot))
                {
                    // A '.' only belongs to the number if a digit follows
                    // (so `f1[2].range`-style expressions lex cleanly).
                    if chars[j] == '.' {
                        if j + 1 < chars.len() && chars[j + 1].is_ascii_digit() {
                            seen_dot = true;
                        } else {
                            break;
                        }
                    }
                    j += 1;
                }
                let text: String = chars[start..j].iter().collect();
                let n = text
                    .parse::<f64>()
                    .map_err(|e| format!("bad number {text}: {e}"))?;
                toks.push(Tok::Number(n));
                i = j;
            }
            '_' => {
                // lone underscore = derived binding; `_foo` = identifier
                if chars.get(i + 1).map(|c| c.is_alphanumeric() || *c == '_') == Some(true) {
                    let (ident, j) = lex_ident(&chars, i);
                    toks.push(Tok::Ident(ident));
                    i = j;
                } else {
                    toks.push(Tok::Underscore);
                    i += 1;
                }
            }
            c if c.is_alphabetic() => {
                let (ident, j) = lex_ident(&chars, i);
                toks.push(Tok::Ident(ident));
                i = j;
            }
            other => return Err(format!("unexpected character '{other}'")),
        }
    }
    Ok(toks)
}

fn lex_ident(chars: &[char], start: usize) -> (String, usize) {
    let mut j = start;
    while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
        j += 1;
    }
    (chars[start..j].iter().collect(), j)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokens() {
        let toks = tokenize("v1 <- 'product'.*").unwrap();
        assert_eq!(
            toks,
            vec![
                Tok::Ident("v1".into()),
                Tok::Arrow,
                Tok::Quoted("product".into()),
                Tok::Dot,
                Tok::Star,
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            tokenize("< <= <> != > >= = <-").unwrap(),
            vec![
                Tok::Lt,
                Tok::Le,
                Tok::Neq,
                Tok::Neq,
                Tok::Gt,
                Tok::Ge,
                Tok::Eq,
                Tok::Arrow
            ]
        );
    }

    #[test]
    fn process_expression() {
        let toks = tokenize("v2 <- argmin(v1)[k=10] D(f1, f2)").unwrap();
        assert!(toks.contains(&Tok::Ident("argmin".into())));
        assert!(toks.contains(&Tok::Number(10.0)));
        assert!(toks.contains(&Tok::Ident("D".into())));
    }

    #[test]
    fn numbers_and_index_expressions() {
        assert_eq!(tokenize("3.5").unwrap(), vec![Tok::Number(3.5)]);
        // 2.range must lex as Number(2), Dot, Ident(range)
        assert_eq!(
            tokenize("2.range").unwrap(),
            vec![Tok::Number(2.0), Tok::Dot, Tok::Ident("range".into())]
        );
        assert_eq!(
            tokenize("f1[2:5]").unwrap(),
            vec![
                Tok::Ident("f1".into()),
                Tok::LBracket,
                Tok::Number(2.0),
                Tok::Colon,
                Tok::Number(5.0),
                Tok::RBracket,
            ]
        );
    }

    #[test]
    fn underscore_handling() {
        assert_eq!(tokenize("_").unwrap(), vec![Tok::Underscore]);
        assert_eq!(tokenize("my_fn").unwrap(), vec![Tok::Ident("my_fn".into())]);
        assert_eq!(
            tokenize("'product'._").unwrap(),
            vec![Tok::Quoted("product".into()), Tok::Dot, Tok::Underscore]
        );
    }

    #[test]
    fn arrows_vs_minus() {
        assert_eq!(
            tokenize("u1 ->").unwrap(),
            vec![Tok::Ident("u1".into()), Tok::RArrow]
        );
        assert_eq!(
            tokenize("f1-f2").unwrap(),
            vec![Tok::Ident("f1".into()), Tok::Minus, Tok::Ident("f2".into())]
        );
        assert_eq!(
            tokenize("-T").unwrap(),
            vec![Tok::Minus, Tok::Ident("T".into())]
        );
    }

    #[test]
    fn double_quoted_strings_and_like() {
        assert_eq!(tokenize("\"06\"").unwrap(), vec![Tok::Quoted("06".into())]);
        let toks = tokenize("zip LIKE '02%'").unwrap();
        assert_eq!(toks[2], Tok::Quoted("02%".into()));
    }

    #[test]
    fn errors() {
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("@").is_err());
        assert!(tokenize("!x").is_err());
    }
}
