//! The recommendation service (thesis §6.2): "we run the k-means
//! clustering algorithm to find a set of k diverse clusters in the data.
//! By default, zenvisage sets k as 5."

use crate::exec::{OutputViz, ZqlEngine, ZqlError};
use crate::tasks::{representative_search, TaskSpec};

/// Default number of diverse trends recommended.
pub const DEFAULT_K: usize = 5;

/// Diverse-trend recommendations for the axes the user is viewing: the
/// `k` most representative (mutually diverse) slices of `z`.
pub fn recommend_diverse(
    engine: &ZqlEngine,
    spec: &TaskSpec,
    k: usize,
) -> Result<Vec<OutputViz>, ZqlError> {
    Ok(representative_search(engine, spec, k)?.visualizations)
}

/// Recommendations with the paper's default k = 5.
pub fn recommend(engine: &ZqlEngine, spec: &TaskSpec) -> Result<Vec<OutputViz>, ZqlError> {
    recommend_diverse(engine, spec, DEFAULT_K)
}

/// Recommendations with the cluster count chosen from the data itself —
/// the thesis's §10.1 future-work item ("automatically figure out the
/// right number of representative trends based on data
/// characteristics"): fetch every slice once, pick k by silhouette over
/// shape embeddings, then return that many diverse representatives.
pub fn recommend_auto(
    engine: &ZqlEngine,
    spec: &TaskSpec,
    k_max: usize,
) -> Result<Vec<OutputViz>, ZqlError> {
    use zv_analytics::{auto_k, embed_normalized};
    // One pass to materialize all candidate visualizations.
    let all = crate::tasks::representative_search(engine, spec, usize::MAX)?;
    let series: Vec<zv_analytics::Series> = all
        .visualizations
        .iter()
        .map(|v| v.series.clone())
        .collect();
    let k = auto_k(&embed_normalized(&series), k_max, 0);
    recommend_diverse(engine, spec, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use zv_datagen::sales::{self, SalesConfig};
    use zv_storage::BitmapDb;

    #[test]
    fn auto_recommendation_finds_planted_trend_count() {
        // The sales generator plants a handful of trend shapes; auto-k
        // should land somewhere sensible (more than one, at most k_max)
        // and return that many distinct slices.
        let table = sales::generate(&SalesConfig {
            rows: 20_000,
            products: 12,
            ..Default::default()
        });
        let eng = ZqlEngine::new(Arc::new(BitmapDb::new(table)));
        let recs = recommend_auto(&eng, &TaskSpec::new("year", "sales", "product"), 6).unwrap();
        assert!(
            (2..=6).contains(&recs.len()),
            "got {} recommendations",
            recs.len()
        );
        let mut labels: Vec<&str> = recs.iter().map(|v| v.label.as_str()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), recs.len(), "recommendations must be distinct");
    }

    #[test]
    fn recommends_k_diverse_slices() {
        let table = sales::generate(&SalesConfig {
            rows: 20_000,
            products: 12,
            ..Default::default()
        });
        let eng = ZqlEngine::new(Arc::new(BitmapDb::new(table)));
        let recs = recommend(&eng, &TaskSpec::new("year", "sales", "product")).unwrap();
        assert_eq!(recs.len(), DEFAULT_K);
        let mut labels: Vec<&str> = recs.iter().map(|v| v.label.as_str()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), DEFAULT_K);
    }
}
