//! The functional primitives `T`, `D`, `R` (thesis §3.8) plus
//! user-defined functions and named sets. "zenvisage will use default
//! settings for each of these functions, but the user is free to specify
//! their own variants."

use std::collections::HashMap;
use zv_analytics::{representative, series_distance, trend, DistanceKind, Normalize, Series};
use zv_storage::Value;

/// A user-defined objective over one or more visualizations.
pub type UserFn = Box<dyn Fn(&[Series]) -> f64 + Send + Sync>;
/// The distance primitive `D`.
pub type DistanceFn = Box<dyn Fn(&Series, &Series) -> f64 + Send + Sync>;
/// The representative primitive `R` (returns member indices).
pub type RepresentativeFn = Box<dyn Fn(&[Series], usize) -> Vec<usize> + Send + Sync>;

/// The engine's function and set environment.
pub struct FunctionRegistry {
    t: Box<dyn Fn(&Series) -> f64 + Send + Sync>,
    d: DistanceFn,
    r: RepresentativeFn,
    user: HashMap<String, UserFn>,
    /// Named attribute sets (`M`, `C`, … in the thesis's examples).
    attr_sets: HashMap<String, Vec<String>>,
    /// Named value sets (`P`, `OA`, `DA`, …).
    value_sets: HashMap<String, Vec<Value>>,
}

impl Default for FunctionRegistry {
    fn default() -> Self {
        FunctionRegistry {
            t: Box::new(trend),
            d: Box::new(|a, b| series_distance(DistanceKind::Euclidean, Normalize::ZScore, a, b)),
            r: Box::new(|series, k| {
                representative::representatives(&representative::embed(series), k, 0)
            }),
            user: HashMap::new(),
            attr_sets: HashMap::new(),
            value_sets: HashMap::new(),
        }
    }
}

impl FunctionRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Replace the trend primitive `T`.
    pub fn set_t(&mut self, f: impl Fn(&Series) -> f64 + Send + Sync + 'static) {
        self.t = Box::new(f);
    }

    /// Replace the distance primitive `D`.
    pub fn set_d(&mut self, f: impl Fn(&Series, &Series) -> f64 + Send + Sync + 'static) {
        self.d = Box::new(f);
    }

    /// Use one of the built-in distance metrics for `D`.
    pub fn set_distance_kind(&mut self, kind: DistanceKind, norm: Normalize) {
        self.d = Box::new(move |a, b| series_distance(kind, norm, a, b));
    }

    /// Replace the representative primitive `R` (returns member indices).
    pub fn set_r(&mut self, f: impl Fn(&[Series], usize) -> Vec<usize> + Send + Sync + 'static) {
        self.r = Box::new(f);
    }

    /// Register a user-defined function callable from the Process column.
    pub fn register_fn(
        &mut self,
        name: impl Into<String>,
        f: impl Fn(&[Series]) -> f64 + Send + Sync + 'static,
    ) {
        self.user.insert(name.into(), Box::new(f));
    }

    /// Register a named attribute set (usable in X/Y columns).
    pub fn register_attr_set(&mut self, name: impl Into<String>, attrs: Vec<String>) {
        self.attr_sets.insert(name.into(), attrs);
    }

    /// Register a named value set (usable in Z columns).
    pub fn register_value_set(&mut self, name: impl Into<String>, values: Vec<Value>) {
        self.value_sets.insert(name.into(), values);
    }

    pub fn t(&self, s: &Series) -> f64 {
        (self.t)(s)
    }

    pub fn d(&self, a: &Series, b: &Series) -> f64 {
        (self.d)(a, b)
    }

    pub fn r(&self, series: &[Series], k: usize) -> Vec<usize> {
        (self.r)(series, k)
    }

    pub fn call_user(&self, name: &str, args: &[Series]) -> Option<f64> {
        self.user.get(name).map(|f| f(args))
    }

    pub fn attr_set(&self, name: &str) -> Option<&[String]> {
        self.attr_sets.get(name).map(Vec::as_slice)
    }

    pub fn value_set(&self, name: &str) -> Option<&[Value]> {
        self.value_sets.get(name).map(Vec::as_slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let reg = FunctionRegistry::new();
        let up = Series::from_ys(&[1.0, 2.0, 3.0]);
        let down = Series::from_ys(&[3.0, 2.0, 1.0]);
        assert!(reg.t(&up) > 0.0);
        assert!(reg.d(&up, &up).abs() < 1e-9);
        assert!(reg.d(&up, &down) > 0.0);
        let reps = reg.r(&[up.clone(), up.clone(), down], 2);
        assert_eq!(reps.len(), 2);
    }

    #[test]
    fn overrides_and_user_functions() {
        let mut reg = FunctionRegistry::new();
        reg.set_t(|_| 42.0);
        assert_eq!(reg.t(&Series::from_ys(&[0.0])), 42.0);
        reg.register_fn("count_points", |args| args[0].len() as f64);
        let s = Series::from_ys(&[1.0, 2.0, 3.0]);
        assert_eq!(reg.call_user("count_points", &[s]), Some(3.0));
        assert_eq!(reg.call_user("missing", &[]), None);
    }

    #[test]
    fn named_sets() {
        let mut reg = FunctionRegistry::new();
        reg.register_attr_set("M", vec!["sales".into(), "profit".into()]);
        reg.register_value_set("P", vec![Value::str("chair"), Value::str("desk")]);
        assert_eq!(reg.attr_set("M").unwrap().len(), 2);
        assert_eq!(reg.value_set("P").unwrap().len(), 2);
        assert!(reg.attr_set("X").is_none());
    }

    #[test]
    fn dtw_distance_override() {
        let mut reg = FunctionRegistry::new();
        reg.set_distance_kind(DistanceKind::Dtw { window: None }, Normalize::ZScore);
        let a = Series::from_ys(&[0.0, 1.0, 0.0, -1.0]);
        assert!(reg.d(&a, &a).abs() < 1e-9);
    }
}
