//! The eleven visual exploration algebra operators (thesis §4.4,
//! Table 4.2). Unary: σᵛ τᵛ µᵛ δᵛ ζᵛ; binary: ∪ᵛ \ᵛ ∩ᵛ βᵛ φᵛ ηᵛ.
//!
//! The exploration functions `T`, `D`, `R` are supplied via
//! [`Primitives`] — "these three functions are flexible and configurable
//! and up to the user to define (or left as system defaults)".

use crate::visual::{AttrFilter, VisualGroup, VisualSource, VisualUniverse};
use std::fmt;
use zv_analytics::{representative, series_distance, trend, DistanceKind, Normalize, Series};
use zv_storage::{StorageError, Value};

/// Errors from algebra evaluation.
#[derive(Debug)]
pub enum VeaError {
    Storage(StorageError),
    /// The thesis leaves certain applications undefined (e.g. φᵛ when a
    /// match key selects a non-singleton group).
    Undefined(String),
}

impl fmt::Display for VeaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VeaError::Storage(e) => write!(f, "storage error: {e}"),
            VeaError::Undefined(m) => write!(f, "undefined operation: {m}"),
        }
    }
}

impl std::error::Error for VeaError {}

impl From<StorageError> for VeaError {
    fn from(e: StorageError) -> Self {
        VeaError::Storage(e)
    }
}

// ---------------------------------------------------------------------
// Exploration functions
// ---------------------------------------------------------------------

/// `T : V → ℝ` — trend score of one visualization.
pub type TrendFn = Box<dyn Fn(&Series) -> f64 + Send + Sync>;
/// `D : V × V → ℝ` — distance between two visualizations.
pub type DistanceFn = Box<dyn Fn(&Series, &Series) -> f64 + Send + Sync>;
/// `R : Vⁿ → indices` — pick `k` representative members.
pub type RepresentativeFn = Box<dyn Fn(&[Series], usize) -> Vec<usize> + Send + Sync>;

/// The `T`, `D`, `R` exploration functions (§4.3).
pub struct Primitives {
    pub t: TrendFn,
    pub d: DistanceFn,
    pub r: RepresentativeFn,
}

impl Default for Primitives {
    fn default() -> Self {
        Primitives {
            t: Box::new(trend),
            d: Box::new(|a, b| series_distance(DistanceKind::Euclidean, Normalize::ZScore, a, b)),
            r: Box::new(|series, k| {
                representative::representatives(&representative::embed(series), k, 0)
            }),
        }
    }
}

// ---------------------------------------------------------------------
// Selection conditions θ
// ---------------------------------------------------------------------

/// The left side of a θ comparison: the X axis, the Y axis, or the j-th
/// data-source attribute.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Term {
    X,
    Y,
    Attr(usize),
}

/// A selection condition over visual sources. Only `=` / `≠` are allowed
/// (§4.4: "only the binary comparison operators = and ≠").
#[derive(Clone, Debug)]
pub enum Theta {
    True,
    /// `X = 'attr'` / `Y = 'attr'`.
    AxisEq(Term, String),
    AxisNeq(Term, String),
    /// `Aⱼ = value` (or `= ∗` when `None`).
    FilterEq(usize, Option<Value>),
    FilterNeq(usize, Option<Value>),
    And(Box<Theta>, Box<Theta>),
    Or(Box<Theta>, Box<Theta>),
}

impl Theta {
    pub fn and(self, other: Theta) -> Theta {
        Theta::And(Box::new(self), Box::new(other))
    }

    pub fn or(self, other: Theta) -> Theta {
        Theta::Or(Box::new(self), Box::new(other))
    }

    pub fn eval(&self, vs: &VisualSource) -> bool {
        match self {
            Theta::True => true,
            Theta::AxisEq(term, name) => match term {
                Term::X => vs.x == *name,
                Term::Y => vs.y == *name,
                Term::Attr(_) => false,
            },
            Theta::AxisNeq(term, name) => match term {
                Term::X => vs.x != *name,
                Term::Y => vs.y != *name,
                Term::Attr(_) => false,
            },
            Theta::FilterEq(j, v) => match (&vs.filters[*j], v) {
                (AttrFilter::Star, None) => true,
                (AttrFilter::Is(actual), Some(want)) => actual == want,
                _ => false,
            },
            Theta::FilterNeq(j, v) => !Theta::FilterEq(*j, v.clone()).eval(vs),
            Theta::And(a, b) => a.eval(vs) && b.eval(vs),
            Theta::Or(a, b) => a.eval(vs) || b.eval(vs),
        }
    }
}

// ---------------------------------------------------------------------
// Unary operators
// ---------------------------------------------------------------------

/// `σᵛ_θ(V)` — order-preserving selection.
pub fn sigma_v(v: &VisualGroup, theta: &Theta) -> VisualGroup {
    v.select(|vs| theta.eval(vs))
}

/// `τᵛ_{F(T)}(V)` — stable sort, increasing in `F(T(v))`.
pub fn tau_v<F: Fn(f64) -> f64>(
    u: &VisualUniverse,
    v: &VisualGroup,
    f: F,
    prims: &Primitives,
) -> Result<VisualGroup, VeaError> {
    let scores: Vec<f64> = u.render_group(v)?.iter().map(|s| f((prims.t)(s))).collect();
    let mut order: Vec<usize> = (0..v.len()).collect();
    order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    Ok(v.permute(&order))
}

/// `µᵛ_k(V)` — first `k` sources.
pub fn mu_v(v: &VisualGroup, k: usize) -> VisualGroup {
    v.take(k)
}

/// `µᵛ_{[a:b]}(V)` — 1-based inclusive slice.
pub fn mu_v_range(v: &VisualGroup, a: usize, b: usize) -> VisualGroup {
    v.slice(a, b)
}

/// `δᵛ(V)` — duplicate elimination, first occurrence kept.
pub fn delta_v(v: &VisualGroup) -> VisualGroup {
    v.dedup()
}

/// `ζᵛ_{R,k}(V)` — the `k` most representative sources by `R`.
pub fn zeta_v(
    u: &VisualUniverse,
    v: &VisualGroup,
    k: usize,
    prims: &Primitives,
) -> Result<VisualGroup, VeaError> {
    let rendered = u.render_group(v)?;
    let idx = (prims.r)(&rendered, k);
    Ok(idx
        .into_iter()
        .filter_map(|i| v.items().get(i).cloned())
        .collect())
}

// ---------------------------------------------------------------------
// Binary operators
// ---------------------------------------------------------------------

/// `V ∪ᵛ U`.
pub fn union_v(v: &VisualGroup, u: &VisualGroup) -> VisualGroup {
    v.union(u)
}

/// `V \ᵛ U`.
pub fn diff_v(v: &VisualGroup, u: &VisualGroup) -> VisualGroup {
    v.difference(u)
}

/// `V ∩ᵛ U`.
pub fn intersect_v(v: &VisualGroup, u: &VisualGroup) -> VisualGroup {
    v.intersection(u)
}

/// Which attribute `βᵛ` swaps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BetaAttr {
    X,
    Y,
    Attr(usize),
}

/// `βᵛ_A(V, U)` — replace attribute `A` of every source in `V` with the
/// values of `A` in `U`: formally `π_{…Â…}(V) × π_A(U)` (left-major).
pub fn beta_v(v: &VisualGroup, u: &VisualGroup, attr: BetaAttr) -> VisualGroup {
    let mut out = VisualGroup::new();
    for base in v.iter() {
        for donor in u.iter() {
            let mut vs = base.clone();
            match attr {
                BetaAttr::X => vs.x = donor.x.clone(),
                BetaAttr::Y => vs.y = donor.y.clone(),
                BetaAttr::Attr(j) => vs.filters[j] = donor.filters[j].clone(),
            }
            out.push(vs);
        }
    }
    out
}

/// How φᵛ matches sources between its operands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MatchAttr {
    X,
    Y,
    Attr(usize),
}

fn match_key(vs: &VisualSource, attrs: &[MatchAttr]) -> Vec<String> {
    attrs
        .iter()
        .map(|a| match a {
            MatchAttr::X => vs.x.clone(),
            MatchAttr::Y => vs.y.clone(),
            MatchAttr::Attr(j) => vs.filters[*j].to_string(),
        })
        .collect()
}

/// `φᵛ_{F(D),A₁…Aⱼ}(V, U)` — sort `V` increasing by the distance between
/// each source and the *corresponding* source of `U` (matched on the
/// given attributes). Undefined (error) if any key matches a
/// non-singleton group on either side.
pub fn phi_v<F: Fn(f64) -> f64>(
    universe: &VisualUniverse,
    v: &VisualGroup,
    u: &VisualGroup,
    attrs: &[MatchAttr],
    f: F,
    prims: &Primitives,
) -> Result<VisualGroup, VeaError> {
    use std::collections::HashMap;
    let mut u_by_key: HashMap<Vec<String>, Vec<&VisualSource>> = HashMap::new();
    for su in u.iter() {
        u_by_key.entry(match_key(su, attrs)).or_default().push(su);
    }
    let mut v_seen: HashMap<Vec<String>, usize> = HashMap::new();
    let mut scores: Vec<f64> = Vec::with_capacity(v.len());
    for sv in v.iter() {
        let key = match_key(sv, attrs);
        let count = v_seen.entry(key.clone()).or_insert(0);
        *count += 1;
        if *count > 1 {
            return Err(VeaError::Undefined(format!(
                "φᵛ: key {key:?} selects multiple sources in V"
            )));
        }
        let matches = u_by_key.get(&key).map(Vec::as_slice).unwrap_or(&[]);
        if matches.len() != 1 {
            return Err(VeaError::Undefined(format!(
                "φᵛ: key {key:?} selects {} sources in U",
                matches.len()
            )));
        }
        let a = universe.render(sv)?;
        let b = universe.render(matches[0])?;
        scores.push(f((prims.d)(&a, &b)));
    }
    let mut order: Vec<usize> = (0..v.len()).collect();
    order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    Ok(v.permute(&order))
}

/// `ηᵛ_{F(D)}(V, U)` — sort `V` increasing by distance to the single
/// reference source in `U`. Undefined (error) unless `|U| = 1`.
pub fn eta_v<F: Fn(f64) -> f64>(
    universe: &VisualUniverse,
    v: &VisualGroup,
    u: &VisualGroup,
    f: F,
    prims: &Primitives,
) -> Result<VisualGroup, VeaError> {
    if u.len() != 1 {
        return Err(VeaError::Undefined(format!(
            "ηᵛ requires a singleton U, got |U| = {}",
            u.len()
        )));
    }
    let reference = universe.render(u.nth(1).unwrap())?;
    let scores: Vec<f64> = u_scores(universe, v, &reference, &f, prims)?;
    let mut order: Vec<usize> = (0..v.len()).collect();
    order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    Ok(v.permute(&order))
}

fn u_scores<F: Fn(f64) -> f64>(
    universe: &VisualUniverse,
    v: &VisualGroup,
    reference: &Series,
    f: &F,
    prims: &Primitives,
) -> Result<Vec<f64>, VeaError> {
    v.iter()
        .map(|vs| {
            let s = universe.render(vs)?;
            Ok(f((prims.d)(&s, reference)))
        })
        .collect()
}

/// Convenience: the group of one source per value of attribute `attr`,
/// with the given x/y axes — e.g. "sales-by-year for every product".
pub fn slice_group(
    universe: &VisualUniverse,
    x: &str,
    y: &str,
    attr: &str,
) -> Result<VisualGroup, VeaError> {
    let j = universe
        .attr_index(attr)
        .ok_or_else(|| VeaError::Storage(StorageError::UnknownColumn(attr.to_string())))?;
    let mut group = VisualGroup::new();
    for val in universe.attr_values(attr)? {
        group.push(VisualSource::unfiltered(x, y, universe.attrs().len()).with_filter(j, val));
    }
    Ok(group)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::visual::fixtures::universe_4_1;

    /// θ of thesis Table 4.3: X=year ∧ Y=sales ∧ year=∗ ∧ month=∗ ∧
    /// product≠∗ ∧ location='US' ∧ sales=∗ ∧ profit=∗.
    fn theta_4_3() -> Theta {
        Theta::AxisEq(Term::X, "year".into())
            .and(Theta::AxisEq(Term::Y, "sales".into()))
            .and(Theta::FilterEq(0, None))
            .and(Theta::FilterEq(1, None))
            .and(Theta::FilterNeq(2, None))
            .and(Theta::FilterEq(3, Some(Value::str("US"))))
            .and(Theta::FilterEq(4, None))
            .and(Theta::FilterEq(5, None))
    }

    #[test]
    fn sigma_reproduces_table_4_3() {
        let u = universe_4_1();
        let v = u.enumerate().unwrap();
        let selected = sigma_v(&v, &theta_4_3());
        // One source per product sold anywhere (3 products), US-filtered.
        assert_eq!(selected.len(), 3);
        for vs in selected.iter() {
            assert_eq!(vs.x, "year");
            assert_eq!(vs.y, "sales");
            assert!(!vs.filters[2].is_star(), "product pinned");
            assert_eq!(vs.filters[3], AttrFilter::Is(Value::str("US")));
            assert!(vs.filters[0].is_star() && vs.filters[1].is_star());
        }
        let products: Vec<String> = selected
            .iter()
            .map(|vs| vs.filters[2].to_string())
            .collect();
        assert_eq!(products, vec!["chair", "table", "stapler"]);
    }

    #[test]
    fn sigma_with_disjunction() {
        let u = universe_4_1();
        let v = u.enumerate().unwrap();
        let theta = theta_4_3().and(
            Theta::FilterEq(2, Some(Value::str("chair")))
                .or(Theta::FilterEq(2, Some(Value::str("table")))),
        );
        assert_eq!(sigma_v(&v, &theta).len(), 2);
    }

    #[test]
    fn tau_sorts_by_trend() {
        let u = universe_4_1();
        // month-vs-sales for 2016: chair falls (789k → 753k), so trend < 0.
        let chair = VisualSource::unfiltered("month", "sales", 6)
            .with_filter(2, Value::str("chair"))
            .with_filter(0, Value::Int(2016));
        let table = VisualSource::unfiltered("month", "profit", 6).with_filter(0, Value::Int(2016));
        let group: VisualGroup = [table.clone(), chair.clone()].into_iter().collect();
        let prims = Primitives::default();
        let asc = tau_v(&u, &group, |t| t, &prims).unwrap();
        let desc = tau_v(&u, &group, |t| -t, &prims).unwrap();
        assert_eq!(asc.len(), 2);
        let asc_first = asc.nth(1).unwrap().clone();
        let desc_first = desc.nth(1).unwrap().clone();
        assert_ne!(asc_first, desc_first, "opposite orders under negated F");
    }

    #[test]
    fn mu_and_delta() {
        let u = universe_4_1();
        let g = slice_group(&u, "year", "sales", "product").unwrap();
        assert_eq!(g.len(), 3);
        assert_eq!(mu_v(&g, 2).len(), 2);
        assert_eq!(mu_v_range(&g, 2, 3).len(), 2);
        let doubled = g.union(&g);
        assert_eq!(delta_v(&doubled), g);
    }

    #[test]
    fn zeta_returns_members() {
        let u = universe_4_1();
        let g = slice_group(&u, "year", "sales", "product").unwrap();
        let reps = zeta_v(&u, &g, 2, &Primitives::default()).unwrap();
        assert_eq!(reps.len(), 2);
        for r in reps.iter() {
            assert!(g.contains(r));
        }
    }

    #[test]
    fn beta_swaps_x_axis() {
        let u = universe_4_1();
        let v = slice_group(&u, "year", "sales", "product").unwrap();
        // Donor with x = month.
        let donor: VisualGroup = [VisualSource::unfiltered("month", "sales", 6)]
            .into_iter()
            .collect();
        let swapped = beta_v(&v, &donor, BetaAttr::X);
        assert_eq!(swapped.len(), 3);
        assert!(swapped.iter().all(|vs| vs.x == "month"));
        // data-source filters preserved
        assert_eq!(swapped.nth(1).unwrap().filters, v.nth(1).unwrap().filters);
    }

    #[test]
    fn beta_cross_product_semantics() {
        let u = universe_4_1();
        let v = slice_group(&u, "year", "sales", "product").unwrap(); // 3 sources
        let donor: VisualGroup = [
            VisualSource::unfiltered("year", "sales", 6),
            VisualSource::unfiltered("year", "profit", 6),
        ]
        .into_iter()
        .collect();
        let out = beta_v(&v, &donor, BetaAttr::Y);
        // |V| × |U| = 6, left-major: chair-sales, chair-profit, table-...
        assert_eq!(out.len(), 6);
        assert_eq!(out.nth(1).unwrap().y, "sales");
        assert_eq!(out.nth(2).unwrap().y, "profit");
        assert_eq!(out.nth(1).unwrap().filters[2].to_string(), "chair");
        assert_eq!(out.nth(3).unwrap().filters[2].to_string(), "table");
    }

    #[test]
    fn eta_sorts_by_distance_to_reference() {
        let u = universe_4_1();
        let v = slice_group(&u, "month", "sales", "product").unwrap();
        let reference: VisualGroup =
            [VisualSource::unfiltered("month", "sales", 6).with_filter(2, Value::str("chair"))]
                .into_iter()
                .collect();
        let sorted = eta_v(&u, &v, &reference, |d| d, &Primitives::default()).unwrap();
        // chair is nearest to itself
        assert_eq!(sorted.nth(1).unwrap().filters[2].to_string(), "chair");
    }

    #[test]
    fn eta_requires_singleton_reference() {
        let u = universe_4_1();
        let v = slice_group(&u, "month", "sales", "product").unwrap();
        let err = eta_v(&u, &v, &v, |d| d, &Primitives::default()).unwrap_err();
        assert!(matches!(err, VeaError::Undefined(_)));
    }

    #[test]
    fn phi_matches_on_attributes() {
        let u = universe_4_1();
        // V: sales-by-month per product; U: profit-by-month per product.
        let v = slice_group(&u, "month", "sales", "product").unwrap();
        let us = slice_group(&u, "month", "profit", "product").unwrap();
        let sorted = phi_v(
            &u,
            &v,
            &us,
            &[MatchAttr::Attr(2)],
            |d| d,
            &Primitives::default(),
        )
        .unwrap();
        assert_eq!(sorted.len(), v.len());
        // still the same bag, reordered
        assert_eq!(sorted.dedup().len(), v.dedup().len());
        for vs in sorted.iter() {
            assert!(v.contains(vs));
        }
    }

    #[test]
    fn phi_undefined_on_nonsingleton_match() {
        let u = universe_4_1();
        let v = slice_group(&u, "month", "sales", "product").unwrap();
        let doubled = v.union(&v);
        let err = phi_v(
            &u,
            &v,
            &doubled,
            &[MatchAttr::Attr(2)],
            |d| d,
            &Primitives::default(),
        )
        .unwrap_err();
        assert!(matches!(err, VeaError::Undefined(_)));
        let err = phi_v(
            &u,
            &doubled,
            &v,
            &[MatchAttr::Attr(2)],
            |d| d,
            &Primitives::default(),
        )
        .unwrap_err();
        assert!(matches!(err, VeaError::Undefined(_)));
    }

    #[test]
    fn set_operators_delegate_to_ordered_bag() {
        let u = universe_4_1();
        let g = slice_group(&u, "year", "sales", "product").unwrap();
        let first: VisualGroup = [g.nth(1).unwrap().clone()].into_iter().collect();
        assert_eq!(union_v(&g, &first).len(), 4);
        assert_eq!(diff_v(&g, &first).len(), 2);
        assert_eq!(intersect_v(&g, &first).len(), 1);
    }
}
