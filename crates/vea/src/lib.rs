//! # zv-vea
//!
//! The **visual exploration algebra** of thesis Chapter 4: "an analog of
//! relational algebra, describing a core set of capabilities for any
//! language that supports visual data exploration".
//!
//! * [`ordered_bag`] — the ordered-bag semantics of §4.1;
//! * [`visual`] — the visual universe `ν(R)`, visual sources & groups
//!   (§4.2), and source → series rendering;
//! * [`ops`] — the eleven operators of Table 4.2 plus the pluggable
//!   exploration functions `T`, `D`, `R` (§4.3).
//!
//! A language `L` is *visual exploration complete* `VEC_{T,D,R}(L)` when
//! it expresses every operator here; the `zql` crate's
//! `tests/completeness` suite executes the Chapter 4 constructions
//! (Tables 4.4–4.23) showing ZQL is.

pub mod ops;
pub mod ordered_bag;
pub mod visual;

pub use ops::{
    beta_v, delta_v, diff_v, eta_v, intersect_v, mu_v, mu_v_range, phi_v, sigma_v, slice_group,
    tau_v, union_v, zeta_v, BetaAttr, MatchAttr, Primitives, Term, Theta, VeaError,
};
pub use ordered_bag::OrderedBag;
pub use visual::{AttrFilter, VisualGroup, VisualSource, VisualUniverse};
