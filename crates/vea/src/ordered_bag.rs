//! Ordered-bag semantics (thesis §4.1): relations with bag semantics that
//! preserve ordering, "since users want to see the most relevant
//! visualizations first".
//!
//! The operator definitions follow the thesis's recursive formulations:
//!
//! * `R ∪ S` — concatenation;
//! * `R \ S` — drops every tuple of `R` that occurs anywhere in `S`;
//! * `R ∩ S` — keeps (in order, with multiplicity) tuples of `R` that
//!   occur in `S`;
//! * `δ(R)` — keeps the first copy of each tuple at its first position;
//! * `R × S` — cross product in lexicographic (left-major) order;
//! * `R[i]`, `R[a:b]` — 1-based indexing and inclusive slicing.

/// A sequence with bag semantics and order-aware set operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OrderedBag<T> {
    items: Vec<T>,
}

impl<T> Default for OrderedBag<T> {
    fn default() -> Self {
        OrderedBag { items: Vec::new() }
    }
}

impl<T> OrderedBag<T> {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn from_vec(items: Vec<T>) -> Self {
        OrderedBag { items }
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    pub fn items(&self) -> &[T] {
        &self.items
    }

    pub fn into_vec(self) -> Vec<T> {
        self.items
    }

    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.items.iter()
    }

    pub fn push(&mut self, item: T) {
        self.items.push(item);
    }

    /// 1-based indexing: `R[i]` of the thesis.
    pub fn nth(&self, i: usize) -> Option<&T> {
        if i == 0 {
            return None;
        }
        self.items.get(i - 1)
    }
}

impl<T: Clone> OrderedBag<T> {
    /// `R[a:b]` — 1-based, inclusive on both ends; omitted bounds are
    /// modeled by passing `1` / `len()`.
    pub fn slice(&self, a: usize, b: usize) -> Self {
        if a == 0 || a > b || a > self.items.len() {
            return Self::new();
        }
        let hi = b.min(self.items.len());
        OrderedBag {
            items: self.items[a - 1..hi].to_vec(),
        }
    }

    /// First `k` items (`µ` with a single subscript).
    pub fn take(&self, k: usize) -> Self {
        OrderedBag {
            items: self.items.iter().take(k).cloned().collect(),
        }
    }

    /// `R ∪ S`: concatenation.
    pub fn union(&self, other: &Self) -> Self {
        let mut items = self.items.clone();
        items.extend(other.items.iter().cloned());
        OrderedBag { items }
    }

    /// Order-preserving filter.
    pub fn select<F: FnMut(&T) -> bool>(&self, mut pred: F) -> Self {
        OrderedBag {
            items: self.items.iter().filter(|t| pred(t)).cloned().collect(),
        }
    }

    /// Order-preserving map.
    pub fn map<U, F: FnMut(&T) -> U>(&self, f: F) -> OrderedBag<U> {
        OrderedBag {
            items: self.items.iter().map(f).collect(),
        }
    }

    /// Stable sort by a key function (ties keep bag order).
    pub fn sort_by_key_stable<K: PartialOrd, F: FnMut(&T) -> K>(&self, mut key: F) -> Self {
        let mut keyed: Vec<(usize, K)> = self
            .items
            .iter()
            .enumerate()
            .map(|(i, t)| (i, key(t)))
            .collect();
        keyed.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        OrderedBag {
            items: keyed
                .into_iter()
                .map(|(i, _)| self.items[i].clone())
                .collect(),
        }
    }

    /// Reorder by a permutation of positions (0-based).
    pub fn permute(&self, order: &[usize]) -> Self {
        OrderedBag {
            items: order.iter().map(|&i| self.items[i].clone()).collect(),
        }
    }
}

impl<T: Clone + PartialEq> OrderedBag<T> {
    pub fn contains(&self, item: &T) -> bool {
        self.items.contains(item)
    }

    /// `R \ S`: every tuple of `R` that occurs in `S` is removed.
    pub fn difference(&self, other: &Self) -> Self {
        self.select(|t| !other.contains(t))
    }

    /// `R ∩ S`: tuples of `R` (in order, with multiplicity) occurring in `S`.
    pub fn intersection(&self, other: &Self) -> Self {
        self.select(|t| other.contains(t))
    }

    /// `δ(R)`: duplicate elimination, first occurrence kept in place.
    pub fn dedup(&self) -> Self {
        let mut out: Vec<T> = Vec::with_capacity(self.items.len());
        for t in &self.items {
            if !out.contains(t) {
                out.push(t.clone());
            }
        }
        OrderedBag { items: out }
    }

    /// `R × S` in left-major order.
    pub fn cross<U: Clone>(&self, other: &OrderedBag<U>) -> OrderedBag<(T, U)> {
        let mut items = Vec::with_capacity(self.len() * other.len());
        for a in &self.items {
            for b in &other.items {
                items.push((a.clone(), b.clone()));
            }
        }
        OrderedBag { items }
    }
}

impl<T> FromIterator<T> for OrderedBag<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        OrderedBag {
            items: iter.into_iter().collect(),
        }
    }
}

impl<T> IntoIterator for OrderedBag<T> {
    type Item = T;
    type IntoIter = std::vec::IntoIter<T>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

impl<'a, T> IntoIterator for &'a OrderedBag<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bag(v: &[i32]) -> OrderedBag<i32> {
        v.iter().copied().collect()
    }

    #[test]
    fn union_is_concatenation_not_set_union() {
        let r = bag(&[1, 2, 2]);
        let s = bag(&[2, 3]);
        assert_eq!(r.union(&s), bag(&[1, 2, 2, 2, 3]));
        // union with empty returns the other side unchanged
        assert_eq!(r.union(&bag(&[])), r);
        assert_eq!(bag(&[]).union(&s), s);
    }

    #[test]
    fn difference_removes_all_occurrences() {
        let r = bag(&[1, 2, 1, 3, 2]);
        let s = bag(&[2]);
        assert_eq!(r.difference(&s), bag(&[1, 1, 3]));
        // difference is not symmetric
        assert_eq!(s.difference(&r), bag(&[]));
    }

    #[test]
    fn intersection_keeps_left_order_and_multiplicity() {
        let r = bag(&[3, 1, 2, 1]);
        let s = bag(&[1, 3]);
        assert_eq!(r.intersection(&s), bag(&[3, 1, 1]));
    }

    #[test]
    fn dedup_preserves_first_positions() {
        let r = bag(&[2, 1, 2, 3, 1]);
        assert_eq!(r.dedup(), bag(&[2, 1, 3]));
    }

    #[test]
    fn one_based_indexing_and_slicing() {
        let r = bag(&[10, 20, 30, 40]);
        assert_eq!(r.nth(1), Some(&10));
        assert_eq!(r.nth(4), Some(&40));
        assert_eq!(r.nth(0), None);
        assert_eq!(r.nth(5), None);
        assert_eq!(r.slice(2, 3), bag(&[20, 30]));
        assert_eq!(r.slice(1, 100), r);
        assert_eq!(r.slice(3, 2), bag(&[]));
        assert_eq!(r.take(2), bag(&[10, 20]));
    }

    #[test]
    fn cross_product_left_major() {
        let r = bag(&[1, 2]);
        let s: OrderedBag<char> = ['a', 'b'].into_iter().collect();
        let x = r.cross(&s);
        assert_eq!(x.items(), &[(1, 'a'), (1, 'b'), (2, 'a'), (2, 'b')]);
    }

    #[test]
    fn stable_sort_keeps_tie_order() {
        let r = bag(&[3, 1, 2, 1]);
        let sorted = r.sort_by_key_stable(|&x| x);
        assert_eq!(sorted, bag(&[1, 1, 2, 3]));
        // all-equal keys → original order
        let same = r.sort_by_key_stable(|_| 0);
        assert_eq!(same, r);
    }

    proptest::proptest! {
        #[test]
        fn prop_difference_and_intersection_partition(
            r in proptest::collection::vec(0i32..10, 0..30),
            s in proptest::collection::vec(0i32..10, 0..30),
        ) {
            let rb = bag(&r);
            let sb = bag(&s);
            let diff = rb.difference(&sb);
            let inter = rb.intersection(&sb);
            // Every tuple of R lands in exactly one of the two, in order.
            let mut merged: Vec<i32> = Vec::new();
            let (mut di, mut ii) = (0, 0);
            for &t in &r {
                if sb.contains(&t) {
                    proptest::prop_assert_eq!(inter.items()[ii], t);
                    ii += 1;
                } else {
                    proptest::prop_assert_eq!(diff.items()[di], t);
                    di += 1;
                }
                merged.push(t);
            }
            proptest::prop_assert_eq!(di + ii, r.len());
        }

        #[test]
        fn prop_dedup_idempotent(r in proptest::collection::vec(0i32..6, 0..30)) {
            let d1 = bag(&r).dedup();
            proptest::prop_assert_eq!(d1.dedup(), d1);
        }

        #[test]
        fn prop_cross_len(
            r in proptest::collection::vec(0i32..5, 0..10),
            s in proptest::collection::vec(0i32..5, 0..10),
        ) {
            proptest::prop_assert_eq!(bag(&r).cross(&bag(&s)).len(), r.len() * s.len());
        }
    }
}
