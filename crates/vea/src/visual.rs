//! The visual universe (thesis §4.2): given a k-ary relation `R` with
//! x-axis candidates `X` and y-axis candidates `Y`,
//! `V = ν(R) = X × Y × (×ᵢ π_{Aᵢ}(R) ∪ {∗})`. A tuple of `V` is a *visual
//! source*; a sub-bag is a *visual group*.

use crate::ordered_bag::OrderedBag;
use std::fmt;
use std::sync::Arc;
use zv_analytics::Series;
use zv_storage::{
    Agg, Column, Database, Predicate, QueryCtx, SelectQuery, StorageError, Table, Value, XSpec,
    YSpec,
};

/// The wildcard-or-value of one data-source attribute: `∗` means "no
/// subselection on this attribute".
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AttrFilter {
    Star,
    Is(Value),
}

impl AttrFilter {
    pub fn is_star(&self) -> bool {
        matches!(self, AttrFilter::Star)
    }
}

impl fmt::Display for AttrFilter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrFilter::Star => write!(f, "*"),
            AttrFilter::Is(v) => write!(f, "{v}"),
        }
    }
}

/// One `k + 2`-tuple of the visual universe: x-axis, y-axis, and a filter
/// per attribute of `R` (the *data source*).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct VisualSource {
    pub x: String,
    pub y: String,
    /// One entry per attribute of `R`, in schema order.
    pub filters: Vec<AttrFilter>,
}

impl VisualSource {
    /// A source with all-`∗` data source.
    pub fn unfiltered(x: impl Into<String>, y: impl Into<String>, k: usize) -> Self {
        VisualSource {
            x: x.into(),
            y: y.into(),
            filters: vec![AttrFilter::Star; k],
        }
    }

    pub fn with_filter(mut self, idx: usize, value: Value) -> Self {
        self.filters[idx] = AttrFilter::Is(value);
        self
    }
}

impl fmt::Display for VisualSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{}, {}", self.x, self.y)?;
        for fl in &self.filters {
            write!(f, ", {fl}")?;
        }
        write!(f, "⟩")
    }
}

/// A visual group: an ordered bag of visual sources.
pub type VisualGroup = OrderedBag<VisualSource>;

/// `ν(R)` plus the machinery to materialize a visual source into the
/// series it visualizes. "We assume that each visual source maps to a
/// singular visualization" (§4.2) — here: y aggregated by SUM, grouped by
/// x, under the conjunction of non-`∗` attribute filters.
pub struct VisualUniverse {
    db: Arc<dyn Database>,
    attrs: Vec<String>,
    x_attrs: Vec<String>,
    y_attrs: Vec<String>,
}

impl VisualUniverse {
    /// Default axis candidates (§4.2): all attributes for X if
    /// unspecified; numeric attributes for Y.
    pub fn new(db: Arc<dyn Database>) -> Self {
        let table = db.table();
        let x_attrs = table.attribute_names();
        let y_attrs = table.numeric_names();
        Self::with_axes(db, x_attrs, y_attrs)
    }

    pub fn with_axes(db: Arc<dyn Database>, x_attrs: Vec<String>, y_attrs: Vec<String>) -> Self {
        let attrs = db.table().attribute_names();
        VisualUniverse {
            db,
            attrs,
            x_attrs,
            y_attrs,
        }
    }

    pub fn table(&self) -> Arc<Table> {
        self.db.table()
    }

    pub fn attrs(&self) -> &[String] {
        &self.attrs
    }

    pub fn x_attrs(&self) -> &[String] {
        &self.x_attrs
    }

    pub fn y_attrs(&self) -> &[String] {
        &self.y_attrs
    }

    pub fn attr_index(&self, name: &str) -> Option<usize> {
        self.attrs.iter().position(|a| a == name)
    }

    /// Distinct values of one attribute (plus implicitly `∗`).
    pub fn attr_values(&self, name: &str) -> Result<Vec<Value>, StorageError> {
        Ok(self.table().column(name)?.distinct_values())
    }

    /// Materialize the *entire* visual universe. Exponential in k — only
    /// sensible for the toy relations used in expressiveness tests.
    pub fn enumerate(&self) -> Result<VisualGroup, StorageError> {
        let mut group = VisualGroup::new();
        let mut domains: Vec<Vec<AttrFilter>> = Vec::with_capacity(self.attrs.len());
        for a in &self.attrs {
            let mut d = vec![AttrFilter::Star];
            d.extend(self.attr_values(a)?.into_iter().map(AttrFilter::Is));
            domains.push(d);
        }
        for x in &self.x_attrs {
            for y in &self.y_attrs {
                let mut stack = vec![Vec::with_capacity(self.attrs.len())];
                for d in &domains {
                    let mut next = Vec::with_capacity(stack.len() * d.len());
                    for partial in &stack {
                        for f in d {
                            let mut p = partial.clone();
                            p.push(f.clone());
                            next.push(p);
                        }
                    }
                    stack = next;
                }
                for filters in stack {
                    group.push(VisualSource {
                        x: x.clone(),
                        y: y.clone(),
                        filters,
                    });
                }
            }
        }
        Ok(group)
    }

    /// The predicate equivalent of a visual source's data source.
    pub fn predicate_of(&self, vs: &VisualSource) -> Result<Predicate, StorageError> {
        let mut pred = Predicate::True;
        let table = self.table();
        for (attr, filter) in self.attrs.iter().zip(&vs.filters) {
            if let AttrFilter::Is(v) = filter {
                let col = table.column(attr)?;
                let atom = match (col, v) {
                    (Column::Cat(_), Value::Str(s)) => Predicate::cat_eq(attr.clone(), s.clone()),
                    (Column::Int(_), v) | (Column::Float(_), v) => {
                        let n = v.as_f64().ok_or_else(|| {
                            StorageError::TypeMismatch(format!("filter {v} on numeric {attr}"))
                        })?;
                        Predicate::num_eq(attr.clone(), n)
                    }
                    (Column::Cat(_), v) => {
                        return Err(StorageError::TypeMismatch(format!(
                            "filter {v} on categorical {attr}"
                        )))
                    }
                };
                pred = pred.and(atom);
            }
        }
        Ok(pred)
    }

    /// Render a visual source into its visualization's data.
    ///
    /// Goes through [`Database::run_request`] rather than the raw
    /// execute path, so repeated renders of the same source — algebra
    /// operators re-materialize sources constantly — are answered by
    /// the engine's result cache (exactly or by subsumption) as shared
    /// `Arc`s instead of re-scanning.
    pub fn render(&self, vs: &VisualSource) -> Result<Series, StorageError> {
        self.render_ctx(vs, &QueryCtx::new())
    }

    /// [`VisualUniverse::render`] under an explicit lifecycle ctx: an
    /// interactive caller (algebra explorations fan out into many
    /// renders) can cancel the whole exploration mid-scan; a cancelled
    /// render returns [`StorageError::Cancelled`].
    pub fn render_ctx(&self, vs: &VisualSource, ctx: &QueryCtx) -> Result<Series, StorageError> {
        let q = SelectQuery::new(
            XSpec::raw(vs.x.clone()),
            vec![YSpec::new(vs.y.clone(), Agg::Sum)],
        )
        .with_predicate(self.predicate_of(vs)?);
        let rt = self
            .db
            .run_request_ctx(std::slice::from_ref(&q), ctx)?
            .pop()
            .expect("one query yields one result");
        Ok(match rt.groups.first() {
            Some(g) => Series::new(g.points(0)),
            None => Series::default(),
        })
    }

    /// Render every source of a group, in order.
    pub fn render_group(&self, group: &VisualGroup) -> Result<Vec<Series>, StorageError> {
        self.render_group_ctx(group, &QueryCtx::new())
    }

    /// [`VisualUniverse::render_group`] under an explicit lifecycle ctx
    /// shared by every render of the group.
    pub fn render_group_ctx(
        &self,
        group: &VisualGroup,
        ctx: &QueryCtx,
    ) -> Result<Vec<Series>, StorageError> {
        group.iter().map(|vs| self.render_ctx(vs, ctx)).collect()
    }
}

#[cfg(test)]
pub(crate) mod fixtures {
    use super::*;
    use zv_storage::{BitmapDb, DataType, Field, Schema, TableBuilder};

    /// The example relation of thesis Table 4.1: year, month, product,
    /// location, sales, profit.
    pub fn table_4_1() -> Arc<dyn Database> {
        let schema = Schema::new(vec![
            Field::new("year", DataType::Int),
            Field::new("month", DataType::Int),
            Field::new("product", DataType::Cat),
            Field::new("location", DataType::Cat),
            Field::new("sales", DataType::Float),
            Field::new("profit", DataType::Float),
        ]);
        let mut b = TableBuilder::new(schema);
        let rows = [
            (2016, 4, "chair", "US", 623_000.0, 314_000.0),
            (2016, 3, "chair", "US", 789_000.0, 410_000.0),
            (2016, 4, "table", "US", 258_000.0, 169_000.0),
            (2016, 4, "chair", "UK", 130_000.0, 63_000.0),
            (2015, 4, "table", "UK", 95_000.0, 42_000.0),
            (2015, 3, "stapler", "US", 312_000.0, 290_000.0),
        ];
        for (y, m, p, l, s, pr) in rows {
            b.push_row(vec![
                Value::Int(y),
                Value::Int(m),
                Value::str(p),
                Value::str(l),
                Value::Float(s),
                Value::Float(pr),
            ])
            .unwrap();
        }
        Arc::new(BitmapDb::new(b.finish_shared()))
    }

    /// X = {year, month}, Y = {sales, profit}: the Table 4.1(b,c) axes.
    pub fn universe_4_1() -> VisualUniverse {
        VisualUniverse::with_axes(
            table_4_1(),
            vec!["year".into(), "month".into()],
            vec!["sales".into(), "profit".into()],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::fixtures::universe_4_1;
    use super::*;

    #[test]
    fn universe_dimensions_match_schema() {
        let u = universe_4_1();
        assert_eq!(u.attrs().len(), 6);
        assert_eq!(u.x_attrs(), &["year".to_string(), "month".to_string()]);
        assert_eq!(u.y_attrs(), &["sales".to_string(), "profit".to_string()]);
        assert_eq!(u.attr_index("product"), Some(2));
        assert_eq!(u.attr_index("ghost"), None);
    }

    #[test]
    fn enumerate_size_is_product_of_domains() {
        let u = universe_4_1();
        let v = u.enumerate().unwrap();
        // |X|·|Y|·∏(|dom(Aᵢ)|+1):
        // year:2+1, month:2+1, product:3+1, location:2+1, sales:6+1(5 distinct? see below), profit:6+1
        let mut expected = 2 * 2;
        for a in u.attrs() {
            expected *= u.attr_values(a).unwrap().len() + 1;
        }
        assert_eq!(v.len(), expected);
    }

    #[test]
    fn render_third_row_of_table_4_1d() {
        // ⟨year, sales, ∗, ∗, chair, ∗, ∗, ∗⟩ = sales by year for chairs.
        let u = universe_4_1();
        let vs = VisualSource::unfiltered("year", "sales", 6).with_filter(2, Value::str("chair"));
        let s = u.render(&vs).unwrap();
        // chair sales: 2016 → 623k + 789k + 130k
        assert_eq!(s.points(), &[(2016.0, 1_542_000.0)]);
    }

    #[test]
    fn render_with_multiple_filters() {
        let u = universe_4_1();
        let vs = VisualSource::unfiltered("year", "sales", 6)
            .with_filter(2, Value::str("table"))
            .with_filter(3, Value::str("UK"));
        let s = u.render(&vs).unwrap();
        assert_eq!(s.points(), &[(2015.0, 95_000.0)]);
        // absent combination renders to the empty series
        let vs = VisualSource::unfiltered("year", "sales", 6)
            .with_filter(2, Value::str("stapler"))
            .with_filter(3, Value::str("UK"));
        assert!(u.render(&vs).unwrap().is_empty());
    }

    #[test]
    fn render_with_numeric_filter() {
        let u = universe_4_1();
        let vs = VisualSource::unfiltered("month", "profit", 6).with_filter(0, Value::Int(2016));
        let s = u.render(&vs).unwrap();
        // 2016 profits: month 3 → 410k, month 4 → 314k + 169k + 63k
        assert_eq!(s.points(), &[(3.0, 410_000.0), (4.0, 546_000.0)]);
    }

    #[test]
    fn predicate_of_star_only_is_true() {
        let u = universe_4_1();
        let vs = VisualSource::unfiltered("year", "sales", 6);
        assert!(u.predicate_of(&vs).unwrap().is_true());
    }
}
