//! Algebraic laws of the visual exploration operators, checked on
//! generated visual groups (beyond the per-operator unit tests).

use proptest::prelude::*;
use zv_vea::{delta_v, diff_v, intersect_v, mu_v, sigma_v, union_v, Term, Theta, VisualSource};
use zv_vea::{OrderedBag, VisualGroup};

fn arb_source() -> impl Strategy<Value = VisualSource> {
    // Small universe: x ∈ {year, month}, y ∈ {sales, profit}, one
    // attribute slot that is either ∗ or one of three products.
    (
        prop_oneof![Just("year"), Just("month")],
        prop_oneof![Just("sales"), Just("profit")],
        prop_oneof![
            Just(None),
            Just(Some("chair")),
            Just(Some("desk")),
            Just(Some("stapler"))
        ],
    )
        .prop_map(|(x, y, product)| {
            let mut vs = VisualSource::unfiltered(x, y, 1);
            if let Some(p) = product {
                vs = vs.with_filter(0, zv_storage::Value::str(p));
            }
            vs
        })
}

fn arb_group() -> impl Strategy<Value = VisualGroup> {
    prop::collection::vec(arb_source(), 0..12).prop_map(OrderedBag::from_vec)
}

proptest! {
    #[test]
    fn sigma_true_is_identity(v in arb_group()) {
        prop_assert_eq!(sigma_v(&v, &Theta::True), v);
    }

    #[test]
    fn sigma_commutes_with_union(v in arb_group(), u in arb_group()) {
        let theta = Theta::AxisEq(Term::X, "year".into());
        let a = sigma_v(&union_v(&v, &u), &theta);
        let b = union_v(&sigma_v(&v, &theta), &sigma_v(&u, &theta));
        prop_assert_eq!(a, b);
    }

    #[test]
    fn sigma_is_idempotent(v in arb_group()) {
        let theta = Theta::AxisEq(Term::Y, "sales".into());
        let once = sigma_v(&v, &theta);
        prop_assert_eq!(sigma_v(&once, &theta), once);
    }

    #[test]
    fn delta_is_idempotent_and_shrinking(v in arb_group()) {
        let d = delta_v(&v);
        prop_assert!(d.len() <= v.len());
        prop_assert_eq!(delta_v(&d), d);
    }

    #[test]
    fn mu_bounds_length(v in arb_group(), k in 0usize..20) {
        let m = mu_v(&v, k);
        prop_assert_eq!(m.len(), k.min(v.len()));
        // prefix property
        for (i, vs) in m.iter().enumerate() {
            prop_assert_eq!(vs, v.nth(i + 1).unwrap());
        }
    }

    #[test]
    fn diff_and_intersect_partition_the_left_operand(v in arb_group(), u in arb_group()) {
        let d = diff_v(&v, &u);
        let i = intersect_v(&v, &u);
        prop_assert_eq!(d.len() + i.len(), v.len());
        // every tuple of the diff is absent from u; every tuple of the
        // intersection is present.
        for vs in d.iter() {
            prop_assert!(!u.contains(vs));
        }
        for vs in i.iter() {
            prop_assert!(u.contains(vs));
        }
    }

    #[test]
    fn union_is_associative(a in arb_group(), b in arb_group(), c in arb_group()) {
        prop_assert_eq!(union_v(&union_v(&a, &b), &c), union_v(&a, &union_v(&b, &c)));
    }

    #[test]
    fn theta_negation_partitions(v in arb_group()) {
        let eq = Theta::FilterEq(0, Some(zv_storage::Value::str("chair")));
        let neq = Theta::FilterNeq(0, Some(zv_storage::Value::str("chair")));
        let a = sigma_v(&v, &eq);
        let b = sigma_v(&v, &neq);
        prop_assert_eq!(a.len() + b.len(), v.len());
    }
}
