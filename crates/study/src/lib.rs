//! # zv-study
//!
//! A *simulated* reproduction of the thesis's Chapter 8 user study
//! (DESIGN.md, substitution 4). Human participants cannot be reproduced
//! computationally, so this crate keeps the entire **measurement
//! pipeline** real — per-task completion times, double-graded accuracy,
//! one-way ANOVA, Tukey's HSD over the three interfaces, Kendall-τ
//! inter-rater agreement — and substitutes a documented behavioural model
//! for the twelve participants:
//!
//! * **Baseline** (Figure 8.1's tool): visualizations are populated "using
//!   an alpha-numeric sort order"; the simulated user inspects them one by
//!   one, keeps the best-looking so far, and stops when patience runs out
//!   — often "select\[ing\] suboptimal answers before browsing through
//!   the entire list".
//! * **Drag-and-drop**: sketch a pattern (fast), run a *real* zenvisage
//!   similarity query, accept a top result after brief verification.
//! * **Custom query builder**: compose a ZQL table (slow, skill-dependent),
//!   run the same real query, verify carefully → most accurate.
//!
//! The zenvisage interfaces execute genuine ZQL queries against the
//! housing data; only think/compose/inspect times and perception noise
//! are modelled.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use zql::{similarity_search, TaskSpec, ZqlEngine};
use zv_analytics::stats::{kendall_tau, one_way_anova, tukey_hsd, Anova, TukeyComparison};
use zv_analytics::Series;
use zv_datagen::housing::{self, HousingConfig};
use zv_storage::BitmapDb;

/// The three interfaces compared in Chapter 8.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Interface {
    Baseline,
    DragAndDrop,
    CustomBuilder,
}

impl Interface {
    pub const ALL: [Interface; 3] = [
        Interface::Baseline,
        Interface::DragAndDrop,
        Interface::CustomBuilder,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            Interface::Baseline => "baseline",
            Interface::DragAndDrop => "drag-and-drop",
            Interface::CustomBuilder => "custom-query-builder",
        }
    }
}

/// Study parameters.
#[derive(Clone, Debug)]
pub struct StudyConfig {
    pub participants: usize,
    pub tasks_per_participant: usize,
    pub seed: u64,
    pub housing: HousingConfig,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            participants: 12,
            tasks_per_participant: 4,
            seed: 0x2A,
            housing: HousingConfig {
                rows: 24_000,
                counties: 120,
                cities: 240,
                ..Default::default()
            },
        }
    }
}

/// One simulated participant's latent traits.
#[derive(Clone, Debug)]
struct Participant {
    /// Seconds to inspect one visualization in the baseline tool.
    inspect_time: f64,
    /// Seconds to sketch a pattern in the drawing box.
    sketch_time: f64,
    /// Seconds to compose a ZQL table (lower with programming skill).
    compose_time: f64,
    /// How many visualizations they'll scan before settling (baseline).
    patience: usize,
    /// Std-dev of perceived-quality noise (higher = more mistakes).
    perception_noise: f64,
}

/// Per-interface aggregate results (the numbers behind Findings 1–2).
#[derive(Clone, Debug)]
pub struct InterfaceStats {
    pub interface: Interface,
    pub completion_times: Vec<f64>,
    pub accuracies: Vec<f64>,
}

impl InterfaceStats {
    pub fn mean_time(&self) -> f64 {
        zv_analytics::stats::mean(&self.completion_times)
    }

    pub fn sd_time(&self) -> f64 {
        zv_analytics::stats::std_dev(&self.completion_times)
    }

    pub fn mean_accuracy(&self) -> f64 {
        zv_analytics::stats::mean(&self.accuracies)
    }

    pub fn sd_accuracy(&self) -> f64 {
        zv_analytics::stats::std_dev(&self.accuracies)
    }
}

/// Full study output.
#[derive(Debug)]
pub struct StudyResult {
    pub interfaces: Vec<InterfaceStats>,
    pub anova: Anova,
    /// Table 8.2: pairwise Tukey comparisons on completion time, groups
    /// ordered (drag-and-drop, custom builder, baseline).
    pub tukey: Vec<TukeyComparison>,
    /// Figure 8.2: `(time budget, accuracy per interface)` where the
    /// array is ordered like [`Interface::ALL`].
    pub accuracy_over_time: Vec<(f64, [f64; 3])>,
    /// Kendall's τ between the two simulated graders (thesis: 0.854).
    pub inter_rater_tau: f64,
}

/// Run the simulated study.
pub fn run_study(cfg: &StudyConfig) -> StudyResult {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let table = housing::generate(&cfg.housing);
    let engine = ZqlEngine::new(Arc::new(BitmapDb::new(table)));
    let spec = TaskSpec::new("year", "sold_price", "county").with_agg(zv_storage::Agg::Avg);

    // The candidate pool the baseline user scans, in alpha-numeric order
    // (like Figure 8.1's tool).
    let counties = engine
        .database()
        .table()
        .column("county")
        .unwrap()
        .distinct_values();

    let participants: Vec<Participant> = (0..cfg.participants)
        .map(|_| Participant {
            inspect_time: rng.gen_range(3.0..7.0),
            sketch_time: rng.gen_range(40.0..70.0),
            compose_time: rng.gen_range(30.0..170.0),
            patience: rng.gen_range(15..45),
            perception_noise: rng.gen_range(0.5..1.5),
        })
        .collect();

    let mut stats: Vec<InterfaceStats> = Interface::ALL
        .iter()
        .map(|&i| InterfaceStats {
            interface: i,
            completion_times: Vec::new(),
            accuracies: Vec::new(),
        })
        .collect();
    let mut grader_a: Vec<f64> = Vec::new();
    let mut grader_b: Vec<f64> = Vec::new();
    let mut traces: Vec<(usize, f64, f64)> = Vec::new(); // (iface slot, time, accuracy)

    for participant in &participants {
        for task in 0..cfg.tasks_per_participant {
            // The task target: the 2008–2012 peak pattern (Figure 6.2's
            // scenario), perturbed per task.
            let target = peak_sketch(task as f64 * 0.13);
            // Ground truth: the real similarity ranking over all counties.
            let ranked = similarity_search(&engine, &spec, &target, counties.len())
                .expect("similarity query");
            let ranking: Vec<String> = ranked
                .visualizations
                .iter()
                .map(|v| {
                    v.label
                        .strip_prefix("county=")
                        .unwrap_or(&v.label)
                        .to_string()
                })
                .collect();
            let rank_of = |county: &str| -> usize {
                ranking
                    .iter()
                    .position(|c| c == county)
                    .unwrap_or(ranking.len())
            };

            for (slot, &iface) in Interface::ALL.iter().enumerate() {
                let (time, answer) = match iface {
                    Interface::Baseline => {
                        simulate_baseline(&mut rng, participant, &counties, &rank_of)
                    }
                    Interface::DragAndDrop => {
                        // sketch + real query latency + verify top results
                        let t = participant.sketch_time
                            + ranked.report.total_time.as_secs_f64()
                            + participant.inspect_time * rng.gen_range(2.0..5.0);
                        // The drawing box "was restricted to identifying
                        // trends similar to a single hand-drawn trend"
                        // (Finding 3) → occasional deeper slips.
                        let slip = rng.gen_range(0.0..1.0);
                        let pick = if slip < 0.50 {
                            0
                        } else if slip < 0.70 {
                            1
                        } else if slip < 0.82 {
                            2
                        } else if slip < 0.90 {
                            3
                        } else {
                            7
                        };
                        (t, ranking[pick.min(ranking.len() - 1)].clone())
                    }
                    Interface::CustomBuilder => {
                        let t = participant.compose_time
                            + ranked.report.total_time.as_secs_f64()
                            + participant.inspect_time * rng.gen_range(1.0..3.0);
                        let pick = if rng.gen_range(0.0..1.0) < 0.85 { 0 } else { 1 };
                        (t, ranking[pick.min(ranking.len() - 1)].clone())
                    }
                };
                // Two graders score the answer by its true rank, with
                // independent jitter, on the thesis's 0–5 scale.
                let rank = rank_of(&answer);
                let true_score = score_for_rank(rank);
                let ga = grade(true_score, rng.gen_range(-0.3..0.3));
                let gb = grade(true_score, rng.gen_range(-0.3..0.3));
                grader_a.push(ga);
                grader_b.push(gb);
                let accuracy = (ga + gb) / 2.0 / 5.0 * 100.0;
                stats[slot].completion_times.push(time);
                stats[slot].accuracies.push(accuracy);
                traces.push((slot, time, accuracy));
            }
        }
    }

    // One completion-time sample per participant per interface feeds the
    // ANOVA/Tukey, as in the thesis (n = 12 per group, df = 33).
    let groups: Vec<Vec<f64>> = (0..3)
        .map(|slot| {
            stats[slot]
                .completion_times
                .chunks(cfg.tasks_per_participant)
                .map(zv_analytics::stats::mean)
                .collect()
        })
        .collect();
    // Order groups as (drag-drop, custom, baseline) to match Table 8.2.
    let ordered = vec![groups[1].clone(), groups[2].clone(), groups[0].clone()];
    let anova = one_way_anova(&ordered);
    let tukey = tukey_hsd(&ordered);

    // Figure 8.2: accuracy attainable within a time budget; a run that
    // hasn't finished by the budget contributes zero.
    let mut accuracy_over_time = Vec::new();
    let mut budget = 0.0f64;
    while budget <= 300.0 {
        let mut acc = [0.0f64; 3];
        let mut n = [0usize; 3];
        for &(slot, time, accuracy) in &traces {
            n[slot] += 1;
            if time <= budget {
                acc[slot] += accuracy;
            }
        }
        for (a, &count) in acc.iter_mut().zip(&n) {
            if count > 0 {
                *a /= count as f64;
            }
        }
        accuracy_over_time.push((budget, acc));
        budget += 15.0;
    }

    let inter_rater_tau = kendall_tau(&grader_a, &grader_b);
    StudyResult {
        interfaces: stats,
        anova,
        tukey,
        accuracy_over_time,
        inter_rater_tau,
    }
}

/// The target pattern: flat, then a 2008–2012 bump, then flat (drawn over
/// years 2004–2015).
pub fn peak_sketch(jitter: f64) -> Series {
    Series::new(
        (0..12)
            .map(|i| {
                let year = 2004 + i;
                let d = (year - 2010) as f64;
                (year as f64, 1.0 + (2.0 + jitter) * (-d * d / 4.0).exp())
            })
            .collect(),
    )
}

/// Baseline scan: inspect candidates in alpha-numeric order, keep the
/// best *perceived* one, stop when patience runs out.
fn simulate_baseline<F: Fn(&str) -> usize>(
    rng: &mut StdRng,
    p: &Participant,
    counties: &[zv_storage::Value],
    rank_of: &F,
) -> (f64, String) {
    let mut alpha: Vec<String> = counties.iter().map(|v| v.to_string()).collect();
    alpha.sort();
    let scanned = p.patience.min(alpha.len());
    let mut best: Option<(f64, String)> = None;
    for county in alpha.iter().take(scanned) {
        let true_quality = score_for_rank(rank_of(county));
        let perceived = true_quality + rng.gen_range(-1.0..1.0) * p.perception_noise * 3.2;
        if best.as_ref().map(|(q, _)| perceived > *q).unwrap_or(true) {
            best = Some((perceived, county.clone()));
        }
    }
    let time = 20.0 + scanned as f64 * p.inspect_time;
    (time, best.map(|(_, c)| c).unwrap_or_default())
}

/// A grader's half-point score: true quality plus perception jitter,
/// rounded to the 0.5 steps human graders use.
fn grade(true_score: f64, jitter: f64) -> f64 {
    ((true_score + jitter) * 2.0).round().clamp(0.0, 10.0) / 2.0
}

/// Expert score (0–5) by rank in the ground-truth similarity order.
fn score_for_rank(rank: usize) -> f64 {
    match rank {
        0 => 5.0,
        1 => 4.5,
        2 => 4.0,
        3 => 3.5,
        4 => 3.0,
        r if r < 10 => 2.0,
        r if r < 20 => 1.0,
        _ => 0.3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> StudyResult {
        run_study(&StudyConfig {
            participants: 12,
            tasks_per_participant: 2,
            housing: HousingConfig {
                rows: 8_000,
                counties: 120,
                cities: 240,
                ..Default::default()
            },
            ..Default::default()
        })
    }

    #[test]
    fn finding_1_completion_time_ordering() {
        // drag-drop fastest, baseline slowest (Finding 1).
        let r = quick();
        let t = |i: Interface| {
            r.interfaces
                .iter()
                .find(|s| s.interface == i)
                .unwrap()
                .mean_time()
        };
        assert!(t(Interface::DragAndDrop) < t(Interface::CustomBuilder));
        assert!(t(Interface::CustomBuilder) < t(Interface::Baseline));
    }

    #[test]
    fn finding_2_accuracy_ordering() {
        // custom builder most accurate, baseline least (Finding 2).
        let r = quick();
        let a = |i: Interface| {
            r.interfaces
                .iter()
                .find(|s| s.interface == i)
                .unwrap()
                .mean_accuracy()
        };
        assert!(a(Interface::CustomBuilder) > a(Interface::DragAndDrop));
        assert!(a(Interface::DragAndDrop) > a(Interface::Baseline));
        assert!(
            a(Interface::Baseline) > 30.0,
            "baseline still finds something"
        );
    }

    #[test]
    fn table_8_2_significance_pattern() {
        // Both zenvisage interfaces beat the baseline significantly; the
        // two zenvisage interfaces don't differ significantly at 1%.
        let r = quick();
        // groups: 0 = drag-drop, 1 = custom, 2 = baseline
        let find = |a: usize, b: usize| {
            r.tukey
                .iter()
                .find(|c| c.group_a == a && c.group_b == b)
                .unwrap()
        };
        assert!(
            !find(0, 1).significant(0.01),
            "drag-drop vs custom should be n.s. at 1%"
        );
        assert!(
            find(0, 2).significant(0.05),
            "drag-drop vs baseline significant"
        );
        assert!(
            find(1, 2).significant(0.05),
            "custom vs baseline significant"
        );
        assert!(r.anova.p_value < 0.05);
    }

    #[test]
    fn figure_8_2_curves_are_monotone_and_ordered() {
        let r = quick();
        // Accuracy within budget never decreases as the budget grows.
        for w in r.accuracy_over_time.windows(2) {
            for slot in 0..3 {
                assert!(w[1].1[slot] >= w[0].1[slot] - 1e-9);
            }
        }
        // Early budget: drag-drop (slot 1) dominates baseline (slot 0).
        let mid = &r.accuracy_over_time[r.accuracy_over_time.len() / 3];
        assert!(
            mid.1[1] >= mid.1[0],
            "drag-drop should lead early (t={})",
            mid.0
        );
    }

    #[test]
    fn graders_agree_like_the_thesis() {
        // Thesis inter-rater agreement: τ = 0.854.
        let r = quick();
        assert!(
            r.inter_rater_tau > 0.6 && r.inter_rater_tau <= 1.0,
            "τ = {}",
            r.inter_rater_tau
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let a = quick();
        let b = quick();
        assert_eq!(
            a.interfaces[0].completion_times,
            b.interfaces[0].completion_times
        );
        assert_eq!(a.inter_rater_tau, b.inter_rater_tau);
    }
}
