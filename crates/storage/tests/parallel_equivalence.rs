//! Parallel ≡ serial equivalence: `aggregate_parallel` must produce the
//! *identical* `ResultTable` (same groups, same ordering, same values)
//! and the same scanned count as the serial `aggregate`, across
//! Dense/Hash strategies, every row-source shape, every `Agg` variant
//! (including Min/Max), and assorted thread counts.
//!
//! Measure values are generated as exact dyadic rationals (multiples of
//! 0.25 well below 2⁵³), so float sums are associative on this data and
//! bit-for-bit equality is the correct assertion — shard boundaries must
//! not change any result.

use proptest::prelude::*;
use zv_storage::exec::{aggregate, aggregate_parallel, compile_pred, GroupStrategy, RowSource};
use zv_storage::{
    Agg, Atom, BitmapDb, BitmapDbConfig, CmpOp, DataType, Database, Field, ParallelConfig,
    Predicate, RoaringBitmap, Schema, SelectQuery, Table, TableBuilder, Value, XSpec, YSpec,
};

fn build_table(rows: &[(i64, u8, u8, i16)]) -> Table {
    let schema = Schema::new(vec![
        Field::new("year", DataType::Int),
        Field::new("product", DataType::Cat),
        Field::new("location", DataType::Cat),
        Field::new("sales", DataType::Float),
        Field::new("units", DataType::Int),
    ]);
    let mut b = TableBuilder::new(schema);
    for &(y, p, l, s) in rows {
        b.push_row(vec![
            Value::Int(y),
            Value::str(format!("p{p}")),
            Value::str(format!("loc{l}")),
            Value::Float(s as f64 * 0.25), // exactly representable
            Value::Int(s as i64),
        ])
        .unwrap();
    }
    b.finish()
}

fn all_agg_query() -> SelectQuery {
    SelectQuery::new(
        XSpec::raw("year"),
        vec![
            YSpec::sum("sales"),
            YSpec::avg("sales"),
            YSpec::new("sales", Agg::Min),
            YSpec::new("sales", Agg::Max),
            YSpec::new("units", Agg::Sum),
            YSpec::new("*", Agg::Count),
        ],
    )
}

/// Assert serial and parallel agree for one (query, source-builder) pair
/// across strategies and thread counts. The source is rebuilt per run
/// because `RowSource` borrows the table.
fn assert_equivalent<'t>(
    table: &'t Table,
    query: &SelectQuery,
    make_source: impl Fn() -> RowSource<'t>,
) {
    for strategy in [GroupStrategy::Dense, GroupStrategy::Hash] {
        let (serial, serial_scanned) =
            aggregate(table, query, &make_source(), strategy).expect("serial");
        for threads in [2usize, 3, 8] {
            let (par, par_scanned) =
                aggregate_parallel(table, query, &make_source(), strategy, threads)
                    .expect("parallel");
            assert_eq!(
                par, serial,
                "parallel({threads}) differs from serial under {strategy:?}"
            );
            assert_eq!(
                par_scanned, serial_scanned,
                "scanned counts differ under {strategy:?} × {threads} threads"
            );
        }
        // Dense and Hash must also agree with each other.
        let (other, _) = aggregate(
            table,
            query,
            &make_source(),
            match strategy {
                GroupStrategy::Dense => GroupStrategy::Hash,
                GroupStrategy::Hash => GroupStrategy::Dense,
            },
        )
        .expect("other strategy");
        assert_eq!(serial, other, "strategies disagree");
    }
}

fn arb_rows() -> impl Strategy<Value = Vec<(i64, u8, u8, i16)>> {
    prop::collection::vec((2010i64..2020, 0u8..6, 0u8..3, -400i16..400), 1..300)
}

fn arb_query() -> impl Strategy<Value = SelectQuery> {
    (0u8..4, any::<bool>()).prop_map(|(zs, binned)| {
        let x = if binned {
            XSpec::binned("year", 3.0)
        } else {
            XSpec::raw("year")
        };
        let mut q = SelectQuery {
            x,
            ..all_agg_query()
        };
        if zs & 1 != 0 {
            q = q.with_z("product");
        }
        if zs & 2 != 0 {
            q = q.with_z("location");
        }
        q
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn full_scan_sources(rows in arb_rows(), query in arb_query()) {
        let table = build_table(&rows);
        assert_equivalent(&table, &query, || RowSource::All(table.num_rows()));
    }

    #[test]
    fn filtered_sources(rows in arb_rows(), query in arb_query(), p in 0u8..8, t in -50i32..50) {
        let table = build_table(&rows);
        let pred = Predicate::cat_eq("product", format!("p{p}")).and(Predicate::atom(
            Atom::NumCmp { col: "sales".into(), op: CmpOp::Gt, value: t as f64 },
        ));
        let compiled = || {
            RowSource::Filtered {
                n_rows: table.num_rows(),
                pred: compile_pred(&table, &pred).unwrap(),
            }
        };
        assert_equivalent(&table, &query, compiled);
    }

    #[test]
    fn bitmap_sources(rows in arb_rows(), query in arb_query(), stride in 1u32..5) {
        let table = build_table(&rows);
        // Every stride-th row, so shard boundaries rarely align with
        // bitmap container boundaries.
        let bm: RoaringBitmap =
            (0..table.num_rows() as u32).filter(|r| r % stride == 0).collect();
        assert_equivalent(&table, &query, || RowSource::Bitmap(bm.clone()));
    }

    #[test]
    fn bitmap_filtered_sources(rows in arb_rows(), query in arb_query(), t in -50i32..50) {
        let table = build_table(&rows);
        let bm: RoaringBitmap = (0..table.num_rows() as u32).filter(|r| r % 2 == 0).collect();
        let residual = Predicate::atom(Atom::NumCmp {
            col: "sales".into(),
            op: CmpOp::Ge,
            value: t as f64 * 0.25,
        });
        let make = || RowSource::BitmapFiltered {
            rows: bm.clone(),
            pred: compile_pred(&table, &residual).unwrap(),
        };
        assert_equivalent(&table, &query, make);
    }

    /// End-to-end: an engine configured to always shard must match an
    /// engine that never does, query for query.
    #[test]
    fn engine_level_equivalence(rows in arb_rows(), query in arb_query(), p in 0u8..8) {
        let table = std::sync::Arc::new(build_table(&rows));
        let serial = BitmapDb::with_config(
            table.clone(),
            BitmapDbConfig {
                parallel: ParallelConfig { threads: 1, min_parallel_rows: usize::MAX, ..Default::default() },
                ..Default::default()
            },
        );
        let sharded = BitmapDb::with_config(
            table.clone(),
            BitmapDbConfig {
                // Tiny morsels: proptest tables are far below the default
                // morsel size, which would silently serialize this engine.
                parallel: ParallelConfig {
                    threads: 4,
                    min_parallel_rows: 0,
                    morsel_rows: 64,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        let q = query.with_predicate(Predicate::cat_eq("product", format!("p{p}")));
        prop_assert_eq!(serial.execute(&q).unwrap(), sharded.execute(&q).unwrap());
        let open = all_agg_query();
        prop_assert_eq!(serial.execute(&open).unwrap(), sharded.execute(&open).unwrap());
    }
}

/// Shard boundaries at 10k rows exercise multi-chunk shards (chunk size
/// is 4096) with every thread count from 1 to 9.
#[test]
fn many_rows_many_threads() {
    let rows: Vec<(i64, u8, u8, i16)> = (0..10_000)
        .map(|i| {
            (
                2010 + (i % 7) as i64,
                (i % 5) as u8,
                (i % 3) as u8,
                ((i * 37 % 801) as i16) - 400,
            )
        })
        .collect();
    let table = build_table(&rows);
    let query = all_agg_query().with_z("product").with_z("location");
    for strategy in [GroupStrategy::Dense, GroupStrategy::Hash] {
        let (serial, scanned) =
            aggregate(&table, &query, &RowSource::All(table.num_rows()), strategy).unwrap();
        assert_eq!(scanned, 10_000);
        for threads in 1..=9 {
            let (par, par_scanned) = aggregate_parallel(
                &table,
                &query,
                &RowSource::All(table.num_rows()),
                strategy,
                threads,
            )
            .unwrap();
            assert_eq!(par, serial, "{strategy:?} × {threads}");
            assert_eq!(par_scanned, 10_000);
        }
    }
}
