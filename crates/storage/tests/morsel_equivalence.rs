//! Morsel ≡ static ≡ serial equivalence under *skewed* predicates — the
//! workload morsel claiming exists for: a selective filter whose matching
//! rows cluster in one region of the table, so a static contiguous split
//! strands all the accumulation work on one worker.
//!
//! Measure values are exact dyadic rationals (multiples of 0.25 well
//! below 2⁵³), so float sums are associative on this data and bit-for-bit
//! equality against the serial scan is the correct assertion. A separate
//! suite asserts thread-count-independent determinism on *inexact* data,
//! which only the morsel merge guarantees (its reduction order is fixed
//! by morsel index, not by claim timing).

use proptest::prelude::*;
use zv_storage::exec::{
    aggregate, aggregate_morsel, aggregate_morsel_sized, aggregate_parallel, compile_pred,
    GroupStrategy, RowSource,
};
use zv_storage::{
    Agg, Atom, BitmapDb, BitmapDbConfig, CmpOp, DataType, Database, Field, ParallelConfig,
    Predicate, RoaringBitmap, ScanDb, ScanDbConfig, SchedulingMode, Schema, SelectQuery, Table,
    TableBuilder, Value, XSpec, YSpec,
};

/// `rows` rows whose `region` column marks position in the table (8
/// equal stripes), so `region == k` predicates cluster their matches —
/// the skew shape. Measures are exactly representable.
fn clustered_table(rows: usize, products: u8) -> Table {
    let schema = Schema::new(vec![
        Field::new("region", DataType::Int),
        Field::new("year", DataType::Int),
        Field::new("product", DataType::Cat),
        Field::new("sales", DataType::Float),
        Field::new("units", DataType::Int),
    ]);
    let stripe = rows.div_ceil(8).max(1);
    let mut b = TableBuilder::new(schema);
    for i in 0..rows {
        let s = ((i * 37) % 801) as i64 - 400;
        b.push_row(vec![
            Value::Int((i / stripe) as i64),
            Value::Int(2010 + (i % 7) as i64),
            Value::str(format!("p{}", (i % products.max(1) as usize))),
            Value::Float(s as f64 * 0.25),
            Value::Int(s),
        ])
        .unwrap();
    }
    b.finish()
}

fn all_agg_query() -> SelectQuery {
    SelectQuery::new(
        XSpec::raw("year"),
        vec![
            YSpec::sum("sales"),
            YSpec::avg("sales"),
            YSpec::new("sales", Agg::Min),
            YSpec::new("sales", Agg::Max),
            YSpec::new("units", Agg::Sum),
            YSpec::new("*", Agg::Count),
        ],
    )
}

/// Serial, static×t, and morsel×t (tiny morsels, so even proptest-sized
/// tables fan out across many claims) must agree bit-for-bit.
fn assert_scheduling_equivalent<'t>(
    table: &'t Table,
    query: &SelectQuery,
    make_source: impl Fn() -> RowSource<'t>,
) {
    for strategy in [GroupStrategy::Dense, GroupStrategy::Hash] {
        let (serial, serial_scanned) =
            aggregate(table, query, &make_source(), strategy).expect("serial");
        for threads in [2usize, 3, 8] {
            let (stat, stat_scanned) =
                aggregate_parallel(table, query, &make_source(), strategy, threads)
                    .expect("static");
            assert_eq!(stat, serial, "static({threads}) differs under {strategy:?}");
            assert_eq!(stat_scanned, serial_scanned);
            for morsel_rows in [64usize, 257] {
                let (mor, mor_scanned, _) = aggregate_morsel_sized(
                    table,
                    query,
                    &make_source(),
                    strategy,
                    threads,
                    morsel_rows,
                )
                .expect("morsel");
                assert_eq!(
                    mor, serial,
                    "morsel({threads}, {morsel_rows}) differs under {strategy:?}"
                );
                assert_eq!(mor_scanned, serial_scanned);
            }
        }
    }
}

fn arb_query() -> impl Strategy<Value = SelectQuery> {
    (0u8..2, any::<bool>()).prop_map(|(z, binned)| {
        let x = if binned {
            XSpec::binned("year", 3.0)
        } else {
            XSpec::raw("year")
        };
        let mut q = SelectQuery {
            x,
            ..all_agg_query()
        };
        if z == 1 {
            q = q.with_z("product");
        }
        q
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Skewed filtered scans: all matches cluster in one of 8 stripes.
    #[test]
    fn skewed_filtered_sources(
        rows in 1usize..1200,
        products in 1u8..6,
        stripe in 0i64..8,
        query in arb_query(),
    ) {
        let table = clustered_table(rows, products);
        let pred = Predicate::num_eq("region", stripe as f64);
        let make = || RowSource::Filtered {
            n_rows: table.num_rows(),
            pred: compile_pred(&table, &pred).unwrap(),
        };
        assert_scheduling_equivalent(&table, &query, make);
    }

    /// Skew composed with a residual numeric filter.
    #[test]
    fn skewed_residual_sources(
        rows in 1usize..1200,
        stripe in 0i64..8,
        t in -50i32..50,
        query in arb_query(),
    ) {
        let table = clustered_table(rows, 4);
        let pred = Predicate::num_eq("region", stripe as f64).and(Predicate::atom(Atom::NumCmp {
            col: "sales".into(),
            op: CmpOp::Gt,
            value: t as f64 * 0.25,
        }));
        let make = || RowSource::Filtered {
            n_rows: table.num_rows(),
            pred: compile_pred(&table, &pred).unwrap(),
        };
        assert_scheduling_equivalent(&table, &query, make);
    }

    /// Uniform (unfiltered and bitmap) sources stay equivalent too.
    #[test]
    fn uniform_sources(rows in 1usize..1200, stride in 1u32..5, query in arb_query()) {
        let table = clustered_table(rows, 4);
        assert_scheduling_equivalent(&table, &query, || RowSource::All(table.num_rows()));
        let bm: RoaringBitmap =
            (0..table.num_rows() as u32).filter(|r| r % stride == 0).collect();
        assert_scheduling_equivalent(&table, &query, || RowSource::Bitmap(bm.clone()));
    }

    /// Morsel float sums must be bit-for-bit identical across thread
    /// counts and repeated runs even on *inexact* measures (0.1 steps):
    /// the reduction order is a function of morsel indices only.
    #[test]
    fn morsel_runs_are_reproducible_on_inexact_floats(
        rows in 64usize..900,
        threads_a in 2usize..8,
        threads_b in 2usize..8,
    ) {
        let schema = Schema::new(vec![
            Field::new("key", DataType::Int),
            Field::new("val", DataType::Float),
        ]);
        let mut b = TableBuilder::new(schema);
        for i in 0..rows {
            b.push_row(vec![
                Value::Int((i % 13) as i64),
                Value::Float(0.1 + (i % 89) as f64 * 0.3),
            ])
            .unwrap();
        }
        let table = b.finish();
        let q = SelectQuery::new(XSpec::raw("key"), vec![YSpec::sum("val"), YSpec::avg("val")]);
        let src = RowSource::All(table.num_rows());
        for strategy in [GroupStrategy::Dense, GroupStrategy::Hash] {
            let (a, _, _) =
                aggregate_morsel_sized(&table, &q, &src, strategy, threads_a, 64).unwrap();
            let (b, _, _) =
                aggregate_morsel_sized(&table, &q, &src, strategy, threads_b, 64).unwrap();
            prop_assert_eq!(a.groups.len(), b.groups.len());
            for (ga, gb) in a.groups.iter().zip(&b.groups) {
                prop_assert_eq!(&ga.key, &gb.key);
                prop_assert_eq!(&ga.xs, &gb.xs);
                prop_assert_eq!(ga.ys.len(), gb.ys.len());
                for (ya, yb) in ga.ys.iter().zip(&gb.ys) {
                    prop_assert_eq!(ya.len(), yb.len());
                    for (va, vb) in ya.iter().zip(yb) {
                        prop_assert_eq!(
                            va.to_bits(),
                            vb.to_bits(),
                            "drift between {} and {} threads under {:?}",
                            threads_a,
                            threads_b,
                            strategy
                        );
                    }
                }
            }
        }
    }
}

/// Engine-level: both engines forced into serial / static / morsel
/// routing must agree query-for-query on a table large enough for real
/// production-size morsels, with the matches clustered in one stripe.
#[test]
fn engines_agree_across_scheduling_modes_under_skew() {
    let table = std::sync::Arc::new(clustered_table(40_000, 5));
    let serial = ParallelConfig {
        threads: 1,
        min_parallel_rows: usize::MAX,
        ..Default::default()
    };
    let stat = ParallelConfig {
        threads: 4,
        min_parallel_rows: 0,
        sched: SchedulingMode::Static,
        ..Default::default()
    };
    let morsel = ParallelConfig {
        threads: 4,
        min_parallel_rows: 0,
        sched: SchedulingMode::Morsel,
        ..Default::default()
    };

    let queries: Vec<SelectQuery> = (0..8)
        .map(|stripe| {
            all_agg_query()
                .with_z("product")
                .with_predicate(Predicate::num_eq("region", stripe as f64))
        })
        .chain([all_agg_query(), all_agg_query().with_z("product")])
        .collect();

    let bitmap = |parallel| {
        BitmapDb::with_config(
            table.clone(),
            BitmapDbConfig {
                parallel,
                ..BitmapDbConfig::uncached()
            },
        )
    };
    let scan = |parallel| {
        ScanDb::with_config(
            table.clone(),
            ScanDbConfig {
                parallel,
                ..ScanDbConfig::uncached()
            },
        )
    };

    let reference = bitmap(serial);
    let engines: Vec<(&str, Box<dyn Database>)> = vec![
        ("bitmap/static", Box::new(bitmap(stat))),
        ("bitmap/morsel", Box::new(bitmap(morsel))),
        ("scan/serial", Box::new(scan(serial))),
        ("scan/static", Box::new(scan(stat))),
        ("scan/morsel", Box::new(scan(morsel))),
    ];
    for q in &queries {
        let expect = reference.execute(q).unwrap();
        for (label, db) in &engines {
            assert_eq!(db.execute(q).unwrap(), expect, "{label} diverged");
        }
    }

    // The morsel engines must actually have gone through the claiming
    // path, and every dispatched morsel must be accounted for.
    for (label, db) in &engines {
        let snap = db.stats().snapshot();
        if label.ends_with("morsel") {
            assert!(snap.morsel_scans > 0, "{label} never claimed morsels");
            assert!(snap.morsels_dispatched >= snap.morsel_scans);
        } else {
            assert_eq!(snap.morsel_scans, 0, "{label} must not report morsels");
        }
    }
}

/// The `ZV_SCHED_*` overrides the CI scheduling matrix uses must produce
/// the configs the matrix names (spec-level: the env-reading wrapper is
/// a two-line `std::env::var` shim over this).
#[test]
fn scheduling_matrix_env_specs() {
    let serial = ParallelConfig::from_env_spec(Some("serial"), None, None, None, None);
    assert_eq!(serial.threads_for(usize::MAX - 1), 1);
    for (mode, sched) in [
        ("static", SchedulingMode::Static),
        ("morsel", SchedulingMode::Morsel),
    ] {
        // The matrix combines a forced scheduler with ZV_SCHED_MIN_ROWS=0
        // (tiny scans go parallel) and ZV_SCHED_MORSEL_ROWS=256 (tiny
        // tables still split into many claimable morsels).
        let cfg =
            ParallelConfig::from_env_spec(Some(mode), Some("2"), Some("0"), Some("256"), None);
        assert_eq!(cfg.sched, sched);
        assert_eq!(cfg.threads, 2);
        assert_eq!(cfg.morsel_rows, 256);
        assert_eq!(
            cfg.threads_for(1),
            2,
            "forced modes must fan out tiny scans"
        );
    }
}

/// Full-size morsels on a multi-morsel table (no size hook): the
/// production path end to end.
#[test]
fn production_morsel_size_multi_morsel_scan() {
    let table = clustered_table(40_000, 5);
    let q = all_agg_query().with_z("product");
    let src = RowSource::All(table.num_rows());
    for strategy in [GroupStrategy::Dense, GroupStrategy::Hash] {
        let (serial, scanned) = aggregate(&table, &q, &src, strategy).unwrap();
        let (mor, mor_scanned, metrics) = aggregate_morsel(&table, &q, &src, strategy, 3).unwrap();
        assert_eq!(mor, serial);
        assert_eq!(mor_scanned, scanned);
        let m = metrics.expect("40k rows spans 3 production morsels");
        assert_eq!(m.morsels, 3);
        assert_eq!(m.per_worker.iter().sum::<u64>(), 3);
    }
}

/// Batched claiming (`claim_batch > 1`) must be invisible to results:
/// partials stay tagged per morsel, so every batch size × thread count
/// reproduces the unbatched morsel run bit-for-bit — inexact floats
/// included — while claim telemetry still accounts for every morsel.
#[test]
fn claim_batching_preserves_ordered_merge_determinism() {
    use zv_storage::exec::aggregate_morsel_ctx;
    use zv_storage::QueryCtx;

    let table = clustered_table(9_000, 5);
    let q = all_agg_query().with_z("product");
    let src = RowSource::All(table.num_rows());
    for strategy in [GroupStrategy::Dense, GroupStrategy::Hash] {
        let (reference, scanned, _) =
            aggregate_morsel_sized(&table, &q, &src, strategy, 2, 256).unwrap();
        for batch in [2usize, 5, 1024] {
            for threads in [2usize, 3, 7] {
                let ctx = QueryCtx::new();
                let (rt, b_scanned, metrics) =
                    aggregate_morsel_ctx(&table, &q, &src, strategy, threads, 256, batch, &ctx)
                        .unwrap();
                assert_eq!(
                    rt, reference,
                    "batch {batch} × {threads} threads diverged under {strategy:?}"
                );
                assert_eq!(b_scanned, scanned);
                let m = metrics.expect("multi-morsel scan reports telemetry");
                assert_eq!(m.morsels, 9_000u64.div_ceil(256));
                assert_eq!(m.per_worker.iter().sum::<u64>(), m.morsels);
                assert_eq!(ctx.stats().morsels_claimed, m.morsels);
            }
        }
    }
}
