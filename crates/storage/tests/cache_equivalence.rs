//! Cached ≡ bypassed equivalence: results served through the engine-level
//! result cache (`Database::run_request`) must be *bit-for-bit* identical
//! to cache-bypassed execution (`Database::execute` on a cache-disabled
//! engine), across both engines, serial and parallel scan routing, cold
//! and warm passes.
//!
//! Measures are exact dyadic rationals (multiples of 0.25 well below
//! 2⁵³), so float aggregation is associative on this data and bit-for-bit
//! equality is the correct assertion.

use proptest::prelude::*;
use std::sync::Arc;
use zv_storage::exec::ParallelConfig;
use zv_storage::{
    Agg, Atom, BitmapDb, BitmapDbConfig, CacheConfig, CmpOp, DataType, Database, DynDatabase,
    Field, Predicate, ResultTable, ScanDb, ScanDbConfig, Schema, SelectQuery, Table, TableBuilder,
    Value, XSpec, YSpec,
};

/// Deref a `run_request` answer (shared `Arc`s) for comparison against
/// by-value reference results.
fn deref_all(results: &[Arc<ResultTable>]) -> Vec<&ResultTable> {
    results.iter().map(|r| &**r).collect()
}

fn build_table(rows: &[(i64, u8, u8, i16)]) -> Arc<Table> {
    let schema = Schema::new(vec![
        Field::new("year", DataType::Int),
        Field::new("product", DataType::Cat),
        Field::new("location", DataType::Cat),
        Field::new("sales", DataType::Float),
    ]);
    let mut b = TableBuilder::new(schema);
    for &(y, p, l, s) in rows {
        b.push_row(vec![
            Value::Int(y),
            Value::str(format!("p{p}")),
            Value::str(format!("loc{l}")),
            Value::Float(s as f64 * 0.25),
        ])
        .unwrap();
    }
    b.finish_shared()
}

fn serial() -> ParallelConfig {
    ParallelConfig {
        threads: 1,
        min_parallel_rows: usize::MAX,
        ..Default::default()
    }
}

fn sharded() -> ParallelConfig {
    ParallelConfig {
        threads: 4,
        min_parallel_rows: 0,
        // Tiny morsels: the proptest tables are < MORSEL_ROWS rows, and
        // the default morsel size would silently degrade this fixture's
        // scans to the serial fallback (losing the real-fan-out coverage
        // this suite had when sharding was static).
        morsel_rows: 64,
        ..Default::default()
    }
}

/// `(label, cached engine, bypass engine)` for every engine × routing
/// combination. The bypass engine has the cache disabled outright, so its
/// `execute` path can never be influenced by caching. The cached engines
/// disable cost-based admission: the proptest tables are tiny, and these
/// tests assert warm-hit bookkeeping, not admission policy.
fn engine_pairs(table: &Arc<Table>) -> Vec<(String, DynDatabase, DynDatabase)> {
    let mut out: Vec<(String, DynDatabase, DynDatabase)> = Vec::new();
    for (routing, parallel) in [("serial", serial()), ("parallel", sharded())] {
        out.push((
            format!("bitmap/{routing}"),
            Arc::new(BitmapDb::with_config(
                table.clone(),
                BitmapDbConfig {
                    parallel,
                    cache: CacheConfig::admit_all(),
                    ..Default::default()
                },
            )),
            Arc::new(BitmapDb::with_config(
                table.clone(),
                BitmapDbConfig {
                    parallel,
                    ..BitmapDbConfig::uncached()
                },
            )),
        ));
        out.push((
            format!("scan/{routing}"),
            Arc::new(ScanDb::with_config(
                table.clone(),
                ScanDbConfig {
                    parallel,
                    cache: CacheConfig::admit_all(),
                    ..Default::default()
                },
            )),
            Arc::new(ScanDb::with_config(
                table.clone(),
                ScanDbConfig {
                    parallel,
                    ..ScanDbConfig::uncached()
                },
            )),
        ));
    }
    out
}

fn arb_rows() -> impl Strategy<Value = Vec<(i64, u8, u8, i16)>> {
    prop::collection::vec((2010i64..2020, 0u8..6, 0u8..3, -400i16..400), 1..250)
}

fn arb_pred() -> impl Strategy<Value = Predicate> {
    prop_oneof![
        Just(Predicate::True),
        (0u8..8).prop_map(|p| Predicate::cat_eq("product", format!("p{p}"))),
        (2008i64..2022).prop_map(|y| Predicate::num_eq("year", y as f64)),
        ((0u8..8), (0u8..4)).prop_map(|(p, l)| {
            Predicate::cat_eq("product", format!("p{p}"))
                .and(Predicate::cat_eq("location", format!("loc{l}")))
        }),
        (-50i32..50).prop_map(|t| {
            Predicate::atom(Atom::NumCmp {
                col: "sales".into(),
                op: CmpOp::Gt,
                value: t as f64 * 0.25,
            })
        }),
    ]
}

fn arb_query() -> impl Strategy<Value = SelectQuery> {
    (arb_pred(), 0u8..4, any::<bool>()).prop_map(|(pred, zs, binned)| {
        let x = if binned {
            XSpec::binned("year", 3.0)
        } else {
            XSpec::raw("year")
        };
        let mut q = SelectQuery::new(
            x,
            vec![
                YSpec::sum("sales"),
                YSpec::avg("sales"),
                YSpec::new("*", Agg::Count),
            ],
        )
        .with_predicate(pred);
        if zs & 1 != 0 {
            q = q.with_z("product");
        }
        if zs & 2 != 0 {
            q = q.with_z("location");
        }
        q
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Cold pass, warm pass, and bypass all agree — for both engines and
    /// both scan routings.
    #[test]
    fn cached_equals_bypassed(rows in arb_rows(), queries in prop::collection::vec(arb_query(), 1..4)) {
        let table = build_table(&rows);
        for (label, cached, bypass) in engine_pairs(&table) {
            let expected: Vec<_> = queries
                .iter()
                .map(|q| bypass.execute(q).expect("bypass"))
                .collect();
            let expected_refs: Vec<&ResultTable> = expected.iter().collect();
            let cold = cached.run_request(&queries).expect("cold request");
            prop_assert_eq!(deref_all(&cold), expected_refs.clone(), "cold ≠ bypass on {}", &label);
            let before = cached.stats().snapshot();
            let warm = cached.run_request(&queries).expect("warm request");
            let delta = cached.stats().snapshot().since(&before);
            prop_assert_eq!(deref_all(&warm), expected_refs, "warm ≠ bypass on {}", &label);
            prop_assert_eq!(delta.rows_scanned, 0, "warm pass scanned rows on {}", &label);
            prop_assert_eq!(delta.queries, 0, "warm pass executed queries on {}", &label);
            prop_assert_eq!(delta.cache_hits, queries.len() as u64, "hit count on {}", &label);
        }
    }

    /// A query whose conjunction lists the same atoms in a different
    /// order must hit the entry its permutation created.
    #[test]
    fn permuted_predicates_hit_the_same_entry(rows in arb_rows(), p in 0u8..6, l in 0u8..3) {
        let table = build_table(&rows);
        let a = Predicate::cat_eq("product", format!("p{p}"))
            .and(Predicate::cat_eq("location", format!("loc{l}")));
        let b = Predicate::cat_eq("location", format!("loc{l}"))
            .and(Predicate::cat_eq("product", format!("p{p}")));
        let qa = SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")]).with_predicate(a);
        let qb = SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")]).with_predicate(b);
        let db = BitmapDb::with_config(
            table.clone(),
            BitmapDbConfig {
                cache: CacheConfig::admit_all(),
                ..Default::default()
            },
        );
        let ra = db.run_request(std::slice::from_ref(&qa)).expect("first");
        let before = db.stats().snapshot();
        let rb = db.run_request(std::slice::from_ref(&qb)).expect("second");
        let delta = db.stats().snapshot().since(&before);
        prop_assert_eq!(delta.cache_hits, 1, "permutation must not miss");
        prop_assert_eq!(delta.rows_scanned, 0);
        prop_assert_eq!(&ra, &rb);
        let bypass = ScanDb::with_config(
            table,
            ScanDbConfig::uncached(),
        );
        prop_assert_eq!(&*rb[0], &bypass.execute(&qb).expect("bypass"));
    }
}

/// Zero-copy acceptance: warm hits return the cached allocation itself.
/// `Arc::ptr_eq` proves no deep copy happens anywhere between the cache
/// slot and the `run_request` caller — and that the cold pass cached the
/// very allocation it handed out.
#[test]
fn warm_hits_share_the_cached_allocation() {
    let rows: Vec<(i64, u8, u8, i16)> = (0..2_000)
        .map(|i| (2010 + (i % 6) as i64, (i % 4) as u8, (i % 3) as u8, 100))
        .collect();
    let table = build_table(&rows);
    let queries = vec![
        SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")]).with_z("product"),
        SelectQuery::new(XSpec::raw("year"), vec![YSpec::avg("sales")]),
    ];
    for db in [
        Arc::new(BitmapDb::new(table.clone())) as DynDatabase,
        Arc::new(ScanDb::new(table.clone())) as DynDatabase,
    ] {
        let cold = db.run_request(&queries).unwrap();
        let warm1 = db.run_request(&queries).unwrap();
        let warm2 = db.run_request(&queries).unwrap();
        for i in 0..queries.len() {
            assert!(
                Arc::ptr_eq(&cold[i], &warm1[i]),
                "{}: the cold pass must cache the allocation it returned",
                db.name()
            );
            assert!(
                Arc::ptr_eq(&warm1[i], &warm2[i]),
                "{}: warm hits must be pointer bumps, not copies",
                db.name()
            );
        }
    }
}

/// The acceptance-criterion shape, deterministically: a warm repeat of an
/// identical multi-query request performs *zero* table scans.
#[test]
fn warm_repeat_of_identical_request_scans_nothing() {
    let rows: Vec<(i64, u8, u8, i16)> = (0..5_000)
        .map(|i| {
            (
                2010 + (i % 7) as i64,
                (i % 5) as u8,
                (i % 3) as u8,
                ((i * 37 % 801) as i16) - 400,
            )
        })
        .collect();
    let table = build_table(&rows);
    let queries = vec![
        SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")]).with_z("product"),
        SelectQuery::new(XSpec::raw("year"), vec![YSpec::avg("sales")])
            .with_predicate(Predicate::cat_eq("location", "loc1")),
        SelectQuery::new(
            XSpec::binned("year", 2.0),
            vec![YSpec::new("*", Agg::Count)],
        ),
    ];
    for db in [
        Arc::new(BitmapDb::new(table.clone())) as DynDatabase,
        Arc::new(ScanDb::new(table.clone())) as DynDatabase,
    ] {
        let cold = db.run_request(&queries).unwrap();
        let before = db.stats().snapshot();
        let warm = db.run_request(&queries).unwrap();
        let delta = db.stats().snapshot().since(&before);
        assert_eq!(cold, warm, "{}", db.name());
        assert_eq!(
            delta.rows_scanned,
            0,
            "{}: warm repeat must not scan",
            db.name()
        );
        assert_eq!(
            delta.queries,
            0,
            "{}: warm repeat must not execute",
            db.name()
        );
        assert_eq!(delta.cache_hits, queries.len() as u64, "{}", db.name());
        assert_eq!(delta.cache_misses, 0, "{}", db.name());
        assert_eq!(
            delta.requests,
            1,
            "{}: the round trip itself still counts",
            db.name()
        );
    }
}
