//! IVM chaos: deterministic fault injection against the
//! [`FaultPoint::IvmMerge`] chaos point.
//!
//! The invariant under test (ISSUE: tentpole correctness bar): a fault
//! injected mid-merge must leave the cache bit-for-bit untouched and the
//! query silently falls back to a full scan — the answer is still exact,
//! the tick is booked as an ordinary miss (never an `ivm_hit`), the
//! fault is counted in `CacheStats::ivm_merge_faults`, and the engine
//! recovers on the very next tick (the fallback's fresh entry serves as
//! the new ancestor).
//!
//! Like the scan chaos suite, every test replays the pure
//! [`FaultSpec::fires`] decision the cache is about to make, so outcomes
//! are asserted exactly — no flakes. Scans run serial (the serial path
//! carries no scan injection points), isolating the merge fault.
//!
//! CI's `ivm-live` leg re-runs this suite with `ZV_FAULT_SEED` /
//! `ZV_FAULT_RATE` armed; [`env_or_default_spec`] picks those up.

use std::sync::Arc;
use zv_storage::exec::ParallelConfig;
use zv_storage::fault::{FaultPoint, FaultSpec};
use zv_storage::{
    CacheConfig, DataType, Database, Field, ScanDb, ScanDbConfig, Schema, SelectQuery, Table,
    TableBuilder, Value, XSpec, YSpec,
};

fn build_table(rows: &[(i64, i16)]) -> Arc<Table> {
    let schema = Schema::new(vec![
        Field::new("year", DataType::Int),
        Field::new("sales", DataType::Float),
    ]);
    let mut b = TableBuilder::new(schema);
    for &(y, s) in rows {
        b.push_row(row(y, s)).unwrap();
    }
    b.finish_shared()
}

fn row(y: i64, s: i16) -> Vec<Value> {
    vec![Value::Int(y), Value::Float(s as f64 * 0.25)]
}

fn initial_rows() -> Vec<(i64, i16)> {
    (0..2_000)
        .map(|i| (2010 + i % 6, ((i * 31 % 401) as i16) - 200))
        .collect()
}

fn sum_by_year() -> SelectQuery {
    SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")])
}

/// Serial scans + the given fault spec: the only reachable injection
/// points are the cache's own (`CacheInsert`, `CacheDerive`, `IvmMerge`).
fn chaos_db(table: Arc<Table>, spec: FaultSpec) -> ScanDb {
    ScanDb::with_config(
        table,
        ScanDbConfig {
            parallel: ParallelConfig {
                threads: 1,
                min_parallel_rows: usize::MAX,
                fault: spec,
                ..Default::default()
            },
            cache: CacheConfig::admit_all(),
            ..Default::default()
        },
    )
}

fn reference(table: Arc<Table>, q: &SelectQuery) -> zv_storage::ResultTable {
    let mut cfg = ScanDbConfig::uncached();
    cfg.parallel.fault = FaultSpec::disabled();
    ScanDb::with_config(table, cfg).execute(q).unwrap()
}

/// The spec CI's chaos leg forces via the environment, or a fixed-seed
/// default so the suite is chaotic even in a plain `cargo test`.
fn env_or_default_spec() -> FaultSpec {
    let env = FaultSpec::from_env();
    if env.is_enabled() {
        env
    } else {
        FaultSpec::with_rate(0xC0FFEE, 0.5)
    }
}

/// The acceptance scenario, fully choreographed: pick a seed whose spec
/// faults the *first* merge but not the second and never drops a cache
/// insert. Tick 1 faults mid-merge → exact answer via full-scan
/// fallback, cache untouched by the merge; tick 2 delta-merges off the
/// fallback's entry → the engine healed itself.
#[test]
fn merge_fault_falls_back_cleanly_and_next_tick_recovers() {
    let spec = (0u64..)
        .map(|seed| FaultSpec::with_rate(seed, 0.5))
        .find(|s| {
            s.fires(FaultPoint::IvmMerge, 0, 0)
                && !s.fires(FaultPoint::IvmMerge, 1, 0)
                && (0..8).all(|i| !s.fires(FaultPoint::CacheInsert, i, 0))
        })
        .expect("a choreographed seed exists");
    let initial = initial_rows();
    let db = chaos_db(build_table(&initial), spec);
    let q = sum_by_year();
    db.run_request(std::slice::from_ref(&q)).unwrap();

    // ---- Tick 1: the merge faults. ----
    db.append_rows(&[row(2011, 40), row(2016, -8), row(2013, 0)])
        .unwrap();
    let cache_before = db.cache_stats().unwrap();
    let before = db.stats().snapshot();
    let got = db
        .run_request(std::slice::from_ref(&q))
        .unwrap()
        .pop()
        .unwrap();
    let delta = db.stats().snapshot().since(&before);
    assert_eq!(
        &*got,
        &reference(db.table(), &q),
        "faulted tick still answers exactly (full-scan fallback)"
    );
    assert_eq!(delta.ivm_hits, 0, "a faulted merge is not an IVM hit");
    assert_eq!(delta.ivm_rows_scanned, 0);
    assert_eq!(delta.cache_misses, 1, "booked as an ordinary miss");
    assert_eq!(delta.queries, 1, "the fallback executed in full");
    assert_eq!(delta.rows_scanned, (initial.len() + 3) as u64);

    let cache_after = db.cache_stats().unwrap();
    assert_eq!(cache_after.ivm_merge_faults, 1, "the fault was counted");
    assert_eq!(cache_after.ivm_hits, 0);
    // The merge itself left the cache untouched: no eviction, no
    // invalidation, and exactly one new entry — the fallback's own
    // insert under the new version. The pre-append ancestor survives.
    assert_eq!(cache_after.entries, cache_before.entries + 1);
    assert_eq!(cache_after.insertions, cache_before.insertions + 1);
    assert_eq!(cache_after.evictions, cache_before.evictions);
    assert_eq!(cache_after.invalidations, cache_before.invalidations);

    // ---- Tick 2: the next merge is clean — silent recovery. ----
    db.append_rows(&[row(2010, 100), row(2015, 8)]).unwrap();
    let before = db.stats().snapshot();
    let got = db
        .run_request(std::slice::from_ref(&q))
        .unwrap()
        .pop()
        .unwrap();
    let delta = db.stats().snapshot().since(&before);
    assert_eq!(&*got, &reference(db.table(), &q));
    assert_eq!(
        delta.ivm_hits, 1,
        "tick 2 delta-merges off the fallback entry"
    );
    assert_eq!(delta.ivm_rows_scanned, 2, "only tick 2's appended rows");
    assert_eq!(delta.rows_scanned, 0);
    assert_eq!(
        db.cache_stats().unwrap().ivm_merge_faults,
        1,
        "no new fault"
    );
}

/// Whatever spec the environment armed (CI's chaos leg) or the default:
/// replay each tick's merge decision and assert the exact outcome —
/// faulted ticks are misses with the fault counted, clean ticks are IVM
/// hits scanning only the delta, and every tick answers bit-exactly.
#[test]
fn armed_spec_replay_every_tick_exact() {
    let spec = env_or_default_spec();
    let initial = initial_rows();
    let db = chaos_db(build_table(&initial), spec);
    let q = sum_by_year();
    db.run_request(std::slice::from_ref(&q)).unwrap();

    let mut expected_faults = 0u64;
    let mut merge_seq = 0u64;
    let mut table_rows = initial.len();
    for t in 0i64..6 {
        let batch: Vec<Vec<Value>> = (0..(1 + t % 3))
            .map(|j| row(2010 + (t + j) % 7, (8 * (t - 2) + j) as i16))
            .collect();
        db.append_rows(&batch).unwrap();
        table_rows += batch.len();

        // Replay the decision the cache will make. Inserts may be
        // dropped by `CacheInsert` faults, in which case no ancestor is
        // cached and the tick can't even attempt a merge. (Only one
        // query family exists here, so any entry is an ancestor.)
        let will_attempt = db.cache_stats().unwrap().entries > 0;
        let will_fault = will_attempt && spec.fires(FaultPoint::IvmMerge, merge_seq, 0);

        let before = db.stats().snapshot();
        let got = db
            .run_request(std::slice::from_ref(&q))
            .unwrap()
            .pop()
            .unwrap();
        let delta = db.stats().snapshot().since(&before);
        assert_eq!(
            &*got,
            &reference(db.table(), &q),
            "tick {t}: exact under chaos"
        );
        if will_attempt {
            merge_seq += 1;
            if will_fault {
                expected_faults += 1;
                assert_eq!(delta.ivm_hits, 0, "tick {t}: faulted merge is a miss");
                assert_eq!(delta.cache_misses, 1, "tick {t}");
                assert_eq!(delta.rows_scanned, table_rows as u64, "tick {t}");
            } else {
                assert_eq!(delta.ivm_hits, 1, "tick {t}: clean merge is an IVM hit");
                // `CacheInsert` faults may have dropped intermediate
                // entries, making the newest surviving ancestor a few
                // batches old — the delta then spans those batches, but
                // never reaches back into the initial table.
                assert!(
                    delta.ivm_rows_scanned >= batch.len() as u64
                        && delta.ivm_rows_scanned <= (table_rows - initial.len()) as u64,
                    "tick {t}: delta scan {} outside [{}, {}]",
                    delta.ivm_rows_scanned,
                    batch.len(),
                    table_rows - initial.len()
                );
                assert_eq!(delta.rows_scanned, 0, "tick {t}");
            }
        }
        assert_eq!(
            db.cache_stats().unwrap().ivm_merge_faults,
            expected_faults,
            "tick {t}: fault ledger exact"
        );
    }
}
