//! Incremental view maintenance ≡ full recompute: after an append, a
//! cached query answered by delta-merging the appended row range into its
//! pre-append cached result must be *bit-for-bit* identical to executing
//! the query from scratch on the post-append table — across both engines,
//! serial and morsel-parallel routing, every delta-able aggregate
//! (SUM/COUNT/MIN/MAX and AVG via its SUM+COUNT companion state), and
//! chained ticks where one tick's merged entry is the next tick's
//! ancestor.
//!
//! Measures are exact dyadic rationals (multiples of 0.25 well below
//! 2⁵³), so float aggregation is associative on this data and bit-for-bit
//! equality is the correct assertion.
//!
//! The ledger is asserted exactly: an IVM-answered query increments
//! `ivm_hits` (not `cache_hits`, not `cache_misses`, not `queries`) and
//! charges `ivm_rows_scanned` with precisely the appended row count —
//! never the full table.

use proptest::prelude::*;
use std::sync::Arc;
use zv_storage::exec::ParallelConfig;
use zv_storage::{
    Agg, Atom, BitmapDb, BitmapDbConfig, CacheConfig, CmpOp, DataType, DynDatabase, Field,
    Predicate, ResultTable, ScanDb, ScanDbConfig, Schema, SelectQuery, Table, TableBuilder, Value,
    XSpec, YSpec,
};

fn deref_all(results: &[Arc<ResultTable>]) -> Vec<&ResultTable> {
    results.iter().map(|r| &**r).collect()
}

fn build_table(rows: &[(i64, u8, u8, i16)]) -> Arc<Table> {
    let schema = Schema::new(vec![
        Field::new("year", DataType::Int),
        Field::new("product", DataType::Cat),
        Field::new("location", DataType::Cat),
        Field::new("sales", DataType::Float),
    ]);
    let mut b = TableBuilder::new(schema);
    for &(y, p, l, s) in rows {
        b.push_row(row(y, p, l, s)).unwrap();
    }
    b.finish_shared()
}

fn row(y: i64, p: u8, l: u8, s: i16) -> Vec<Value> {
    vec![
        Value::Int(y),
        Value::str(format!("p{p}")),
        Value::str(format!("loc{l}")),
        Value::Float(s as f64 * 0.25),
    ]
}

// Both configs pin `fault` disabled: this suite asserts bit-for-bit
// equivalence and exact ledgers, which an env-armed injected panic is
// *supposed* to break — fault behavior on the IVM path has its own
// suite (`ivm_chaos.rs`, which does read `ZV_FAULT_*`).
fn serial() -> ParallelConfig {
    ParallelConfig {
        threads: 1,
        min_parallel_rows: usize::MAX,
        fault: zv_storage::FaultSpec::disabled(),
        ..Default::default()
    }
}

fn sharded() -> ParallelConfig {
    ParallelConfig {
        threads: 4,
        min_parallel_rows: 0,
        // Tiny morsels so the small proptest tables still fan out across
        // threads instead of degrading to the serial fallback.
        morsel_rows: 64,
        fault: zv_storage::FaultSpec::disabled(),
        ..Default::default()
    }
}

/// Engine × routing matrix. `cached: true` builds the engine under test
/// (admission disabled — these tests assert IVM bookkeeping, not
/// admission policy); `cached: false` builds the same engine with the
/// cache removed outright, used as the full-recompute reference.
fn make(engine: &str, table: Arc<Table>, parallel: ParallelConfig, cached: bool) -> DynDatabase {
    match (engine, cached) {
        ("bitmap", true) => Arc::new(BitmapDb::with_config(
            table,
            BitmapDbConfig {
                parallel,
                cache: CacheConfig::admit_all(),
                ..Default::default()
            },
        )),
        ("bitmap", false) => Arc::new(BitmapDb::with_config(
            table,
            BitmapDbConfig {
                parallel,
                ..BitmapDbConfig::uncached()
            },
        )),
        (_, true) => Arc::new(ScanDb::with_config(
            table,
            ScanDbConfig {
                parallel,
                cache: CacheConfig::admit_all(),
                ..Default::default()
            },
        )),
        _ => Arc::new(ScanDb::with_config(
            table,
            ScanDbConfig {
                parallel,
                ..ScanDbConfig::uncached()
            },
        )),
    }
}

fn matrix() -> Vec<(String, &'static str, ParallelConfig)> {
    let mut out = Vec::new();
    for engine in ["bitmap", "scan"] {
        for (routing, parallel) in [("serial", serial()), ("morsel", sharded())] {
            out.push((format!("{engine}/{routing}"), engine, parallel));
        }
    }
    out
}

fn arb_rows() -> impl Strategy<Value = Vec<(i64, u8, u8, i16)>> {
    prop::collection::vec((2010i64..2020, 0u8..6, 0u8..3, -400i16..400), 1..200)
}

/// Appended rows draw from a *wider* domain than the initial table so
/// appends routinely introduce brand-new group keys, x values, and
/// dictionary codes the cached result has never seen.
fn arb_appended() -> impl Strategy<Value = Vec<(i64, u8, u8, i16)>> {
    prop::collection::vec((2008i64..2023, 0u8..8, 0u8..5, -400i16..400), 1..60)
}

fn arb_pred() -> impl Strategy<Value = Predicate> {
    prop_oneof![
        Just(Predicate::True),
        (0u8..8).prop_map(|p| Predicate::cat_eq("product", format!("p{p}"))),
        (2008i64..2022).prop_map(|y| Predicate::num_eq("year", y as f64)),
        ((0u8..8), (0u8..4)).prop_map(|(p, l)| {
            Predicate::cat_eq("product", format!("p{p}"))
                .and(Predicate::cat_eq("location", format!("loc{l}")))
        }),
        (-50i32..50).prop_map(|t| {
            Predicate::atom(Atom::NumCmp {
                col: "sales".into(),
                op: CmpOp::Gt,
                value: t as f64 * 0.25,
            })
        }),
    ]
}

/// Queries cover every delta-able aggregate: SUM, AVG (companion-state
/// path), COUNT(*), MIN, MAX.
fn arb_query() -> impl Strategy<Value = SelectQuery> {
    (arb_pred(), 0u8..4, any::<bool>(), any::<bool>()).prop_map(|(pred, zs, binned, minmax)| {
        let x = if binned {
            XSpec::binned("year", 3.0)
        } else {
            XSpec::raw("year")
        };
        let ys = if minmax {
            vec![
                YSpec::new("sales", Agg::Min),
                YSpec::new("sales", Agg::Max),
                YSpec::avg("sales"),
            ]
        } else {
            vec![
                YSpec::sum("sales"),
                YSpec::avg("sales"),
                YSpec::new("*", Agg::Count),
            ]
        };
        let mut q = SelectQuery::new(x, ys).with_predicate(pred);
        if zs & 1 != 0 {
            q = q.with_z("product");
        }
        if zs & 2 != 0 {
            q = q.with_z("location");
        }
        q
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The tentpole correctness bar: warm the cache, append random rows,
    /// re-run — the delta-merged answer equals full recompute bit-for-bit
    /// on both engines × serial/morsel, and the ledger shows the tick was
    /// answered by IVM alone, scanning exactly the appended rows.
    #[test]
    fn ivm_tick_equals_full_recompute(
        initial in arb_rows(),
        appended in arb_appended(),
        queries in prop::collection::vec(arb_query(), 1..4),
    ) {
        let rows: Vec<Vec<Value>> = appended.iter().map(|&(y, p, l, s)| row(y, p, l, s)).collect();
        for (label, engine, parallel) in matrix() {
            let db = make(engine, build_table(&initial), parallel, true);
            db.run_request(&queries).expect("cold pass");
            db.append_rows(&rows).unwrap();

            let before = db.stats().snapshot();
            let warm = db.run_request(&queries).expect("warm tick");
            let delta = db.stats().snapshot().since(&before);

            let bypass = make(engine, db.table(), parallel, false);
            let expected: Vec<_> = queries.iter().map(|q| bypass.execute(q).expect("bypass")).collect();
            let expected_refs: Vec<&ResultTable> = expected.iter().collect();
            prop_assert_eq!(deref_all(&warm), expected_refs, "delta-merged ≠ recompute on {}", &label);

            let n = queries.len() as u64;
            prop_assert_eq!(delta.ivm_hits, n, "every query IVM-answered on {}", &label);
            prop_assert_eq!(
                delta.ivm_rows_scanned,
                n * appended.len() as u64,
                "each IVM answer scans exactly the appended range on {}",
                &label
            );
            prop_assert_eq!(delta.rows_scanned, 0, "no full scans on {}", &label);
            prop_assert_eq!(delta.queries, 0, "no kernel executions on {}", &label);
            prop_assert_eq!(
                delta.cache_hits + delta.cache_derived_hits + delta.cache_misses,
                0,
                "IVM answers are their own ledger class on {}",
                &label
            );
        }
    }

    /// Chained ticks: each tick's merged entry becomes the next tick's
    /// ancestor, so every tick after the first is IVM-answered and scans
    /// only its own appended batch.
    #[test]
    fn merged_entries_chain_as_ancestors(
        initial in arb_rows(),
        ticks in prop::collection::vec(prop::collection::vec((2008i64..2023, 0u8..8, 0u8..5, -400i16..400), 1..20), 2..5),
        query in arb_query(),
    ) {
        for (label, engine, parallel) in matrix() {
            let db = make(engine, build_table(&initial), parallel, true);
            db.run_request(std::slice::from_ref(&query)).expect("cold pass");
            for (t, batch) in ticks.iter().enumerate() {
                let rows: Vec<Vec<Value>> = batch.iter().map(|&(y, p, l, s)| row(y, p, l, s)).collect();
                db.append_rows(&rows).unwrap();
                let before = db.stats().snapshot();
                let got = db.run_request(std::slice::from_ref(&query)).expect("tick").pop().unwrap();
                let delta = db.stats().snapshot().since(&before);
                let bypass = make(engine, db.table(), parallel, false);
                prop_assert_eq!(&*got, &bypass.execute(&query).expect("bypass"), "tick {} on {}", t, &label);
                prop_assert_eq!(delta.ivm_hits, 1, "tick {} IVM-answered on {}", t, &label);
                prop_assert_eq!(
                    delta.ivm_rows_scanned,
                    batch.len() as u64,
                    "tick {} scans only its own batch on {}",
                    t,
                    &label
                );
                prop_assert_eq!(delta.rows_scanned, 0, "tick {} on {}", t, &label);
            }
        }
    }
}

/// MIN/MAX fold direction, deterministically: appends that lower the min,
/// raise the max, do neither, and introduce a brand-new group.
#[test]
fn min_max_delta_merge_folds_correctly() {
    let initial: Vec<(i64, u8, u8, i16)> = vec![
        (2014, 0, 0, 40),  // year 2014: sales 10.0
        (2014, 1, 0, 80),  // year 2014: sales 20.0
        (2015, 0, 1, -20), // year 2015: sales -5.0
    ];
    let q = SelectQuery::new(
        XSpec::raw("year"),
        vec![YSpec::new("sales", Agg::Min), YSpec::new("sales", Agg::Max)],
    );
    for (label, engine, parallel) in matrix() {
        let db = make(engine, build_table(&initial), parallel, true);
        db.run_request(std::slice::from_ref(&q)).unwrap();
        // New min for 2014, no-op for 2015, brand-new year 2016.
        db.append_rows(&[
            row(2014, 2, 0, -400), // 2014 min drops to -100.0
            row(2015, 0, 0, 0),    // 2015 min/max unchanged by 0.0? no: max rises to 0.0
            row(2016, 3, 2, 120),  // new group
        ])
        .unwrap();
        let before = db.stats().snapshot();
        let got = db
            .run_request(std::slice::from_ref(&q))
            .unwrap()
            .pop()
            .unwrap();
        let delta = db.stats().snapshot().since(&before);
        let bypass = make(engine, db.table(), parallel, false);
        assert_eq!(&*got, &bypass.execute(&q).unwrap(), "{label}");
        assert_eq!(delta.ivm_hits, 1, "{label}");
        assert_eq!(delta.ivm_rows_scanned, 3, "{label}");
        let ys = &got.groups[0].ys;
        assert_eq!(ys[0], vec![-100.0, -5.0, 30.0], "{label}: min per year");
        assert_eq!(ys[1], vec![20.0, 0.0, 30.0], "{label}: max per year");
    }
}

/// Decline path: once the append chain outgrows the lineage window, the
/// ancestor's row count is no longer provable and the engine silently
/// falls back to a full recompute — still correct, zero IVM hits.
#[test]
fn lineage_overflow_declines_to_full_recompute() {
    let initial: Vec<(i64, u8, u8, i16)> = (0..50)
        .map(|i| (2010 + i % 5, (i % 4) as u8, (i % 3) as u8, 8))
        .collect();
    let q = SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")]);
    let db = make("scan", build_table(&initial), serial(), true);
    db.run_request(std::slice::from_ref(&q)).unwrap();
    // Push the cached version off the lineage chain (capacity 64).
    for i in 0..70 {
        db.append_rows(&[row(2011, 1, 1, 4 * (i % 3))]).unwrap();
    }
    let before = db.stats().snapshot();
    let got = db
        .run_request(std::slice::from_ref(&q))
        .unwrap()
        .pop()
        .unwrap();
    let delta = db.stats().snapshot().since(&before);
    let bypass = make("scan", db.table(), serial(), false);
    assert_eq!(&*got, &bypass.execute(&q).unwrap());
    assert_eq!(delta.ivm_hits, 0, "ancestor off the lineage chain");
    assert_eq!(delta.cache_misses, 1, "declined tick is an ordinary miss");
    assert_eq!(delta.queries, 1, "declined tick executes in full");
}

/// An IVM-answered tick publishes its merged result under the new
/// version: the immediate repeat is a plain warm hit that scans nothing.
#[test]
fn ivm_result_is_cached_for_the_next_repeat() {
    let initial: Vec<(i64, u8, u8, i16)> = (0..200)
        .map(|i| {
            (
                2010 + i % 6,
                (i % 5) as u8,
                (i % 3) as u8,
                ((i * 7 % 101) as i16) - 50,
            )
        })
        .collect();
    let queries = vec![
        SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")]).with_z("product"),
        SelectQuery::new(XSpec::binned("year", 2.0), vec![YSpec::avg("sales")]),
    ];
    for (label, engine, parallel) in matrix() {
        let db = make(engine, build_table(&initial), parallel, true);
        db.run_request(&queries).unwrap();
        db.append_rows(&[row(2012, 6, 1, 96), row(2010, 0, 0, -28)])
            .unwrap();
        let tick = db.run_request(&queries).unwrap();
        let before = db.stats().snapshot();
        let repeat = db.run_request(&queries).unwrap();
        let delta = db.stats().snapshot().since(&before);
        for (a, b) in tick.iter().zip(&repeat) {
            assert!(
                Arc::ptr_eq(a, b),
                "{label}: repeat must share the merged allocation"
            );
        }
        assert_eq!(delta.cache_hits, queries.len() as u64, "{label}");
        assert_eq!(delta.ivm_hits, 0, "{label}");
        assert_eq!(delta.rows_scanned, 0, "{label}");
        assert_eq!(delta.ivm_rows_scanned, 0, "{label}");
    }
}
