//! Disk-fault chaos against the durable-storage subsystem
//! ([`zv_storage::persist`]), in the style of `tests/chaos.rs`: every
//! fault decision is a pure function of `(seed, point, index)`, so each
//! scenario's outcome is predicted or replayed exactly — two runs of
//! the same seed must produce byte-identical ledgers, and recovery
//! after any injected fault must serve exactly the committed state.
//!
//! CI's `persist-chaos` leg re-runs this suite with `ZV_FAULT_SEED` /
//! `ZV_FAULT_RATE` forced; [`env_or_default_spec`] picks those up. The
//! `#[ignore]`d cold-start smoke (1M rows: dump, kill, reload, re-key)
//! runs there too via `-- --ignored`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use zv_storage::{
    CacheConfig, Column, DataType, Database, FaultPoint, FaultSpec, Field, PersistOptions,
    Persistence, QueryCtx, ScanDb, ScanDbConfig, Schema, SelectQuery, Table, Value, XSpec, YSpec,
};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "zv-persist-chaos-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).unwrap();
    }
    dir
}

/// The spec CI's persist-chaos leg forces via the environment, or a
/// fixed double-digit-rate default so the suite is chaotic even in a
/// plain `cargo test`.
fn env_or_default_spec() -> FaultSpec {
    let env = FaultSpec::from_env();
    if env.is_enabled() {
        env
    } else {
        FaultSpec::with_rate(0xD15C_FA07, 0.15)
    }
}

fn base_table() -> Arc<Table> {
    let schema = Schema::new(vec![
        Field::new("key", DataType::Int),
        Field::new("label", DataType::Cat),
        Field::new("val", DataType::Float),
    ]);
    let keys: Vec<i64> = (0..128).map(|i| (i % 11) as i64).collect();
    let vals: Vec<f64> = (0..128).map(|i| (i % 29) as f64 * 0.25).collect();
    let mut labels = zv_storage::CatColumn::new();
    for i in 0..128 {
        let code = labels.intern(["red", "green", "blue"][i % 3]);
        labels.push_code(code);
    }
    Arc::new(
        Table::from_columns(
            schema,
            vec![
                Column::Int(keys.into()),
                Column::Cat(labels),
                Column::Float(vals),
            ],
        )
        .unwrap(),
    )
}

fn batch(k: usize) -> Vec<Vec<Value>> {
    (0..(k % 4) + 1)
        .map(|r| {
            vec![
                Value::Int((k * 31 + r) as i64 - 40),
                Value::str(["red", "amber", "blue"][(k + r) % 3]),
                Value::Float((k * 3 + r) as f64 * 0.5),
            ]
        })
        .collect()
}

/// Contents fingerprint (schema + every row, float bits via Debug) —
/// deterministic across runs, independent of process-unique versions.
fn data_fingerprint(t: &Table) -> String {
    let rows: Vec<String> = (0..t.num_rows())
        .map(|i| format!("{:?}", t.row(i)))
        .collect();
    // Fields, not the whole Schema: its name→index map is a HashMap
    // whose Debug order is not deterministic.
    format!("{:?}|{}", t.schema().fields(), rows.join(";"))
}

fn assert_tables_identical(got: &Table, want: &Table, what: &str) {
    assert_eq!(got.version(), want.version(), "{what}: version");
    assert_eq!(
        data_fingerprint(got),
        data_fingerprint(want),
        "{what}: data"
    );
}

/// The acceptance scenario: a long append run with double-digit-percent
/// injected disk faults (torn WAL tails, failed fsyncs, short snapshot
/// writes, rename-window crashes). Every failed append leaves the
/// committed state untouched, poisoning is fail-stop until a checkpoint
/// heals it, recovery after the run serves EXACTLY the committed
/// table — and the whole ledger replays byte-identically under the
/// same seed.
#[test]
fn injected_disk_faults_never_corrupt_the_durable_prefix_and_replay_exactly() {
    let spec = env_or_default_spec();

    let run = |tag: &str| -> Vec<String> {
        let mut ledger = Vec::new();
        let dir = temp_dir(tag);
        // Seed the directory fault-free so the scenario always starts
        // from a valid snapshot, whatever the armed seed does later.
        {
            let (persist, recovered) = Persistence::open(&dir, PersistOptions::default()).unwrap();
            assert!(recovered.is_none(), "fresh dir");
            persist.checkpoint(&base_table()).unwrap();
        }

        let (persist, recovered) = Persistence::open(&dir, PersistOptions { fault: spec }).unwrap();
        // `committed` mirrors what an engine would have made visible:
        // it only advances when the WAL fsync succeeded first.
        let mut committed = recovered.unwrap();
        for i in 0..40usize {
            let rows = batch(i);
            // Durability before visibility, exactly as the engines do:
            // stage the mutation, log it, commit only on success.
            let mut next = committed.clone();
            next.append_rows(&rows).unwrap();
            match persist.log_append(next.version(), next.schema(), &rows) {
                Ok(()) => {
                    committed = next;
                    ledger.push(format!("append {i}: ok ({} rows)", rows.len()));
                }
                Err(e) => ledger.push(format!("append {i}: {e}")),
            }
            if persist.wal_poisoned() {
                // Fail-stop: the next append must refuse until healed.
                let refused = persist
                    .log_append(committed.version() + 1, committed.schema(), &batch(i))
                    .unwrap_err();
                ledger.push(format!("append {i} while poisoned: {refused}"));
                match persist.checkpoint(&committed) {
                    Ok(_) => {
                        assert!(!persist.wal_poisoned(), "checkpoint lifts poisoning");
                        ledger.push(format!("heal {i}: checkpoint ok"));
                    }
                    Err(e) => {
                        assert!(persist.wal_poisoned(), "failed checkpoint must not heal");
                        ledger.push(format!("heal {i}: {e}"));
                    }
                }
            }
        }
        let stats = persist.stats();
        ledger.push(format!("stats: {stats:?}"));
        assert_eq!(
            stats.wal_appends + stats.wal_append_failures,
            40 + ledger
                .iter()
                .filter(|l| l.contains("while poisoned"))
                .count() as u64,
            "every append attempt is accounted for"
        );
        drop(persist);

        // Crash here. Recovery must serve exactly the committed state:
        // no torn row ever visible, no committed batch lost.
        let (persist, recovered) = Persistence::open(&dir, PersistOptions::default()).unwrap();
        let recovered = recovered.unwrap();
        assert_tables_identical(&recovered, &committed, "post-chaos recovery");
        let report = persist.recovery_report();
        ledger.push(format!(
            "recovery: frames={} rows={} stale={} torn={} corrupt_snaps={} tmp={}",
            report.frames_replayed,
            report.rows_replayed,
            report.stale_frames_skipped,
            report.torn_bytes_truncated,
            report.corrupt_snapshots_skipped,
            report.tmp_files_removed,
        ));
        ledger.push(format!("final: {}", data_fingerprint(&recovered)));
        drop(persist);
        std::fs::remove_dir_all(&dir).unwrap();
        ledger
    };

    let first = run("a");
    let second = run("b");
    assert_eq!(first, second, "chaos ledger replays exactly");
    // The scenario must actually have been chaotic under the default
    // rate; an env-forced rate of 0 legitimately yields none.
    if env_or_default_spec().rate_ppm > 0 {
        assert!(
            first.iter().any(|l| l.contains("injected")),
            "no fault ever fired — the suite tested nothing: {first:?}"
        );
    }
}

/// Engine-level fail-stop: a torn WAL append aborts the mutation (the
/// visible table is bit-untouched), later appends refuse fast, a
/// checkpoint heals, and recovery serves exactly the post-heal history.
#[test]
fn torn_append_aborts_the_mutation_and_checkpoint_heals() {
    // Replay the injector's decisions: first engine append tears, the
    // surrounding checkpoint/fsync/write faults all stay quiet, and the
    // post-heal append is clean.
    let spec = (0..200_000u64)
        .map(|s| FaultSpec::with_rate(s, 0.5))
        .find(|spec| {
            spec.fires(FaultPoint::WalTearTail, 0, 0)
                && !spec.fires(FaultPoint::WalTearTail, 1, 0)
                && !spec.fires(FaultPoint::DiskWriteFail, 0, 0)
                && !spec.fires(FaultPoint::DiskWriteFail, 1, 0)
                && !spec.fires(FaultPoint::CrashBeforeRename, 0, 0)
                && !spec.fires(FaultPoint::CrashBeforeRename, 1, 0)
                && (0..3).all(|f| !spec.fires(FaultPoint::FsyncFail, f, 0))
        })
        .expect("a tear-then-heal seed exists");

    let dir = temp_dir("tear-heal");
    let mut cfg = ScanDbConfig::uncached();
    cfg.parallel.fault = spec;
    let db = ScanDb::open_durable(&dir, cfg, base_table).unwrap();
    let before = Database::table(&db);

    // Torn append: the error surfaces, the visible table is untouched.
    let err = db.append_rows(&batch(0)).unwrap_err();
    assert!(
        err.to_string().contains("torn WAL append"),
        "expected the injected tear, got: {err}"
    );
    let after = Database::table(&db);
    assert_tables_identical(&after, &before, "aborted mutation");
    assert!(db.persistence().unwrap().wal_poisoned());

    // Fail-stop: refuses fast until healed.
    let err = db.append_rows(&batch(1)).unwrap_err();
    assert!(err.to_string().contains("poisoned"), "got: {err}");
    db.checkpoint().unwrap();
    assert!(!db.persistence().unwrap().wal_poisoned());

    // Healed: the next append commits and is durable.
    db.append_rows(&batch(2)).unwrap();
    let committed = Database::table(&db);
    drop(db);
    let (_persist, recovered) = Persistence::open(&dir, PersistOptions::default()).unwrap();
    assert_tables_identical(&recovered.unwrap(), &committed, "post-heal recovery");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// CI cold-start smoke (run with `-- --ignored`): dump 1M rows, kill
/// without a drain checkpoint (a WAL tail is live), reload, and verify
/// the restored version is exact — so a cached-key query re-keys under
/// it and the first post-restart mutation mints a strictly newer
/// version (no stale cache entry can ever read as current).
#[test]
#[ignore = "cold-start smoke: ~1M-row snapshot; CI persist-chaos leg runs it"]
fn cold_start_reloads_a_million_rows_and_rekeys_the_cache() {
    let n = 1_000_000usize;
    let schema = Schema::new(vec![
        Field::new("key", DataType::Int),
        Field::new("val", DataType::Float),
    ]);
    let keys: Vec<i64> = (0..n).map(|i| (i % 37) as i64).collect();
    let vals: Vec<f64> = (0..n).map(|i| (i % 1013) as f64 * 0.25).collect();
    let big = Arc::new(
        Table::from_columns(schema, vec![Column::Int(keys.into()), Column::Float(vals)]).unwrap(),
    );

    let dir = temp_dir("cold-start");
    let mk_config = || {
        let mut cfg = ScanDbConfig {
            cache: CacheConfig::admit_all(),
            ..Default::default()
        };
        cfg.parallel.fault = FaultSpec::disabled();
        cfg
    };
    let groupby = SelectQuery::new(XSpec::raw("key"), vec![YSpec::sum("val")]);

    // Dump: snapshot the 1M rows, append one WAL batch, cache a result,
    // then "kill -9" (drop with no checkpoint — the WAL tail survives).
    let db = ScanDb::open_durable(&dir, mk_config(), || big.clone()).unwrap();
    db.append_rows(&[vec![Value::Int(7), Value::Float(0.5)]])
        .unwrap();
    let pre_kill_version = Database::table(&db).version();
    let ctx = QueryCtx::new();
    let reference = db
        .run_request_ctx(std::slice::from_ref(&groupby), &ctx)
        .unwrap();
    assert_eq!(
        db.cache_stats().unwrap().entries,
        1,
        "reference result was cached"
    );
    drop(db);

    // Cold start: recovery must land on the exact pre-kill version.
    let start = std::time::Instant::now();
    let db = ScanDb::open_durable(&dir, mk_config(), || {
        unreachable!("cold start must recover, not re-seed")
    })
    .unwrap();
    let cold_load = start.elapsed();
    let report = db.persistence().unwrap().recovery_report();
    assert_eq!(report.frames_replayed, 1);
    assert_eq!(Database::table(&db).num_rows(), n + 1);
    assert_eq!(Database::table(&db).version(), pre_kill_version);

    // The restored version keys the cache: the same query misses cold
    // (fresh cache), recomputes the identical answer, and re-caches
    // under the restored version.
    let ctx = QueryCtx::new();
    let reloaded = db
        .run_request_ctx(std::slice::from_ref(&groupby), &ctx)
        .unwrap();
    assert_eq!(format!("{reference:?}"), format!("{reloaded:?}"));
    assert_eq!(db.cache_stats().unwrap().entries, 1);

    // And the first post-restart mutation mints a strictly newer
    // version — restored versions can never collide forward.
    db.append_rows(&[vec![Value::Int(7), Value::Float(0.5)]])
        .unwrap();
    assert!(Database::table(&db).version() > pre_kill_version);
    eprintln!(
        "cold start: {} rows + 1 WAL frame reloaded in {cold_load:?}",
        n + 1
    );
    drop(db);
    std::fs::remove_dir_all(&dir).unwrap();
}
