//! Chaos suite: deterministic fault injection against real scans.
//!
//! Every test here leans on the purity of [`FaultSpec::fires`]: a fault
//! decision depends only on `(seed, point, index, epoch)`, so the test
//! *replays* the decisions the engine is about to make and asserts the
//! exact outcome — which morsel panics, whether the fan-out fails to
//! spawn, whether a cache insert is dropped. No sleeps, no retries-until
//! -it-happens, no flakes.
//!
//! The invariants under test (ROADMAP: fault isolation):
//!
//! * a panicking worker fails its own query cleanly
//!   (`StorageError::WorkerPanicked`) and nothing else — siblings stop,
//!   partials are dropped, the pool survives;
//! * a failed query leaves the result cache bit-for-bit as if it never
//!   ran;
//! * a retried query (advanced fault epoch) that lands on a clean epoch
//!   returns bit-for-bit the fault-free reference result;
//! * the serial path has no injection points, so degrading to serial
//!   always serves;
//! * poisoned locks (table, cache) recover instead of cascading.
//!
//! CI's chaos leg re-runs this suite with `ZV_FAULT_SEED` /
//! `ZV_FAULT_RATE` set; [`env_or_default_spec`] picks those up so the
//! same assertions hold under whatever seed the matrix forces.

use proptest::prelude::*;
use std::sync::Arc;
use zv_storage::cache::CacheStats;
use zv_storage::exec::ParallelConfig;
use zv_storage::fault::{self, FaultPoint, FaultSpec, PANIC_MARKER};
use zv_storage::{
    BitmapDb, BitmapDbConfig, CacheConfig, Column, DataType, Database, Field, QueryCtx, ScanDb,
    ScanDbConfig, SchedulingMode, Schema, SelectQuery, StorageError, Table, XSpec, YSpec,
};

const MILLION: usize = 1_000_000;

/// The 1M-row acceptance table (columnar build: cheap in debug): a
/// 37-ary group key and exactly-representable dyadic measures, so every
/// result comparison below is valid bit-for-bit.
fn million_row_table() -> Arc<Table> {
    static TABLE: std::sync::OnceLock<Arc<Table>> = std::sync::OnceLock::new();
    TABLE
        .get_or_init(|| {
            let schema = Schema::new(vec![
                Field::new("key", DataType::Int),
                Field::new("val", DataType::Float),
            ]);
            let keys: Vec<i64> = (0..MILLION).map(|i| (i % 37) as i64).collect();
            let vals: Vec<f64> = (0..MILLION).map(|i| (i % 1013) as f64 * 0.25).collect();
            Arc::new(
                Table::from_columns(schema, vec![Column::Int(keys.into()), Column::Float(vals)])
                    .unwrap(),
            )
        })
        .clone()
}

/// A smaller table for the per-case proptest work.
fn small_table() -> Arc<Table> {
    static TABLE: std::sync::OnceLock<Arc<Table>> = std::sync::OnceLock::new();
    TABLE
        .get_or_init(|| {
            let n = 65_536;
            let schema = Schema::new(vec![
                Field::new("key", DataType::Int),
                Field::new("val", DataType::Float),
            ]);
            let keys: Vec<i64> = (0..n).map(|i| (i % 23) as i64).collect();
            let vals: Vec<f64> = (0..n).map(|i| (i % 577) as f64 * 0.5).collect();
            Arc::new(
                Table::from_columns(schema, vec![Column::Int(keys.into()), Column::Float(vals)])
                    .unwrap(),
            )
        })
        .clone()
}

fn groupby() -> SelectQuery {
    SelectQuery::new(XSpec::raw("key"), vec![YSpec::sum("val")])
}

/// The spec CI's chaos leg forces via the environment, or a fixed
/// ~15%-rate default so the suite is chaotic even in a plain `cargo
/// test`.
fn env_or_default_spec() -> FaultSpec {
    let env = FaultSpec::from_env();
    if env.is_enabled() {
        env
    } else {
        FaultSpec::with_rate(0xC0FFEE, 0.15)
    }
}

/// Fault-free reference engine over `table`: env-forced scheduling
/// still applies, but injection is explicitly disabled — the reference
/// must be the never-faulted answer even when CI's chaos leg arms
/// `ZV_FAULT_*` process-wide (which both engines' *default* configs
/// would otherwise pick up).
fn reference_db(table: Arc<Table>) -> ScanDb {
    let mut cfg = ScanDbConfig::uncached();
    cfg.parallel.fault = FaultSpec::disabled();
    ScanDb::with_config(table, cfg)
}

fn chaos_parallel(spec: FaultSpec, threads: usize, morsel_rows: usize) -> ParallelConfig {
    ParallelConfig {
        threads,
        min_parallel_rows: 0,
        sched: SchedulingMode::Morsel,
        morsel_rows,
        fault: spec,
        ..Default::default()
    }
}

/// Replay of the engine's decision: the morsel the scan will panic on
/// (the cursor hands morsels out in index order, so the lowest firing
/// index always gets scanned and wins attribution).
fn lowest_firing(spec: &FaultSpec, n_morsels: usize, epoch: u64) -> Option<u64> {
    (0..n_morsels as u64).find(|&m| spec.fires(FaultPoint::ChunkScanPanic, m, epoch))
}

fn spawn_fires(spec: &FaultSpec, n_morsels: usize, epoch: u64) -> bool {
    spec.fires(FaultPoint::WorkerSpawn, n_morsels as u64, epoch)
}

/// Will a parallel attempt at `epoch` fail?
fn attempt_fails(spec: &FaultSpec, n_morsels: usize, epoch: u64) -> bool {
    spawn_fires(spec, n_morsels, epoch) || lowest_firing(spec, n_morsels, epoch).is_some()
}

/// Cache fields that must be unaffected by a failed query.
fn cache_state(stats: &CacheStats) -> (usize, usize, u64, u64, u64) {
    (
        stats.entries,
        stats.bytes,
        stats.insertions,
        stats.evictions,
        stats.invalidations,
    )
}

/// The acceptance scenario: a 1M-row morsel scan under 4 workers with
/// double-digit-percent injected faults. The failure is predicted
/// exactly (spawn failure vs. lowest panicking morsel), bookkeeping is
/// exact, the cache is bit-identical to the query never having run, and
/// the engine keeps serving (the serial path has no injection points).
#[test]
fn injected_worker_panics_fail_cleanly_and_engine_keeps_serving() {
    fault::silence_injected_panics();
    let spec = env_or_default_spec();
    let morsel_rows = 4096;
    let n_morsels = MILLION.div_ceil(morsel_rows);
    let db = ScanDb::with_config(
        million_row_table(),
        ScanDbConfig {
            parallel: chaos_parallel(spec, 4, morsel_rows),
            cache: CacheConfig::admit_all(),
            ..Default::default()
        },
    );
    let reference = reference_db(db.table()).execute(&groupby()).unwrap();

    // Warm an unrelated entry through the fault-free serial path so
    // "cache unchanged" is not vacuous (its insert may itself be
    // dropped by an injected cache fault — either way we snapshot the
    // resulting state).
    let warm = SelectQuery::new(XSpec::raw("key"), vec![YSpec::avg("val")]);
    let warm_ctx = QueryCtx::new();
    warm_ctx.force_serial();
    db.run_request_ctx(std::slice::from_ref(&warm), &warm_ctx)
        .unwrap();
    let cache_before = cache_state(&db.cache_stats().unwrap());
    let before = db.stats().snapshot();

    let ctx = QueryCtx::new();
    let result = db.run_request_ctx(std::slice::from_ref(&groupby()), &ctx);
    let delta = db.stats().snapshot().since(&before);

    if spawn_fires(&spec, n_morsels, 0) {
        let err = result.expect_err("predicted spawn failure");
        assert!(
            matches!(&err, StorageError::ResourceExhausted(_)),
            "got {err:?}"
        );
        assert!(err.is_transient());
        assert_eq!(delta.worker_panics, 0, "a spawn failure is not a panic");
    } else if let Some(expected_morsel) = lowest_firing(&spec, n_morsels, 0) {
        match result.expect_err("predicted worker panic") {
            StorageError::WorkerPanicked { payload, morsel } => {
                assert_eq!(morsel, expected_morsel, "lowest firing morsel wins");
                assert!(payload.contains(PANIC_MARKER), "payload: {payload}");
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
        assert_eq!(
            delta.worker_panics, 1,
            "one failed attempt, however many workers panicked"
        );
    } else {
        // An env-forced spec may fire nothing on this epoch: then the
        // scan must simply succeed with the exact reference result.
        assert_eq!(*result.expect("predicted clean run")[0], reference);
    }
    assert_eq!(
        cache_state(&db.cache_stats().unwrap()),
        cache_before,
        "a failed query must leave the cache bit-for-bit untouched"
    );

    // Degrade refuge: the serial path carries no injection points, so
    // the engine always still serves — exactly the reference result.
    let serial = QueryCtx::new();
    serial.force_serial();
    let served = db
        .run_request_ctx(std::slice::from_ref(&groupby()), &serial)
        .unwrap();
    assert_eq!(*served[0], reference);
}

/// A retried query (fault epoch advanced, as `zv-server` does between
/// attempts) that reaches a clean epoch returns bit-for-bit the
/// fault-free reference — and every intermediate attempt's outcome is
/// predicted exactly.
#[test]
fn retried_query_matches_fault_free_reference() {
    fault::silence_injected_panics();
    let spec = env_or_default_spec();
    // Few, large morsels: the chance that *some* epoch is clean stays
    // high even at double-digit fault rates.
    let morsel_rows = 1 << 17;
    let n_morsels = MILLION.div_ceil(morsel_rows);
    let db = ScanDb::with_config(
        million_row_table(),
        ScanDbConfig {
            parallel: chaos_parallel(spec, 4, morsel_rows),
            cache: CacheConfig::admit_all(),
            ..Default::default()
        },
    );
    let reference = reference_db(db.table()).execute(&groupby()).unwrap();

    let ctx = QueryCtx::new();
    let mut attempts = 0u32;
    let result = loop {
        let epoch = ctx.fault_epoch();
        let predicted_fail = attempt_fails(&spec, n_morsels, epoch);
        let r = db.run_request_ctx(std::slice::from_ref(&groupby()), &ctx);
        assert_eq!(
            r.is_err(),
            predicted_fail,
            "replayed decision must match attempt at epoch {epoch}"
        );
        if let Err(e) = &r {
            assert!(e.is_transient(), "injected failures are transient: {e:?}");
        } else {
            break r;
        }
        attempts += 1;
        if attempts > 300 {
            // An env-forced rate near 1.0 never yields a clean epoch;
            // the degrade path must still serve.
            ctx.force_serial();
            break db.run_request_ctx(std::slice::from_ref(&groupby()), &ctx);
        }
        ctx.advance_fault_epoch();
    };
    assert_eq!(
        *result.expect("clean epoch or serial fallback")[0],
        reference,
        "a retried query is bit-for-bit the never-faulted result"
    );
}

/// An injected worker-spawn failure surfaces as transient
/// `ResourceExhausted` before any worker runs — no panic is recorded
/// and the cache is untouched.
#[test]
fn injected_spawn_failure_is_transient_resource_exhaustion() {
    fault::silence_injected_panics();
    let morsel_rows = 1 << 17;
    let n_morsels = MILLION.div_ceil(morsel_rows);
    // Search (deterministically) for a seed where the fan-out fails but
    // no morsel would panic — isolating the spawn point.
    let seed = (1u64..)
        .find(|&sd| {
            let s = FaultSpec::with_rate(sd, 0.1);
            spawn_fires(&s, n_morsels, 0) && lowest_firing(&s, n_morsels, 0).is_none()
        })
        .unwrap();
    let spec = FaultSpec::with_rate(seed, 0.1);
    let db = ScanDb::with_config(
        million_row_table(),
        ScanDbConfig {
            parallel: chaos_parallel(spec, 4, morsel_rows),
            cache: CacheConfig::admit_all(),
            ..Default::default()
        },
    );
    let cache_before = cache_state(&db.cache_stats().unwrap());
    let before = db.stats().snapshot();
    let err = db
        .run_request_ctx(std::slice::from_ref(&groupby()), &QueryCtx::new())
        .expect_err("spawn must fail");
    match &err {
        StorageError::ResourceExhausted(msg) => {
            assert!(msg.contains("spawn"), "message: {msg}")
        }
        other => panic!("expected ResourceExhausted, got {other:?}"),
    }
    assert!(err.is_transient());
    let delta = db.stats().snapshot().since(&before);
    assert_eq!(delta.worker_panics, 0);
    assert_eq!(delta.rows_scanned, 0, "failed before any worker scanned");
    assert_eq!(cache_state(&db.cache_stats().unwrap()), cache_before);
}

/// Injected cache-insert failures drop the insert, never the query: the
/// result is still exact, the cache just stays cold.
#[test]
fn injected_cache_faults_fail_inserts_not_queries() {
    let spec = FaultSpec::with_rate(77, 1.0);
    let db = ScanDb::with_config(
        small_table(),
        ScanDbConfig {
            // Serial scans only (no scan injection points): the spec
            // reaches the cache alone.
            parallel: ParallelConfig {
                threads: 1,
                min_parallel_rows: usize::MAX,
                fault: spec,
                ..Default::default()
            },
            cache: CacheConfig::admit_all(),
            ..Default::default()
        },
    );
    let reference = reference_db(db.table()).execute(&groupby()).unwrap();
    let before = db.stats().snapshot();
    for _ in 0..2 {
        let out = db.run_request(std::slice::from_ref(&groupby())).unwrap();
        assert_eq!(*out[0], reference, "queries succeed despite cache faults");
    }
    let delta = db.stats().snapshot().since(&before);
    assert_eq!(delta.cache_hits, 0, "nothing was ever admitted to hit on");
    assert_eq!(delta.cache_misses, 2);
    let cache = db.cache_stats().unwrap();
    assert_eq!(cache.entries, 0);
    assert_eq!(cache.insertions, 0);
    assert_eq!(cache.insert_faults, 2, "both inserts dropped by injection");
}

/// Satellite: injected mid-derive failures (the carried-over ROADMAP
/// chaos item). A probe that *would* have answered an exact miss by
/// deriving from a cached superset abandons the plan instead: the
/// direct probe leaves the cache bit-untouched, and the full request
/// path falls back to a real scan and still returns the exact
/// reference answer.
#[test]
fn injected_derive_faults_fall_back_to_a_real_scan() {
    // Replayable decision stream: both derivation attempts below (the
    // direct probe at index 0, the request-path probe at index 1) must
    // fault, while the superset's CacheInsert at index 0 must land —
    // the per-point salts make such seeds dense.
    let spec = (0..10_000u64)
        .map(|sd| FaultSpec::with_rate(sd, 0.5))
        .find(|s| {
            s.fires(FaultPoint::CacheDerive, 0, 0)
                && s.fires(FaultPoint::CacheDerive, 1, 0)
                && !s.fires(FaultPoint::CacheInsert, 0, 0)
        })
        .expect("a derive-fails/insert-lands seed exists");
    let db = ScanDb::with_config(
        small_table(),
        ScanDbConfig {
            // Serial scans only (no scan injection points): the spec
            // reaches the cache alone.
            parallel: ParallelConfig {
                threads: 1,
                min_parallel_rows: usize::MAX,
                fault: spec,
                ..Default::default()
            },
            cache: CacheConfig::admit_all(),
            ..Default::default()
        },
    );
    let slice = groupby().with_predicate(zv_storage::Predicate::num_eq("key", 3.0));
    let reference = reference_db(db.table()).execute(&slice).unwrap();
    let rows = db.table().num_rows() as u64;

    // Warm the superset entry the slice would derive from.
    db.run_request(std::slice::from_ref(&groupby())).unwrap();
    let cache = db.result_cache().expect("cache enabled");
    assert_eq!(cache.stats().entries, 1, "superset insert must land");

    // Direct probe: the derivation is abandoned mid-plan — a plain
    // miss, and the cache is bit-identical apart from the fault count.
    let key = zv_storage::CacheKey::new(db.name(), db.table().version(), &slice);
    let before = cache.stats();
    assert!(cache.lookup_derived(&key).is_none());
    let after = cache.stats();
    assert_eq!(after.derive_faults, 1);
    assert_eq!(
        CacheStats {
            derive_faults: before.derive_faults,
            ..after
        },
        before,
        "an abandoned derivation must leave the cache bit-untouched"
    );

    // Full request path: same abandoned derivation, so the query pays
    // a real scan — and still returns the exact reference answer.
    let scanned_before = db.stats().snapshot();
    let out = db.run_request(std::slice::from_ref(&slice)).unwrap();
    assert_eq!(*out[0], reference);
    let delta = db.stats().snapshot().since(&scanned_before);
    assert_eq!(delta.rows_scanned, rows, "fallback is a full real scan");
    assert_eq!(delta.cache_hits, 0);
    assert_eq!(cache.stats().derive_faults, 2);

    // Same shape, injection disarmed: the slice is answered by
    // derivation without scanning a row.
    let clean = ScanDb::with_config(
        small_table(),
        ScanDbConfig {
            parallel: ParallelConfig {
                threads: 1,
                min_parallel_rows: usize::MAX,
                fault: FaultSpec::disabled(),
                ..Default::default()
            },
            cache: CacheConfig::admit_all(),
            ..Default::default()
        },
    );
    clean.run_request(std::slice::from_ref(&groupby())).unwrap();
    let scanned_before = clean.stats().snapshot();
    let out = clean.run_request(std::slice::from_ref(&slice)).unwrap();
    assert_eq!(*out[0], reference);
    let delta = clean.stats().snapshot().since(&scanned_before);
    assert_eq!(delta.rows_scanned, 0, "disarmed probe derives scan-free");
    assert_eq!(clean.cache_stats().unwrap().derived_hits, 1);
}

/// Injected per-morsel delays stretch the scan but never change its
/// result.
#[test]
fn injected_delays_do_not_change_results() {
    let morsel_rows = 4096;
    let n_morsels = small_table().num_rows().div_ceil(morsel_rows);
    // A seed where delays fire but no panic / spawn failure does.
    let seed = (1u64..)
        .find(|&sd| {
            let s = FaultSpec::with_rate(sd, 0.2);
            !attempt_fails(&s, n_morsels, 0)
                && (0..n_morsels as u64).any(|m| s.fires(FaultPoint::MorselDelay, m, 0))
        })
        .unwrap();
    let spec = FaultSpec {
        delay_us: 200,
        ..FaultSpec::with_rate(seed, 0.2)
    };
    let db = ScanDb::with_config(
        small_table(),
        ScanDbConfig {
            parallel: chaos_parallel(spec, 2, morsel_rows),
            ..Default::default()
        },
    );
    let reference = reference_db(db.table()).execute(&groupby()).unwrap();
    assert_eq!(db.execute(&groupby()).unwrap(), reference);
}

/// Satellite: in-morsel cooperative cancellation. With only two huge
/// morsels, a budget trip must be observed *inside* a claimed morsel —
/// if workers only checked at claim boundaries, both 500k-row morsels
/// would scan to completion.
#[test]
fn cancellation_is_observed_inside_a_claimed_morsel() {
    let db = ScanDb::with_config(
        million_row_table(),
        ScanDbConfig {
            parallel: ParallelConfig {
                threads: 2,
                min_parallel_rows: 0,
                sched: SchedulingMode::Morsel,
                morsel_rows: 500_000,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    const BUDGET: u64 = 100_000;
    let ctx = QueryCtx::new().with_row_budget(BUDGET);
    let err = db
        .run_request_ctx(std::slice::from_ref(&groupby()), &ctx)
        .expect_err("budget must cancel");
    assert_eq!(err, StorageError::Cancelled);
    let progress = ctx.stats();
    assert!(progress.rows_scanned >= BUDGET);
    assert!(
        progress.rows_scanned < 400_000,
        "the trip was observed mid-morsel, not at the next claim \
         ({} rows of {MILLION})",
        progress.rows_scanned
    );
    assert_eq!(
        progress.morsels_cancelled, 2,
        "both claimed-but-incomplete morsels count as abandoned"
    );
}

/// Satellite: deliberately poisoned locks. A panicking writer poisons
/// the table lock (both engines) and the cache lock; every subsequent
/// operation must recover — Arc-swap locks recover in place, the cache
/// rebuilds empty (it may forget, never lie).
#[test]
fn poisoned_table_and_cache_locks_recover() {
    fault::silence_injected_panics();
    let q2 = SelectQuery::new(XSpec::raw("key"), vec![YSpec::avg("val")]);

    // Poison recovery is the subject here, not injection: disable the
    // env-armed faults CI's chaos leg would otherwise feed the default
    // configs, so the post-poison queries deterministically succeed.
    let mut scfg = ScanDbConfig {
        cache: CacheConfig::admit_all(),
        ..Default::default()
    };
    scfg.parallel.fault = FaultSpec::disabled();
    let sdb = ScanDb::with_config(small_table(), scfg);
    let reference = reference_db(sdb.table()).execute(&q2).unwrap();
    sdb.run_request(std::slice::from_ref(&groupby())).unwrap();
    sdb.poison_table_lock_for_chaos();
    sdb.result_cache().unwrap().poison_for_chaos();
    let out = sdb.run_request(std::slice::from_ref(&q2)).unwrap();
    assert_eq!(*out[0], reference, "scan engine recovered from poison");
    let stats = sdb.cache_stats().unwrap();
    assert_eq!(stats.poison_rebuilds, 1, "cache rebuilt exactly once");

    let mut bcfg = BitmapDbConfig {
        cache: CacheConfig::admit_all(),
        ..Default::default()
    };
    bcfg.parallel.fault = FaultSpec::disabled();
    let bdb = BitmapDb::with_config(small_table(), bcfg);
    bdb.run_request(std::slice::from_ref(&groupby())).unwrap();
    bdb.poison_table_lock_for_chaos();
    bdb.result_cache().unwrap().poison_for_chaos();
    let out = bdb.run_request(std::slice::from_ref(&q2)).unwrap();
    assert_eq!(*out[0], reference, "bitmap engine recovered from poison");
    assert_eq!(bdb.cache_stats().unwrap().poison_rebuilds, 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For arbitrary seeds and rates, one fact never bends: the replay
    /// predicts the attempt's outcome exactly, a failed attempt leaves
    /// the cache untouched and books exactly one panic (when the
    /// failure *was* a panic), and the engine still serves the exact
    /// reference afterwards.
    #[test]
    fn any_seed_fails_predictably_and_engine_recovers(
        seed in 1u64..u64::MAX,
        rate in 0.05f64..0.5,
    ) {
        fault::silence_injected_panics();
        let spec = FaultSpec::with_rate(seed, rate);
        let morsel_rows = 4096;
        let n_morsels = small_table().num_rows().div_ceil(morsel_rows);
        let db = ScanDb::with_config(
            small_table(),
            ScanDbConfig {
                parallel: chaos_parallel(spec, 2, morsel_rows),
                cache: CacheConfig::admit_all(),
                ..Default::default()
            },
        );
        let reference = reference_db(db.table())
            .execute(&groupby())
            .unwrap();
        let cache_before = cache_state(&db.cache_stats().unwrap());
        let before = db.stats().snapshot();
        let result = db.run_request_ctx(std::slice::from_ref(&groupby()), &QueryCtx::new());
        let delta = db.stats().snapshot().since(&before);

        prop_assert_eq!(result.is_err(), attempt_fails(&spec, n_morsels, 0));
        match result {
            Ok(out) => prop_assert_eq!(&*out[0], &reference),
            Err(e) => {
                prop_assert!(e.is_transient());
                let expect_panic =
                    u64::from(!spawn_fires(&spec, n_morsels, 0));
                prop_assert_eq!(delta.worker_panics, expect_panic);
                prop_assert_eq!(
                    cache_state(&db.cache_stats().unwrap()),
                    cache_before
                );
            }
        }
        // Whatever happened, the engine keeps serving.
        let serial = QueryCtx::new();
        serial.force_serial();
        let served = db
            .run_request_ctx(std::slice::from_ref(&groupby()), &serial)
            .unwrap();
        prop_assert_eq!(&*served[0], &reference);
    }
}
