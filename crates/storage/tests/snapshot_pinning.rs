//! Batch snapshot pinning: `Database::run_request` pins one
//! [`EngineSnapshot`] per batch, so every query of a batch is answered
//! against the same table version even while appends race the request —
//! closing the mixed-adjacent-snapshots caveat the cache PR documented.

use std::sync::Arc;
use zv_storage::{
    Agg, BitmapDb, BitmapDbConfig, DataType, Database, DynDatabase, Field, QueryCtx, ScanDb,
    Schema, SelectQuery, Table, TableBuilder, Value, XSpec, YSpec,
};

fn build_table(n: usize) -> Arc<Table> {
    let schema = Schema::new(vec![
        Field::new("year", DataType::Int),
        Field::new("product", DataType::Cat),
        Field::new("sales", DataType::Float),
    ]);
    let mut b = TableBuilder::new(schema);
    for i in 0..n {
        b.push_row(row(2010 + (i % 5) as i64, (i % 4) as u8))
            .unwrap();
    }
    b.finish_shared()
}

fn row(year: i64, product: u8) -> Vec<Value> {
    vec![
        Value::Int(year),
        Value::str(format!("p{product}")),
        Value::Float(0.25),
    ]
}

/// A pinned snapshot is immutable: appends landing after the pin are
/// invisible to it, and its table version never moves.
#[test]
fn pinned_snapshot_is_immutable_under_appends() {
    let table = build_table(1_000);
    let q = SelectQuery::new(XSpec::raw("year"), vec![YSpec::new("*", Agg::Count)]);
    for db in [
        Arc::new(BitmapDb::new(table.clone())) as DynDatabase,
        Arc::new(ScanDb::new(table.clone())) as DynDatabase,
    ] {
        let snap = db.pin();
        let v0 = snap.table().version();
        let (before, _) = snap.execute(&q, &QueryCtx::new()).unwrap();
        db.append_rows(&[row(2010, 0), row(2011, 1)]).unwrap();
        assert!(
            db.table().version() > v0,
            "{}: the engine must move on",
            db.name()
        );
        assert_eq!(
            snap.table().version(),
            v0,
            "{}: the pin must not",
            db.name()
        );
        let (after, _) = snap.execute(&q, &QueryCtx::new()).unwrap();
        assert_eq!(
            before,
            after,
            "{}: a pinned snapshot must keep answering over the pinned data",
            db.name()
        );
        // A fresh request sees the append.
        let fresh = db.run_request(std::slice::from_ref(&q)).unwrap();
        assert_ne!(*fresh[0], before, "{}", db.name());
    }
}

/// The regression the caveat described: a batch racing a concurrent
/// append must never mix adjacent snapshots across its queries. The two
/// batch queries count the same rows two ways (ungrouped vs grouped by
/// product); pinned execution makes their totals agree *always* —
/// without pinning, an append landing between the two executes tears
/// the batch. Runs on an uncached engine so both queries truly execute.
#[test]
fn concurrent_append_never_tears_a_batch() {
    let table = build_table(2_000);
    let db = Arc::new(BitmapDb::with_config(table, BitmapDbConfig::uncached()));
    let count_by_year = SelectQuery::new(XSpec::raw("year"), vec![YSpec::new("*", Agg::Count)]);
    let count_by_year_product = count_by_year.clone().with_z("product");
    let batch = [count_by_year, count_by_year_product];

    std::thread::scope(|s| {
        for _ in 0..4 {
            let db = Arc::clone(&db);
            let batch = &batch;
            s.spawn(move || {
                for _ in 0..40 {
                    let results = db.run_request(batch).unwrap();
                    let flat = &results[0].groups[0];
                    // Sum the grouped counts per year and compare.
                    for (xi, x) in flat.xs.iter().enumerate() {
                        let grouped: f64 = results[1]
                            .groups
                            .iter()
                            .map(|g| {
                                g.xs.iter()
                                    .position(|gx| gx == x)
                                    .map(|i| g.ys[0][i])
                                    .unwrap_or(0.0)
                            })
                            .sum();
                        assert_eq!(
                            grouped, flat.ys[0][xi],
                            "batch mixed two table versions at year {x}"
                        );
                    }
                }
            });
        }
        let db = Arc::clone(&db);
        s.spawn(move || {
            for i in 0..200 {
                db.append_rows(&[row(2010 + (i % 5), (i % 4) as u8)])
                    .unwrap();
            }
        });
    });
    assert_eq!(db.table().num_rows(), 2_200);
}
