//! Crash-exactness suite for the durable-storage subsystem
//! ([`zv_storage::persist`]).
//!
//! The contract under test: a crash at **any** byte of the on-disk
//! history — every WAL byte boundary, and the window between writing a
//! snapshot and renaming it into place — recovers to a state
//! bit-for-bit equal to some durable prefix of the committed history,
//! at the exact version the last fsync made durable. Never a torn row,
//! never a resurrected rollback, never a silently-dropped committed
//! batch. And recovery is not a dead end: re-running the lost appends
//! reconverges byte-identically — both the table and the WAL file
//! itself.
//!
//! The exhaustive test literally truncates the WAL at *every* byte
//! offset (a few hundred fresh recoveries); the proptest re-proves the
//! same property over randomized batch shapes, values, and crash
//! points.

use proptest::prelude::*;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use zv_storage::{
    Column, DataType, Database, FaultPoint, FaultSpec, Field, PersistOptions, Persistence, ScanDb,
    ScanDbConfig, Schema, Table, Value,
};

/// Fresh unique directory under the system temp dir.
fn temp_dir(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "zv-persist-it-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).unwrap();
    }
    dir
}

fn base_schema() -> Schema {
    Schema::new(vec![
        Field::new("year", DataType::Int),
        Field::new("product", DataType::Cat),
        Field::new("sales", DataType::Float),
    ])
}

/// The seed table the snapshot is cut from. Dyadic floats so every
/// comparison below is exact without tolerance.
fn base_table() -> Arc<Table> {
    let years: Vec<i64> = (0..64).map(|i| 2010 + (i % 7)).collect();
    let sales: Vec<f64> = (0..64).map(|i| (i % 13) as f64 * 0.25).collect();
    let mut products = zv_storage::CatColumn::new();
    for i in 0..64 {
        let code = products.intern(["chair", "table", "stool"][i % 3]);
        products.push_code(code);
    }
    Arc::new(
        Table::from_columns(
            base_schema(),
            vec![
                Column::Int(years.into()),
                Column::Cat(products),
                Column::Float(sales),
            ],
        )
        .unwrap(),
    )
}

/// Deterministic append batch `k`: varying row counts, a new dictionary
/// entry now and then, negative ints, exact floats.
fn batch(k: usize) -> Vec<Vec<Value>> {
    (0..(k % 3) + 1)
        .map(|r| {
            vec![
                Value::Int(2017 + k as i64 - 2 * r as i64),
                Value::str(["chair", "bench", "table", "lamp"][(k + r) % 4]),
                Value::Float((k * 7 + r) as f64 * 0.5 - 3.0),
            ]
        })
        .collect()
}

/// Bit-for-bit table equality: version, schema, and every column's
/// exact representation (float *bits*, dictionary order included).
fn assert_tables_identical(got: &Table, want: &Table, what: &str) {
    assert_eq!(got.version(), want.version(), "{what}: version");
    assert_data_identical(got, want, what);
}

/// Contents-only equality. Versions are process-unique (a reconverged
/// table legitimately mints fresh ones), so reconvergence asserts the
/// data; recovery asserts [`assert_tables_identical`].
fn assert_data_identical(got: &Table, want: &Table, what: &str) {
    assert_eq!(got.schema(), want.schema(), "{what}: schema");
    assert_eq!(got.num_rows(), want.num_rows(), "{what}: rows");
    for (idx, field) in want.schema().fields().iter().enumerate() {
        match (got.column_at(idx), want.column_at(idx)) {
            (Column::Int(a), Column::Int(b)) => assert_eq!(a, b, "{what}: col {}", field.name),
            (Column::Float(a), Column::Float(b)) => {
                let a: Vec<u64> = a.iter().map(|v| v.to_bits()).collect();
                let b: Vec<u64> = b.iter().map(|v| v.to_bits()).collect();
                assert_eq!(a, b, "{what}: col {} (bits)", field.name);
            }
            (Column::Cat(a), Column::Cat(b)) => {
                assert_eq!(a.dict(), b.dict(), "{what}: col {} dict", field.name);
                assert_eq!(a.codes(), b.codes(), "{what}: col {} codes", field.name);
            }
            _ => panic!("{what}: col {} changed type", field.name),
        }
    }
}

/// Clone a data directory into `dst`, truncating the WAL to
/// `wal_prefix` bytes — the simulated crash image.
fn crash_image(src: &Path, dst: &Path, wal_prefix: usize) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let name = entry.file_name();
        let bytes = std::fs::read(entry.path()).unwrap();
        if name.to_str() == Some("wal.log") {
            std::fs::write(dst.join(name), &bytes[..wal_prefix]).unwrap();
        } else {
            std::fs::write(dst.join(name), bytes).unwrap();
        }
    }
}

fn plain_config() -> ScanDbConfig {
    let mut cfg = ScanDbConfig::uncached();
    cfg.parallel.fault = FaultSpec::disabled();
    cfg
}

/// The tentpole acceptance test: crash at EVERY WAL byte boundary.
///
/// Builds snapshot + K WAL frames, then for each prefix length
/// `0..=wal_len` recovers a crash image truncated there and asserts the
/// result is exactly the reference state at the last complete frame —
/// with the torn remainder counted and truncated — and that re-running
/// the lost batches reconverges bit-for-bit, WAL file included.
#[test]
fn every_wal_byte_boundary_recovers_the_exact_durable_prefix() {
    const K: usize = 5;
    let src = temp_dir("boundary-src");
    let db = ScanDb::open_durable(&src, plain_config(), base_table).unwrap();
    let wal_path = db.persistence().unwrap().wal_path();

    // references[i] = the committed state after i batches; boundaries[i]
    // = the WAL length that makes exactly those i batches durable.
    let mut references: Vec<Arc<Table>> = vec![Database::table(&db)];
    let mut boundaries: Vec<usize> = vec![0];
    for k in 0..K {
        db.append_rows(&batch(k)).unwrap();
        references.push(Database::table(&db));
        boundaries.push(std::fs::metadata(&wal_path).unwrap().len() as usize);
    }
    let wal_bytes = std::fs::read(&wal_path).unwrap();
    assert_eq!(wal_bytes.len(), *boundaries.last().unwrap());
    drop(db);

    for prefix in 0..=wal_bytes.len() {
        // The durable state a crash at `prefix` must recover: the last
        // frame boundary at or below the crash point.
        let durable = boundaries.partition_point(|&b| b <= prefix) - 1;
        let dst = temp_dir("boundary-img");
        crash_image(&src, &dst, prefix);

        let (persist, recovered) = Persistence::open(&dst, PersistOptions::default()).unwrap();
        let recovered = recovered.expect("a snapshot exists in every crash image");
        let what = format!("prefix {prefix} (durable boundary {durable})");
        assert_tables_identical(&recovered, &references[durable], &what);

        let report = persist.recovery_report();
        assert_eq!(report.frames_replayed, durable as u64, "{what}: frames");
        assert_eq!(
            report.torn_bytes_truncated,
            (prefix - boundaries[durable]) as u64,
            "{what}: torn bytes"
        );
        assert_eq!(
            std::fs::metadata(persist.wal_path()).unwrap().len() as usize,
            boundaries[durable],
            "{what}: WAL truncated to the durable prefix"
        );
        drop(persist);

        // Reconvergence: re-run the lost batches through a real engine
        // over the recovered state. The data is bit-for-bit the full
        // history (versions are process-unique, so fresh ones are
        // minted), and the reconverged directory is itself crash-exact:
        // reopening it recovers exactly what the engine last committed.
        let db = ScanDb::open_durable(&dst, plain_config(), || {
            unreachable!("recovery must not re-seed")
        })
        .unwrap();
        for k in durable..K {
            db.append_rows(&batch(k)).unwrap();
        }
        let reconverged = Database::table(&db);
        assert_data_identical(
            &reconverged,
            &references[K],
            &format!("{what}: reconverged table"),
        );
        drop(db);
        let (_persist, reopened) = Persistence::open(&dst, PersistOptions::default()).unwrap();
        assert_tables_identical(
            &reopened.unwrap(),
            &reconverged,
            &format!("{what}: reconverged dir recovers itself"),
        );
        std::fs::remove_dir_all(&dst).unwrap();
    }
    std::fs::remove_dir_all(&src).unwrap();
}

/// `append_table` WAL-logs its batch straight from the source table's
/// columns (no per-row `Value` materialization under the append lock —
/// see `Persistence::log_append_table`). The columnar frame must be
/// indistinguishable from the row path on replay: a directory holding
/// interleaved bulk and row appends recovers bit-for-bit.
#[test]
fn bulk_append_table_is_durable_and_recovers_exactly() {
    let dir = temp_dir("bulk-append");
    let db = ScanDb::open_durable(&dir, plain_config(), base_table).unwrap();

    // The bulk batch brings a dictionary entry the base table has never
    // seen, negative ints, and exact dyadic floats.
    let mut products = zv_storage::CatColumn::new();
    for name in ["ottoman", "chair", "ottoman"] {
        let code = products.intern(name);
        products.push_code(code);
    }
    let bulk = Table::from_columns(
        base_schema(),
        vec![
            Column::Int(vec![-3, 2030, 2031].into()),
            Column::Cat(products),
            Column::Float(vec![0.75, -12.5, 1024.0]),
        ],
    )
    .unwrap();

    assert_eq!(db.append_table(&bulk).unwrap(), 3);
    db.append_rows(&batch(0)).unwrap();
    assert_eq!(db.append_table(&bulk).unwrap(), 3);
    let committed = Database::table(&db);
    drop(db);

    let db = ScanDb::open_durable(&dir, plain_config(), || {
        unreachable!("recovery must not re-seed")
    })
    .unwrap();
    assert_tables_identical(
        &Database::table(&db),
        &committed,
        "bulk + row appends recover",
    );
    drop(db);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Crash in the snapshot rename window: the checkpoint wrote and
/// fsynced the temp file but never renamed it. Recovery must ignore
/// (and remove) the orphan, serve the previous snapshot plus the full
/// WAL, and a later clean checkpoint must succeed and prune.
#[test]
fn crash_between_snapshot_write_and_rename_serves_the_previous_state() {
    // Replay the injector's decisions: a seed where the first
    // checkpoint dies exactly in the rename window, with the write and
    // fsync faults quiet so the temp file lands complete.
    let spec = (0..10_000u64)
        .map(|s| FaultSpec::with_rate(s, 0.5))
        .find(|spec| {
            spec.fires(FaultPoint::CrashBeforeRename, 0, 0)
                && !spec.fires(FaultPoint::DiskWriteFail, 0, 0)
                && !spec.fires(FaultPoint::FsyncFail, 0, 0)
                && !spec.fires(FaultPoint::FsyncFail, 1, 0)
        })
        .expect("a rename-crash seed exists");

    let dir = temp_dir("rename-crash");
    let db = ScanDb::open_durable(&dir, plain_config(), base_table).unwrap();
    db.append_rows(&batch(0)).unwrap();
    db.append_rows(&batch(1)).unwrap();
    let pre_crash = Database::table(&db);
    let wal_before = std::fs::read(db.persistence().unwrap().wal_path()).unwrap();
    drop(db);

    // The faulted checkpoint: temp file written + fsynced, rename
    // "crashed". The WAL must NOT have been reset.
    let (persist, recovered) = Persistence::open(&dir, PersistOptions { fault: spec }).unwrap();
    let recovered = recovered.unwrap();
    assert_tables_identical(&recovered, &pre_crash, "pre-crash recovery");
    let err = persist.checkpoint(&recovered).unwrap_err();
    assert!(
        err.to_string().contains("crash"),
        "checkpoint must report the injected crash, got: {err}"
    );
    let tmp_left = std::fs::read_dir(&dir)
        .unwrap()
        .filter(|e| {
            e.as_ref()
                .unwrap()
                .file_name()
                .to_string_lossy()
                .ends_with(".tmp")
        })
        .count();
    assert_eq!(
        tmp_left, 1,
        "the interrupted checkpoint leaves its temp file"
    );
    assert_eq!(
        std::fs::read(persist.wal_path()).unwrap(),
        wal_before,
        "a crashed checkpoint must not touch the WAL"
    );
    drop(persist);

    // Clean reopen: orphan swept, exact pre-crash state served.
    let (persist, recovered) = Persistence::open(&dir, PersistOptions::default()).unwrap();
    let recovered = recovered.unwrap();
    let report = persist.recovery_report();
    assert_eq!(report.tmp_files_removed, 1);
    assert_eq!(report.frames_replayed, 2);
    assert_tables_identical(&recovered, &pre_crash, "post-sweep recovery");

    // And the next checkpoint completes: snapshot at the live version,
    // WAL reset, old snapshot pruned.
    persist.checkpoint(&recovered).unwrap();
    assert_eq!(std::fs::metadata(persist.wal_path()).unwrap().len(), 0);
    let snapshots = std::fs::read_dir(&dir)
        .unwrap()
        .filter(|e| {
            e.as_ref()
                .unwrap()
                .file_name()
                .to_string_lossy()
                .starts_with("snapshot-")
        })
        .count();
    assert_eq!(snapshots, 1, "clean checkpoint prunes the stale snapshot");
    drop(persist);

    let db = ScanDb::open_durable(&dir, plain_config(), || {
        unreachable!("recovery must not re-seed")
    })
    .unwrap();
    assert_tables_identical(&Database::table(&db), &pre_crash, "final recovery");
    drop(db);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// One random row matching the base schema.
fn arb_row() -> impl Strategy<Value = Vec<Value>> {
    (
        -5000i64..5000,
        prop_oneof![
            Just("chair".to_string()),
            Just("bench".to_string()),
            Just("ottoman".to_string()),
            Just(String::new()),
            Just("ötvös".to_string()),
        ],
        -100i64..100,
    )
        .prop_map(|(year, product, halves)| {
            vec![
                Value::Int(year),
                Value::Str(product),
                // Dyadic, so recovery comparisons stay exact.
                Value::Float(halves as f64 * 0.5),
            ]
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property form of the boundary test: random batches, a random
    /// crash byte — recovery always lands exactly on a durable frame
    /// boundary, and re-running the lost batches reconverges.
    #[test]
    fn any_crash_point_recovers_a_durable_prefix(
        batches in prop::collection::vec(prop::collection::vec(arb_row(), 1..5), 1..5),
        crash_pick in 0u64..1_000_000,
    ) {
        let src = temp_dir("prop-src");
        let db = ScanDb::open_durable(&src, plain_config(), base_table).unwrap();
        let wal_path = db.persistence().unwrap().wal_path();
        let mut references: Vec<Arc<Table>> = vec![Database::table(&db)];
        let mut boundaries: Vec<usize> = vec![0];
        for rows in &batches {
            db.append_rows(rows).unwrap();
            references.push(Database::table(&db));
            boundaries.push(std::fs::metadata(&wal_path).unwrap().len() as usize);
        }
        let wal_len = *boundaries.last().unwrap();
        drop(db);

        let prefix = (crash_pick % (wal_len as u64 + 1)) as usize;
        let durable = boundaries.partition_point(|&b| b <= prefix) - 1;
        let dst = temp_dir("prop-img");
        crash_image(&src, &dst, prefix);

        let (persist, recovered) =
            Persistence::open(&dst, PersistOptions::default()).unwrap();
        let recovered = recovered.expect("snapshot present");
        prop_assert_eq!(recovered.version(), references[durable].version());
        assert_tables_identical(&recovered, &references[durable], "prop recovery");
        let report = persist.recovery_report();
        prop_assert_eq!(report.torn_bytes_truncated, (prefix - boundaries[durable]) as u64);
        drop(persist);

        let db = ScanDb::open_durable(&dst, plain_config(), || {
            unreachable!("recovery must not re-seed")
        }).unwrap();
        for rows in &batches[durable..] {
            db.append_rows(rows).unwrap();
        }
        assert_data_identical(&Database::table(&db), references.last().unwrap(), "prop reconverge");
        drop(db);
        std::fs::remove_dir_all(&dst).unwrap();
        std::fs::remove_dir_all(&src).unwrap();
    }
}
