//! Encoded ≡ plain, bit-for-bit: a query's result must not depend on
//! how the columns happen to be chunk-encoded. Tables are built three
//! ways from identical rows — `EncodePolicy::off` (plain vectors),
//! `EncodePolicy::auto` (cost-based per-chunk selection), and
//! `EncodePolicy::force` (64-row chunks, always sealed to the cheaper
//! of RLE/bit-packed, so even tiny proptest tables exercise packed
//! paths) — and every query must agree across ScanDb/BitmapDb ×
//! serial/morsel routing.
//!
//! Measures are exact dyadic rationals (multiples of 0.25 well below
//! 2⁵³), the PR 4/9 idiom: float aggregation is associative on this
//! data, so bit-for-bit equality is the correct assertion even under
//! forced multi-worker scheduling.
//!
//! Also covered here:
//!
//! * `execute_range` delta scans whose `[start, end)` straddles sealed
//!   encoded-chunk boundaries (the IVM tick path) — the range decoder
//!   must enter and leave RLE runs and bit-packed words mid-chunk;
//! * a `FaultPoint::ChunkScanPanic` chaos case over packed chunks:
//!   injected worker panics on a force-encoded table fail cleanly and
//!   the retried query still returns the plain table's exact result.

use proptest::prelude::*;
use std::sync::Arc;
use zv_storage::column::EncodePolicy;
use zv_storage::exec::ParallelConfig;
use zv_storage::fault::{self, FaultPoint, FaultSpec, PANIC_MARKER};
use zv_storage::{
    Agg, Atom, BitmapDb, BitmapDbConfig, CmpOp, DataType, Database, DynDatabase, Field, Predicate,
    QueryCtx, ScanDb, ScanDbConfig, SchedulingMode, Schema, SelectQuery, StorageError, Table,
    TableBuilder, Value, XSpec, YSpec,
};

/// One run of identical rows. Runs are what make the generated data
/// hit *every* encoding: long runs seal as RLE, short runs of narrow
/// values bit-pack, and wild 64-bit values stay plain under `auto`
/// (and stress full-width word-straddling extraction under `force`).
type Run = (i64, u8, i16, u8);

fn flatten(runs: &[Run]) -> Vec<(i64, u8, i16)> {
    let mut out = Vec::new();
    for &(year, product, sales, len) in runs {
        for _ in 0..len.max(1) {
            out.push((year, product, sales));
        }
    }
    out
}

fn build(rows: &[(i64, u8, i16)], policy: EncodePolicy) -> Arc<Table> {
    let schema = Schema::new(vec![
        Field::new("year", DataType::Int),
        Field::new("product", DataType::Cat),
        Field::new("sales", DataType::Float),
    ]);
    let mut b = TableBuilder::with_encoding(schema, policy);
    for &(y, p, s) in rows {
        b.push_row(vec![
            Value::Int(y),
            Value::str(format!("p{p}")),
            Value::Float(s as f64 * 0.25),
        ])
        .unwrap();
    }
    b.finish_shared()
}

/// Fault pinned off: this suite asserts bit-for-bit equivalence, which
/// an env-armed injected panic (CI's chaos legs) is *supposed* to
/// break; the chaos case below arms its own spec deliberately.
fn serial() -> ParallelConfig {
    ParallelConfig {
        threads: 1,
        min_parallel_rows: usize::MAX,
        fault: FaultSpec::disabled(),
        ..Default::default()
    }
}

fn sharded() -> ParallelConfig {
    ParallelConfig {
        threads: 4,
        min_parallel_rows: 0,
        // Tiny morsels so small proptest tables still fan out; 64 also
        // aligns morsel boundaries with force-mode chunk seams.
        morsel_rows: 64,
        sched: SchedulingMode::Morsel,
        fault: FaultSpec::disabled(),
        ..Default::default()
    }
}

fn make(engine: &str, table: Arc<Table>, parallel: ParallelConfig) -> DynDatabase {
    match engine {
        "bitmap" => Arc::new(BitmapDb::with_config(
            table,
            BitmapDbConfig {
                parallel,
                ..BitmapDbConfig::uncached()
            },
        )),
        _ => Arc::new(ScanDb::with_config(
            table,
            ScanDbConfig {
                parallel,
                ..ScanDbConfig::uncached()
            },
        )),
    }
}

fn matrix() -> Vec<(String, &'static str, ParallelConfig)> {
    let mut out = Vec::new();
    for engine in ["bitmap", "scan"] {
        for (routing, parallel) in [("serial", serial()), ("morsel", sharded())] {
            out.push((format!("{engine}/{routing}"), engine, parallel));
        }
    }
    out
}

/// Year values drawn from three regimes: a constant (whole chunks of
/// it seal at bit width 0), a narrow band (frame-of-reference packs to
/// a few bits), and wild ±2⁴⁰ values (plain under auto; >40-bit
/// word-straddling lanes under force, while `SUM(year)` over ≤ a few
/// hundred rows still sums exactly in f64, keeping bit-for-bit valid).
fn arb_runs() -> impl Strategy<Value = Vec<Run>> {
    let year = prop_oneof![Just(2042i64), 2000i64..2064, -(1i64 << 40)..(1i64 << 40),];
    prop::collection::vec((year, 0u8..5, -400i16..400, 1u8..80), 1..16)
}

fn arb_pred() -> impl Strategy<Value = Predicate> {
    prop_oneof![
        Just(Predicate::True),
        (0u8..6).prop_map(|p| Predicate::cat_eq("product", format!("p{p}"))),
        (1990i64..2070).prop_map(|y| Predicate::num_eq("year", y as f64)),
        (1990i64..2070).prop_map(|y| {
            Predicate::atom(Atom::NumCmp {
                col: "year".into(),
                op: CmpOp::Ge,
                value: y as f64,
            })
        }),
        ((0u8..6), (1990i64..2070)).prop_map(|(p, y)| {
            Predicate::cat_eq("product", format!("p{p}")).and(Predicate::atom(Atom::NumCmp {
                col: "year".into(),
                op: CmpOp::Lt,
                value: y as f64,
            }))
        }),
        ((0u8..6), (0u8..6)).prop_map(|(a, b)| {
            Predicate::Or(vec![
                vec![Atom::CatEq {
                    col: "product".into(),
                    value: format!("p{a}"),
                }],
                vec![Atom::CatEq {
                    col: "product".into(),
                    value: format!("p{b}"),
                }],
            ])
        }),
        (-50i32..50).prop_map(|t| {
            Predicate::atom(Atom::NumCmp {
                col: "sales".into(),
                op: CmpOp::Gt,
                value: t as f64 * 0.25,
            })
        }),
    ]
}

fn arb_query() -> impl Strategy<Value = SelectQuery> {
    (arb_pred(), any::<bool>(), any::<bool>(), any::<bool>()).prop_map(
        |(pred, binned, with_z, minmax)| {
            // Binned X exercises the floor-divide gather kernel over
            // packed lanes; raw X the offset/rank gathers.
            let x = if binned {
                XSpec::binned("year", 3.0)
            } else {
                XSpec::raw("year")
            };
            let ys = if minmax {
                vec![
                    YSpec::new("sales", Agg::Min),
                    YSpec::new("sales", Agg::Max),
                    YSpec::avg("sales"),
                ]
            } else {
                vec![
                    YSpec::sum("sales"),
                    YSpec::new("*", Agg::Count),
                    YSpec::sum("year"),
                ]
            };
            let mut q = SelectQuery::new(x, ys).with_predicate(pred);
            if with_z {
                q = q.with_z("product");
            }
            q
        },
    )
}

/// The force-built table must actually carry sealed encoded chunks
/// once it outgrows one 64-row chunk — otherwise the suite would be
/// vacuously comparing plain to plain.
fn assert_sealed_encoded(t: &Table) {
    let counts = t
        .column("year")
        .unwrap()
        .encoding_counts()
        .expect("int columns report encoding counts");
    assert_eq!(counts.plain, 0, "force mode never seals a plain chunk");
    assert!(
        counts.packed + counts.rle > 0,
        "expected sealed encoded chunks, got only {} tail rows",
        counts.tail_rows
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline invariant: off/auto/force builds of the same rows
    /// answer every query identically, across both engines and both
    /// schedulers, bit for bit.
    #[test]
    fn encoded_equals_plain_across_engines_and_schedulers(
        runs in arb_runs(),
        query in arb_query(),
    ) {
        let rows = flatten(&runs);
        let plain = build(&rows, EncodePolicy::off());
        let auto = build(&rows, EncodePolicy::auto());
        let force = build(&rows, EncodePolicy::force());
        if rows.len() >= 128 {
            assert_sealed_encoded(&force);
        }
        for (label, engine, parallel) in matrix() {
            let reference = make(engine, plain.clone(), parallel)
                .execute(&query)
                .expect("plain execute");
            for (policy, table) in [("auto", &auto), ("force", &force)] {
                let got = make(engine, table.clone(), parallel)
                    .execute(&query)
                    .expect("encoded execute");
                prop_assert_eq!(
                    &got, &reference,
                    "{} diverged from plain on {}", policy, &label
                );
            }
        }
    }

    /// Delta scans: `execute_range` windows that straddle sealed-chunk
    /// seams (force mode seals every 64 rows, so almost any window
    /// crosses one) must agree with the plain build — entering an RLE
    /// run or a packed word mid-chunk and leaving it mid-chunk.
    #[test]
    fn execute_range_agrees_across_encoded_chunk_boundaries(
        runs in arb_runs(),
        query in arb_query(),
        bounds in (0.0f64..1.0, 0.0f64..1.0),
    ) {
        let rows = flatten(&runs);
        let n = rows.len();
        let (a, b) = (
            (bounds.0 * n as f64) as usize,
            (bounds.1 * n as f64) as usize,
        );
        let (start, end) = (a.min(b), a.max(b).min(n));
        let plain = build(&rows, EncodePolicy::off());
        let force = build(&rows, EncodePolicy::force());
        let ctx = QueryCtx::new();
        for (label, engine, parallel) in matrix() {
            let reference = make(engine, plain.clone(), parallel)
                .pin()
                .execute_range(&query, &ctx, start, end)
                .expect("plain execute_range")
                .0;
            let got = make(engine, force.clone(), parallel)
                .pin()
                .execute_range(&query, &ctx, start, end)
                .expect("encoded execute_range")
                .0;
            prop_assert_eq!(
                &got, &reference,
                "range [{}, {}) diverged on {}", start, end, &label
            );
        }
    }
}

/// Chaos over packed chunks: morsel workers panic mid-scan of a
/// force-encoded table under an armed `FaultPoint::ChunkScanPanic`
/// spec. Every failed attempt is the predicted transient
/// `WorkerPanicked`; the first clean epoch (or the injection-free
/// serial refuge) returns bit-for-bit the *plain* table's fault-free
/// result — a fault recovery must not land on a differently-decoded
/// answer.
#[test]
fn chunk_scan_panics_over_packed_chunks_recover_to_plain_result() {
    fault::silence_injected_panics();
    let n = 100_000usize;
    // Clustered key (runs of 500 → RLE chunks), narrow value (packs to
    // a handful of bits), dyadic measure.
    let rows: Vec<(i64, u8, i16)> = (0..n)
        .map(|i| {
            (
                ((i / 500) % 40) as i64,
                (i % 5) as u8,
                ((i % 1013) as i16) - 400,
            )
        })
        .collect();
    let plain = build(&rows, EncodePolicy::off());
    let force = build(&rows, EncodePolicy::force());
    assert_sealed_encoded(&force);

    // The spec CI's chaos leg forces via the environment, or a fixed
    // default so the test injects even in a plain `cargo test`.
    let env = FaultSpec::from_env();
    let spec = if env.is_enabled() {
        env
    } else {
        FaultSpec::with_rate(0xEC0DED, 0.2)
    };
    let morsel_rows = 4096;
    let n_morsels = n.div_ceil(morsel_rows);
    let db = ScanDb::with_config(
        force.clone(),
        ScanDbConfig {
            parallel: ParallelConfig {
                threads: 4,
                min_parallel_rows: 0,
                sched: SchedulingMode::Morsel,
                morsel_rows,
                fault: spec,
                ..Default::default()
            },
            ..ScanDbConfig::uncached()
        },
    );
    let query = SelectQuery::new(
        XSpec::raw("year"),
        vec![YSpec::sum("sales"), YSpec::new("*", Agg::Count)],
    )
    .with_z("product");
    let reference = make("scan", plain, serial()).execute(&query).unwrap();

    let ctx = QueryCtx::new();
    let mut attempts = 0u32;
    let result = loop {
        let epoch = ctx.fault_epoch();
        let predicted =
            (0..n_morsels as u64).find(|&m| spec.fires(FaultPoint::ChunkScanPanic, m, epoch));
        let spawn_fails = spec.fires(FaultPoint::WorkerSpawn, n_morsels as u64, epoch);
        let r = db.execute_ctx(&query, &ctx);
        match &r {
            Err(StorageError::WorkerPanicked { payload, morsel }) => {
                assert!(!spawn_fails, "spawn failure preempts every worker");
                assert_eq!(
                    Some(*morsel),
                    predicted,
                    "lowest firing morsel wins attribution"
                );
                assert!(payload.contains(PANIC_MARKER), "payload: {payload}");
            }
            Err(StorageError::ResourceExhausted(_)) => {
                assert!(spawn_fails, "unpredicted spawn failure");
            }
            Err(other) => panic!("unexpected failure: {other:?}"),
            Ok(_) => {
                assert!(
                    !spawn_fails && predicted.is_none(),
                    "replay predicted a failure but the scan succeeded"
                );
                break r;
            }
        }
        attempts += 1;
        if attempts > 300 {
            // An env-forced rate near 1.0 never yields a clean epoch;
            // the injection-free serial refuge must still serve.
            ctx.force_serial();
            break db.execute_ctx(&query, &ctx);
        }
        ctx.advance_fault_epoch();
    };
    assert_eq!(
        result.expect("clean epoch or serial fallback"),
        reference,
        "recovered scan over packed chunks must equal the plain result"
    );
}
