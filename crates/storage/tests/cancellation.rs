//! Cancellation semantics, end to end: a cancelled query must stop
//! scanning promptly (strictly before visiting the whole table), return
//! `StorageError::Cancelled`, and leave the result cache **bit-for-bit
//! identical** to the query never having run — contents, byte
//! accounting, insert/evict counters, and table version.
//!
//! The deterministic mid-scan trigger is the ctx's row budget
//! (`QueryCtx::with_row_budget`): the scan records progress as it
//! visits rows, the ctx trips itself at the budget, and the next
//! cancellation point (morsel claim / chunk boundary) observes it — no
//! timing, no flakes. One test also drives a genuinely asynchronous
//! cross-thread cancel against a live 1M-row scan.

use proptest::prelude::*;
use std::sync::Arc;
use zv_storage::cache::CacheStats;
use zv_storage::exec::ParallelConfig;
use zv_storage::{
    BitmapDb, BitmapDbConfig, CacheConfig, CancelReason, Column, DataType, Database, Field,
    QueryCtx, ScanDb, ScanDbConfig, SchedulingMode, Schema, StorageError, Table, TableBuilder,
    Value, XSpec, YSpec,
};
use zv_storage::{Predicate, SelectQuery};

const MILLION: usize = 1_000_000;

/// A 1M-row table built columnarly (cheap even in debug builds): a
/// 37-ary group key and an exactly-representable measure.
fn million_row_table() -> Arc<Table> {
    let schema = Schema::new(vec![
        Field::new("key", DataType::Int),
        Field::new("val", DataType::Float),
    ]);
    let keys: Vec<i64> = (0..MILLION).map(|i| (i % 37) as i64).collect();
    let vals: Vec<f64> = (0..MILLION).map(|i| (i % 1013) as f64 * 0.25).collect();
    Arc::new(
        Table::from_columns(schema, vec![Column::Int(keys.into()), Column::Float(vals)]).unwrap(),
    )
}

fn groupby() -> SelectQuery {
    SelectQuery::new(XSpec::raw("key"), vec![YSpec::sum("val")])
}

/// Cache fields that must be unaffected by a cancelled query. (Lookup
/// counters like hits/misses may move — a cancelled *request* aborts
/// before probing, but a budget-cancelled scan was admitted as a miss
/// first; what matters is that no *state* changed.)
fn cache_state(stats: &CacheStats) -> (usize, usize, u64, u64, u64) {
    (
        stats.entries,
        stats.bytes,
        stats.insertions,
        stats.evictions,
        stats.invalidations,
    )
}

/// The acceptance scenario: a 1M-row morsel scan cancelled mid-flight
/// stops within a bounded number of claims, returns
/// `StorageError::Cancelled`, and leaves the cache byte-identical.
#[test]
fn morsel_scan_cancelled_mid_flight_stops_early() {
    let db = ScanDb::with_config(
        million_row_table(),
        ScanDbConfig {
            parallel: ParallelConfig {
                threads: 2,
                min_parallel_rows: 0,
                sched: SchedulingMode::Morsel,
                ..Default::default()
            },
            cache: CacheConfig::admit_all(),
            ..Default::default()
        },
    );
    let q = groupby();

    // Warm an unrelated entry so "cache unchanged" is not vacuous.
    let warm = SelectQuery::new(XSpec::raw("key"), vec![YSpec::avg("val")]);
    db.run_request(std::slice::from_ref(&warm)).unwrap();
    let cache_before = cache_state(&db.cache_stats().unwrap());
    let version_before = db.table().version();
    let stats_before = db.stats().snapshot();

    const BUDGET: u64 = 100_000;
    let ctx = QueryCtx::new().with_row_budget(BUDGET);
    let err = db
        .run_request_ctx(std::slice::from_ref(&q), &ctx)
        .expect_err("budget-cancelled scan must fail");
    assert_eq!(err, StorageError::Cancelled);

    let progress = ctx.stats();
    assert!(progress.cancelled);
    assert_eq!(progress.reason, Some(CancelReason::RowBudget));
    assert!(
        progress.rows_scanned >= BUDGET,
        "the budget itself was reached"
    );
    assert!(
        progress.rows_scanned < MILLION as u64,
        "the scan stopped strictly early ({} of {MILLION} rows)",
        progress.rows_scanned
    );
    assert!(
        progress.morsels_cancelled > 0,
        "the claim loop abandoned the remaining morsels"
    );

    let delta = db.stats().snapshot().since(&stats_before);
    assert_eq!(delta.queries_cancelled, 1);
    assert_eq!(delta.morsels_cancelled, progress.morsels_cancelled);
    assert_eq!(
        cache_state(&db.cache_stats().unwrap()),
        cache_before,
        "a cancelled query must not perturb the cache"
    );
    assert_eq!(db.table().version(), version_before);

    // The real run afterwards is a full fresh scan (nothing partial was
    // cached) and produces the correct result.
    let reference = ScanDb::with_config(db.table(), ScanDbConfig::uncached())
        .execute(&q)
        .unwrap();
    let before_real = db.stats().snapshot();
    let real = db.run_request(std::slice::from_ref(&q)).unwrap();
    let real_delta = db.stats().snapshot().since(&before_real);
    assert_eq!(*real[0], reference);
    assert_eq!(
        real_delta.cache_misses, 1,
        "the cancelled attempt must not have left a servable entry"
    );
    assert_eq!(real_delta.rows_scanned, MILLION as u64);
}

/// Serial and static schedulers observe the ctx between chunks.
#[test]
fn serial_and_static_scans_cancel_between_chunks() {
    let table = million_row_table();
    let configs = [
        (
            "serial",
            ParallelConfig {
                threads: 1,
                min_parallel_rows: usize::MAX,
                ..Default::default()
            },
        ),
        (
            "static",
            ParallelConfig {
                threads: 2,
                min_parallel_rows: 0,
                sched: SchedulingMode::Static,
                ..Default::default()
            },
        ),
    ];
    for (name, parallel) in configs {
        let db = ScanDb::with_config(
            table.clone(),
            ScanDbConfig {
                parallel,
                ..Default::default()
            },
        );
        let ctx = QueryCtx::new().with_row_budget(50_000);
        let err = db.execute_ctx(&groupby(), &ctx).expect_err(name);
        assert_eq!(err, StorageError::Cancelled, "{name}");
        let progress = ctx.stats();
        assert!(
            progress.rows_scanned < MILLION as u64,
            "{name} stopped early ({} rows)",
            progress.rows_scanned
        );
        assert_eq!(db.stats().snapshot().queries_cancelled, 1, "{name}");
    }
}

/// Whatever scheduling the environment forces (CI's matrix runs this
/// suite under serial and morsel×2), the default-config engine cancels.
#[test]
fn default_config_scan_cancels_under_any_scheduling() {
    let db = BitmapDb::new(million_row_table());
    let ctx = QueryCtx::new().with_row_budget(80_000);
    let err = db.execute_ctx(&groupby(), &ctx).unwrap_err();
    assert_eq!(err, StorageError::Cancelled);
    assert!(ctx.stats().rows_scanned < MILLION as u64);
}

/// An already-expired deadline cancels before a single row is visited.
#[test]
fn expired_deadline_cancels_without_scanning() {
    let db = ScanDb::new(million_row_table());
    let ctx = QueryCtx::new().with_deadline(std::time::Duration::ZERO);
    let err = db
        .run_request_ctx(std::slice::from_ref(&groupby()), &ctx)
        .unwrap_err();
    assert_eq!(err, StorageError::Cancelled);
    assert_eq!(ctx.stats().rows_scanned, 0);
    assert_eq!(ctx.cancel_reason(), Some(CancelReason::Deadline));
    assert_eq!(db.stats().snapshot().queries_cancelled, 1);
}

/// A genuinely asynchronous cancel: another thread flips the token
/// while the 1M-row scan is in flight.
#[test]
fn cross_thread_cancel_lands_mid_scan() {
    let db = ScanDb::with_config(
        million_row_table(),
        ScanDbConfig {
            parallel: ParallelConfig {
                threads: 2,
                min_parallel_rows: 0,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let ctx = QueryCtx::new();
    let result = std::thread::scope(|s| {
        let handle = s.spawn(|| db.execute_ctx(&groupby(), &ctx));
        // Wait until the scan is demonstrably running, then cancel.
        while ctx.stats().rows_scanned == 0 && !handle.is_finished() {
            std::hint::spin_loop();
        }
        ctx.cancel();
        handle.join().expect("scan thread")
    });
    // (On an absurdly fast machine the scan could finish before the
    // cancel lands; everywhere realistic the budgetless 1M debug scan
    // is orders of magnitude slower than the spin loop.)
    match result {
        Err(StorageError::Cancelled) => {
            assert!(ctx.stats().rows_scanned < MILLION as u64, "stopped early");
        }
        Ok(_) => {
            assert_eq!(ctx.stats().rows_scanned, MILLION as u64);
        }
        Err(e) => panic!("unexpected error: {e}"),
    }
}

/// Exact bookkeeping under concurrency: many threads share one engine,
/// some cancelling, some completing; `queries_cancelled` must equal the
/// number of `Cancelled` results observed.
#[test]
fn concurrent_cancellation_bookkeeping_is_exact() {
    let db: Arc<BitmapDb> = Arc::new(BitmapDb::with_config(
        million_row_table(),
        BitmapDbConfig {
            parallel: ParallelConfig {
                threads: 2,
                min_parallel_rows: 0,
                ..Default::default()
            },
            ..Default::default()
        },
    ));
    let base = db.stats().snapshot();
    let outcomes: Vec<bool> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8u64)
            .map(|i| {
                let db = Arc::clone(&db);
                s.spawn(move || {
                    // Distinct predicate per worker: no cross-thread
                    // cache interference.
                    let q = SelectQuery::new(XSpec::raw("key"), vec![YSpec::sum("val")])
                        .with_predicate(Predicate::num_eq("key", (i % 5) as f64));
                    let ctx = if i % 2 == 0 {
                        let ctx = QueryCtx::new();
                        ctx.cancel();
                        ctx
                    } else {
                        QueryCtx::new()
                    };
                    matches!(
                        db.run_request_ctx(std::slice::from_ref(&q), &ctx),
                        Err(StorageError::Cancelled)
                    )
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let observed_cancels = outcomes.iter().filter(|&&c| c).count() as u64;
    assert_eq!(observed_cancels, 4, "the pre-cancelled half");
    let delta = db.stats().snapshot().since(&base);
    assert_eq!(delta.queries_cancelled, observed_cancels);
}

// ---------------------------------------------------------------------
// Property: cancellation is invisible to the cache
// ---------------------------------------------------------------------

fn build_table(rows: &[(i64, u8, i16)]) -> Arc<Table> {
    let schema = Schema::new(vec![
        Field::new("year", DataType::Int),
        Field::new("product", DataType::Cat),
        Field::new("sales", DataType::Float),
    ]);
    let mut b = TableBuilder::new(schema);
    for &(y, p, s) in rows {
        b.push_row(vec![
            Value::Int(y),
            Value::str(format!("p{p}")),
            // Exact dyadic measures: bit-for-bit equality is valid.
            Value::Float(s as f64 * 0.25),
        ])
        .unwrap();
    }
    b.finish_shared()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For random tables and warm-up workloads, a cancelled query —
    /// whether aborted before the cache probe (pre-cancelled request)
    /// or mid-scan (row budget) — leaves cache contents, byte
    /// accounting, state counters, and the table version bit-for-bit
    /// identical to the query never having run; the query re-run for
    /// real afterwards returns exactly the reference result.
    #[test]
    fn cancelled_query_is_invisible_to_the_cache(
        rows in prop::collection::vec((2010i64..2016, 0u8..5, -200i16..200), 1..160),
        warm_z in any::<bool>(),
    ) {
        let table = build_table(&rows);
        let db = BitmapDb::with_config(
            table.clone(),
            BitmapDbConfig { cache: CacheConfig::admit_all(), ..Default::default() },
        );
        // Warm the cache with a related-but-different query.
        let mut warm = SelectQuery::new(XSpec::raw("year"), vec![YSpec::avg("sales")]);
        if warm_z {
            warm = warm.with_z("product");
        }
        db.run_request(std::slice::from_ref(&warm)).unwrap();

        let target = SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")])
            .with_z("product");
        let before = cache_state(&db.cache_stats().unwrap());
        let version = db.table().version();

        // 1. Cancelled before anything happens.
        let pre = QueryCtx::new();
        pre.cancel();
        prop_assert_eq!(
            db.run_request_ctx(std::slice::from_ref(&target), &pre).unwrap_err(),
            StorageError::Cancelled
        );
        prop_assert_eq!(cache_state(&db.cache_stats().unwrap()), before);

        // 2. Cancelled mid-scan (the budget trips on the first rows
        //    recorded — the table is non-empty and the predicate true).
        let mid = QueryCtx::new().with_row_budget(1);
        prop_assert_eq!(
            db.run_request_ctx(std::slice::from_ref(&target), &mid).unwrap_err(),
            StorageError::Cancelled
        );
        prop_assert!(mid.stats().cancelled);
        prop_assert_eq!(cache_state(&db.cache_stats().unwrap()), before);
        prop_assert_eq!(db.table().version(), version);

        // 3. Run for real: exact reference result, served by a fresh
        //    full scan (nothing partial was retained).
        let reference = BitmapDb::with_config(
            table.clone(), BitmapDbConfig::uncached(),
        ).execute(&target).unwrap();
        let real = db.run_request(std::slice::from_ref(&target)).unwrap();
        prop_assert_eq!(&*real[0], &reference);
        let after = cache_state(&db.cache_stats().unwrap());
        prop_assert_eq!(after.2, before.2 + 1, "exactly one fresh insertion");
    }
}

/// A batch whose first query is answerable by derivation and whose
/// second is cancelled mid-scan: the derivation probe must not have
/// committed anything — the cache stays bit-identical (regression for
/// the derived-insert-before-batch-commit hole).
#[test]
fn cancelled_batch_defers_derived_inserts() {
    let db = ScanDb::with_config(
        million_row_table(),
        ScanDbConfig {
            parallel: ParallelConfig {
                threads: 2,
                min_parallel_rows: 0,
                ..Default::default()
            },
            cache: CacheConfig::admit_all(),
            ..Default::default()
        },
    );
    // Warm a superset entry: (key, sum val) group-by over everything.
    let superset = SelectQuery::new(XSpec::raw("key"), vec![YSpec::sum("val")]).with_z("key");
    db.run_request(std::slice::from_ref(&superset)).unwrap();
    let before = cache_state(&db.cache_stats().unwrap());

    // Batch: a slice derivable from the superset + a scan that the row
    // budget cancels mid-flight.
    let derivable = SelectQuery::new(XSpec::raw("key"), vec![YSpec::sum("val")])
        .with_predicate(Predicate::num_eq("key", 3.0));
    let heavy = SelectQuery::new(XSpec::raw("key"), vec![YSpec::avg("val")]);
    let ctx = QueryCtx::new().with_row_budget(50_000);
    let err = db
        .run_request_ctx(&[derivable.clone(), heavy], &ctx)
        .expect_err("the heavy half cancels the batch");
    assert_eq!(err, StorageError::Cancelled);
    assert_eq!(
        cache_state(&db.cache_stats().unwrap()),
        before,
        "a cancelled batch must not commit its derived probe"
    );

    // Committed requests still make derived answers exact entries.
    let stats_before = db.stats().snapshot();
    db.run_request(std::slice::from_ref(&derivable)).unwrap();
    let delta = db.stats().snapshot().since(&stats_before);
    assert_eq!(delta.cache_derived_hits, 1, "derivation still answers");
    let after = cache_state(&db.cache_stats().unwrap());
    assert_eq!(after.2, before.2 + 1, "committed derived insert landed");
    let stats_before = db.stats().snapshot();
    db.run_request(std::slice::from_ref(&derivable)).unwrap();
    let delta = db.stats().snapshot().since(&stats_before);
    assert_eq!(delta.cache_hits, 1, "repeat is now an exact hit");
}
