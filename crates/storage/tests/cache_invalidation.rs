//! Invalidation and concurrency hardening for the engine-level result
//! cache: after any append, no stale result is ever served (the
//! version-key test), a shared cache hammered from many workers stays
//! deterministic with exact hit/miss bookkeeping, and eviction pressure
//! never compromises correctness.

use proptest::prelude::*;
use std::sync::Arc;
use zv_storage::{
    BitmapDb, BitmapDbConfig, CacheConfig, DataType, Database, DynDatabase, Field, Predicate,
    ResultCache, ResultTable, ScanDb, ScanDbConfig, Schema, SelectQuery, Table, TableBuilder,
    Value, XSpec, YSpec,
};

fn build_table(rows: &[(i64, u8, i16)]) -> Arc<Table> {
    let schema = Schema::new(vec![
        Field::new("year", DataType::Int),
        Field::new("product", DataType::Cat),
        Field::new("sales", DataType::Float),
    ]);
    let mut b = TableBuilder::new(schema);
    for &(y, p, s) in rows {
        b.push_row(vec![
            Value::Int(y),
            Value::str(format!("p{p}")),
            Value::Float(s as f64 * 0.25),
        ])
        .unwrap();
    }
    b.finish_shared()
}

fn row(y: i64, p: u8, s: i16) -> Vec<Value> {
    vec![
        Value::Int(y),
        Value::str(format!("p{p}")),
        Value::Float(s as f64 * 0.25),
    ]
}

fn sum_by_year() -> SelectQuery {
    SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")])
}

/// The version-key test: a warm cache must never survive an append. The
/// appended row is chosen so the query's result *must* change — serving
/// the cached (stale) result would be observable.
#[test]
fn append_rows_never_serves_stale_results() {
    let rows: Vec<(i64, u8, i16)> = (0..2_000)
        .map(|i| (2010 + i % 5, (i % 4) as u8, 8))
        .collect();
    for engine in ["bitmap", "scan"] {
        let table = build_table(&rows);
        let db: DynDatabase = match engine {
            "bitmap" => Arc::new(BitmapDb::new(table)),
            _ => Arc::new(ScanDb::new(table)),
        };
        let q = sum_by_year();
        let v0 = db.table().version();
        let warm = || {
            db.run_request(std::slice::from_ref(&q))
                .unwrap()
                .pop()
                .unwrap()
        };
        let before = warm();
        // Warm it: the second call is served from cache.
        assert_eq!(warm(), before, "{engine}");

        db.append_rows(&[row(2010, 0, 400)]).unwrap();
        let v1 = db.table().version();
        assert!(v1 > v0, "{engine}: append must advance the version");

        let after = warm();
        assert_ne!(after, before, "{engine}: result must reflect the append");
        let bypass = ScanDb::with_config(db.table(), ScanDbConfig::uncached());
        assert_eq!(
            *after,
            bypass.execute(&q).unwrap(),
            "{engine}: post-append cached result must equal bypassed execution"
        );
        // And the post-append entry itself is warm + correct.
        let before_stats = db.stats().snapshot();
        assert_eq!(warm(), after, "{engine}");
        let delta = db.stats().snapshot().since(&before_stats);
        assert_eq!(delta.cache_hits, 1, "{engine}");
        assert_eq!(delta.rows_scanned, 0, "{engine}");
    }
}

#[test]
fn append_table_invalidates_too() {
    let base = build_table(&[(2014, 0, 4), (2015, 1, 8)]);
    let db = BitmapDb::new(base);
    let q = sum_by_year();
    let cold = db.run_request(std::slice::from_ref(&q)).unwrap();
    assert_eq!(cold[0].groups[0].ys[0], vec![1.0, 2.0]);

    let extra = build_table(&[(2014, 2, 40), (2016, 0, 4)]);
    db.append_table(&extra).unwrap();
    let fresh = db.run_request(std::slice::from_ref(&q)).unwrap();
    assert_eq!(
        fresh[0].groups[0].ys[0],
        vec![11.0, 2.0, 1.0],
        "appended table's rows must be visible immediately"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized version-key test: whatever was cached before a random
    /// append, the post-append answer equals cache-bypassed execution on
    /// the post-append table.
    #[test]
    fn no_stale_after_random_appends(
        initial in prop::collection::vec((2010i64..2016, 0u8..4, -200i16..200), 1..120),
        appended in prop::collection::vec((2010i64..2016, 0u8..4, -200i16..200), 1..40),
        with_z in any::<bool>(),
    ) {
        let table = build_table(&initial);
        let db = BitmapDb::new(table);
        let mut q = sum_by_year();
        if with_z {
            q = q.with_z("product");
        }
        // Warm the cache on the initial snapshot.
        let _ = db.run_request(std::slice::from_ref(&q)).unwrap();
        let rows: Vec<Vec<Value>> = appended.iter().map(|&(y, p, s)| row(y, p, s)).collect();
        db.append_rows(&rows).unwrap();
        let got = db.run_request(std::slice::from_ref(&q)).unwrap().pop().unwrap();
        let bypass = ScanDb::with_config(
            db.table(),
            ScanDbConfig::uncached(),
        );
        prop_assert_eq!(&*got, &bypass.execute(&q).unwrap());
    }
}

/// N workers hammer `run_request` on one shared engine (hence one shared
/// cache). Every returned result must equal the bypassed reference, and
/// afterwards the books must balance exactly:
/// `hits + misses == queries submitted` and `executed == misses`.
#[test]
fn concurrent_hammering_is_deterministic_and_counted() {
    const WORKERS: usize = 8;
    const ITERS: usize = 25;
    let rows: Vec<(i64, u8, i16)> = (0..10_000)
        .map(|i| (2010 + (i % 7), (i % 5) as u8, ((i * 37 % 801) as i16) - 400))
        .collect();
    let table = build_table(&rows);
    let queries: Vec<SelectQuery> = vec![
        sum_by_year(),
        sum_by_year().with_z("product"),
        sum_by_year().with_predicate(Predicate::cat_eq("product", "p2")),
        SelectQuery::new(XSpec::binned("year", 2.0), vec![YSpec::avg("sales")]),
    ];
    let bypass = ScanDb::with_config(table.clone(), ScanDbConfig::uncached());
    let expected: Vec<_> = queries.iter().map(|q| bypass.execute(q).unwrap()).collect();

    let db = Arc::new(BitmapDb::new(table));
    std::thread::scope(|s| {
        for w in 0..WORKERS {
            let db = Arc::clone(&db);
            let queries = &queries;
            let expected = &expected;
            s.spawn(move || {
                for i in 0..ITERS {
                    // Vary the batch split so lookups and inserts race in
                    // every combination.
                    let k = (w + i) % queries.len();
                    let results = db.run_request(&queries[k..]).unwrap();
                    for (r, e) in results.iter().zip(&expected[k..]) {
                        assert_eq!(&**r, e, "worker {w} iteration {i}");
                    }
                }
            });
        }
    });

    let snap = db.stats().snapshot();
    let mut submitted = 0u64;
    for w in 0..WORKERS {
        for i in 0..ITERS {
            submitted += (queries.len() - (w + i) % queries.len()) as u64;
        }
    }
    assert_eq!(
        snap.cache_hits + snap.cache_derived_hits + snap.cache_misses,
        submitted,
        "every submitted query is exactly one hit, one derived hit, or one miss"
    );
    assert_eq!(
        snap.queries, snap.cache_misses,
        "exactly the misses were executed (derived hits scan nothing)"
    );
    assert!(
        snap.cache_hits + snap.cache_derived_hits >= submitted - (WORKERS * queries.len()) as u64,
        "at most one racing miss per worker per distinct query; got {} scan-free of {submitted}",
        snap.cache_hits + snap.cache_derived_hits
    );
    let cache = db.cache_stats().expect("default engine carries a cache");
    // One entry per distinct query, plus one IVM companion-state entry
    // (SUM + COUNT(*)) for the single AVG query in the mix.
    assert_eq!(cache.entries, queries.len() + 1);
}

/// Readers racing an append must only ever observe the pre-append or the
/// post-append result — never a torn or stale-beyond-append mixture — and
/// once the append has completed, every subsequent request sees new data.
#[test]
fn concurrent_append_never_serves_stale() {
    let rows: Vec<(i64, u8, i16)> = (0..5_000)
        .map(|i| (2010 + i % 5, (i % 3) as u8, 8))
        .collect();
    let table = build_table(&rows);
    let db = Arc::new(BitmapDb::new(table));
    let q = sum_by_year();
    let before = db
        .run_request(std::slice::from_ref(&q))
        .unwrap()
        .pop()
        .unwrap();

    std::thread::scope(|s| {
        for _ in 0..4 {
            let db = Arc::clone(&db);
            let q = q.clone();
            let before = before.clone();
            s.spawn(move || {
                for _ in 0..50 {
                    let got = db
                        .run_request(std::slice::from_ref(&q))
                        .unwrap()
                        .pop()
                        .unwrap();
                    // Exactly two observable states exist.
                    if got != before {
                        assert_eq!(
                            got.groups[0].ys[0][0],
                            before.groups[0].ys[0][0] + 100.0,
                            "reader saw a state that is neither pre- nor post-append"
                        );
                    }
                }
            });
        }
        let db = Arc::clone(&db);
        s.spawn(move || {
            db.append_rows(&[row(2010, 0, 400)]).unwrap();
        });
    });

    let after = db
        .run_request(std::slice::from_ref(&q))
        .unwrap()
        .pop()
        .unwrap();
    assert_eq!(after.groups[0].ys[0][0], before.groups[0].ys[0][0] + 100.0);
}

/// A deliberately tiny cache thrashes, but never compromises results.
#[test]
fn eviction_pressure_stays_correct() {
    let rows: Vec<(i64, u8, i16)> = (0..3_000)
        .map(|i| (2010 + i % 6, (i % 6) as u8, ((i % 64) as i16) - 32))
        .collect();
    let table = build_table(&rows);
    let db = BitmapDb::with_config(
        table.clone(),
        BitmapDbConfig {
            cache: CacheConfig {
                max_entries: 2,
                max_bytes: 1 << 20,
                min_cost_rows: 0,
            },
            ..Default::default()
        },
    );
    let bypass = ScanDb::with_config(table, ScanDbConfig::uncached());
    let queries: Vec<SelectQuery> = (0..6)
        .map(|p| sum_by_year().with_predicate(Predicate::cat_eq("product", format!("p{p}"))))
        .collect();
    for _ in 0..3 {
        for q in &queries {
            let got = db
                .run_request(std::slice::from_ref(q))
                .unwrap()
                .pop()
                .unwrap();
            assert_eq!(*got, bypass.execute(q).unwrap());
        }
    }
    let cache = db.cache_stats().unwrap();
    assert!(cache.entries <= 2);
    assert!(
        cache.evictions > 0,
        "a 2-entry cache cycling 6 queries must evict"
    );
    let snap = db.stats().snapshot();
    assert_eq!(snap.cache_hits + snap.cache_misses, 18);
}

/// One `ResultCache` shared between two engines over the same table:
/// versioned, engine-tagged keys keep their entries apart, and both stay
/// correct.
#[test]
fn shared_cache_across_engines_keeps_entries_apart() {
    let rows: Vec<(i64, u8, i16)> = (0..2_000)
        .map(|i| (2012 + i % 4, (i % 3) as u8, 12))
        .collect();
    let table = build_table(&rows);
    let shared = Arc::new(ResultCache::new(&CacheConfig::default()));
    let bitmap = BitmapDb::with_shared_cache(
        table.clone(),
        BitmapDbConfig::default(),
        Arc::clone(&shared),
    );
    let scan = ScanDb::with_shared_cache(table, ScanDbConfig::default(), Arc::clone(&shared));
    let q = sum_by_year().with_z("product");
    let a = bitmap.run_request(std::slice::from_ref(&q)).unwrap();
    let b = scan.run_request(std::slice::from_ref(&q)).unwrap();
    assert_eq!(a, b, "engines must agree on the same data");
    assert_eq!(
        shared.len(),
        2,
        "same query, same table, different engines → two distinct entries"
    );
    // Each engine's warm pass hits its own entry.
    for db in [&bitmap as &dyn Database, &scan as &dyn Database] {
        let before = db.stats().snapshot();
        let _ = db.run_request(std::slice::from_ref(&q)).unwrap();
        let delta = db.stats().snapshot().since(&before);
        assert_eq!(delta.cache_hits, 1, "{}", db.name());
        assert_eq!(delta.rows_scanned, 0, "{}", db.name());
    }
}

/// Appends racing IVM lookups: readers hammer a query whose every warm
/// tick is answered by delta-merging, while a writer lands appends
/// mid-merge. An append landing mid-merge must never let the reader
/// publish a merged result under a stale version — every observed result
/// must equal the full recompute of *some* table state that actually
/// existed (pre-append, or after a whole number of batches), and the
/// ledger must balance exactly afterwards.
#[test]
fn concurrent_appends_racing_ivm_lookups_never_publish_stale_merges() {
    const BATCHES: usize = 8;
    const READERS: usize = 4;
    const ITERS: usize = 40;
    let initial: Vec<(i64, u8, i16)> = (0..2_000)
        .map(|i| (2010 + i % 5, (i % 4) as u8, ((i * 13 % 257) as i16) - 128))
        .collect();
    let batches: Vec<Vec<(i64, u8, i16)>> = (0..BATCHES)
        .map(|b| {
            (0..5)
                .map(|j| {
                    (
                        2010 + ((b + j) % 6) as i64,
                        ((b * 2 + j) % 5) as u8,
                        ((b * 37 + j * 11) % 97) as i16 - 48,
                    )
                })
                .collect()
        })
        .collect();
    let queries = vec![sum_by_year().with_z("product"), {
        SelectQuery::new(XSpec::raw("year"), vec![YSpec::avg("sales")])
    }];

    // Every table state that will ever exist, and its exact expected
    // answers — computed up front on independently built tables so the
    // readers can assert against a closed set.
    let mut expected: Vec<Vec<ResultTable>> = Vec::with_capacity(BATCHES + 1);
    let mut rows_so_far = initial.clone();
    let bypass = ScanDb::with_config(build_table(&rows_so_far), ScanDbConfig::uncached());
    expected.push(queries.iter().map(|q| bypass.execute(q).unwrap()).collect());
    for batch in &batches {
        rows_so_far.extend(batch.iter().copied());
        let bypass = ScanDb::with_config(build_table(&rows_so_far), ScanDbConfig::uncached());
        expected.push(queries.iter().map(|q| bypass.execute(q).unwrap()).collect());
    }

    for engine in ["bitmap", "scan"] {
        let table = build_table(&initial);
        let db: DynDatabase = match engine {
            "bitmap" => Arc::new(BitmapDb::with_config(
                table,
                BitmapDbConfig {
                    cache: CacheConfig::admit_all(),
                    ..Default::default()
                },
            )),
            _ => Arc::new(ScanDb::with_config(
                table,
                ScanDbConfig {
                    cache: CacheConfig::admit_all(),
                    ..Default::default()
                },
            )),
        };
        // Warm the cache so the racing ticks take the IVM path.
        db.run_request(&queries).unwrap();
        let submitted = std::sync::atomic::AtomicU64::new(queries.len() as u64);

        std::thread::scope(|s| {
            for _ in 0..READERS {
                let db = Arc::clone(&db);
                let queries = &queries;
                let expected = &expected;
                let submitted = &submitted;
                s.spawn(move || {
                    for _ in 0..ITERS {
                        let results = db.run_request(queries).unwrap();
                        submitted
                            .fetch_add(queries.len() as u64, std::sync::atomic::Ordering::Relaxed);
                        // The whole batch must come from one table state
                        // (run_request pins a snapshot), and that state
                        // must be one that actually existed.
                        let state = expected
                            .iter()
                            .position(|exp| exp.iter().zip(&results).all(|(e, r)| e == &**r));
                        assert!(
                            state.is_some(),
                            "{engine}: observed a result set matching no real table state \
                             — a merged result was published under a stale version"
                        );
                    }
                });
            }
            let db = Arc::clone(&db);
            let batches = &batches;
            s.spawn(move || {
                for batch in batches {
                    let rows: Vec<Vec<Value>> =
                        batch.iter().map(|&(y, p, s)| row(y, p, s)).collect();
                    db.append_rows(&rows).unwrap();
                    std::thread::yield_now();
                }
            });
        });

        // Settled state: one more tick must see the final table exactly.
        let fin = db.run_request(&queries).unwrap();
        submitted.fetch_add(queries.len() as u64, std::sync::atomic::Ordering::Relaxed);
        for (e, r) in expected[BATCHES].iter().zip(&fin) {
            assert_eq!(e, &**r, "{engine}: settled tick must see every batch");
        }
        let snap = db.stats().snapshot();
        assert_eq!(
            snap.cache_hits + snap.cache_derived_hits + snap.ivm_hits + snap.cache_misses,
            submitted.load(std::sync::atomic::Ordering::Relaxed),
            "{engine}: every query is exactly one hit, derived hit, IVM hit, or miss"
        );
        assert!(
            snap.ivm_hits > 0,
            "{engine}: the race must actually exercise the IVM path"
        );
    }
}
