//! Derivation correctness: results the cache *derives* from a cached
//! superset entry (predicate subsumption, per-Z-slice extraction) must
//! be bit-for-bit identical to direct cache-bypassed execution — across
//! both engines, serial and parallel scan routing — and must scan zero
//! base rows.
//!
//! Measures are exact dyadic rationals (multiples of 0.25 well below
//! 2⁵³), so float aggregation is associative on this data and bit-for-bit
//! equality is the correct assertion.

use proptest::prelude::*;
use std::sync::Arc;
use zv_storage::exec::ParallelConfig;
use zv_storage::{
    BitmapDb, BitmapDbConfig, CacheConfig, CmpOp, DataType, Database, DynDatabase, Field,
    Predicate, ScanDb, ScanDbConfig, Schema, SelectQuery, Table, TableBuilder, Value, XSpec, YSpec,
};

fn build_table(rows: &[(i64, u8, u8, i16)]) -> Arc<Table> {
    let schema = Schema::new(vec![
        Field::new("year", DataType::Int),
        Field::new("product", DataType::Cat),
        Field::new("location", DataType::Cat),
        Field::new("sales", DataType::Float),
    ]);
    let mut b = TableBuilder::new(schema);
    for &(y, p, l, s) in rows {
        b.push_row(vec![
            Value::Int(y),
            Value::str(format!("p{p}")),
            Value::str(format!("loc{l}")),
            Value::Float(s as f64 * 0.25),
        ])
        .unwrap();
    }
    b.finish_shared()
}

fn serial() -> ParallelConfig {
    ParallelConfig {
        threads: 1,
        min_parallel_rows: usize::MAX,
        ..Default::default()
    }
}

fn sharded() -> ParallelConfig {
    ParallelConfig {
        threads: 4,
        min_parallel_rows: 0,
        // Tiny morsels: the proptest tables are < MORSEL_ROWS rows, and
        // the default morsel size would silently degrade this fixture's
        // scans to the serial fallback (losing the real-fan-out coverage
        // this suite had when sharding was static).
        morsel_rows: 64,
        ..Default::default()
    }
}

/// `(label, cached engine, bypass engine)` across both engines and both
/// scan routings; cost-based admission is off (tiny proptest tables).
fn engine_pairs(table: &Arc<Table>) -> Vec<(String, DynDatabase, DynDatabase)> {
    let mut out: Vec<(String, DynDatabase, DynDatabase)> = Vec::new();
    for (routing, parallel) in [("serial", serial()), ("parallel", sharded())] {
        out.push((
            format!("bitmap/{routing}"),
            Arc::new(BitmapDb::with_config(
                table.clone(),
                BitmapDbConfig {
                    parallel,
                    cache: CacheConfig::admit_all(),
                    ..Default::default()
                },
            )),
            Arc::new(BitmapDb::with_config(
                table.clone(),
                BitmapDbConfig {
                    parallel,
                    ..BitmapDbConfig::uncached()
                },
            )),
        ));
        out.push((
            format!("scan/{routing}"),
            Arc::new(ScanDb::with_config(
                table.clone(),
                ScanDbConfig {
                    parallel,
                    cache: CacheConfig::admit_all(),
                    ..Default::default()
                },
            )),
            Arc::new(ScanDb::with_config(
                table.clone(),
                ScanDbConfig {
                    parallel,
                    ..ScanDbConfig::uncached()
                },
            )),
        ));
    }
    out
}

fn arb_rows() -> impl Strategy<Value = Vec<(i64, u8, u8, i16)>> {
    prop::collection::vec((2010i64..2020, 0u8..6, 0u8..3, -400i16..400), 1..250)
}

/// The superset query that gets cached: full `(year, [sum, avg], product
/// [, location])` group-by, optionally under a base conjunction that the
/// derived query will extend.
fn arb_superset() -> impl Strategy<Value = SelectQuery> {
    (any::<bool>(), 0u8..3).prop_map(|(two_z, base)| {
        let mut q = SelectQuery::new(
            XSpec::raw("year"),
            vec![YSpec::sum("sales"), YSpec::avg("sales")],
        )
        .with_z("product");
        if two_z {
            q = q.with_z("location");
        }
        match base {
            1 => q.with_predicate(Predicate::num_cmp("year", CmpOp::Ge, 2011.0)),
            2 => q.with_predicate(Predicate::cat_neq("product", "p0")),
            _ => q,
        }
    })
}

/// One residual tightening step applied to a cached superset query:
/// `(query, is_z_slice)`.
#[derive(Clone, Debug)]
enum Residual {
    /// Keep Z, filter its groups (equality / IN / prefix / inequality).
    KeyFilter(u8, u8),
    /// Pin the first Z column to one value and drop it (per-Z-slice).
    SliceFirstZ(u8),
    /// Cut on the raw X column.
    XCut(i64, u8),
}

fn arb_residual() -> impl Strategy<Value = Residual> {
    prop_oneof![
        (0u8..4, 0u8..6).prop_map(|(kind, v)| Residual::KeyFilter(kind, v)),
        (0u8..6).prop_map(Residual::SliceFirstZ),
        ((2009i64..2021), 0u8..3).prop_map(|(y, op)| Residual::XCut(y, op)),
    ]
}

/// Apply a residual to the cached query, producing the derived query.
fn derived_query(cached: &SelectQuery, residual: &Residual) -> SelectQuery {
    match residual {
        Residual::KeyFilter(kind, v) => {
            let pred = match kind {
                0 => Predicate::cat_eq("product", format!("p{v}")),
                1 => Predicate::cat_in(
                    "product",
                    vec![format!("p{v}"), format!("p{}", (v + 1) % 6)],
                ),
                2 => Predicate::str_prefix("product", "p"),
                _ => Predicate::cat_neq("product", format!("p{v}")),
            };
            cached
                .clone()
                .with_predicate(cached.predicate.clone().and(pred))
        }
        Residual::SliceFirstZ(v) => {
            // Drop the first Z column (product), pinned by equality.
            let mut q = SelectQuery::new(cached.x.clone(), cached.ys.clone()).with_predicate(
                cached
                    .predicate
                    .clone()
                    .and(Predicate::cat_eq("product", format!("p{v}"))),
            );
            for z in cached.zs.iter().skip(1) {
                q = q.with_z(z.clone());
            }
            q
        }
        Residual::XCut(y, op) => {
            let pred = match op {
                0 => Predicate::num_eq("year", *y as f64),
                1 => Predicate::num_cmp("year", CmpOp::Le, *y as f64),
                _ => Predicate::num_between("year", *y as f64, (*y + 3) as f64),
            };
            cached
                .clone()
                .with_predicate(cached.predicate.clone().and(pred))
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Subsumption- and slice-derived results are bit-for-bit equal to
    /// direct cache-bypassed execution, and the derivation scans zero
    /// base rows — across both engines and both scan routings.
    #[test]
    fn derived_equals_direct(
        rows in arb_rows(),
        superset in arb_superset(),
        residual in arb_residual(),
    ) {
        let table = build_table(&rows);
        let want = derived_query(&superset, &residual);
        for (label, cached, bypass) in engine_pairs(&table) {
            let expected = bypass.execute(&want).expect("bypass");
            // Warm the cache with the superset, then issue the subsumed
            // query: it must be answered without touching a base row.
            let _ = cached.run_request(std::slice::from_ref(&superset)).expect("superset");
            let before = cached.stats().snapshot();
            let got = cached
                .run_request(std::slice::from_ref(&want))
                .expect("derived request")
                .pop()
                .unwrap();
            let delta = cached.stats().snapshot().since(&before);
            prop_assert_eq!(&*got, &expected, "derived ≠ direct on {}", &label);
            prop_assert_eq!(delta.rows_scanned, 0, "derivation scanned rows on {}", &label);
            prop_assert_eq!(delta.queries, 0, "derivation executed a query on {}", &label);
            prop_assert_eq!(
                delta.cache_hits + delta.cache_derived_hits,
                1,
                "query must be answered from cache on {}",
                &label
            );
            // A repeat of the derived query is now an *exact* hit on the
            // entry the derivation inserted — and shares its allocation.
            let again = cached
                .run_request(std::slice::from_ref(&want))
                .expect("repeat")
                .pop()
                .unwrap();
            prop_assert!(Arc::ptr_eq(&got, &again), "derived repeat must be a pointer bump on {}", &label);
        }
    }
}

/// The acceptance-criterion shape, deterministically: per-Z-slice and
/// subset-predicate queries against a cached group-by scan **zero** base
/// rows, on both engines.
#[test]
fn slices_of_a_cached_groupby_scan_nothing() {
    let rows: Vec<(i64, u8, u8, i16)> = (0..20_000)
        .map(|i| {
            (
                2010 + (i % 8) as i64,
                (i % 6) as u8,
                (i % 3) as u8,
                ((i * 37 % 801) as i16) - 400,
            )
        })
        .collect();
    let table = build_table(&rows);
    let full = SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")]).with_z("product");
    for db in [
        Arc::new(BitmapDb::new(table.clone())) as DynDatabase,
        Arc::new(ScanDb::new(table.clone())) as DynDatabase,
    ] {
        let bypass = ScanDb::with_config(table.clone(), ScanDbConfig::uncached());
        let _ = db.run_request(std::slice::from_ref(&full)).unwrap();
        let before = db.stats().snapshot();
        // Six per-product Z-slices plus a subset filter and an X cut:
        // not one base row may be scanned for any of them.
        let mut derived_queries: Vec<SelectQuery> = (0..6)
            .map(|p| {
                SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")])
                    .with_predicate(Predicate::cat_eq("product", format!("p{p}")))
            })
            .collect();
        derived_queries.push(
            full.clone()
                .with_predicate(Predicate::cat_in("product", vec!["p1".into(), "p4".into()])),
        );
        derived_queries.push(full.clone().with_predicate(Predicate::num_cmp(
            "year",
            CmpOp::Ge,
            2014.0,
        )));
        for q in &derived_queries {
            let got = db
                .run_request(std::slice::from_ref(q))
                .unwrap()
                .pop()
                .unwrap();
            assert_eq!(*got, bypass.execute(q).unwrap(), "{}: {q:?}", db.name());
        }
        let delta = db.stats().snapshot().since(&before);
        assert_eq!(
            delta.rows_scanned,
            0,
            "{}: slice queries must scan zero base rows",
            db.name()
        );
        assert_eq!(delta.queries, 0, "{}: nothing may execute", db.name());
        assert_eq!(
            delta.cache_derived_hits,
            derived_queries.len() as u64,
            "{}: every slice must be a derived hit",
            db.name()
        );
    }
}

/// Derivation never crosses table versions: after an append, old superset
/// entries are unreachable and the slice query re-executes.
#[test]
fn derivation_respects_table_versions() {
    let rows: Vec<(i64, u8, u8, i16)> = (0..5_000)
        .map(|i| (2010 + (i % 5) as i64, (i % 4) as u8, (i % 2) as u8, 100))
        .collect();
    let table = build_table(&rows);
    let db = BitmapDb::new(table);
    let full = SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")]).with_z("product");
    let slice = SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")])
        .with_predicate(Predicate::cat_eq("product", "p1"));
    let _ = db.run_request(std::slice::from_ref(&full)).unwrap();
    db.append_rows(&[vec![
        Value::Int(2010),
        Value::str("p1"),
        Value::str("loc0"),
        Value::Float(400.0),
    ]])
    .unwrap();
    let before = db.stats().snapshot();
    let got = db
        .run_request(std::slice::from_ref(&slice))
        .unwrap()
        .pop()
        .unwrap();
    let delta = db.stats().snapshot().since(&before);
    assert_eq!(
        delta.cache_derived_hits, 0,
        "stale superset must not answer a post-append slice"
    );
    assert_eq!(delta.queries, 1, "the slice must execute for real");
    let bypass = ScanDb::with_config(db.table(), ScanDbConfig::uncached());
    assert_eq!(*got, bypass.execute(&slice).unwrap());
}
