//! Minimal JSON tree, writer, and parser (std-only).
//!
//! The offline build rules out serde, and the wire protocol `zv-server`
//! speaks (length-prefixed line-JSON frames, see the `zv-server` crate
//! docs) needs both directions: serialize [`crate::ResultTable`]s and
//! telemetry out, parse query frames in. This module is the shared
//! implementation — deliberately small:
//!
//! * [`Json`] is a plain tree; objects are ordered `(key, value)` pairs
//!   (wire frames are tiny, so linear [`Json::get`] beats a hash map).
//! * The writer emits no raw control characters, so a serialized frame
//!   is always a single line — the property the framing layer relies on.
//! * The parser is a recursive-descent reader over bytes with a depth
//!   limit, accepting standard JSON (and only standard JSON: `NaN` &co
//!   are not valid tokens — exact float round-tripping for result
//!   payloads is handled a level up by [`crate::ResultTable::to_json`],
//!   which encodes floats as shortest-round-trip *strings*).

use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// All JSON numbers parse as `f64`. Protocol-level integers (ids,
    /// counters, sizes) stay exact up to 2^53, far beyond anything the
    /// wire carries; payload floats that must round-trip bit-for-bit
    /// travel as strings instead (see the module docs).
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Ordered key–value pairs (insertion order preserved on write).
    Obj(Vec<(String, Json)>),
}

/// Parse failure: a byte offset and a static description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    pub at: usize,
    pub msg: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A number from anything losslessly convertible to `f64` in the
    /// protocol's range (u32/i32/u16/usize counters and sizes).
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// A `u64` counter as a JSON number. Exact up to 2^53 — debug-checked
    /// because every protocol counter lives far below that.
    pub fn u64(n: u64) -> Json {
        debug_assert!(n < (1 << 53), "u64 {n} does not fit a JSON number");
        Json::Num(n as f64)
    }

    /// Field lookup on an object (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Integer view of a number (rejects fractional and out-of-range).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= (1u64 << 53) as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && n.abs() <= (1u64 << 53) as f64 => Some(*n as i64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Serialize onto `out`. Single-line by construction: strings escape
    /// every control character, and nothing else can emit a newline.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                // JSON has no NaN/Infinity tokens; a non-finite number
                // here is a protocol-layer bug, not data (payload floats
                // travel as strings). Emit null rather than garbage.
                if n.is_finite() {
                    // `{}` on f64 is the shortest exact round-trip form;
                    // integral values get a trailing ".0"-free render.
                    if n.fract() == 0.0 && n.abs() < 1e15 {
                        out.push_str(&format!("{}", *n as i64));
                    } else {
                        out.push_str(&format!("{n}"));
                    }
                } else {
                    debug_assert!(false, "non-finite number in protocol JSON");
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Serialize to a fresh single-line string.
    #[allow(clippy::inherent_to_string)]
    pub fn to_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Parse one JSON document (trailing whitespace allowed, trailing
    /// garbage rejected).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Nesting bound: the wire's frames are a handful of levels deep; a
/// hostile 10k-bracket frame must not overflow the parse stack.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { at: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, msg: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, lit: &str, msg: &'static str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", "expected null").map(|_| Json::Null),
            Some(b't') => self
                .literal("true", "expected true")
                .map(|_| Json::Bool(true)),
            Some(b'f') => self
                .literal("false", "expected false")
                .map(|_| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let tok = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number token");
        match tok.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            _ => Err(JsonError {
                at: start,
                msg: "malformed number",
            }),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.hex4()?;
                            // Surrogate pair: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                self.pos += 1; // consume the 'u' below via literal
                                self.literal("\\u", "expected low surrogate")?;
                                self.pos -= 1; // hex4 expects pos on the 'u'
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c).ok_or_else(|| self.err("invalid code point"))?
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so bytes
                    // are valid UTF-8; find the scalar's byte length).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                    continue;
                }
            }
        }
    }

    /// Read `uXXXX` with `pos` on the `u`; leaves `pos` on the last hex
    /// digit (the caller's shared `pos += 1` steps past it).
    fn hex4(&mut self) -> Result<u32, JsonError> {
        // pos is on 'u'
        let start = self.pos + 1;
        let end = start + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let tok =
            std::str::from_utf8(&self.bytes[start..end]).map_err(|_| self.err("bad \\u escape"))?;
        let cp = u32::from_str_radix(tok, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end - 1;
        Ok(cp)
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[', "expected array")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{', "expected object")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Render an `f64` as a string that parses back bit-for-bit:
/// `Display` for finite values (Rust's shortest-round-trip algorithm),
/// explicit tokens for the non-finite values JSON numbers cannot carry.
/// `-0.0` renders as `"-0"` and round-trips with its sign.
pub fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_owned()
    } else if v == f64::INFINITY {
        "inf".to_owned()
    } else if v == f64::NEG_INFINITY {
        "-inf".to_owned()
    } else {
        format!("{v}")
    }
}

/// Inverse of [`fmt_f64`].
pub fn parse_f64(s: &str) -> Option<f64> {
    match s {
        "NaN" => Some(f64::NAN),
        "inf" => Some(f64::INFINITY),
        "-inf" => Some(f64::NEG_INFINITY),
        _ => s.parse().ok(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(j: &Json) -> Json {
        Json::parse(&j.to_string()).expect("own output parses")
    }

    #[test]
    fn scalars_roundtrip() {
        for j in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Num(0.0),
            Json::Num(-17.0),
            Json::Num(3.5),
            Json::Num(1e-8),
            Json::Str("plain".into()),
            Json::Str("esc \" \\ \n \t \r \u{1} ünïcødé 🎉".into()),
        ] {
            assert_eq!(roundtrip(&j), j, "{}", j.to_string());
        }
    }

    #[test]
    fn containers_roundtrip_and_preserve_order() {
        let j = Json::Obj(vec![
            ("z".into(), Json::Arr(vec![Json::Num(1.0), Json::Null])),
            ("a".into(), Json::Str("after z".into())),
            (
                "nested".into(),
                Json::Obj(vec![("k".into(), Json::Bool(false))]),
            ),
        ]);
        let back = roundtrip(&j);
        assert_eq!(back, j);
        assert_eq!(back.get("a").and_then(Json::as_str), Some("after z"));
        match back {
            Json::Obj(pairs) => assert_eq!(pairs[0].0, "z", "insertion order preserved"),
            _ => unreachable!(),
        }
    }

    #[test]
    fn output_is_single_line() {
        let j = Json::Obj(vec![("k".into(), Json::Str("line1\nline2\r\t".into()))]);
        let s = j.to_string();
        assert!(!s.contains('\n') && !s.contains('\r'), "{s:?}");
        assert_eq!(roundtrip(&j), j);
    }

    #[test]
    fn accessor_views() {
        let j = Json::parse(r#"{"n":42,"x":1.5,"s":"hi","b":true,"a":[1,2]}"#).unwrap();
        assert_eq!(j.get("n").unwrap().as_u64(), Some(42));
        assert_eq!(j.get("n").unwrap().as_i64(), Some(42));
        assert_eq!(j.get("x").unwrap().as_u64(), None, "fractional is not u64");
        assert_eq!(j.get("x").unwrap().as_f64(), Some(1.5));
        assert_eq!(j.get("s").unwrap().as_str(), Some("hi"));
        assert_eq!(j.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(j.get("a").unwrap().as_arr().map(<[Json]>::len), Some(2));
        assert_eq!(j.get("missing"), None);
    }

    #[test]
    fn malformed_inputs_error_not_panic() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"k\" 1}",
            "nul",
            "\"unterminated",
            "1.2.3",
            "[1] trailing",
            "\"\\q\"",
            "{\"a\":1,}",
            "NaN",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
        // Depth bomb: errors, no stack overflow.
        let bomb = "[".repeat(10_000) + &"]".repeat(10_000);
        assert!(Json::parse(&bomb).is_err());
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(
            Json::parse(r#""\u0041\u00e9""#).unwrap(),
            Json::Str("Aé".into())
        );
        // Surrogate pair for 🎉 (U+1F389).
        assert_eq!(
            Json::parse(r#""\ud83c\udf89""#).unwrap(),
            Json::Str("🎉".into())
        );
        assert!(Json::parse(r#""\ud83c""#).is_err(), "lone high surrogate");
    }

    #[test]
    fn f64_string_forms_roundtrip_exactly() {
        for v in [
            0.0,
            -0.0,
            1.0,
            -1.5,
            f64::MAX,
            f64::MIN_POSITIVE,
            1.0 / 3.0,
            6.02214076e23,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ] {
            let back = parse_f64(&fmt_f64(v)).unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v}");
        }
        assert!(parse_f64(&fmt_f64(f64::NAN)).unwrap().is_nan());
        assert_eq!(parse_f64("bogus"), None);
    }
}
